"""Commutation rules for the {H, X, CNOT, RZ} gate set.

These predicates drive the Nam-style cancellation engine: a gate may be
cancelled or merged with a later gate if every gate in between commutes
with it.  The rules are the standard ones (Nam et al. 2018, Sec. 4.2):

* gates on disjoint qubits always commute;
* two RZ gates on the same qubit commute (both diagonal);
* an RZ on a CNOT's *control* commutes with the CNOT (the CNOT is
  diagonal in the control's Z basis);
* an X on a CNOT's *target* commutes with the CNOT;
* two CNOTs commute when they share only a control or only a target
  (and anti-commute structurally when one's control is the other's
  target).

Every rule here is verified against the unitary simulator in
``tests/oracles/test_commutation.py`` — including the *negative* cases.
"""

from __future__ import annotations

from ..circuits import Gate

__all__ = ["commutes", "commutes_through"]


def commutes(g: Gate, h: Gate) -> bool:
    """True when ``[g, h] = 0`` as operators (exactly, not up to phase)."""
    if not g.overlaps(h):
        return True
    a, b = g.name, h.name
    # Normalize so single-qubit/cnot pairs are handled once.
    if a == "cnot" and b != "cnot":
        g, h = h, g
        a, b = b, a
    if b == "cnot":
        if a == "cnot":
            gc, gt = g.qubits
            hc, ht = h.qubits
            # Sharing only controls, or only targets, commutes.
            if gc == ht or gt == hc:
                return False
            return True  # overlap is control-control and/or target-target
        q = g.qubits[0]
        hc, ht = h.qubits
        if a == "rz":
            return q == hc
        if a == "x":
            return q == ht
        return False  # h (hadamard) never commutes with an overlapping cnot
    # Both single-qubit on the same qubit.
    if a == b:
        # Equal-name single-qubit gates commute (rz(θ1)rz(θ2), xx, hh).
        return True
    return False  # h/x, h/rz, x/rz on the same qubit do not commute


def commutes_through(g: Gate, between: list[Gate]) -> bool:
    """True when ``g`` commutes with every gate in ``between``."""
    return all(commutes(g, h) for h in between)
