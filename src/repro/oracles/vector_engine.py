"""Vectorized Nam-style rewrite engine on the flat packed numpy layout.

The reference engine (:mod:`repro.oracles.rule_engine`) walks Python
``list[Gate]`` objects gate by gate; on a 2Ω-gate segment that is a few
thousand interpreter-dispatched operations per sweep, and the GIL pins
every one of them to a single core.  This module reimplements the same
rule set on the struct-of-arrays layout the transport already uses
(:mod:`repro.circuits.encoding`): a segment becomes four parallel numpy
arrays (:class:`VectorSegment`) and each rewrite sweep becomes a
handful of whole-array sorts, cumulative sums and masked reductions.
Those kernels run inside numpy — no per-gate Python bytecode, and the
array ops release the GIL, which is what makes the ``"threads"`` oracle
transport (:class:`repro.parallel.ProcessMap` with
``transport="threads"``) a real alternative to process pools.

The vectorized sweeps are *equivalent but not identical* to the
reference engine's: a sweep applies every non-conflicting rewrite it
can prove sound at once (the reference engine applies them left to
right, one scan at a time), so intermediate circuits differ while every
pass preserves the segment's unitary up to global phase and the
fixpoints of both engines are locally unimprovable.  Soundness is
property-tested against the statevector simulator in
``tests/oracles/test_vector_engine.py``.

The cancellation sweep is built on one observation: in a wire's
occurrence list, the gates a moving gate may commute past form a
*corridor* — for an RZ on wire ``q`` the corridor entries are CNOT
controls on ``q``, for an X they are CNOT targets, for an H nothing.
Labelling each occurrence with the running count of corridor-breaking
entries (one ``cumsum``) makes "cancellable up to commutation" a simple
key equality: two gates of the same kind on the same wire cancel (or
merge) exactly when their blocker counts match.  Whole runs then reduce
in one shot — parity for the self-inverse gates, an angle sum for RZ
runs — instead of one pairwise scan per gate.

Gates outside the {h, x, cnot, rz} base set do not fit the packed
layout; :meth:`VectorSegment.from_gates` / ``from_encoded`` return
``None`` for such segments and :class:`repro.oracles.nam.NamOracle`
falls back to the reference engine for them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..circuits import ANGLE_TOL, Gate
from ..circuits.encoding import EncodedSegment
from ..circuits.gate import TWO_PI

__all__ = [
    "OP_H",
    "OP_X",
    "OP_CNOT",
    "OP_RZ",
    "VectorSegment",
    "Occurrences",
    "vector_remove_identities",
    "vector_cancellation_pass",
    "vector_hadamard_reduction_pass",
    "vector_hadamard_gadget_pass",
    "vector_rotation_merge_pass",
    "vector_cnot_chain_pass",
    "VECTOR_PASS_TABLE",
    "vector_pass_for",
]

#: Opcodes of the packed base gate set, in :data:`repro.circuits.GATE_NAMES`
#: order.
OP_H, OP_X, OP_CNOT, OP_RZ = 0, 1, 2, 3

_BASE_OPS = {"h": OP_H, "x": OP_X, "cnot": OP_CNOT, "rz": OP_RZ}
_BASE_NAMES = ("h", "x", "cnot", "rz")

_PI = math.pi
_HALF_PI = math.pi / 2
_NEG_HALF_PI = 3 * math.pi / 2  # normalized -pi/2
_S_TOL = 1e-9


@dataclass(frozen=True)
class VectorSegment:
    """A base-set gate segment as four parallel numpy arrays.

    ``ops[i]`` is one of the ``OP_*`` opcodes; ``q0[i]`` is the gate's
    (first) qubit, ``q1[i]`` the CNOT target or ``-1`` for single-qubit
    gates; ``params[i]`` is the RZ angle (``0.0`` for parameter-free
    gates).  Instances are treated as immutable: passes build new
    arrays rather than writing in place.
    """

    ops: np.ndarray
    q0: np.ndarray
    q1: np.ndarray
    params: np.ndarray

    def __len__(self) -> int:
        return int(self.ops.size)

    @staticmethod
    def from_gates(gates: Sequence[Gate]) -> Optional["VectorSegment"]:
        """Pack ``gates`` into arrays, or ``None`` outside the base set."""
        n = len(gates)
        ops = np.empty(n, dtype=np.int8)
        q0 = np.empty(n, dtype=np.int32)
        q1 = np.full(n, -1, dtype=np.int32)
        params = np.zeros(n, dtype=np.float64)
        for i, g in enumerate(gates):
            code = _BASE_OPS.get(g.name)
            if code is None:
                return None
            ops[i] = code
            qs = g.qubits
            if code == OP_CNOT:
                if len(qs) != 2:
                    return None
                q0[i] = qs[0]
                q1[i] = qs[1]
            else:
                if len(qs) != 1:
                    return None
                q0[i] = qs[0]
                if code == OP_RZ:
                    params[i] = g.param  # type: ignore[assignment]
        return VectorSegment(ops, q0, q1, params)

    @staticmethod
    def from_encoded(encoded: EncodedSegment) -> Optional["VectorSegment"]:
        """Build directly from the wire format, without ``Gate`` objects.

        Returns ``None`` when the segment contains names outside the
        base set (the caller falls back to the reference engine).
        """
        try:
            codes = [_BASE_OPS[name] for name in encoded.names]
        except KeyError:
            return None
        n = encoded.length
        lut = np.asarray(codes, dtype=np.int8)
        ops = lut[encoded.ops]
        arities = np.asarray(encoded.arities, dtype=np.int64)
        expected = np.where(ops == OP_CNOT, 2, 1)
        if not np.array_equal(arities, expected):
            return None
        starts = np.cumsum(arities) - arities
        qubits = np.asarray(encoded.qubits, dtype=np.int32)
        q0 = qubits[starts] if n else np.empty(0, dtype=np.int32)
        q1 = np.full(n, -1, dtype=np.int32)
        two = ops == OP_CNOT
        q1[two] = qubits[starts[two] + 1]
        params = np.zeros(n, dtype=np.float64)
        if n:
            mask = np.unpackbits(encoded.param_mask, count=n).astype(bool)
            if not np.array_equal(mask, ops == OP_RZ):
                return None  # a parameter pattern the base set cannot carry
            params[mask] = encoded.params
        return VectorSegment(ops, q0, q1, params)

    def to_gates(self) -> list[Gate]:
        """Unpack into a plain ``list[Gate]``.

        Gates are built through a validation-free fast path: every
        array cell is already a normalized, structurally valid gate (the
        passes only ever produce base-set gates with normalized angles),
        so re-running ``Gate.__post_init__`` per gate would only burn
        the time this engine exists to save.
        """
        ops = self.ops.tolist()
        q0 = self.q0.tolist()
        q1 = self.q1.tolist()
        params = self.params.tolist()
        new = object.__new__
        setattr_ = object.__setattr__
        out: list[Gate] = []
        append = out.append
        for i, code in enumerate(ops):
            g = new(Gate)
            if code == OP_CNOT:
                setattr_(g, "name", "cnot")
                setattr_(g, "qubits", (q0[i], q1[i]))
                setattr_(g, "param", None)
            elif code == OP_RZ:
                setattr_(g, "name", "rz")
                setattr_(g, "qubits", (q0[i],))
                setattr_(g, "param", params[i])
            else:
                setattr_(g, "name", _BASE_NAMES[code])
                setattr_(g, "qubits", (q0[i],))
                setattr_(g, "param", None)
            append(g)
        return out

    def to_encoded(self) -> EncodedSegment:
        """Flatten into the wire format (names in first-use order)."""
        n = len(self)
        ops64 = self.ops.astype(np.int64)
        codes, first = np.unique(ops64, return_index=True)
        used = codes[np.argsort(first)]
        remap = np.full(4, -1, dtype=np.int64)
        remap[used] = np.arange(used.size)
        two = self.ops == OP_CNOT
        counts = np.where(two, 2, 1)
        starts = np.cumsum(counts) - counts
        qubits = np.empty(int(counts.sum()) if n else 0, dtype=np.int32)
        qubits[starts] = self.q0
        qubits[starts[two] + 1] = self.q1[two]
        mask = self.ops == OP_RZ
        return EncodedSegment(
            names=tuple(_BASE_NAMES[int(c)] for c in used),
            ops=remap[ops64].astype(np.uint8),
            arities=counts.astype(np.uint8),
            qubits=qubits,
            param_mask=np.packbits(mask),
            params=self.params[mask].astype(np.float64),
            length=n,
        )

    def compact(self, alive: np.ndarray) -> "VectorSegment":
        """The sub-segment of gates where ``alive`` is True."""
        return VectorSegment(
            self.ops[alive], self.q0[alive], self.q1[alive], self.params[alive]
        )


#: A vectorized rewrite pass: ``(segment, occurrences?) -> (segment, changed)``.
VectorPassFn = Callable[..., tuple[VectorSegment, bool]]


@dataclass(frozen=True)
class Occurrences:
    """A segment's wire-occurrence structure, shared across passes.

    Every gate contributes one entry per wire it touches; entries are
    sorted by (wire, gate index), so each wire's subsequence is
    contiguous and ordered.

    Attributes
    ----------
    gate / wire:
        Entry arrays: the gate index and the wire of each occurrence.
    new_wire:
        Marks the first entry of each wire's subsequence.
    wire_seq:
        Inclusive prefix count of ``new_wire``; two entries lie on the
        same wire iff their counts agree (cheaper than comparing wires
        through a gather).
    pos_q0 / pos_q1:
        Each gate's entry position for its first / second wire (``-1``
        where absent).
    ops_at:
        ``segment.ops`` gathered per entry.
    """

    gate: np.ndarray
    wire: np.ndarray
    new_wire: np.ndarray
    wire_seq: np.ndarray
    pos_q0: np.ndarray
    pos_q1: np.ndarray
    ops_at: np.ndarray


def _occurrences(seg: VectorSegment) -> Occurrences:
    """Build the :class:`Occurrences` structure for ``seg``."""
    n = len(seg)
    cn = np.nonzero(seg.ops == OP_CNOT)[0]
    gate = np.concatenate([np.arange(n, dtype=np.int64), cn])
    wire = np.concatenate([seg.q0.astype(np.int64), seg.q1[cn].astype(np.int64)])
    # one int64 sort key instead of a two-pass lexsort: wires and gate
    # indices are int32-bounded, so (wire, gate) packs losslessly
    order = np.argsort((wire << 32) | gate)
    g = gate[order]
    w = wire[order]
    m = g.size
    new_wire = np.ones(m, dtype=bool)
    if m:
        new_wire[1:] = w[1:] != w[:-1]
    inv = np.empty(m, dtype=np.int64)
    inv[order] = np.arange(m)
    pos_q0 = inv[:n]
    pos_q1 = np.full(n, -1, dtype=np.int64)
    pos_q1[cn] = inv[n:]
    return Occurrences(
        gate=g,
        wire=w,
        new_wire=new_wire,
        wire_seq=np.cumsum(new_wire),
        pos_q0=pos_q0,
        pos_q1=pos_q1,
        ops_at=seg.ops[g],
    )


def _normalize_angles(theta: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.circuits.normalize_angle` on ``[0, inf)``."""
    theta = np.mod(theta, TWO_PI)
    theta[(theta < ANGLE_TOL) | (TWO_PI - theta < ANGLE_TOL)] = 0.0
    return theta


def _corridor_ids(blocker: np.ndarray) -> np.ndarray:
    """Exclusive prefix count of blockers over the occurrence list.

    Two same-wire entries carry the same id exactly when no blocker
    sits between them (wires are contiguous in the occurrence order, so
    a global prefix sum needs no per-wire reset).
    """
    ids = np.zeros(blocker.size, dtype=np.int64)
    if blocker.size > 1:
        np.cumsum(blocker[:-1], out=ids[1:])
    return ids


def vector_remove_identities(
    seg: VectorSegment, occ: Optional[Occurrences] = None
) -> tuple[VectorSegment, bool]:
    """Drop rz(0) identity rotations (vectorized)."""
    dead = (seg.ops == OP_RZ) & (seg.params == 0.0)
    if not dead.any():
        return seg, False
    return seg.compact(~dead), True


def _reduce_runs(
    mg: np.ndarray,
    run_key_same: np.ndarray,
    values: Optional[np.ndarray],
    alive: np.ndarray,
    params: np.ndarray,
) -> bool:
    """Reduce cancellation runs over the member gates ``mg``.

    ``run_key_same[k]`` says members ``k`` and ``k+1`` belong to one
    run.  Self-inverse members (``values is None``) reduce by parity,
    keeping the run's last copy when odd; RZ members (``values`` =
    their angles) merge into the run's last position with the
    normalized angle sum, vanishing when the sum is zero.  Returns
    whether any run had at least two members.
    """
    k = mg.size
    starts = np.empty(k, dtype=bool)
    starts[0] = True
    starts[1:] = ~run_key_same
    rid = np.cumsum(starts) - 1
    counts = np.bincount(rid)
    cnt = counts[rid]
    if int(cnt.max()) < 2:
        return False
    is_last = np.empty(k, dtype=bool)
    is_last[-1] = True
    is_last[:-1] = starts[1:]
    multi = cnt >= 2
    if values is None:
        kill = multi & ~(is_last & ((cnt & 1) == 1))
        alive[mg[kill]] = False
    else:
        sums = np.add.reduceat(values, np.nonzero(starts)[0])
        sums = _normalize_angles(sums)
        alive[mg[multi]] = False
        keep = multi & is_last & (sums[rid] != 0.0)
        kept = mg[keep]
        alive[kept] = True
        params[kept] = sums[rid[keep]]
    return True


def vector_cancellation_pass(
    seg: VectorSegment, occ: Optional[Occurrences] = None
) -> tuple[VectorSegment, bool]:
    """One vectorized sweep of cancellation and rotation merging.

    Mirrors :func:`repro.oracles.rule_engine.cancellation_pass` rule for
    rule — hh/xx/cnot·cnot parity cancellation and rz-run merging, each
    up to the same commutation relations — but reduces every provable
    run at once:

    * per wire and kind, occurrences are split into *corridors* by the
      gates the kind cannot commute past (see module docstring);
    * within a corridor, self-inverse gates cancel pairwise (parity
      keeps the last copy of an odd run) and RZ angles sum into the
      run's last position, exactly where the reference engine leaves
      its merged rotation;
    * CNOTs use two corridors at once — the control wire's RZ corridor
      and the target wire's X corridor — and cancel when both agree.

    Simultaneous application is sound because a reduced run's members
    only ever commute past corridor entries, and no rewrite moves a
    gate *into* a corridor it could not legally traverse (removing a
    corridor entry never invalidates a neighbouring rewrite).
    """
    seg, changed = vector_remove_identities(seg)
    n = len(seg)
    if n == 0:
        return seg, changed
    if occ is None or changed:
        occ = _occurrences(seg)

    g = occ.gate
    w = occ.wire
    ops_at = occ.ops_at
    wire_seq = occ.wire_seq
    is_cnot_at = ops_at == OP_CNOT
    ctrl_here = is_cnot_at & (seg.q0[g] == w)  # entry is a CNOT control on w
    tgt_here = is_cnot_at ^ ctrl_here  # ... else it is the target on w
    gid_rz = _corridor_ids(~((ops_at == OP_RZ) | ctrl_here))
    gid_x = _corridor_ids(~((ops_at == OP_X) | tgt_here))

    alive = np.ones(n, dtype=bool)
    params = seg.params.copy()

    # H corridors admit nothing, so H runs are plain same-wire adjacency:
    # consecutive occurrence entries that are both H.
    ps = np.nonzero(ops_at == OP_H)[0]
    if ps.size >= 2:
        same = (ps[1:] == ps[:-1] + 1) & (wire_seq[ps[1:]] == wire_seq[ps[:-1]])
        if same.any():
            changed |= _reduce_runs(g[ps], same, None, alive, params)

    for op_code, gid in ((OP_X, gid_x), (OP_RZ, gid_rz)):
        ps = np.nonzero(ops_at == op_code)[0]
        if ps.size < 2:
            continue
        mgid = gid[ps]
        mws = wire_seq[ps]
        same = (mgid[1:] == mgid[:-1]) & (mws[1:] == mws[:-1])
        if not same.any():  # no two same-kind gates share a corridor
            continue
        mg = g[ps]
        values = params[mg] if op_code == OP_RZ else None
        changed |= _reduce_runs(mg, same, values, alive, params)

    # -- CNOT·CNOT cancellation up to commutation --------------------------
    cn = np.nonzero(seg.ops == OP_CNOT)[0]
    if cn.size >= 2:
        # cheap gate: a cancellable pair needs two CNOTs with the same
        # (control, target) at all; only then pay the corridor grouping
        ct = (seg.q0[cn].astype(np.int64) << 32) | seg.q1[cn]
        ct_sorted = np.sort(ct)
        if (ct_sorted[1:] == ct_sorted[:-1]).any():
            key_c = gid_rz[occ.pos_q0[cn]]  # control-wire corridor id
            key_t = gid_x[occ.pos_q1[cn]]  # target-wire corridor id
            order = np.lexsort((cn, key_t, key_c, ct))
            sc = cn[order]
            kc = key_c[order]
            kt = key_t[order]
            cts = ct[order]
            same = (
                (cts[1:] == cts[:-1])
                & (kc[1:] == kc[:-1])
                & (kt[1:] == kt[:-1])
            )
            if same.any():
                changed |= _reduce_runs(sc, same, None, alive, params)

    if not alive.all():
        out = VectorSegment(seg.ops, seg.q0, seg.q1, params).compact(alive)
        return out, True
    return seg, changed


def vector_hadamard_reduction_pass(
    seg: VectorSegment, occ: Optional[Occurrences] = None
) -> tuple[VectorSegment, bool]:
    """Vectorized per-wire ``H X H -> RZ(pi)`` / ``H RZ(pi) H -> X``.

    Triples are consecutive occurrences on one wire (everything between
    touches other wires only), detected with three shifted comparisons
    over the occurrence arrays; overlapping candidates are resolved
    greedily left to right, as the reference engine's sweep does.
    """
    n = len(seg)
    if n < 3 or int(np.count_nonzero(seg.ops == OP_H)) < 2:
        return seg, False
    if occ is None:
        occ = _occurrences(seg)
    g = occ.gate
    new_wire = occ.new_wire
    ops_at = occ.ops_at
    m = g.size
    if m < 3:
        return seg, False
    same_wire = ~new_wire[1:-1] & ~new_wire[2:]
    mid = ops_at[1:-1]
    mid_x = mid == OP_X
    mid_z = (mid == OP_RZ) & (np.abs(seg.params[g[1:-1]] - _PI) < _S_TOL)
    cand = np.nonzero(
        same_wire & (ops_at[:-2] == OP_H) & (ops_at[2:] == OP_H) & (mid_x | mid_z)
    )[0]
    if cand.size == 0:
        return seg, False
    ops = seg.ops.copy()
    params = seg.params.copy()
    alive = np.ones(n, dtype=bool)
    used = np.zeros(n, dtype=bool)
    changed = False
    order = np.argsort(g[cand], kind="stable")
    for p0 in cand[order]:
        ia, ib, ic = int(g[p0]), int(g[p0 + 1]), int(g[p0 + 2])
        if used[ia] or used[ib] or used[ic]:
            continue
        if ops[ib] == OP_X:
            ops[ia] = OP_RZ
            params[ia] = _PI
        else:
            ops[ia] = OP_X
            params[ia] = 0.0
        alive[ib] = False
        alive[ic] = False
        used[ia] = used[ib] = used[ic] = True
        changed = True
    if not changed:
        return seg, False
    out = VectorSegment(ops, seg.q0, seg.q1, params).compact(alive)
    return out, True


def vector_hadamard_gadget_pass(
    seg: VectorSegment, occ: Optional[Occurrences] = None
) -> tuple[VectorSegment, bool]:
    """Vectorized Nam Hadamard gadgets (the four rules of
    :func:`repro.oracles.hadamard_gadgets.hadamard_gadget_pass`).

    Candidates for all four rules are detected with shifted comparisons
    over the wire-occurrence arrays, then applied greedily in initiator
    order with a shared used-gate mask so no two rewrites touch the
    same gate in one sweep.  Every application strictly reduces the
    Hadamard count, the same termination measure as the reference pass.
    """
    n = len(seg)
    if n < 3 or int(np.count_nonzero(seg.ops == OP_H)) < 2:
        return seg, False
    if occ is None:
        occ = _occurrences(seg)
    g = occ.gate
    w = occ.wire
    new_wire = occ.new_wire
    ops_at = occ.ops_at
    m = g.size
    is_h = ops_at == OP_H
    is_rz = ops_at == OP_RZ
    if is_rz.any():
        par_at = seg.params[g]
        s_at = is_rz & (np.abs(par_at - _HALF_PI) < _S_TOL)
        sdg_at = is_rz & (np.abs(par_at - _NEG_HALF_PI) < _S_TOL)
        has_s_like = bool(s_at.any()) or bool(sdg_at.any())
    else:
        s_at = sdg_at = is_rz
        has_s_like = False

    # candidates: (initiator gate index, priority, payload)
    cands: list[tuple[int, int, tuple]] = []

    # -- rule 4: H(a) H(b) CNOT(a,b) H(a) H(b) -> CNOT(b,a) ---------------
    cn = np.nonzero(seg.ops == OP_CNOT)[0]
    if cn.size and int(np.count_nonzero(is_h)) >= 4:
        # sentinel-padded views: index m reads as "wire boundary / not H"
        nw_pad = np.append(new_wire, True)
        h_pad = np.append(is_h, False)
        pa = occ.pos_q0[cn]
        pb = occ.pos_q1[cn]
        # a previous same-wire entry exists iff the position is not a
        # wire start; then pa-1 is safely in range (negative indexing
        # cannot trigger because ~new_wire[pa] implies pa >= 1)
        ok = (
            ~new_wire[pa]
            & ~new_wire[pb]
            & ~nw_pad[pa + 1]
            & ~nw_pad[pb + 1]
            & is_h[pa - 1]
            & is_h[pb - 1]
            & h_pad[pa + 1]
            & h_pad[pb + 1]
        )
        for idx in np.nonzero(ok)[0]:
            j = int(cn[idx])
            ga, gb = int(g[pa[idx] - 1]), int(g[pb[idx] - 1])
            na, nb = int(g[pa[idx] + 1]), int(g[pb[idx] + 1])
            cands.append((min(ga, gb), 0, ("r4", j, ga, gb, na, nb)))

    # -- rule 3: H (S|Sdg) CNOT(*,q) (Sdg|S) H, consecutive on wire q -----
    if has_s_like and m >= 5:
        same = (
            ~new_wire[1:-3]
            & ~new_wire[2:-2]
            & ~new_wire[3:-1]
            & ~new_wire[4:]
        )
        mid_s = s_at[1:-3]
        mid_sdg = sdg_at[1:-3]
        cnot_tgt = (ops_at[2:-2] == OP_CNOT) & (seg.q1[g[2:-2]] == w[2:-2])
        d_ok = np.where(mid_s, sdg_at[3:-1], s_at[3:-1])
        ok = same & is_h[:-4] & (mid_s | mid_sdg) & cnot_tgt & d_ok & is_h[4:]
        for p0 in np.nonzero(ok)[0]:
            gates5 = tuple(int(g[p0 + k]) for k in range(5))
            cands.append((gates5[0], 1, ("r3", bool(mid_s[p0]), gates5)))

    # -- rules 1-2: H (S|Sdg) H -> (Sdg H Sdg | S H S), consecutive -------
    if has_s_like and m >= 3:
        same = ~new_wire[1:-1] & ~new_wire[2:]
        mid = s_at[1:-1] | sdg_at[1:-1]
        ok = same & is_h[:-2] & mid & is_h[2:]
        for p0 in np.nonzero(ok)[0]:
            gates3 = tuple(int(g[p0 + k]) for k in range(3))
            cands.append((gates3[0], 2, ("r12", bool(s_at[p0 + 1]), gates3)))

    if not cands:
        return seg, False

    ops = seg.ops.copy()
    q0 = seg.q0.copy()
    q1 = seg.q1.copy()
    params = seg.params.copy()
    alive = np.ones(n, dtype=bool)
    used = np.zeros(n, dtype=bool)
    changed = False
    for _, _, payload in sorted(cands, key=lambda c: (c[0], c[1])):
        kind = payload[0]
        if kind == "r4":
            _, j, ga, gb, na, nb = payload
            group = (j, ga, gb, na, nb)
            if any(used[x] for x in group):
                continue
            q0[j], q1[j] = q1[j], q0[j]
            for x in (ga, gb, na, nb):
                alive[x] = False
            for x in group:
                used[x] = True
            changed = True
        elif kind == "r3":
            _, mid_is_s, gates5 = payload
            if any(used[x] for x in gates5):
                continue
            i, jg, _, mg, pg = gates5
            ops[i] = OP_RZ
            params[i] = _NEG_HALF_PI if mid_is_s else _HALF_PI
            alive[jg] = False
            ops[mg] = OP_RZ
            params[mg] = _HALF_PI if mid_is_s else _NEG_HALF_PI
            alive[pg] = False
            for x in gates5:
                used[x] = True
            changed = True
        else:  # r12
            _, mid_is_s, gates3 = payload
            if any(used[x] for x in gates3):
                continue
            i, jg, kg = gates3
            flip = _NEG_HALF_PI if mid_is_s else _HALF_PI
            ops[i] = OP_RZ
            params[i] = flip
            ops[jg] = OP_H
            params[jg] = 0.0
            ops[kg] = OP_RZ
            params[kg] = flip
            for x in gates3:
                used[x] = True
            changed = True
    if not changed:
        return seg, False
    out = VectorSegment(ops, q0, q1, params).compact(alive)
    return out, True


def vector_rotation_merge_pass(
    seg: VectorSegment, occ: Optional[Occurrences] = None
) -> tuple[VectorSegment, bool]:
    """Phase-polynomial rotation merging on the packed arrays.

    Same algorithm (and identical output) as
    :func:`repro.oracles.rotation_merge.rotation_merge_pass` — the pass
    is a single ordered scan over affine wire labels and cannot be
    collapsed into whole-array kernels — but it runs on plain integer
    lists extracted from the arrays, with no ``Gate`` allocation.
    """
    from ..circuits import is_zero_angle, normalize_angle

    n = len(seg)
    if n == 0 or not np.count_nonzero(seg.ops == OP_RZ):
        return seg, False
    ops = seg.ops.tolist()
    q0 = seg.q0.tolist()
    q1 = seg.q1.tolist()
    params = seg.params.tolist()

    next_var = 0
    label_mask: dict[int, int] = {}
    label_const: dict[int, int] = {}
    pending: dict[int, tuple[int, int]] = {}
    accum: dict[int, float] = {}
    dead: list[int] = []

    for i in range(n):
        op = ops[i]
        if op == OP_CNOT:
            c, t = q0[i], q1[i]
            for q in (c, t):
                if q not in label_mask:
                    label_mask[q] = 1 << next_var
                    label_const[q] = 0
                    next_var += 1
            label_mask[t] ^= label_mask[c]
            label_const[t] ^= label_const[c]
        elif op == OP_X:
            q = q0[i]
            if q not in label_mask:
                label_mask[q] = 1 << next_var
                label_const[q] = 0
                next_var += 1
            label_const[q] ^= 1
        elif op == OP_RZ:
            q = q0[i]
            if q not in label_mask:
                label_mask[q] = 1 << next_var
                label_const[q] = 0
                next_var += 1
            mask = label_mask[q]
            entry = pending.get(mask)
            if entry is None:
                pending[mask] = (i, label_const[q])
                accum[i] = params[i]
            else:
                rep, rep_const = entry
                delta = params[i] if label_const[q] == rep_const else -params[i]
                accum[rep] = normalize_angle(accum[rep] + delta)
                dead.append(i)
        else:  # Hadamard: the wire leaves the region
            q = q0[i]
            label_mask[q] = 1 << next_var
            label_const[q] = 0
            next_var += 1

    changed = bool(dead)
    alive = np.ones(n, dtype=bool)
    new_params = seg.params.copy()
    for i in dead:
        alive[i] = False
    for rep, theta in accum.items():
        if is_zero_angle(theta):
            if alive[rep]:
                alive[rep] = False
                changed = True
        elif theta != params[rep]:
            new_params[rep] = theta
            changed = True
    if not changed:
        return seg, False
    out = VectorSegment(seg.ops, seg.q0, seg.q1, new_params).compact(alive)
    return out, True


def vector_cnot_chain_pass(
    seg: VectorSegment, occ: Optional[Occurrences] = None
) -> tuple[VectorSegment, bool]:
    """Shared-wire CNOT chain reduction (3 CNOTs -> 2) on the arrays.

    The pattern and the one-rewrite-per-scan restart discipline match
    :func:`repro.oracles.rule_engine.cnot_chain_pass`; candidate ``a; b``
    prefixes are detected with whole-array successor lookups, so a scan
    that finds nothing — the overwhelmingly common case — costs a
    handful of vector ops instead of a wire-threaded walk per gate.
    """
    changed = False
    while True:
        applied = _cnot_chain_once(seg, occ)
        occ = None  # the rewrite invalidates the caller's structure
        if applied is None:
            return seg, changed
        seg = applied
        changed = True


def _cnot_chain_once(
    seg: VectorSegment, occ: Optional[Occurrences]
) -> Optional[VectorSegment]:
    n = len(seg)
    cn = np.nonzero(seg.ops == OP_CNOT)[0]
    if cn.size < 3:
        return None
    if occ is None:
        occ = _occurrences(seg)
    g = occ.gate
    m = g.size
    # successor gate on the same wire, per occurrence (n as sentinel)
    succ = np.full(m, n, dtype=np.int64)
    if m > 1:
        keep = ~occ.new_wire[1:]
        succ[:-1][keep] = g[1:][keep]
    # j = first later gate touching either of the cnot's wires
    j_all = np.minimum(succ[occ.pos_q0[cn]], succ[occ.pos_q1[cn]])
    valid = j_all < n
    if not valid.any():
        return None
    jv = j_all[valid]
    b_is_cnot = seg.ops[jv] == OP_CNOT
    ai = cn[valid]
    p = seg.q0[ai]
    q = seg.q1[ai]
    bc = seg.q0[jv]
    bt = seg.q1[jv]
    config = b_is_cnot & (
        ((bc == q) & (bt != p)) | ((bt == p) & (bc != q))
    )
    cand = np.nonzero(config)[0]
    if cand.size == 0:
        return None
    # verify the closing `c == a` gate per candidate (few of them)
    by_wire: dict[int, np.ndarray] = {}
    starts = np.nonzero(occ.new_wire)[0]
    ends = np.append(starts[1:], m)
    for s, e in zip(starts, ends):
        by_wire[int(occ.wire[s])] = g[s:e]

    def next_on(wire: int, after: int) -> int:
        lst = by_wire.get(wire)
        if lst is None:
            return n
        k = int(np.searchsorted(lst, after, side="right"))
        return int(lst[k]) if k < lst.size else n

    ops = seg.ops
    q0 = seg.q0
    q1 = seg.q1
    for t in cand:
        i = int(ai[t])
        j = int(jv[t])
        pp, qq = int(p[t]), int(q[t])
        bcc, btt = int(bc[t]), int(bt[t])
        union = {pp, qq, bcc, btt}
        k = min(next_on(wq, j) for wq in union)
        if k >= n or ops[k] != OP_CNOT or int(q0[k]) != pp or int(q1[k]) != qq:
            continue
        if bcc == qq:
            first, second = (qq, btt), (pp, btt)
        else:
            first, second = (bcc, pp), (bcc, qq)
        new_q0 = q0.copy()
        new_q1 = q1.copy()
        new_q0[j], new_q1[j] = first
        new_q0[k], new_q1[k] = second
        alive = np.ones(n, dtype=bool)
        alive[i] = False
        return VectorSegment(ops, new_q0, new_q1, seg.params).compact(alive)
    return None


#: Vectorized implementations, keyed like ``repro.oracles.nam._PASS_TABLE``.
VECTOR_PASS_TABLE: dict[str, VectorPassFn] = {
    "remove_identities": vector_remove_identities,
    "cancellation": vector_cancellation_pass,
    "hadamard_reduction": vector_hadamard_reduction_pass,
    "hadamard_gadgets": vector_hadamard_gadget_pass,
    "rotation_merge": vector_rotation_merge_pass,
    "cnot_chain": vector_cnot_chain_pass,
}


def vector_pass_for(name: str, gate_pass) -> VectorPassFn:
    """The vectorized pass for ``name``, or a gate-list fallback.

    Passes without an array implementation (currently only
    ``resynthesis``) run through ``Gate`` objects; they must stay inside
    the base set, which every bundled pass does.
    """
    impl = VECTOR_PASS_TABLE.get(name)
    if impl is not None:
        return impl

    def fallback(
        seg: VectorSegment, occ: Optional[Occurrences] = None
    ) -> tuple[VectorSegment, bool]:
        gates, changed = gate_pass(seg.to_gates())
        out = VectorSegment.from_gates(gates)
        if out is None:  # pragma: no cover - bundled passes stay in-set
            raise RuntimeError(f"pass {name!r} left the base gate set")
        return out, changed

    return fallback
