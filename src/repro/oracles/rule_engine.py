"""Nam-style rewrite engine on gate lists.

Implements the optimization routines of Nam et al. (2018) — the rule set
VOQC verifies — specialized to the {H, X, CNOT, RZ} set:

* :func:`cancellation_pass` — gate cancellation and rotation merging
  with commutation scans: each gate walks rightward past commuting gates
  looking for a partner it cancels or merges with.
* :func:`hadamard_reduction_pass` — per-wire ``H X H -> RZ(pi)`` and
  ``H RZ(pi) H -> X`` triples (three gates become one).
* :func:`cnot_chain_pass` — shared-wire CNOT chain reductions
  (``CNOT(p,q) CNOT(q,r) CNOT(p,q) -> CNOT(q,r) CNOT(p,r)``).
* :func:`repro.oracles.rotation_merge.rotation_merge_pass` — phase
  polynomial rotation merging (separate module).

Every pass takes and returns a plain ``list[Gate]`` and reports whether
it changed anything, so passes compose into pipelines and fixpoints
(see :mod:`repro.oracles.nam`).  All passes preserve the segment's
unitary up to global phase (property-tested against the simulator).

The scans are *wire-threaded*: each gate only visits later gates that
share a qubit with it (gates on disjoint wires commute trivially, so
skipping them never changes the outcome, only the constant factor).
Worst-case cost remains O(L^2) in the segment length L, the bound Nam
et al. give; POPQC feeds 2Ω-length segments here, so L is a few
hundred gates, while the whole-circuit baseline pays the same scans at
full circuit length.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..circuits import Gate, normalize_angle
from .commutation import commutes
from .rules import hadamard_triple, try_merge

__all__ = [
    "cancellation_pass",
    "hadamard_reduction_pass",
    "cnot_chain_pass",
    "remove_identities",
    "WireIndex",
]


def remove_identities(gates: list[Gate]) -> tuple[list[Gate], bool]:
    """Drop rz(0) identity rotations."""
    out = [g for g in gates if not g.is_identity]
    return out, len(out) != len(gates)


class WireIndex:
    """Per-wire occurrence lists for wire-threaded forward scans.

    For each qubit, the (static) ordered list of gate indices touching
    it, plus each gate's position within its wires' lists.  Tombstoned
    entries are skipped at scan time, so passes can delete/replace gates
    without rebuilding the index (replacements must keep the original
    gate's qubits, which all our pair rules do).
    """

    __slots__ = ("wires", "pos")

    def __init__(self, gates: Sequence[Gate]):
        wires: dict[int, list[int]] = {}
        pos: dict[tuple[int, int], int] = {}
        for i, g in enumerate(gates):
            for q in g.qubits:
                lst = wires.setdefault(q, [])
                pos[(q, i)] = len(lst)
                lst.append(i)
        self.wires = wires
        self.pos = pos

    def successors(self, arr: list[Optional[Gate]], i: int, qubits: tuple[int, ...]):
        """Yield indices of live gates after ``i`` touching any of
        ``qubits``, in global order, until the caller stops iterating."""
        ptrs = {q: self.pos[(q, i)] + 1 if (q, i) in self.pos else 0 for q in qubits}
        # For wires the start gate does not touch, begin after index i.
        for q in qubits:
            if (q, i) not in self.pos:
                lst = self.wires.get(q, [])
                lo, hi = 0, len(lst)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if lst[mid] <= i:
                        lo = mid + 1
                    else:
                        hi = mid
                ptrs[q] = lo
        while True:
            j: Optional[int] = None
            for q in qubits:
                lst = self.wires.get(q, [])
                p = ptrs[q]
                while p < len(lst) and arr[lst[p]] is None:
                    p += 1
                ptrs[q] = p
                if p < len(lst):
                    cand = lst[p]
                    if j is None or cand < j:
                        j = cand
            if j is None:
                return
            yield j
            for q in qubits:
                lst = self.wires.get(q, [])
                p = ptrs[q]
                if p < len(lst) and lst[p] == j:
                    ptrs[q] = p + 1


def cancellation_pass(gates: list[Gate]) -> tuple[list[Gate], bool]:
    """One sweep of cancellation/merging with commutation scans.

    For each live gate ``g`` (left to right), walk the later gates that
    overlap ``g``'s wires: skip those that commute with ``g``; on
    meeting a gate ``h`` that ``g`` merges with, apply the pair rule
    (cancel both, or write the merged rotation at ``h``'s position so it
    stays behind everything ``g`` commuted past); on meeting a blocking
    gate, stop and move on.

    The single- and two-qubit walks are hand-inlined versions of
    :func:`repro.oracles.commutation.commutes` restricted to overlapping
    pairs plus :func:`repro.oracles.rules.try_merge` — this function is
    the oracle's hot loop and runs millions of times per optimization.
    Semantic equivalence with the generic predicates is pinned by
    ``tests/oracles/test_rule_engine.py``.
    """
    arr: list[Optional[Gate]] = list(gates)
    n = len(arr)
    changed = False
    # Per-wire occurrence lists + each gate's position in its wires' lists.
    wires: dict[int, list[int]] = {}
    pos: dict[tuple[int, int], int] = {}
    for i, g in enumerate(gates):
        for q in g.qubits:
            lst = wires.setdefault(q, [])
            pos[(q, i)] = len(lst)
            lst.append(i)

    for i in range(n):
        g = arr[i]
        if g is None:
            continue
        gname = g.name
        if gname == "rz" and g.param == 0.0:
            arr[i] = None
            changed = True
            continue
        if gname != "cnot":
            # --- single-qubit walk along the gate's wire -----------------
            q = g.qubits[0]
            lst = wires[q]
            p = pos[(q, i)] + 1
            length = len(lst)
            while p < length:
                j = lst[p]
                h = arr[j]
                if h is None:
                    p += 1
                    continue
                hname = h.name
                if hname == gname and h.qubits == g.qubits:
                    # mergeable pair (hh/xx cancel, rz+rz merge)
                    if gname == "rz":
                        theta = normalize_angle(g.param + h.param)  # type: ignore[operator]
                        arr[j] = None if theta == 0.0 else Gate("rz", h.qubits, theta)
                    else:
                        arr[j] = None
                    arr[i] = None
                    changed = True
                    break
                if hname == "cnot":
                    hq = h.qubits
                    if (gname == "rz" and q == hq[0]) or (
                        gname == "x" and q == hq[1]
                    ):
                        p += 1
                        continue
                    break
                break  # overlapping 1q gate of a different kind blocks
        else:
            # --- two-qubit walk merging both wires' lists -----------------
            c0, t0 = g.qubits
            lst_c = wires[c0]
            lst_t = wires[t0]
            pc = pos[(c0, i)] + 1
            pt = pos[(t0, i)] + 1
            len_c = len(lst_c)
            len_t = len(lst_t)
            while True:
                while pc < len_c and arr[lst_c[pc]] is None:
                    pc += 1
                while pt < len_t and arr[lst_t[pt]] is None:
                    pt += 1
                if pc < len_c:
                    j = lst_c[pc] if pt >= len_t or lst_c[pc] <= lst_t[pt] else lst_t[pt]
                elif pt < len_t:
                    j = lst_t[pt]
                else:
                    break
                h = arr[j]
                assert h is not None
                if h.name == "cnot":
                    hc, ht = h.qubits
                    if hc == c0 and ht == t0:
                        arr[i] = None
                        arr[j] = None
                        changed = True
                        break
                    if hc == t0 or ht == c0:
                        break  # control/target collision blocks
                    # shares only a control and/or only a target: commutes
                else:
                    hq = h.qubits[0]
                    if not (
                        (h.name == "rz" and hq == c0)
                        or (h.name == "x" and hq == t0)
                    ):
                        break
                if pc < len_c and lst_c[pc] == j:
                    pc += 1
                if pt < len_t and lst_t[pt] == j:
                    pt += 1
    out = [g for g in arr if g is not None]
    return out, changed


def hadamard_reduction_pass(gates: list[Gate]) -> tuple[list[Gate], bool]:
    """Rewrite per-wire-adjacent H·(X|RZ(pi))·H triples to a single gate.

    Adjacency is per wire: the three gates are single-qubit gates on the
    same qubit and no gate in between touches that qubit, so everything
    in between commutes with the whole triple and the replacement can be
    written at the first gate's position.
    """
    arr: list[Optional[Gate]] = list(gates)
    index = WireIndex(gates)
    changed = False
    for i in range(len(arr)):
        a = arr[i]
        if a is None or a.name != "h":
            continue
        q = a.qubits[0]
        j = _next_live(index, arr, i, (q,))
        if j is None:
            continue
        b = arr[j]
        assert b is not None
        if b.arity != 1:
            continue
        k = _next_live(index, arr, j, (q,))
        if k is None:
            continue
        c = arr[k]
        assert c is not None
        replacement = hadamard_triple(a, b, c)
        if replacement is None:
            continue
        arr[i] = replacement[0]
        arr[j] = None
        arr[k] = None
        changed = True
    out = [g for g in arr if g is not None]
    return out, changed


def cnot_chain_pass(gates: list[Gate]) -> tuple[list[Gate], bool]:
    """Shared-wire CNOT chain reduction (3 CNOTs -> 2).

    Pattern: ``a = CNOT(p,q)``, then (past gates disjoint from {p,q}) a
    middle CNOT ``b`` sharing exactly one wire with ``a`` in the
    control-of-one-is-target-of-the-other configuration, then (past
    gates disjoint from {p,q,r}) ``c == a``.  The two replacement CNOTs
    are written at ``b``'s and ``c``'s positions, which is sound because
    ``a`` commutes past everything before ``b``.
    """
    current = list(gates)
    changed = False
    # The replacement written at position k changes that gate's qubit
    # set, which would stale a static wire index; apply one rewrite per
    # scan and restart (chain rewrites are rare, so the restarts are
    # cheap in practice).
    while True:
        applied = _cnot_chain_once(current)
        if applied is None:
            return current, changed
        current = applied
        changed = True


def _cnot_chain_once(gates: list[Gate]) -> Optional[list[Gate]]:
    """Apply the first applicable chain rewrite, or None if none fits."""
    arr: list[Optional[Gate]] = list(gates)
    index = WireIndex(gates)
    for i in range(len(arr)):
        a = arr[i]
        if a is None or a.name != "cnot":
            continue
        p, q = a.qubits
        j = _next_live(index, arr, i, (p, q))
        if j is None:
            continue
        b = arr[j]
        assert b is not None
        if b.name != "cnot":
            continue
        bc, bt = b.qubits
        if not ((bc == q and bt != p) or (bt == p and bc != q)):
            continue
        union = tuple({p, q, bc, bt})
        k = _next_live(index, arr, j, union)
        if k is None:
            continue
        c = arr[k]
        assert c is not None
        if c.name != "cnot" or c.qubits != a.qubits:
            continue
        if bc == q:
            first, second = Gate("cnot", (q, bt)), Gate("cnot", (p, bt))
        else:
            first, second = Gate("cnot", (bc, p)), Gate("cnot", (bc, q))
        arr[i] = None
        arr[j] = first
        arr[k] = second
        return [g for g in arr if g is not None]
    return None


def _next_live(
    index: WireIndex,
    arr: list[Optional[Gate]],
    start: int,
    qubits: tuple[int, ...],
) -> Optional[int]:
    """Index of the first live gate after ``start`` touching ``qubits``."""
    for j in index.successors(arr, start, qubits):
        return j
    return None
