"""Oracle optimizers: rule-based (VOQC role) and search-based (Quartz role)."""

from .base import ComposedOracle, IdentityOracle, Oracle, check_well_behaved
from .commutation import commutes, commutes_through
from .cost import DepthCost, FidelityCost, GateCount, MixedCost, TwoQubitCount
from .hadamard_gadgets import hadamard_gadget_pass
from .nam import BASELINE_PASSES, DEFAULT_PASSES, EXTENDED_PASSES, NamOracle
from .resynth import resynthesis_pass, synthesize_1q
from .rotation_merge import rotation_merge_pass
from .rule_engine import (
    cancellation_pass,
    cnot_chain_pass,
    hadamard_reduction_pass,
    remove_identities,
)
from .rules import cnot_chain_triple, hadamard_triple, try_merge
from .search import SearchOracle
from .vector_engine import (
    VECTOR_PASS_TABLE,
    VectorSegment,
    vector_cancellation_pass,
    vector_cnot_chain_pass,
    vector_hadamard_gadget_pass,
    vector_hadamard_reduction_pass,
    vector_remove_identities,
    vector_rotation_merge_pass,
)

__all__ = [
    "ComposedOracle",
    "BASELINE_PASSES",
    "DEFAULT_PASSES",
    "EXTENDED_PASSES",
    "DepthCost",
    "FidelityCost",
    "GateCount",
    "IdentityOracle",
    "MixedCost",
    "NamOracle",
    "Oracle",
    "SearchOracle",
    "TwoQubitCount",
    "VECTOR_PASS_TABLE",
    "VectorSegment",
    "cancellation_pass",
    "check_well_behaved",
    "cnot_chain_pass",
    "cnot_chain_triple",
    "commutes",
    "commutes_through",
    "hadamard_gadget_pass",
    "hadamard_reduction_pass",
    "hadamard_triple",
    "remove_identities",
    "resynthesis_pass",
    "rotation_merge_pass",
    "synthesize_1q",
    "try_merge",
    "vector_cancellation_pass",
    "vector_cnot_chain_pass",
    "vector_hadamard_gadget_pass",
    "vector_hadamard_reduction_pass",
    "vector_remove_identities",
    "vector_rotation_merge_pass",
]
