"""Search-based oracle — this reproduction's Quartz stand-in.

Quartz (Xu et al. 2022) searches over rewrite-rule applications, guided
by a customizable cost function, accepting intermediate states that do
not immediately reduce cost.  :class:`SearchOracle` reproduces that
behaviour at segment scale with a bounded beam search:

* candidate moves: every pair cancellation/merge reachable through
  commutation, every Hadamard-triple rewrite, every CNOT-chain rewrite
  and — crucially for depth optimization — adjacent transpositions of
  commuting gate pairs, which are cost-neutral in gate count but change
  the layering.
* the beam keeps the ``beam_width`` lowest-cost states each step, up to
  ``max_steps`` steps or ``node_budget`` expansions.

The oracle is deterministic (ties broken by insertion order) and always
returns a result no worse than running :class:`~repro.oracles.nam.NamOracle`
to fixpoint, because that fixpoint seeds the search.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..circuits import Gate
from .commutation import commutes
from .cost import GateCount
from .nam import NamOracle
from .rules import hadamard_triple, try_merge

__all__ = ["SearchOracle"]


def _neighbors(gates: tuple[Gate, ...]) -> Iterator[tuple[Gate, ...]]:
    """All states one rewrite away from ``gates``."""
    n = len(gates)
    # Pair merges through commutation.
    for i in range(n):
        g = gates[i]
        for j in range(i + 1, n):
            h = gates[j]
            merged = try_merge(g, h)
            if merged is not None:
                mid = gates[i + 1 : j]
                yield gates[:i] + mid + tuple(merged) + gates[j + 1 :]
                break
            if not commutes(g, h):
                break
    # Hadamard triples at per-wire adjacency.
    for i in range(n):
        a = gates[i]
        if a.name != "h":
            continue
        q = a.qubits[0]
        j = next((k for k in range(i + 1, n) if gates[k].touches(q)), None)
        if j is None:
            continue
        k = next((m for m in range(j + 1, n) if gates[m].touches(q)), None)
        if k is None:
            continue
        rep = hadamard_triple(a, gates[j], gates[k])
        if rep is not None:
            yield (
                gates[:i]
                + tuple(rep)
                + gates[i + 1 : j]
                + gates[j + 1 : k]
                + gates[k + 1 :]
            )
    # Commuting adjacent transpositions (cost-neutral in count, change depth).
    for i in range(n - 1):
        g, h = gates[i], gates[i + 1]
        if g.overlaps(h) and commutes(g, h):
            yield gates[:i] + (h, g) + gates[i + 2 :]


class SearchOracle:
    """Beam search over rewrite rules with a pluggable cost function.

    Parameters
    ----------
    cost:
        Objective to minimize; defaults to gate count.  The depth-aware
        experiment passes ``MixedCost(10)``.
    beam_width:
        States kept per search step.
    max_steps:
        Search depth.
    node_budget:
        Hard cap on total expanded states, bounding worst-case time.
    seed_with_nam:
        Run the rule-based fixpoint first and include it in the initial
        beam (recommended; makes the oracle well-behaved for the
        gate-count objective).
    """

    def __init__(
        self,
        cost=None,
        *,
        beam_width: int = 8,
        max_steps: int = 4,
        node_budget: int = 2000,
        seed_with_nam: bool = True,
    ):
        self.cost = cost if cost is not None else GateCount()
        self.beam_width = beam_width
        self.max_steps = max_steps
        self.node_budget = node_budget
        self.seed_with_nam = seed_with_nam
        self._nam: Optional[NamOracle] = NamOracle() if seed_with_nam else None

    def __call__(self, gates: Sequence[Gate]) -> list[Gate]:
        start = tuple(gates)
        best = start
        best_cost = self.cost(list(start))
        beam: list[tuple[Gate, ...]] = [start]
        if self._nam is not None:
            seeded = tuple(self._nam(list(start)))
            c = self.cost(list(seeded))
            if c < best_cost:
                best, best_cost = seeded, c
            if seeded != start:
                beam.append(seeded)

        seen: set[tuple[Gate, ...]] = set(beam)
        expanded = 0
        for _ in range(self.max_steps):
            candidates: list[tuple[float, int, tuple[Gate, ...]]] = []
            order = 0
            for state in beam:
                for nxt in _neighbors(state):
                    expanded += 1
                    if nxt in seen:
                        continue
                    seen.add(nxt)
                    c = self.cost(list(nxt))
                    candidates.append((c, order, nxt))
                    order += 1
                    if c < best_cost:
                        best, best_cost = nxt, c
                    if expanded >= self.node_budget:
                        break
                if expanded >= self.node_budget:
                    break
            if not candidates or expanded >= self.node_budget:
                break
            candidates.sort(key=lambda t: (t[0], t[1]))
            beam = [state for _, _, state in candidates[: self.beam_width]]
        return list(best)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SearchOracle(cost={self.cost!r}, beam_width={self.beam_width}, "
            f"max_steps={self.max_steps})"
        )
