"""Cost functions for optimization objectives (paper Sections 2.3, 7.8).

A cost function maps a gate sequence to a number; optimizers accept a
rewrite only when it strictly decreases the cost.  ``GateCount`` is the
paper's primary metric; ``MixedCost`` is the depth-aware objective
``10*depth + gates`` used with the Quartz-like oracle in Section 7.8.

All cost classes are stateless, hashable and picklable so they can cross
process boundaries inside oracle closures.
"""

from __future__ import annotations

from typing import Sequence

from ..circuits import Gate, circuit_depth, gates_qubit_span

__all__ = ["GateCount", "DepthCost", "MixedCost", "TwoQubitCount", "FidelityCost"]


class GateCount:
    """Total number of gates (Algorithm 3's ``|segment|``)."""

    def __call__(self, gates: Sequence[Gate]) -> float:
        return float(len(gates))

    def __repr__(self) -> str:  # pragma: no cover
        return "GateCount()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GateCount)

    def __hash__(self) -> int:
        return hash("GateCount")


class DepthCost:
    """Circuit depth under greedy ASAP layering."""

    def __call__(self, gates: Sequence[Gate]) -> float:
        gates = list(gates)
        if not gates:
            return 0.0
        return float(circuit_depth(gates, gates_qubit_span(gates)))

    def __repr__(self) -> str:  # pragma: no cover
        return "DepthCost()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DepthCost)

    def __hash__(self) -> int:
        return hash("DepthCost")


class MixedCost:
    """The paper's Section 7.8 objective: ``depth_weight*depth + gates``."""

    def __init__(self, depth_weight: float = 10.0):
        self.depth_weight = depth_weight

    def __call__(self, gates: Sequence[Gate]) -> float:
        gates = list(gates)
        if not gates:
            return 0.0
        depth = circuit_depth(gates, gates_qubit_span(gates))
        return self.depth_weight * depth + len(gates)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MixedCost(depth_weight={self.depth_weight})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MixedCost) and other.depth_weight == self.depth_weight

    def __hash__(self) -> int:
        return hash(("MixedCost", self.depth_weight))


class FidelityCost:
    """Negative log-fidelity under a depolarizing per-gate error model.

    The NISQ-era objective Section 8.1 motivates: each gate succeeds
    with a type-dependent probability, the circuit's success probability
    is the product, and minimizing ``-log(fidelity)`` is minimizing a
    per-type weighted gate count.  Default error rates follow the usual
    superconducting-hardware ballpark: two-qubit gates an order of
    magnitude noisier than single-qubit ones.
    """

    def __init__(
        self,
        single_qubit_error: float = 1e-4,
        two_qubit_error: float = 1e-3,
    ):
        if not 0 <= single_qubit_error < 1 or not 0 <= two_qubit_error < 1:
            raise ValueError("error rates must be in [0, 1)")
        self.single_qubit_error = single_qubit_error
        self.two_qubit_error = two_qubit_error
        import math

        self._w1 = -math.log1p(-single_qubit_error)
        self._w2 = -math.log1p(-two_qubit_error)

    def __call__(self, gates: Sequence[Gate]) -> float:
        cost = 0.0
        for g in gates:
            cost += self._w2 if g.arity > 1 else self._w1
        return cost

    def fidelity(self, gates: Sequence[Gate]) -> float:
        """The modeled success probability of the circuit."""
        import math

        return math.exp(-self(gates))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FidelityCost(single={self.single_qubit_error}, "
            f"two={self.two_qubit_error})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FidelityCost)
            and other.single_qubit_error == self.single_qubit_error
            and other.two_qubit_error == self.two_qubit_error
        )

    def __hash__(self) -> int:
        return hash(
            ("FidelityCost", self.single_qubit_error, self.two_qubit_error)
        )


class TwoQubitCount:
    """Number of multi-qubit gates — a common NISQ fidelity proxy."""

    def __call__(self, gates: Sequence[Gate]) -> float:
        return float(sum(1 for g in gates if g.arity > 1))

    def __repr__(self) -> str:  # pragma: no cover
        return "TwoQubitCount()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TwoQubitCount)

    def __hash__(self) -> int:
        return hash("TwoQubitCount")
