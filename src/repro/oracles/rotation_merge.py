"""Rotation merging via phase polynomials (Nam et al. Section 4.4).

Within {CNOT, X, RZ} regions a circuit's unitary factors into a linear
reversible part and a diagonal phase; every RZ contributes a phase
``theta * f(x)`` where ``f`` is an affine boolean function of the
region's input wires.  Two RZs whose affine functions coincide merge
into one rotation regardless of how far apart they sit or which wires
they touch.

This pass tracks, per wire, the affine function currently carried by
the wire:

* a fresh variable is introduced for every wire at the start and
  whenever a Hadamard (a non-region gate) acts on the wire;
* ``X(q)`` toggles the function's constant term;
* ``CNOT(c, t)`` xors the control's function into the target's;
* ``RZ(q, theta)`` applies the phase ``theta * f_q``; if an earlier
  rotation with the same linear part is pending, the angles merge
  (with a sign flip when the constant terms differ, dropping a global
  phase), otherwise the rotation becomes the pending representative of
  its function.

The affine functions are represented as arbitrary-precision bitmask
integers, so the cost of each step grows with the number of variables
seen — on whole circuits this is the genuinely superlinear pass of the
Nam pipeline (the paper: "these rules take quadratic time"), while
inside POPQC's 2Ω-segments the masks stay short and the pass is
effectively linear.  This asymmetry is precisely the efficiency gap
Tables 1/2 measure.

Soundness is property-tested against the statevector simulator in
``tests/oracles/test_rotation_merge.py``.
"""

from __future__ import annotations

from typing import Optional

from ..circuits import Gate, is_zero_angle, normalize_angle

__all__ = ["rotation_merge_pass"]


def rotation_merge_pass(gates: list[Gate]) -> tuple[list[Gate], bool]:
    """One sweep of phase-polynomial rotation merging.

    Returns the rewritten gate list and whether anything merged.
    Merged-away rotations vanish; a representative whose accumulated
    angle cancels to zero is dropped as well.
    """
    arr: list[Optional[Gate]] = list(gates)
    changed = False

    next_var = 0
    label_mask: dict[int, int] = {}  # wire -> affine linear part (bitmask)
    label_const: dict[int, int] = {}  # wire -> affine constant term (0/1)
    # pending[mask] = (index of representative RZ, const at representative)
    pending: dict[int, tuple[int, int]] = {}
    # accumulated angle (in the representative's frame) per representative
    accum: dict[int, float] = {}

    def fresh(q: int) -> None:
        nonlocal next_var
        label_mask[q] = 1 << next_var
        label_const[q] = 0
        next_var += 1

    def ensure(q: int) -> None:
        if q not in label_mask:
            fresh(q)

    for i, g in enumerate(arr):
        assert g is not None
        name = g.name
        if name == "cnot":
            c, t = g.qubits
            ensure(c)
            ensure(t)
            label_mask[t] ^= label_mask[c]
            label_const[t] ^= label_const[c]
        elif name == "x":
            q = g.qubits[0]
            ensure(q)
            label_const[q] ^= 1
        elif name == "rz":
            q = g.qubits[0]
            ensure(q)
            mask = label_mask[q]
            const = label_const[q]
            assert g.param is not None
            entry = pending.get(mask)
            if entry is None:
                pending[mask] = (i, const)
                accum[i] = g.param
            else:
                rep, rep_const = entry
                delta = g.param if const == rep_const else -g.param
                accum[rep] = normalize_angle(accum[rep] + delta)
                arr[i] = None
                changed = True
        else:
            # Non-region gate (Hadamard): the wire leaves the region.
            for q in g.qubits:
                fresh(q)

    out: list[Gate] = []
    for i, g in enumerate(arr):
        if g is None:
            continue
        if i in accum and g.name == "rz":
            theta = accum[i]
            if is_zero_angle(theta):
                changed = True
                continue
            if theta != g.param:
                g = Gate("rz", g.qubits, theta)
            out.append(g)
        else:
            out.append(g)
    return out, changed
