"""Local rewrite rules on the {H, X, CNOT, RZ} gate set.

Each rule maps a short gate pattern to an equivalent (up to global
phase) replacement.  ``try_merge`` covers the pair rules used by the
cancellation engine; the triple rules (Hadamard reductions) are listed
separately because they need per-wire adjacency rather than general
commutation scans.  All rules are unitary-verified in
``tests/oracles/test_rules.py``.
"""

from __future__ import annotations

import math
from typing import Optional

from ..circuits import CNOT, RZ, Gate, X, is_zero_angle, normalize_angle

__all__ = [
    "try_merge",
    "hadamard_triple",
    "cnot_chain_triple",
    "PAIR_RULE_NAMES",
]

PAIR_RULE_NAMES = (
    "hh_cancel",
    "xx_cancel",
    "cnot_cancel",
    "rz_merge",
)

_PI = math.pi


def try_merge(g: Gate, h: Gate) -> Optional[list[Gate]]:
    """Replacement for the adjacent pair ``g; h``, or None if no rule fits.

    Returns ``[]`` for a full cancellation and ``[merged]`` for a
    rotation merge.  Only called by the engine when ``g`` has commuted
    all the way up to ``h``.
    """
    if g.name != h.name or g.qubits != h.qubits:
        return None
    if g.name in ("h", "x"):
        return []  # self-inverse pair
    if g.name == "cnot":
        return []  # same control and target: self-inverse
    if g.name == "rz":
        assert g.param is not None and h.param is not None
        theta = normalize_angle(g.param + h.param)
        if is_zero_angle(theta):
            return []
        return [RZ(g.qubits[0], theta)]
    return None


def hadamard_triple(a: Gate, b: Gate, c: Gate) -> Optional[list[Gate]]:
    """Hadamard-reduction rules on a per-wire-adjacent triple ``a; b; c``.

    * ``H X H -> RZ(pi)``  (since H X H = Z, and RZ(pi) = Z)
    * ``H RZ(pi) H -> X``  (the reverse direction)

    Both reduce three gates to one.  Requires all three gates to be
    single-qubit gates on the same wire and adjacent in that wire's
    gate subsequence (gates in between touch other qubits only, hence
    commute with all three).
    """
    if not (a.arity == b.arity == c.arity == 1):
        return None
    q = a.qubits[0]
    if b.qubits[0] != q or c.qubits[0] != q:
        return None
    if a.name != "h" or c.name != "h":
        return None
    if b.name == "x":
        return [RZ(q, _PI)]
    if b.name == "rz" and b.param is not None:
        if abs(normalize_angle(b.param) - _PI) < 1e-9:
            return [X(q)]
    return None


def cnot_chain_triple(a: Gate, b: Gate, c: Gate) -> Optional[list[Gate]]:
    """CNOT chain reduction: ``CNOT(p,q); CNOT(q,r); CNOT(p,q)`` -> 2 CNOTs.

    The identity (verified by simulation in the tests) is::

        CNOT(p,q) CNOT(q,r) CNOT(p,q)  =  CNOT(q,r) CNOT(p,r)

    and symmetrically for the shared-target chain::

        CNOT(p,q) CNOT(r,p) CNOT(p,q)  =  CNOT(r,p) CNOT(r,q)

    Requires the three gates to be adjacent up to commutation on all
    involved wires; the engine only calls this on globally adjacent
    windows, which is sufficient (conservative).
    """
    if not (a.name == b.name == c.name == "cnot"):
        return None
    if a.qubits != c.qubits:
        return None
    p, q = a.qubits
    bc, bt = b.qubits
    if bc == q and bt != p:
        # shared wire: middle's control is outer's target
        return [CNOT(q, bt), CNOT(p, bt)]
    if bt == p and bc != q:
        # middle's target is outer's control
        return [CNOT(bc, p), CNOT(bc, q)]
    return None
