"""The Nam-style rule-based oracle — this reproduction's VOQC stand-in.

VOQC (Hietala et al. 2021) is a verified implementation of Nam et al.'s
rule-based optimizer on {H, X, CNOT, RZ}; the paper uses it as the
primary oracle.  :class:`NamOracle` composes the rewrite passes of
:mod:`repro.oracles.rule_engine` into the same kind of pass pipeline:

* ``fixpoint=False`` — one sweep of the pipeline, the way VOQC applies
  its passes.  Used by the whole-circuit baseline; a later pass can
  create opportunities an earlier pass then misses, which is exactly
  the effect Section 7.4 credits for POPQC sometimes *beating* VOQC.
* ``fixpoint=True`` — repeat the pipeline until nothing changes.  This
  is the mode POPQC uses: a fixpoint of pattern rewrites is
  *well-behaved* in the paper's sense (any subsegment of a fixpoint is
  itself a fixpoint, because a rule applicable inside a subsegment is
  applicable in the whole segment), which Theorem 7's local-optimality
  guarantee requires.

Two interchangeable engines run the pipeline:

* ``engine="python"`` (default) — the reference gate-list passes of
  :mod:`repro.oracles.rule_engine`.
* ``engine="vector"`` — the numpy struct-of-arrays passes of
  :mod:`repro.oracles.vector_engine`: the same rule set as whole-array
  kernels, several times faster per segment and GIL-releasing, which
  is what makes thread-based oracle workers viable
  (``ProcessMap(transport="threads")``).  Segments containing gates
  outside the {h, x, cnot, rz} base set fall back to the reference
  engine transparently.

The oracle is a picklable callable so ``ProcessMap`` can ship it to
worker processes.  It additionally implements the transport protocol
hook :meth:`NamOracle.run_packed` — optimize a segment directly in the
:class:`repro.circuits.encoding.EncodedSegment` wire format — which the
oracle transports use to skip gate-object round-trips entirely when the
vector engine is active.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..circuits import Gate
from ..circuits.encoding import EncodedSegment, decode_segment, encode_segment
from .hadamard_gadgets import hadamard_gadget_pass
from .resynth import resynthesis_pass
from .rotation_merge import rotation_merge_pass
from .rule_engine import (
    cancellation_pass,
    cnot_chain_pass,
    hadamard_reduction_pass,
    remove_identities,
)

__all__ = ["NamOracle", "DEFAULT_PASSES", "EXTENDED_PASSES", "PassFn"]

PassFn = Callable[[list[Gate]], tuple[list[Gate], bool]]

#: The default pass pipeline, in VOQC's spirit: cheap cancellations
#: first, then the pattern rules that expose more cancellations.
DEFAULT_PASSES: tuple[str, ...] = (
    "cancellation",
    "hadamard_reduction",
    "hadamard_gadgets",
    "rotation_merge",
    "cnot_chain",
)

#: Extended pipeline adding single-qubit run resynthesis (Section 8.2
#: technique).  Strictly at-least-as-good quality, ~2x oracle cost; use
#: ``NamOracle(EXTENDED_PASSES)`` when quality matters more than time.
EXTENDED_PASSES: tuple[str, ...] = (
    "cancellation",
    "hadamard_reduction",
    "hadamard_gadgets",
    "rotation_merge",
    "resynthesis",
    "cnot_chain",
)

#: The pass list used by the whole-circuit (VOQC-role) baseline: a fixed
#: single-run pipeline with interleaved cancellation sweeps, the way
#: VOQC sequences its verified passes.  The fixpoint oracle does not
#: need the interleaving (its outer loop reruns the whole list anyway).
BASELINE_PASSES: tuple[str, ...] = (
    "remove_identities",
    "cancellation",
    "hadamard_reduction",
    "cancellation",
    "hadamard_gadgets",
    "cancellation",
    "rotation_merge",
    "cancellation",
    "cnot_chain",
    "cancellation",
)

_PASS_TABLE: dict[str, PassFn] = {
    "remove_identities": remove_identities,
    "cancellation": cancellation_pass,
    "hadamard_reduction": hadamard_reduction_pass,
    "hadamard_gadgets": hadamard_gadget_pass,
    "rotation_merge": rotation_merge_pass,
    "resynthesis": resynthesis_pass,
    "cnot_chain": cnot_chain_pass,
}

#: Vector pipelines cached per pass tuple (kept out of oracle instances
#: so NamOracle stays picklable — the fallback wrappers are closures).
_VECTOR_PIPELINES: dict[tuple[str, ...], list] = {}


def _vector_pipeline(passes: tuple[str, ...]) -> list:
    """The (cached) vectorized pass pipeline for ``passes``."""
    pipeline = _VECTOR_PIPELINES.get(passes)
    if pipeline is None:
        from .vector_engine import vector_pass_for

        pipeline = [vector_pass_for(name, _PASS_TABLE[name]) for name in passes]
        _VECTOR_PIPELINES[passes] = pipeline
    return pipeline


class NamOracle:
    """Rule-based segment optimizer.

    Parameters
    ----------
    passes:
        Pass names (keys of the pass table) to run in order.
    fixpoint:
        Repeat the pipeline until no pass reports a change.  POPQC
        requires this for the well-behavedness property; the VOQC-role
        baseline runs with ``fixpoint=False``.
    max_iterations:
        Safety bound on fixpoint iterations (each productive iteration
        strictly shrinks the list or strictly reduces a bounded
        potential, so this should never bind in practice).
    engine:
        ``"python"`` (default) runs the reference gate-list passes;
        ``"vector"`` runs the numpy passes of
        :mod:`repro.oracles.vector_engine` on the packed layout,
        falling back to the reference engine for segments outside the
        base gate set.  The two engines apply the same rules but in a
        different sweep order, so their outputs are equivalent (same
        unitary, both locally unimprovable) without being identical
        gate for gate.
    """

    def __init__(
        self,
        passes: Sequence[str] = DEFAULT_PASSES,
        *,
        fixpoint: bool = True,
        max_iterations: int = 10_000,
        engine: str = "python",
    ):
        unknown = [p for p in passes if p not in _PASS_TABLE]
        if unknown:
            raise ValueError(f"unknown passes: {unknown}")
        if engine not in ("python", "vector"):
            raise ValueError(
                f"unknown engine {engine!r}; expected 'python' or 'vector'"
            )
        self.passes = tuple(passes)
        self.fixpoint = fixpoint
        self.max_iterations = max_iterations
        self.engine = engine

    def __call__(self, gates: Sequence[Gate]) -> list[Gate]:
        if self.engine == "vector":
            from .vector_engine import VectorSegment

            vec = VectorSegment.from_gates(gates)
            if vec is not None:
                return self._run_vector(vec).to_gates()
        return self._run_python(list(gates))

    @property
    def packed_native(self) -> bool:
        """Whether :meth:`run_packed` avoids ``Gate`` round-trips.

        True for the vector engine; the threads transport only feeds
        the packed layout to natively packed oracles (for others the
        encode would be pure overhead).
        """
        return self.engine == "vector"

    def run_packed(self, encoded: EncodedSegment) -> EncodedSegment:
        """Optimize a segment in the packed wire format.

        With the vector engine this never materializes ``Gate``
        objects; otherwise (python engine, or a segment outside the
        base set) it decodes, optimizes and re-encodes.  Oracle
        transports call this when present so results stay packed for
        lazy decoding.
        """
        if self.engine == "vector":
            from .vector_engine import VectorSegment

            vec = VectorSegment.from_encoded(encoded)
            if vec is not None:
                return self._run_vector(vec).to_encoded()
        return encode_segment(self._run_python(decode_segment(encoded)))

    def _run_python(self, current: list[Gate]) -> list[Gate]:
        """The reference gate-list pipeline."""
        for _ in range(self.max_iterations):
            changed = False
            for name in self.passes:
                current, c = _PASS_TABLE[name](current)
                changed = changed or c
            if not self.fixpoint or not changed:
                return current
        return current  # pragma: no cover - max_iterations safeguard

    def _run_vector(self, vec):
        """The vectorized pipeline on a :class:`VectorSegment`.

        The fixpoint is driven as a circular worklist: passes run in
        pipeline order, wrapping around, until every pass in a row
        reports no change — the same terminal states as re-running the
        whole pipeline, without re-sweeping passes that cannot have new
        opportunities.  The wire-occurrence structure is rebuilt only
        after a pass actually changed the segment, so quiescent sweeps
        share one build.
        """
        from .vector_engine import _occurrences

        pipeline = _vector_pipeline(self.passes)
        occ = None
        if not self.fixpoint:  # single ordered sweep (VOQC-role baseline)
            for vpass in pipeline:
                if occ is None:
                    occ = _occurrences(vec)
                vec, c = vpass(vec, occ)
                if c:
                    occ = None
            return vec
        k = len(pipeline)
        quiescent = 0
        i = 0
        max_steps = self.max_iterations * k
        while quiescent < k and i < max_steps:
            if occ is None:
                occ = _occurrences(vec)
            vec, c = pipeline[i % k](vec, occ)
            if c:
                occ = None
                quiescent = 0
            else:
                quiescent += 1
            i += 1
        return vec

    def __repr__(self) -> str:  # pragma: no cover
        mode = "fixpoint" if self.fixpoint else "single-sweep"
        return (
            f"NamOracle({mode}, passes={list(self.passes)}, "
            f"engine={self.engine!r})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NamOracle)
            and other.passes == self.passes
            and other.fixpoint == self.fixpoint
            and other.engine == self.engine
        )

    def __hash__(self) -> int:
        return hash((self.passes, self.fixpoint, self.engine))
