"""The Nam-style rule-based oracle — this reproduction's VOQC stand-in.

VOQC (Hietala et al. 2021) is a verified implementation of Nam et al.'s
rule-based optimizer on {H, X, CNOT, RZ}; the paper uses it as the
primary oracle.  :class:`NamOracle` composes the rewrite passes of
:mod:`repro.oracles.rule_engine` into the same kind of pass pipeline:

* ``fixpoint=False`` — one sweep of the pipeline, the way VOQC applies
  its passes.  Used by the whole-circuit baseline; a later pass can
  create opportunities an earlier pass then misses, which is exactly
  the effect Section 7.4 credits for POPQC sometimes *beating* VOQC.
* ``fixpoint=True`` — repeat the pipeline until nothing changes.  This
  is the mode POPQC uses: a fixpoint of pattern rewrites is
  *well-behaved* in the paper's sense (any subsegment of a fixpoint is
  itself a fixpoint, because a rule applicable inside a subsegment is
  applicable in the whole segment), which Theorem 7's local-optimality
  guarantee requires.

The oracle is a picklable callable so ``ProcessMap`` can ship it to
worker processes.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..circuits import Gate
from .hadamard_gadgets import hadamard_gadget_pass
from .resynth import resynthesis_pass
from .rotation_merge import rotation_merge_pass
from .rule_engine import (
    cancellation_pass,
    cnot_chain_pass,
    hadamard_reduction_pass,
    remove_identities,
)

__all__ = ["NamOracle", "DEFAULT_PASSES", "EXTENDED_PASSES", "PassFn"]

PassFn = Callable[[list[Gate]], tuple[list[Gate], bool]]

#: The default pass pipeline, in VOQC's spirit: cheap cancellations
#: first, then the pattern rules that expose more cancellations.
DEFAULT_PASSES: tuple[str, ...] = (
    "cancellation",
    "hadamard_reduction",
    "hadamard_gadgets",
    "rotation_merge",
    "cnot_chain",
)

#: Extended pipeline adding single-qubit run resynthesis (Section 8.2
#: technique).  Strictly at-least-as-good quality, ~2x oracle cost; use
#: ``NamOracle(EXTENDED_PASSES)`` when quality matters more than time.
EXTENDED_PASSES: tuple[str, ...] = (
    "cancellation",
    "hadamard_reduction",
    "hadamard_gadgets",
    "rotation_merge",
    "resynthesis",
    "cnot_chain",
)

#: The pass list used by the whole-circuit (VOQC-role) baseline: a fixed
#: single-run pipeline with interleaved cancellation sweeps, the way
#: VOQC sequences its verified passes.  The fixpoint oracle does not
#: need the interleaving (its outer loop reruns the whole list anyway).
BASELINE_PASSES: tuple[str, ...] = (
    "remove_identities",
    "cancellation",
    "hadamard_reduction",
    "cancellation",
    "hadamard_gadgets",
    "cancellation",
    "rotation_merge",
    "cancellation",
    "cnot_chain",
    "cancellation",
)

_PASS_TABLE: dict[str, PassFn] = {
    "remove_identities": remove_identities,
    "cancellation": cancellation_pass,
    "hadamard_reduction": hadamard_reduction_pass,
    "hadamard_gadgets": hadamard_gadget_pass,
    "rotation_merge": rotation_merge_pass,
    "resynthesis": resynthesis_pass,
    "cnot_chain": cnot_chain_pass,
}


class NamOracle:
    """Rule-based segment optimizer.

    Parameters
    ----------
    passes:
        Pass names (keys of the pass table) to run in order.
    fixpoint:
        Repeat the pipeline until no pass reports a change.  POPQC
        requires this for the well-behavedness property; the VOQC-role
        baseline runs with ``fixpoint=False``.
    max_iterations:
        Safety bound on fixpoint iterations (each productive iteration
        strictly shrinks the list or strictly reduces a bounded
        potential, so this should never bind in practice).
    """

    def __init__(
        self,
        passes: Sequence[str] = DEFAULT_PASSES,
        *,
        fixpoint: bool = True,
        max_iterations: int = 10_000,
    ):
        unknown = [p for p in passes if p not in _PASS_TABLE]
        if unknown:
            raise ValueError(f"unknown passes: {unknown}")
        self.passes = tuple(passes)
        self.fixpoint = fixpoint
        self.max_iterations = max_iterations

    def __call__(self, gates: Sequence[Gate]) -> list[Gate]:
        current = list(gates)
        for _ in range(self.max_iterations):
            changed = False
            for name in self.passes:
                current, c = _PASS_TABLE[name](current)
                changed = changed or c
            if not self.fixpoint or not changed:
                return current
        return current  # pragma: no cover - max_iterations safeguard

    def __repr__(self) -> str:  # pragma: no cover
        mode = "fixpoint" if self.fixpoint else "single-sweep"
        return f"NamOracle({mode}, passes={list(self.passes)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NamOracle)
            and other.passes == self.passes
            and other.fixpoint == self.fixpoint
        )

    def __hash__(self) -> int:
        return hash((self.passes, self.fixpoint))
