"""Single-qubit run resynthesis (the paper's Section 8.2 technique).

Resynthesis-based optimizers compute the unitary of a small subcircuit
and re-decompose it into a minimal gate sequence.  Full KAK-style
resynthesis is exponential in width, but for *single-qubit runs* it is
exact and cheap: any U in U(2) factors (up to global phase) as

    U = RZ(a) . RX(theta) . RZ(c)        (ZXZ Euler angles)

and with ``RX(theta) = H RZ(theta) H`` in our gate set, every maximal
run of single-qubit gates on one wire collapses to **at most 5 gates**
(3 RZ + 2 H), fewer in the diagonal/antidiagonal special cases.  This
subsumes the pattern-based Hadamard identities numerically and is the
pass that handles the "many consecutive single-qubit gates" trait the
paper calls out for Sqrt (Section A.4).

Runs are located with per-wire adjacency (gates between run members
touch other wires only, so they commute with the whole run); a run is
replaced only when the resynthesized form is strictly shorter, keeping
the pass count-monotone.
"""

from __future__ import annotations

import cmath
import math
from typing import Optional

import numpy as np

from ..circuits import Gate, H, RZ, X, is_zero_angle, normalize_angle

__all__ = ["synthesize_1q", "resynthesis_pass"]

_ATOL = 1e-10


def synthesize_1q(matrix: np.ndarray, qubit: int) -> list[Gate]:
    """Minimal {H, RZ} circuit for a 2x2 unitary, up to global phase.

    Returns at most 5 gates; 0 for (phase times) identity, 1 for
    diagonal, 3 for anti-diagonal and X-conjugated-diagonal cases.
    """
    if matrix.shape != (2, 2):
        raise ValueError("synthesize_1q expects a 2x2 matrix")
    u = np.asarray(matrix, dtype=np.complex128)
    if not np.allclose(u @ u.conj().T, np.eye(2), atol=1e-8):
        raise ValueError("matrix is not unitary")

    abs00 = abs(u[0, 0])
    # -- diagonal: a single RZ ------------------------------------------------
    if abs(u[0, 1]) < _ATOL and abs(u[1, 0]) < _ATOL:
        theta = normalize_angle(cmath.phase(u[1, 1]) - cmath.phase(u[0, 0]))
        return [] if is_zero_angle(theta) else [RZ(qubit, theta)]
    # -- anti-diagonal: RZ then X (X . RZ(d) = [[0, e^{id}], [1, 0]]) ---------
    if abs00 < _ATOL and abs(u[1, 1]) < _ATOL:
        # U ∝ [[0, e^{ic}], [e^{ia}, 0]] = e^{ia} · X·RZ(c - a)
        delta = normalize_angle(cmath.phase(u[0, 1]) - cmath.phase(u[1, 0]))
        gates: list[Gate] = []
        if not is_zero_angle(delta):
            gates.append(RZ(qubit, delta))
        gates.append(X(qubit))
        return gates
    # -- generic ZXZ ----------------------------------------------------------
    # Normalize global phase so u00 is real positive.
    u = u * cmath.exp(-1j * cmath.phase(u[0, 0]))
    s = abs(u[1, 0])
    theta = 2.0 * math.atan2(s, u[0, 0].real)
    # M = [[cos, -i sin e^{ic}], [-i sin e^{ia}, cos e^{i(a+c)}]]
    a = normalize_angle(cmath.phase(u[1, 0]) + math.pi / 2.0)
    c = normalize_angle(cmath.phase(u[0, 1]) + math.pi / 2.0)
    gates = []
    if not is_zero_angle(c):
        gates.append(RZ(qubit, c))
    gates.append(H(qubit))
    gates.append(RZ(qubit, normalize_angle(theta)))
    gates.append(H(qubit))
    if not is_zero_angle(a):
        gates.append(RZ(qubit, a))
    return gates


def _run_matrix(gates: list[Gate]) -> np.ndarray:
    """Product matrix of a single-wire gate run (circuit order)."""
    m = np.eye(2, dtype=np.complex128)
    for g in gates:
        m = g.matrix() @ m
    return m


def resynthesis_pass(gates: list[Gate]) -> tuple[list[Gate], bool]:
    """Collapse maximal per-wire-adjacent single-qubit runs.

    A run on wire ``q`` is a maximal set of consecutive (per-wire)
    single-qubit gates on ``q``; its product unitary is resynthesized
    and the replacement written over the run's slots (left-aligned,
    remaining slots dropped) when strictly shorter.
    """
    arr: list[Optional[Gate]] = list(gates)
    n = len(arr)
    # Per-wire occurrence lists.
    wires: dict[int, list[int]] = {}
    for i, g in enumerate(gates):
        for q in g.qubits:
            wires.setdefault(q, []).append(i)
    changed = False
    for q, occ in wires.items():
        i = 0
        while i < len(occ):
            # collect a maximal run of live 1q gates on this wire
            run_positions: list[int] = []
            j = i
            while j < len(occ):
                g = arr[occ[j]]
                if g is None:
                    j += 1
                    continue
                if g.arity != 1 or g.qubits[0] != q:
                    break
                run_positions.append(occ[j])
                j += 1
            if len(run_positions) >= 2:
                run_gates = [arr[p] for p in run_positions]
                matrix = _run_matrix(run_gates)  # type: ignore[arg-type]
                replacement = synthesize_1q(matrix, q)
                if len(replacement) < len(run_positions):
                    for k, pos in enumerate(run_positions):
                        arr[pos] = (
                            replacement[k] if k < len(replacement) else None
                        )
                    changed = True
            i = max(j, i + 1)
    out = [g for g in arr if g is not None]
    return out, changed
