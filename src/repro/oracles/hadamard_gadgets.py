"""Nam-style Hadamard gate reduction (Nam et al. Section 4.3).

Hadamards are the boundary markers of {CNOT, X, RZ} phase-polynomial
regions: every H ends a region on its wire, so *fewer Hadamards means
longer regions and more rotation merging*.  This pass applies the four
verified identities (tests: ``tests/oracles/test_hadamard_gadgets.py``)

1. ``H S H      -> Sdg H Sdg``                (count-neutral, -2 H)
2. ``H Sdg H    -> S H S``                    (count-neutral, -2 H)
3. ``H S CNOT Sdg H -> Sdg CNOT S``  (on the target wire; -2 gates)
4. ``H(a) H(b) CNOT(a,b) H(a) H(b) -> CNOT(b,a)``        (-4 gates)

with S = RZ(pi/2), all up to global phase.  Patterns are matched with
per-wire adjacency (intervening gates touch other wires only, hence
commute with the replaced single-wire gates), which is sound and cheap.

Termination measure for fixpoint composition: every application strictly
decreases the circuit's Hadamard count, so the pass cannot oscillate
even though rules 1-2 preserve total gate count.
"""

from __future__ import annotations

import math
from typing import Optional

from ..circuits import Gate, RZ
from .rule_engine import WireIndex, _next_live

__all__ = ["hadamard_gadget_pass"]

_HALF_PI = math.pi / 2
_NEG_HALF_PI = 3 * math.pi / 2  # normalized -pi/2


def _is_s(g: Gate) -> bool:
    return g.name == "rz" and abs(g.param - _HALF_PI) < 1e-9  # type: ignore[operator]


def _is_sdg(g: Gate) -> bool:
    return g.name == "rz" and abs(g.param - _NEG_HALF_PI) < 1e-9  # type: ignore[operator]


def hadamard_gadget_pass(gates: list[Gate]) -> tuple[list[Gate], bool]:
    """One sweep of the four Hadamard-reduction rules."""
    arr: list[Optional[Gate]] = list(gates)
    index = WireIndex(gates)
    changed = False
    n = len(arr)
    for i in range(n):
        a = arr[i]
        if a is None or a.name != "h":
            continue
        q = a.qubits[0]

        # --- rule 4: H(a) H(b) CNOT(a,b) H(a) H(b) -> CNOT(b,a) --------
        j = _next_live(index, arr, i, (q,))
        if j is None:
            continue
        b = arr[j]
        assert b is not None
        if b.name == "cnot" and _try_rule4(arr, index, i, j):
            changed = True
            continue

        if b.arity != 1 or b.qubits[0] != q:
            continue

        # --- rule 3: H S CNOT Sdg H (target wire) -----------------------
        if (_is_s(b) or _is_sdg(b)) and _try_rule3(arr, index, i, j, q, _is_s(b)):
            changed = True
            continue

        # --- rules 1-2: H (S|Sdg) H -------------------------------------
        if _is_s(b) or _is_sdg(b):
            k = _next_live(index, arr, j, (q,))
            if k is None:
                continue
            c = arr[k]
            assert c is not None
            if c.name != "h" or c.qubits[0] != q:
                continue
            flip = _NEG_HALF_PI if _is_s(b) else _HALF_PI
            arr[i] = RZ(q, flip)
            arr[j] = Gate("h", (q,))
            arr[k] = RZ(q, flip)
            changed = True
    out = [g for g in arr if g is not None]
    return out, changed


def _try_rule3(
    arr: list[Optional[Gate]],
    index: WireIndex,
    i: int,
    j: int,
    q: int,
    middle_is_s: bool,
) -> bool:
    """Match H . (S|Sdg) . CNOT(c,q) . (Sdg|S) . H on wire ``q``."""
    k = _next_live(index, arr, j, (q,))
    if k is None:
        return False
    cnot = arr[k]
    assert cnot is not None
    if cnot.name != "cnot" or cnot.qubits[1] != q:
        return False
    m = _next_live(index, arr, k, (q,))
    if m is None:
        return False
    d = arr[m]
    assert d is not None
    want_d = _is_sdg if middle_is_s else _is_s
    if d.arity != 1 or d.qubits[0] != q or not want_d(d):
        return False
    p = _next_live(index, arr, m, (q,))
    if p is None:
        return False
    e = arr[p]
    assert e is not None
    if e.name != "h" or e.qubits[0] != q:
        return False
    # H S CNOT Sdg H -> Sdg CNOT S   (and the mirrored variant)
    first = _NEG_HALF_PI if middle_is_s else _HALF_PI
    last = _HALF_PI if middle_is_s else _NEG_HALF_PI
    arr[i] = RZ(q, first)
    arr[j] = None
    # cnot stays at k
    arr[m] = RZ(q, last)
    arr[p] = None
    return True


def _try_rule4(
    arr: list[Optional[Gate]], index: WireIndex, i: int, j: int
) -> bool:
    """Match the HH-CNOT-HH sandwich around the CNOT at ``j``.

    ``i`` holds an H on one of the CNOT's wires; require the H on the
    other wire immediately before the CNOT (per-wire), and H's on both
    wires immediately after.
    """
    cnot = arr[j]
    assert cnot is not None and cnot.name == "cnot"
    a_w, b_w = cnot.qubits
    h_q = arr[i].qubits[0]  # type: ignore[union-attr]
    other = b_w if h_q == a_w else a_w

    # the partner H must be the previous gate on the other wire
    partner = _prev_live_on_wire(arr, index, j, other)
    if partner is None:
        return False
    pg = arr[partner]
    assert pg is not None
    if pg.name != "h" or pg.qubits[0] != other:
        return False
    # and the next gate on each wire after the CNOT must be an H
    after_a = _next_live(index, arr, j, (a_w,))
    after_b = _next_live(index, arr, j, (b_w,))
    if after_a is None or after_b is None or after_a == after_b:
        return False
    ga, gb = arr[after_a], arr[after_b]
    assert ga is not None and gb is not None
    if ga.name != "h" or ga.qubits[0] != a_w:
        return False
    if gb.name != "h" or gb.qubits[0] != b_w:
        return False
    arr[i] = None
    arr[partner] = None
    arr[j] = Gate("cnot", (b_w, a_w))
    arr[after_a] = None
    arr[after_b] = None
    return True


def _prev_live_on_wire(
    arr: list[Optional[Gate]], index: WireIndex, before: int, wire: int
) -> Optional[int]:
    """Index of the last live gate before ``before`` touching ``wire``."""
    lst = index.wires.get(wire, [])
    # binary search for position of `before` in the wire list
    lo, hi = 0, len(lst)
    while lo < hi:
        mid = (lo + hi) // 2
        if lst[mid] < before:
            lo = mid + 1
        else:
            hi = mid
    for p in range(lo - 1, -1, -1):
        if arr[lst[p]] is not None:
            return lst[p]
    return None
