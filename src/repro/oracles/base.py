"""Oracle protocol and well-behavedness checking (paper Section 6).

An oracle is any callable from a gate list to an equivalent gate list.
The local-optimality theorem requires oracles to be *well-behaved*:
once the oracle has optimized a circuit, any segment of its output must
itself be unimprovable by the oracle.  Fixpoint rule engines have this
property by construction; :func:`check_well_behaved` tests it
empirically for arbitrary oracles, which is how we validate third-party
oracles plugged into POPQC.
"""

from __future__ import annotations

import random
from typing import Optional, Protocol, Sequence

from ..circuits import Gate

__all__ = ["Oracle", "check_well_behaved", "IdentityOracle", "ComposedOracle"]


class Oracle(Protocol):
    """Any segment optimizer: gate list in, equivalent gate list out."""

    def __call__(self, gates: Sequence[Gate]) -> list[Gate]: ...  # pragma: no cover


class IdentityOracle:
    """The trivial oracle: returns its input.  Useful as a baseline and
    in tests (POPQC with this oracle must terminate after one pass over
    the initial fingers with zero accepted optimizations)."""

    def __call__(self, gates: Sequence[Gate]) -> list[Gate]:
        return list(gates)

    def __repr__(self) -> str:  # pragma: no cover
        return "IdentityOracle()"


class ComposedOracle:
    """Run several oracles in sequence, keeping the best (fewest-cost)
    output.  Picklable as long as the components are."""

    def __init__(self, *oracles, cost=None):
        if not oracles:
            raise ValueError("ComposedOracle needs at least one oracle")
        self.oracles = oracles
        self.cost = cost if cost is not None else (lambda g: float(len(g)))

    def __call__(self, gates: Sequence[Gate]) -> list[Gate]:
        best = list(gates)
        best_cost = self.cost(best)
        current = list(gates)
        for oracle in self.oracles:
            current = oracle(current)
            c = self.cost(current)
            if c < best_cost:
                best, best_cost = list(current), c
        return best

    def __repr__(self) -> str:  # pragma: no cover
        return f"ComposedOracle({', '.join(repr(o) for o in self.oracles)})"


def check_well_behaved(
    oracle: Oracle,
    gates: Sequence[Gate],
    *,
    samples: int = 20,
    seed: Optional[int] = None,
) -> list[tuple[int, int]]:
    """Empirically test the well-behavedness property on one input.

    Runs the oracle on ``gates``, then samples random subsegments of the
    output and re-runs the oracle on each.  Returns the (start, stop)
    ranges of subsegments the oracle still improved — an empty list
    means no counterexample was found.
    """
    out = oracle(list(gates))
    n = len(out)
    if n == 0:
        return []
    rng = random.Random(seed)
    bad: list[tuple[int, int]] = []
    for _ in range(samples):
        i = rng.randrange(n)
        j = rng.randrange(i, n) + 1
        sub = out[i:j]
        opt = oracle(list(sub))
        if len(opt) < len(sub):
            bad.append((i, j))
    return bad
