"""OAC — the sequential local optimizer of Arora et al. [8].

The paper's Table 3 compares POPQC on one thread against OAC, "the
fastest sequential optimizer available", which also guarantees local
optimality.  OAC works in sequential rounds of:

1. **cut** the circuit into Ω-segments,
2. **optimize** each segment with the oracle,
3. **meld** the seams: slide a 2Ω window across every cut boundary and
   re-optimize it, propagating optimizations between segments,
4. **compress** the circuit by moving gates as far left as possible
   (ASAP layering flattened back to a sequence),

repeating until a full round leaves the gate count unchanged.

The cut/meld/splice steps work on plain Python lists, incurring the
quadratic data-movement overheads the paper attributes to OAC (Section
7.7) — that overhead, absent from POPQC's index-tree implementation, is
what Table 3 measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..circuits import Circuit, left_justified
from ..core.popqc import OracleFn

__all__ = ["OacResult", "oac_optimize"]


@dataclass
class OacResult:
    """Optimized circuit, timing and per-phase accounting for OAC."""

    circuit: Circuit
    time_seconds: float
    rounds: int
    oracle_calls: int
    oracle_time: float = 0.0
    phase_times: dict[str, float] = field(
        default_factory=lambda: {"cut": 0.0, "optimize": 0.0, "meld": 0.0, "compress": 0.0}
    )

    @property
    def num_gates(self) -> int:
        return self.circuit.num_gates


def oac_optimize(
    circuit: Circuit,
    oracle: OracleFn,
    omega: int,
    *,
    max_rounds: int | None = None,
    compress: bool = True,
) -> OacResult:
    """Run the OAC cut/optimize/meld/compress loop to convergence."""
    if omega < 1:
        raise ValueError("omega must be positive")
    gates = list(circuit.gates)
    t_start = time.perf_counter()
    rounds = 0
    oracle_calls = 0
    oracle_time = 0.0
    phases = {"cut": 0.0, "optimize": 0.0, "meld": 0.0, "compress": 0.0}

    while True:
        if max_rounds is not None and rounds >= max_rounds:
            break
        rounds += 1
        before = len(gates)

        # -- cut: explicit segment copies (quadratic data movement) ------
        t0 = time.perf_counter()
        segments = [gates[i : i + omega] for i in range(0, len(gates), omega)]
        phases["cut"] += time.perf_counter() - t0

        # -- optimize each segment sequentially --------------------------
        t0 = time.perf_counter()
        new_segments = []
        for seg in segments:
            t_or = time.perf_counter()
            opt = oracle(seg)
            oracle_time += time.perf_counter() - t_or
            oracle_calls += 1
            new_segments.append(opt if len(opt) < len(seg) else seg)
        phases["optimize"] += time.perf_counter() - t0

        # -- meld: re-optimize a 2Ω window across every seam --------------
        t0 = time.perf_counter()
        gates = [g for seg in new_segments for g in seg]
        boundary = 0
        for seg in new_segments[:-1]:
            boundary += len(seg)
            lo = max(0, boundary - omega)
            hi = min(len(gates), boundary + omega)
            window = gates[lo:hi]
            t_or = time.perf_counter()
            opt = oracle(window)
            oracle_time += time.perf_counter() - t_or
            oracle_calls += 1
            if len(opt) < len(window):
                # list splice: O(n) per seam, O(n^2 / omega) per round
                gates = gates[:lo] + opt + gates[hi:]
                boundary -= len(window) - len(opt)
        phases["meld"] += time.perf_counter() - t0

        # -- compress: left-justify to close the gaps ----------------------
        if compress:
            t0 = time.perf_counter()
            gates = list(
                left_justified(Circuit(gates, circuit.num_qubits)).gates
            )
            phases["compress"] += time.perf_counter() - t0

        if len(gates) >= before:
            break  # converged: no gate removed this round

    elapsed = time.perf_counter() - t_start
    return OacResult(
        Circuit(gates, circuit.num_qubits),
        elapsed,
        rounds,
        oracle_calls,
        oracle_time,
        phases,
    )
