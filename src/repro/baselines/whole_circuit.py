"""Whole-circuit sequential optimizer — the "VOQC" role in the evaluation.

Tables 1 and 2 of the paper compare POPQC against running VOQC directly
on the entire circuit.  This module plays that role: it applies the same
Nam-style pass pipeline the oracle uses, but over the *whole* gate list
in one (or a fixed number of) sweeps, exactly the way VOQC applies its
pass list.

Two properties matter for reproducing the paper's comparison shape:

* the commutation scans are quadratic in circuit length, so the running
  time grows superlinearly with circuit size while POPQC's grows
  O(n lg n) — this produces Table 1/2's widening speedups;
* a single pipeline sweep can miss opportunities a later pass exposes,
  so POPQC (which re-runs the oracle to a local fixpoint) occasionally
  achieves *better* quality, as observed for HHL in Table 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..circuits import Circuit
from ..oracles import BASELINE_PASSES, NamOracle

__all__ = ["WholeCircuitResult", "optimize_whole_circuit"]


@dataclass
class WholeCircuitResult:
    """Optimized circuit and timing for a whole-circuit baseline run."""

    circuit: Circuit
    time_seconds: float
    sweeps_run: int

    @property
    def num_gates(self) -> int:
        return self.circuit.num_gates


def optimize_whole_circuit(
    circuit: Circuit,
    *,
    sweeps: int = 1,
    oracle: NamOracle | None = None,
    timeout_seconds: float | None = None,
) -> WholeCircuitResult:
    """Run the Nam pass pipeline over the entire circuit.

    Parameters
    ----------
    sweeps:
        How many times to run the pipeline (VOQC-style fixed pass list:
        1).  Pass a larger value to approximate running-to-convergence.
    oracle:
        The pass pipeline to use; defaults to a single-sweep
        :class:`NamOracle` (fixpoint disabled — sweeps are controlled
        here instead).
    timeout_seconds:
        Abort after this much wall time, returning the best circuit so
        far; mirrors the paper's 24-hour timeout handling ("N.A." rows).
    """
    pipeline = (
        oracle
        if oracle is not None
        else NamOracle(BASELINE_PASSES, fixpoint=False)
    )
    gates = list(circuit.gates)
    t0 = time.perf_counter()
    sweeps_run = 0
    for _ in range(max(1, sweeps)):
        new_gates = pipeline(gates)
        sweeps_run += 1
        improved = len(new_gates) < len(gates)
        gates = new_gates
        if timeout_seconds is not None and time.perf_counter() - t0 > timeout_seconds:
            break
        if not improved and sweeps_run > 1:
            break
    elapsed = time.perf_counter() - t0
    return WholeCircuitResult(
        Circuit(gates, circuit.num_qubits), elapsed, sweeps_run
    )
