"""Sequential baselines: whole-circuit (VOQC role) and OAC (Arora et al.)."""

from .oac import OacResult, oac_optimize
from .whole_circuit import WholeCircuitResult, optimize_whole_circuit

__all__ = [
    "OacResult",
    "WholeCircuitResult",
    "oac_optimize",
    "optimize_whole_circuit",
]
