"""POPQC: Parallel Optimization for Quantum Circuits — Python reproduction.

This package reproduces the system of Liu, Arora, Xu and Acar,
"POPQC: Parallel Optimization for Quantum Circuits" (SPAA 2025):

* :mod:`repro.core` — the POPQC algorithm (fingers, rounds, index tree);
* :mod:`repro.circuits` — the gate/circuit substrate and QASM I/O;
* :mod:`repro.oracles` — rule-based (VOQC-role) and search-based
  (Quartz-role) oracle optimizers;
* :mod:`repro.baselines` — the sequential whole-circuit and OAC baselines;
* :mod:`repro.benchgen` — the eight benchmark circuit families;
* :mod:`repro.parallel` — the parmap executors, including simulated
  parallelism for scaling studies;
* :mod:`repro.sim` — statevector/unitary verification substrate;
* :mod:`repro.experiments` — drivers for every table and figure.

Quick start::

    from repro import optimize, NamOracle
    from repro.benchgen import generate

    circuit = generate("Grover", 1)
    result = optimize(circuit, omega=100)
    print(result.stats.summary())
"""

from __future__ import annotations

from typing import Sequence

from .circuits import CNOT, RZ, Circuit, Gate, H, X, parse_qasm, to_qasm
from .core import (
    OptimizationStats,
    PopqcResult,
    assert_locally_optimal,
    layered_popqc,
    popqc,
)
from .oracles import GateCount, MixedCost, NamOracle, SearchOracle
from .parallel import ProcessMap, SerialMap, SimulatedParallelism, ThreadMap

__version__ = "1.0.0"

__all__ = [
    "CNOT",
    "Circuit",
    "Gate",
    "GateCount",
    "H",
    "MixedCost",
    "NamOracle",
    "OptimizationStats",
    "PopqcResult",
    "ProcessMap",
    "RZ",
    "SearchOracle",
    "SerialMap",
    "SimulatedParallelism",
    "ThreadMap",
    "X",
    "__version__",
    "assert_locally_optimal",
    "layered_popqc",
    "optimize",
    "parse_qasm",
    "popqc",
    "to_qasm",
]


def optimize(
    circuit: Circuit | Sequence[Gate],
    *,
    oracle=None,
    omega: int = 100,
    parmap=None,
) -> PopqcResult:
    """One-call convenience wrapper around :func:`repro.core.popqc`.

    Uses the rule-based fixpoint oracle and a serial executor unless
    told otherwise.
    """
    if oracle is None:
        oracle = NamOracle()
    return popqc(circuit, oracle, omega, parmap=parmap)
