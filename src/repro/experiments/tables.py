"""Drivers for the paper's Tables 1-4.

Each driver returns a list of row dataclasses plus a rendered table; the
benchmarks in ``benchmarks/`` and the ``examples/paper_tables.py``
script both call these.  Instance sizes default to the registry's
scaled ladder; pass ``size_indices`` to trim for quick runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..baselines import oac_optimize, optimize_whole_circuit
from ..benchgen import family_names, generate
from ..circuits import left_justified, right_justified
from ..core import popqc
from ..oracles import NamOracle
from ..parallel import SerialMap, SimulatedParallelism
from .report import format_table

__all__ = [
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "Table4Row",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "DEFAULT_OMEGA",
]

#: Scaled-down default Ω (the paper uses 200 at 100k-gate scale; our
#: instances are ~100x smaller, and Section A.3 shows results are not
#: sensitive to Ω within a wide band).
DEFAULT_OMEGA = 100


@dataclass
class Table1Row:
    family: str
    qubits: int
    gates: int
    baseline_reduction: float
    baseline_time: float
    popqc_reduction: float
    popqc_time: float
    #: True when the baseline hit the timeout (the paper's "N.A." rows);
    #: baseline_time is then the timeout value and the speedup is a
    #: lower bound, exactly as in the paper's ">=" rows.
    baseline_timed_out: bool = False

    @property
    def speedup(self) -> float:
        return self.baseline_time / self.popqc_time if self.popqc_time > 0 else math.nan


def run_table1(
    *,
    size_indices: Sequence[int] = (0, 1, 2, 3),
    families: Sequence[str] | None = None,
    omega: int = DEFAULT_OMEGA,
    workers: int = 64,
    seed: int = 0,
    baseline_timeout: float | None = None,
) -> tuple[list[Table1Row], str]:
    """Table 1: POPQC (parallel) vs the whole-circuit baseline.

    The baseline plays VOQC's role (sequential single-sweep pass
    pipeline over the whole circuit); POPQC runs the same rules as a
    fixpoint oracle under simulated ``workers``-way parallelism, and is
    charged its simulated parallel time.

    ``baseline_timeout`` mirrors the paper's 24-hour cap: a baseline run
    exceeding it is reported as "N.A." with the timeout as a lower
    bound on its time (and hence on the speedup).
    """
    rows: list[Table1Row] = []
    oracle = NamOracle()
    for fam in families or family_names():
        for idx in size_indices:
            circuit = generate(fam, idx, seed=seed)
            base = optimize_whole_circuit(circuit, timeout_seconds=baseline_timeout)
            timed_out = (
                baseline_timeout is not None
                and base.time_seconds > baseline_timeout
            )
            pmap = SimulatedParallelism(workers)
            res = popqc(circuit, oracle, omega, parmap=pmap)
            rows.append(
                Table1Row(
                    fam,
                    circuit.num_qubits,
                    circuit.num_gates,
                    math.nan
                    if timed_out
                    else 1.0 - base.num_gates / circuit.num_gates,
                    max(base.time_seconds, baseline_timeout or 0.0)
                    if timed_out
                    else base.time_seconds,
                    res.stats.gate_reduction,
                    res.stats.parallel_time,
                    baseline_timed_out=timed_out,
                )
            )
    table = format_table(
        [
            "benchmark",
            "qubits",
            "gates",
            "base red%",
            "base t(s)",
            "popqc red%",
            "popqc t(s)",
            "speedup",
        ],
        [
            [
                r.family,
                r.qubits,
                r.gates,
                100 * r.baseline_reduction,
                r.baseline_time,
                100 * r.popqc_reduction,
                r.popqc_time,
                r.speedup,
            ]
            for r in rows
        ],
        title=f"Table 1: POPQC ({workers} simulated workers) vs whole-circuit baseline",
    )
    return rows, table


@dataclass
class Table2Row:
    family: str
    qubits: int
    gates: int
    baseline_time: float
    popqc_time: float

    @property
    def speedup(self) -> float:
        return self.baseline_time / self.popqc_time if self.popqc_time > 0 else math.nan


def run_table2(
    *,
    size_indices: Sequence[int] = (0, 1, 2, 3),
    families: Sequence[str] | None = None,
    omega: int = DEFAULT_OMEGA,
    seed: int = 0,
) -> tuple[list[Table2Row], str]:
    """Table 2: POPQC on one thread vs the baseline on one thread.

    Isolates the benefit of local optimality from parallelism.
    """
    rows: list[Table2Row] = []
    oracle = NamOracle()
    for fam in families or family_names():
        for idx in size_indices:
            circuit = generate(fam, idx, seed=seed)
            base = optimize_whole_circuit(circuit)
            res = popqc(circuit, oracle, omega, parmap=SerialMap())
            rows.append(
                Table2Row(
                    fam,
                    circuit.num_qubits,
                    circuit.num_gates,
                    base.time_seconds,
                    res.stats.total_time,
                )
            )
    table = format_table(
        ["benchmark", "qubits", "gates", "base t(s)", "popqc t(s)", "speedup"],
        [
            [r.family, r.qubits, r.gates, r.baseline_time, r.popqc_time, r.speedup]
            for r in rows
        ],
        title="Table 2: POPQC (1 thread) vs whole-circuit baseline (1 thread)",
    )
    return rows, table


@dataclass
class Table3Row:
    family: str
    qubits: int
    gates: int
    oac_time: float
    popqc_time: float
    oac_reduction: float
    popqc_reduction: float

    @property
    def speedup(self) -> float:
        return self.oac_time / self.popqc_time if self.popqc_time > 0 else math.nan


def run_table3(
    *,
    size_indices: Sequence[int] = (0, 1, 2, 3),
    families: Sequence[str] | None = None,
    omega: int | None = None,
    seed: int = 0,
) -> tuple[list[Table3Row], str]:
    """Table 3: POPQC (1 thread) vs OAC, same oracle, larger Ω.

    The paper doubles Ω to 400 for this fairness comparison; we double
    the scaled default accordingly.
    """
    omega = omega if omega is not None else 2 * DEFAULT_OMEGA
    rows: list[Table3Row] = []
    oracle = NamOracle()
    for fam in families or family_names():
        for idx in size_indices:
            circuit = generate(fam, idx, seed=seed)
            oac = oac_optimize(circuit, oracle, omega)
            res = popqc(circuit, oracle, omega, parmap=SerialMap())
            rows.append(
                Table3Row(
                    fam,
                    circuit.num_qubits,
                    circuit.num_gates,
                    oac.time_seconds,
                    res.stats.total_time,
                    1.0 - oac.num_gates / circuit.num_gates,
                    res.stats.gate_reduction,
                )
            )
    table = format_table(
        [
            "benchmark",
            "qubits",
            "gates",
            "oac t(s)",
            "popqc t(s)",
            "speedup",
            "oac red%",
            "popqc red%",
        ],
        [
            [
                r.family,
                r.qubits,
                r.gates,
                r.oac_time,
                r.popqc_time,
                r.speedup,
                100 * r.oac_reduction,
                100 * r.popqc_reduction,
            ]
            for r in rows
        ],
        title=f"Table 3: POPQC (1 thread, omega={omega}) vs OAC",
    )
    return rows, table


@dataclass
class Table4Row:
    family: str
    left_justified_reduction: float
    right_justified_reduction: float
    default_reduction: float


def run_table4(
    *,
    size_indices: Sequence[int] = (0, 1),
    families: Sequence[str] | None = None,
    omega: int = DEFAULT_OMEGA,
    seed: int = 0,
) -> tuple[list[Table4Row], str]:
    """Table 4: gate reduction under different initial orderings.

    Averages reductions over the selected instance sizes for each
    family, as the paper does.
    """
    rows: list[Table4Row] = []
    oracle = NamOracle()
    for fam in families or family_names():
        sums = {"left": 0.0, "right": 0.0, "default": 0.0}
        for idx in size_indices:
            circuit = generate(fam, idx, seed=seed)
            variants = {
                "left": left_justified(circuit),
                "right": right_justified(circuit),
                "default": circuit,
            }
            for key, variant in variants.items():
                res = popqc(variant, oracle, omega, parmap=SerialMap())
                sums[key] += res.stats.gate_reduction
        k = len(size_indices)
        rows.append(
            Table4Row(fam, sums["left"] / k, sums["right"] / k, sums["default"] / k)
        )
    table = format_table(
        ["benchmark", "left-justified", "right-justified", "default"],
        [
            [
                r.family,
                f"{100 * r.left_justified_reduction:.2f}%",
                f"{100 * r.right_justified_reduction:.2f}%",
                f"{100 * r.default_reduction:.2f}%",
            ]
            for r in rows
        ],
        title="Table 4: average gate reduction by initial ordering",
    )
    return rows, table
