"""Plain-text table / series rendering and CSV export for experiments.

Every experiment driver returns structured rows; these helpers print
them the way the paper's tables and figures report them, and write CSV
files so the data can be re-plotted.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Sequence

__all__ = ["format_table", "write_csv", "format_series"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "N.A."
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None
) -> str:
    """Render rows as an aligned ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[Any], ys: Sequence[Any], x_label: str, y_label: str
) -> str:
    """Render an (x, y) series as the paper's figures report them."""
    lines = [f"{name}: {x_label} -> {y_label}"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_fmt(x):>10s}  {_fmt(y)}")
    return "\n".join(lines)


def write_csv(
    path: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> None:
    """Write rows to a CSV file."""
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)


def to_csv_string(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """CSV text for embedding in reports."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    writer.writerows(rows)
    return buf.getvalue()
