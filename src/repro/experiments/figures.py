"""Drivers for the paper's Figures 3-9.

Each driver returns structured series plus a rendered text block.  The
scaling figures (3 and 5) recompute makespans for every worker count
from a single timed run (see
:meth:`repro.parallel.SimulatedParallelism.makespan_for`), so the whole
sweep costs one optimization per instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..benchgen import family_names, generate
from ..circuits import Circuit
from ..core import layered_popqc, mixed_cost, popqc
from ..oracles import GateCount, MixedCost, NamOracle, SearchOracle
from ..parallel import SerialMap, SimulatedParallelism
from .report import format_table
from .tables import DEFAULT_OMEGA

__all__ = [
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "DEFAULT_WORKER_LADDER",
]

DEFAULT_WORKER_LADDER = (1, 2, 4, 8, 16, 32, 64)


@dataclass
class SpeedupCurve:
    """Self-speedup per worker count for one instance (Fig. 3)."""

    family: str
    gates: int
    workers: tuple[int, ...]
    speedups: tuple[float, ...]


def _speedup_curve(
    circuit: Circuit,
    family: str,
    omega: int,
    workers: Sequence[int],
    seed: int,
) -> SpeedupCurve:
    oracle = NamOracle()
    pmap = SimulatedParallelism(1, record_durations=True)
    res = popqc(circuit, oracle, omega, parmap=pmap)
    admin = res.stats.admin_time
    base = admin + pmap.makespan_for(1)
    speedups = tuple(base / (admin + pmap.makespan_for(p)) for p in workers)
    return SpeedupCurve(family, circuit.num_gates, tuple(workers), speedups)


def run_figure3(
    *,
    families: Sequence[str] | None = None,
    size_index: int = 3,
    omega: int = DEFAULT_OMEGA,
    workers: Sequence[int] = DEFAULT_WORKER_LADDER,
    seed: int = 0,
) -> tuple[list[SpeedupCurve], str]:
    """Figure 3: self-speedup vs worker count, largest instances."""
    curves = []
    for fam in families or family_names():
        circuit = generate(fam, size_index, seed=seed)
        curves.append(_speedup_curve(circuit, fam, omega, workers, seed))
    headers = ["benchmark", "gates"] + [f"p={p}" for p in workers]
    rows = [
        [c.family, c.gates] + [f"{s:.2f}" for s in c.speedups] for c in curves
    ]
    text = format_table(
        headers, rows, title="Figure 3: self-speedup vs number of workers"
    )
    return curves, text


@dataclass
class RoundsPoint:
    family: str
    gates_small: int
    rounds_small: int
    gates_large: int
    rounds_large: int


def run_figure4(
    *,
    families: Sequence[str] | None = None,
    omega: int = DEFAULT_OMEGA,
    small_index: int = 0,
    large_index: int = 3,
    seed: int = 0,
) -> tuple[list[RoundsPoint], str]:
    """Figure 4: round counts for smallest vs largest instances."""
    oracle = NamOracle()
    points = []
    for fam in families or family_names():
        small = generate(fam, small_index, seed=seed)
        large = generate(fam, large_index, seed=seed)
        rs = popqc(small, oracle, omega, parmap=SerialMap()).stats.rounds
        rl = popqc(large, oracle, omega, parmap=SerialMap()).stats.rounds
        points.append(RoundsPoint(fam, small.num_gates, rs, large.num_gates, rl))
    text = format_table(
        ["benchmark", "gates(small)", "rounds(small)", "gates(large)", "rounds(large)"],
        [
            [p.family, p.gates_small, p.rounds_small, p.gates_large, p.rounds_large]
            for p in points
        ],
        title="Figure 4: number of rounds, smallest vs largest instance",
    )
    return points, text


@dataclass
class SpeedupPoint:
    family: str
    gates: int
    speedup: float


def run_figure5(
    *,
    families: Sequence[str] | None = None,
    size_indices: Sequence[int] = (0, 1, 2, 3),
    omega: int = DEFAULT_OMEGA,
    workers: int = 64,
    seed: int = 0,
) -> tuple[list[SpeedupPoint], str]:
    """Figure 5: self-speedup at ``workers`` workers vs circuit size."""
    points = []
    for fam in families or family_names():
        for idx in size_indices:
            circuit = generate(fam, idx, seed=seed)
            curve = _speedup_curve(circuit, fam, omega, [workers], seed)
            points.append(SpeedupPoint(fam, circuit.num_gates, curve.speedups[0]))
    text = format_table(
        ["benchmark", "gates", f"self-speedup (p={workers})"],
        [[p.family, p.gates, f"{p.speedup:.2f}"] for p in points],
        title="Figure 5: self-speedup vs number of gates",
    )
    return points, text


@dataclass
class Figure6Row:
    family: str
    gate_cost_gate_reduction: float
    gate_cost_depth_reduction: float
    mixed_cost_gate_reduction: float
    mixed_cost_depth_reduction: float


def run_figure6(
    *,
    families: Sequence[str] | None = None,
    size_indices: Sequence[int] = (0, 1),
    omega: int = 25,
    seed: int = 0,
) -> tuple[list[Figure6Row], str]:
    """Figure 6: search oracle with gate-count vs mixed (depth-aware) cost.

    Runs layered POPQC (Ω counted in layers) with the Quartz-like search
    oracle under both objectives and reports average gate and depth
    reductions, as the paper's paired bar charts do.
    """
    rows = []
    for fam in families or family_names():
        acc = [0.0, 0.0, 0.0, 0.0]
        for idx in size_indices:
            circuit = generate(fam, idx, seed=seed)
            d0, g0 = circuit.depth(), circuit.num_gates
            res_gate = layered_popqc(
                circuit,
                SearchOracle(GateCount()),
                omega,
                cost=lambda gs: float(len(gs)),
            )
            res_mixed = layered_popqc(
                circuit,
                SearchOracle(MixedCost(10.0)),
                omega,
                cost=mixed_cost(10.0),
            )
            acc[0] += 1.0 - res_gate.circuit.num_gates / g0
            acc[1] += 1.0 - res_gate.circuit.depth() / d0
            acc[2] += 1.0 - res_mixed.circuit.num_gates / g0
            acc[3] += 1.0 - res_mixed.circuit.depth() / d0
        k = len(size_indices)
        rows.append(Figure6Row(fam, acc[0] / k, acc[1] / k, acc[2] / k, acc[3] / k))
    text = format_table(
        [
            "benchmark",
            "gate-cost: gate red",
            "gate-cost: depth red",
            "mixed-cost: gate red",
            "mixed-cost: depth red",
        ],
        [
            [
                r.family,
                f"{100 * r.gate_cost_gate_reduction:.1f}%",
                f"{100 * r.gate_cost_depth_reduction:.1f}%",
                f"{100 * r.mixed_cost_gate_reduction:.1f}%",
                f"{100 * r.mixed_cost_depth_reduction:.1f}%",
            ]
            for r in rows
        ],
        title="Figure 6: search oracle, gate cost vs mixed (10*depth + gates) cost",
    )
    return rows, text


@dataclass
class WorkPoint:
    family: str
    gates: int
    time_seconds: float
    oracle_calls: int


def run_figure7(
    *,
    families: Sequence[str] | None = None,
    size_indices: Sequence[int] = (0, 1, 2, 3),
    omega: int = DEFAULT_OMEGA,
    seed: int = 0,
) -> tuple[list[WorkPoint], str]:
    """Figure 7: single-thread work and oracle calls vs circuit size."""
    oracle = NamOracle()
    points = []
    for fam in families or family_names():
        for idx in size_indices:
            circuit = generate(fam, idx, seed=seed)
            res = popqc(circuit, oracle, omega, parmap=SerialMap())
            points.append(
                WorkPoint(
                    fam, circuit.num_gates, res.stats.total_time, res.stats.oracle_calls
                )
            )
    text = format_table(
        ["benchmark", "gates", "time (s)", "oracle calls", "calls/gate"],
        [
            [p.family, p.gates, p.time_seconds, p.oracle_calls,
             f"{p.oracle_calls / p.gates:.4f}"]
            for p in points
        ],
        title="Figure 7: work and oracle calls vs number of gates",
    )
    return points, text


@dataclass
class OracleFractionPoint:
    family: str
    gates: int
    oracle_fraction: float


def run_figure8(
    *,
    families: Sequence[str] | None = None,
    size_indices: Sequence[int] = (0, 1, 2, 3),
    omega: int = DEFAULT_OMEGA,
    seed: int = 0,
) -> tuple[list[OracleFractionPoint], str]:
    """Figure 8: fraction of total time spent inside the oracle."""
    oracle = NamOracle()
    points = []
    for fam in families or family_names():
        for idx in size_indices:
            circuit = generate(fam, idx, seed=seed)
            res = popqc(circuit, oracle, omega, parmap=SerialMap())
            points.append(
                OracleFractionPoint(fam, circuit.num_gates, res.stats.oracle_fraction)
            )
    text = format_table(
        ["benchmark", "gates", "oracle fraction"],
        [[p.family, p.gates, f"{100 * p.oracle_fraction:.1f}%"] for p in points],
        title="Figure 8: fraction of time spent in oracle calls",
    )
    return points, text


@dataclass
class OmegaPoint:
    omega: int
    avg_reduction: float
    avg_time: float


def run_figure9(
    *,
    families: Sequence[str] | None = None,
    size_index: int = 1,
    omegas: Sequence[int] = (25, 50, 100, 200, 400),
    seed: int = 0,
) -> tuple[list[OmegaPoint], str]:
    """Figure 9: impact of Ω on average quality and time."""
    oracle = NamOracle()
    fams = list(families or family_names())
    circuits = [generate(f, size_index, seed=seed) for f in fams]
    points = []
    for omega in omegas:
        red, t = 0.0, 0.0
        for circuit in circuits:
            res = popqc(circuit, oracle, omega, parmap=SerialMap())
            red += res.stats.gate_reduction
            t += res.stats.total_time
        points.append(OmegaPoint(omega, red / len(circuits), t / len(circuits)))
    text = format_table(
        ["omega", "avg gate reduction", "avg time (s)"],
        [[p.omega, f"{100 * p.avg_reduction:.2f}%", p.avg_time] for p in points],
        title="Figure 9: impact of omega on quality and running time",
    )
    return points, text
