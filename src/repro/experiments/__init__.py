"""Experiment drivers regenerating every table and figure of the paper."""

from .figures import (
    DEFAULT_WORKER_LADDER,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
)
from .report import format_series, format_table, to_csv_string, write_csv
from .tables import (
    DEFAULT_OMEGA,
    Table1Row,
    Table2Row,
    Table3Row,
    Table4Row,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)

__all__ = [
    "DEFAULT_OMEGA",
    "DEFAULT_WORKER_LADDER",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "Table4Row",
    "format_series",
    "format_table",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "to_csv_string",
    "write_csv",
]
