"""Lazy oracle-result decoding for the segment transports.

POPQC's acceptance test (Algorithm 3) needs only a *cost* to decide
whether an oracle rewrite is kept, and the default cost is the gate
count — which the packed wire format stores in its header.  Decoding a
rejected result into ``Gate`` objects is therefore pure waste, and on
converged workloads most results are rejected.  This module makes the
waste structural instead of accidental: every transport returns
:class:`LazySegmentResult` handles, ``len()`` answers from the packed
header, and the per-gate decode runs only when a driver actually
indexes or iterates the result — i.e. only for segments it accepted.

The handles are plain ``Sequence[Gate]`` objects, so drivers and tests
that treated results as gate lists keep working unchanged; comparing a
handle to a list decodes it, as does any element access.

Decode accounting flows through :class:`DecodeStats` (one per
executor): how many byte-carrying results came back, how many were ever
decoded, and the byte volumes of both.  The difference is the work lazy
decoding skipped; drivers surface it as
``OptimizationStats.skipped_decode_bytes``.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Iterator, Optional

from ..circuits import encoding
from ..circuits.gate import Gate

__all__ = ["DecodeStats", "LazySegmentResult"]


class DecodeStats:
    """Counters for lazy result decoding, owned by an executor.

    ``results_returned`` / ``result_bytes_returned`` count every
    byte-carrying result handed back by :meth:`ProcessMap.map_segments`;
    ``results_decoded`` / ``result_bytes_decoded`` count the subset
    whose gates were ever materialized.  Results born from gate lists
    (pickle transport, inline fallbacks) carry no decodable bytes and
    are not counted.
    """

    __slots__ = (
        "results_returned",
        "results_decoded",
        "result_bytes_returned",
        "result_bytes_decoded",
    )

    def __init__(self) -> None:
        self.results_returned = 0
        self.results_decoded = 0
        self.result_bytes_returned = 0
        self.result_bytes_decoded = 0

    def note_returned(self, nbytes: int) -> None:
        """Record a byte-carrying result crossing back to the driver."""
        self.results_returned += 1
        self.result_bytes_returned += nbytes

    def note_decoded(self, nbytes: int) -> None:
        """Record the first (and only) decode of a returned result."""
        self.results_decoded += 1
        self.result_bytes_decoded += nbytes


class LazySegmentResult(Sequence):
    """An oracle result that decodes its gates only on first access.

    Three birth states, one per transport situation:

    * :meth:`from_packed` — the flat wire format as bytes (encoded and
      shm transports); ``len()`` reads the packed header.
    * :meth:`from_encoded` — an :class:`~repro.circuits.encoding.
      EncodedSegment` (threads transport with a packed-native oracle).
    * :meth:`from_gates` — an already-decoded gate list (pickle
      transport, inline fallbacks); nothing left to skip.

    All decoding routes through the :mod:`repro.circuits.encoding`
    module attributes, so tests can spy on ``decode_segment`` /
    ``unpack_segment_from`` to prove rejected results never decode.
    """

    __slots__ = ("_gates", "_packed", "_encoded", "_length", "_nbytes", "_stats")

    def __init__(
        self,
        *,
        gates: Optional[list[Gate]] = None,
        packed: Optional[bytes] = None,
        encoded: Optional[encoding.EncodedSegment] = None,
        length: int = 0,
        nbytes: int = 0,
        stats: Optional[DecodeStats] = None,
    ):
        self._gates = gates
        self._packed = packed
        self._encoded = encoded
        self._length = length
        self._nbytes = nbytes
        self._stats = stats

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_packed(
        cls, payload: bytes, stats: Optional[DecodeStats] = None
    ) -> "LazySegmentResult":
        """Wrap one packed segment (the whole ``payload``)."""
        length, _end = encoding.packed_segment_span(payload, 0)
        result = cls(
            packed=payload, length=length, nbytes=len(payload), stats=stats
        )
        if stats is not None:
            stats.note_returned(len(payload))
        return result

    @classmethod
    def from_encoded(
        cls,
        encoded: encoding.EncodedSegment,
        stats: Optional[DecodeStats] = None,
    ) -> "LazySegmentResult":
        """Wrap an in-process :class:`EncodedSegment` (threads transport)."""
        result = cls(
            encoded=encoded,
            length=encoded.length,
            nbytes=encoded.nbytes,
            stats=stats,
        )
        if stats is not None:
            stats.note_returned(encoded.nbytes)
        return result

    @classmethod
    def from_gates(cls, gates: list[Gate]) -> "LazySegmentResult":
        """Wrap an already-decoded gate list (no bytes to skip)."""
        return cls(gates=gates, length=len(gates))

    # -- lazy decode ---------------------------------------------------------

    def gates(self) -> list[Gate]:
        """The decoded gate list (decoded once, then cached)."""
        if self._gates is None:
            if self._encoded is None:
                assert self._packed is not None
                self._encoded, _ = encoding.unpack_segment_from(self._packed, 0)
            self._gates = encoding.decode_segment(self._encoded)
            self._packed = None
            self._encoded = None
            if self._stats is not None:
                self._stats.note_decoded(self._nbytes)
        return self._gates

    def packed_bytes(self) -> bytes:
        """The result in the flat wire format (for the segment cache).

        Byte-carrying births return their payload as-is; encoded and
        gate-list births pack on demand.  This is a *serialization*, not
        a decode — it never materializes gates and is not counted by
        :class:`DecodeStats`, so caching a rejected result keeps the
        lazy-decode guarantee intact.
        """
        if self._packed is not None:
            return self._packed
        encoded = self._encoded
        if encoded is None:
            assert self._gates is not None
            encoded = encoding.encode_segment(self._gates)
        buf = bytearray(encoding.packed_segment_nbytes(encoded))
        encoding.pack_segment_into(encoded, buf, 0)
        return bytes(buf)

    @property
    def decoded(self) -> bool:
        """Whether the gates have been materialized."""
        return self._gates is not None

    @property
    def nbytes(self) -> int:
        """Wire size of the result (0 for gate-list births)."""
        return self._nbytes

    # -- Sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index):
        return self.gates()[index]

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LazySegmentResult):
            return self.gates() == other.gates()
        if isinstance(other, (list, tuple)):
            return self.gates() == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "decoded" if self.decoded else f"packed:{self._nbytes}B"
        return f"LazySegmentResult(len={self._length}, {state})"
