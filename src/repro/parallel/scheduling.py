"""Scheduling policies for the parallel executors.

Two concerns live here:

* **Makespan models** for the simulated-parallelism executor.  Greedy
  (Graham) list scheduling assigns each task, in arrival order, to the
  worker that becomes free first.  Its makespan is within 2x of optimal
  and — more importantly for our purposes — it models what a
  work-stealing fork-join runtime (Rayon in the paper's implementation)
  achieves on a parallel map whose iterations have heterogeneous costs.
* **Adaptive chunking** for the real process pool.  A chunk must be
  large enough that per-chunk dispatch overhead (pickle + pipe + wakeup)
  is amortized by useful oracle work, yet small enough that every
  worker gets several chunks for load balancing — the same trade-off
  Rayon's adaptive loop splitting resolves dynamically.
  :func:`adaptive_chunksize` resolves it from a measured per-task time
  estimate fed back by the executor.  :func:`batch_segments` is the
  same policy expressed as an explicit plan: it partitions a round's
  segment indices into contiguous per-task batches, which the
  shared-memory transport ships as ``(arena, start, end)`` descriptors
  — one pool task per batch instead of one per segment, cutting
  dispatch count by the batch width.
"""

from __future__ import annotations

import heapq
from typing import Sequence

__all__ = [
    "adaptive_chunksize",
    "batch_segments",
    "greedy_makespan",
    "lpt_makespan",
    "ideal_makespan",
]

#: Estimated fixed cost of dispatching one chunk to a pool worker
#: (pickle framing, pipe write/read, scheduler wakeup) — conservative
#: for CPython's multiprocessing on Linux.
DISPATCH_OVERHEAD_SECONDS = 5e-4

#: Target chunks per worker when task times allow it; >1 gives the pool
#: slack to balance heterogeneous oracle calls (Graham's bound improves
#: as the longest chunk shrinks relative to the makespan).
CHUNKS_PER_WORKER = 4


def adaptive_chunksize(
    num_items: int,
    workers: int,
    est_task_seconds: float,
    *,
    dispatch_overhead_seconds: float = DISPATCH_OVERHEAD_SECONDS,
    chunks_per_worker: int = CHUNKS_PER_WORKER,
) -> int:
    """Chunk size for a pool map over ``num_items`` tasks.

    ``est_task_seconds`` is the executor's running estimate of one
    task's duration (0 when unknown).  The returned size is the
    balance-oriented chunk (``num_items / (chunks_per_worker *
    workers)``) enlarged, when tasks are measurably short, so each
    chunk carries at least ~10x the dispatch overhead of useful work —
    but never beyond ``num_items / workers``, which would idle workers.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    if num_items <= 0:
        return 1
    balance = -(-num_items // (chunks_per_worker * workers))  # ceil div
    chunk = balance
    if est_task_seconds > 0.0:
        target = 10.0 * dispatch_overhead_seconds
        if target >= est_task_seconds * num_items:
            chunk = num_items  # even one chunk per worker can't amortize
        else:
            chunk = max(balance, int(target / est_task_seconds) + 1)
    per_worker = -(-num_items // workers)
    return max(1, min(chunk, per_worker))


def batch_segments(
    num_segments: int,
    workers: int,
    est_task_seconds: float,
    *,
    dispatch_overhead_seconds: float = DISPATCH_OVERHEAD_SECONDS,
    chunks_per_worker: int = CHUNKS_PER_WORKER,
) -> list[tuple[int, int]]:
    """Partition ``range(num_segments)`` into contiguous dispatch batches.

    Each returned ``(start, end)`` half-open range becomes one pool
    task.  Batch width follows :func:`adaptive_chunksize` on the
    executor's measured per-segment oracle time, so cheap segments are
    coalesced until a task carries ~10x its dispatch overhead of work,
    while expensive segments stay spread ``chunks_per_worker`` batches
    per worker for load balancing.  On a 20k-gate circuit with Ω=100
    (≈100 segments/round of sub-millisecond oracle calls) this cuts
    per-round task dispatches by roughly an order of magnitude versus
    one task per segment.
    """
    if num_segments <= 0:
        return []
    width = adaptive_chunksize(
        num_segments,
        workers,
        est_task_seconds,
        dispatch_overhead_seconds=dispatch_overhead_seconds,
        chunks_per_worker=chunks_per_worker,
    )
    return [
        (start, min(start + width, num_segments))
        for start in range(0, num_segments, width)
    ]


def greedy_makespan(durations: Sequence[float], workers: int) -> float:
    """Makespan of Graham list scheduling in task-arrival order."""
    if workers < 1:
        raise ValueError("workers must be positive")
    if not durations:
        return 0.0
    free = [0.0] * min(workers, len(durations))
    heapq.heapify(free)
    finish = 0.0
    for d in durations:
        if d < 0:
            raise ValueError("negative task duration")
        start = heapq.heappop(free)
        end = start + d
        heapq.heappush(free, end)
        if end > finish:
            finish = end
    return finish


def lpt_makespan(durations: Sequence[float], workers: int) -> float:
    """Longest-processing-time-first makespan (a tighter schedule).

    Used as the optimistic bound in sensitivity checks; the simulated
    executor defaults to :func:`greedy_makespan` which is closer to what
    a dynamic scheduler achieves.
    """
    return greedy_makespan(sorted(durations, reverse=True), workers)


def ideal_makespan(durations: Sequence[float], workers: int) -> float:
    """The trivial lower bound: max(total/p, longest task)."""
    if not durations:
        return 0.0
    total = float(sum(durations))
    longest = float(max(durations))
    return max(total / workers, longest)
