"""List-scheduling helpers for the simulated-parallelism executor.

Greedy (Graham) list scheduling assigns each task, in arrival order, to
the worker that becomes free first.  Its makespan is within 2x of optimal
and — more importantly for our purposes — it models what a work-stealing
fork-join runtime (Rayon in the paper's implementation) achieves on a
parallel map whose iterations have heterogeneous costs.
"""

from __future__ import annotations

import heapq
from typing import Sequence

__all__ = ["greedy_makespan", "lpt_makespan", "ideal_makespan"]


def greedy_makespan(durations: Sequence[float], workers: int) -> float:
    """Makespan of Graham list scheduling in task-arrival order."""
    if workers < 1:
        raise ValueError("workers must be positive")
    if not durations:
        return 0.0
    free = [0.0] * min(workers, len(durations))
    heapq.heapify(free)
    finish = 0.0
    for d in durations:
        if d < 0:
            raise ValueError("negative task duration")
        start = heapq.heappop(free)
        end = start + d
        heapq.heappush(free, end)
        if end > finish:
            finish = end
    return finish


def lpt_makespan(durations: Sequence[float], workers: int) -> float:
    """Longest-processing-time-first makespan (a tighter schedule).

    Used as the optimistic bound in sensitivity checks; the simulated
    executor defaults to :func:`greedy_makespan` which is closer to what
    a dynamic scheduler achieves.
    """
    return greedy_makespan(sorted(durations, reverse=True), workers)


def ideal_makespan(durations: Sequence[float], workers: int) -> float:
    """The trivial lower bound: max(total/p, longest task)."""
    if not durations:
        return 0.0
    total = float(sum(durations))
    longest = float(max(durations))
    return max(total / workers, longest)
