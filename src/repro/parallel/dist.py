"""Distributed socket transport: the packed wire format over TCP.

The transport ladder so far kept every byte on one machine: the
``encoded`` transport ships packed segments through an executor pipe,
``shm`` moves them through pooled shared-memory arenas, ``threads``
moves nothing at all.  This module adds the cluster rung from the
ROADMAP — the *same* packed bytes (:func:`repro.circuits.encoding.
pack_segment_into` / :func:`~repro.circuits.encoding.
unpack_segment_from`), carried over sockets to worker processes that
may live on other machines.

Three pieces:

* **A length-prefixed frame codec.**  Every message on the wire is one
  frame: a fixed 16-byte header (magic, frame type, payload length)
  followed by the payload.  Segment batches and result batches embed
  the flat segment wire format unchanged, so a segment's bytes are
  identical whether they land in a pipe, an arena or a TCP stream.
  :class:`FrameReader` is an incremental parser fed arbitrary
  ``recv`` chunks — partial frames simply wait for more bytes, and a
  stream that *ends* mid-frame raises :class:`FrameProtocolError`
  instead of yielding a torn message.
* **A worker host** (:class:`WorkerHost`): a TCP server loop, exposed
  as the ``popqc worker`` CLI subcommand, that accepts client
  connections, registers an oracle per connection through the same
  generation-token protocol the process transports use (a
  ``REGISTER`` frame carrying the pickled oracle and its generation;
  segment frames tagged with a different generation are refused with
  a typed error, never silently served), and answers batched segment
  frames with batched result frames.
* **A client-side host registry** (:class:`SocketHostPool`), used by
  :meth:`repro.parallel.ProcessMap.map_segments` when constructed
  with ``transport="socket"``: one connection (and one dispatcher
  thread) per worker host, round-robining the batches produced by
  :func:`repro.parallel.scheduling.batch_segments` across hosts
  through a shared work queue.  Heartbeat pings re-validate idle
  connections between rounds; a connection that dies mid-round has
  its in-flight batch *requeued* to the surviving hosts and is
  reconnected (and re-registered) for the next round, so a killed
  worker costs latency, never correctness.  When every host is gone
  the round fails with :class:`WorkerUnavailableError` — a typed,
  catchable failure, not a hang.

Results come back as flat packed segments and flow into
:class:`~repro.parallel.results.LazySegmentResult` unchanged, so lazy
decode and byte-identical equivalence hold on the socket transport
exactly as on the other four.  (Worker-side code in this module calls
the codec through *direct* imports rather than module attributes, so
the parent-side decode spies of ``tests/parallel/test_lazy_decode.py``
observe only what the driver decodes, even with in-process test
clusters.)

Frame layout (all integers little-endian)::

    frame      <4sBxxxQ: magic b"PQCF", frame type, payload nbytes
    REGISTER   <Q generation> + pickled oracle
    REGISTER_OK<QQ: generation, capacity>
    SEGMENTS   <QQQ: generation, batch id, count> + count packed segments
    RESULTS    <QQ: batch id, count> + count packed segments
    ERROR      <B kind> + utf-8 message
    PING/PONG  empty payload
    SHUTDOWN   empty payload
    JOB        <QIIQI4x: job tag, omega, num qubits + 1, max rounds + 1,
               priority> + the circuit as one packed segment
    RESULT     <QI: job tag, stats-JSON nbytes> + stats JSON
               -- pad to 8 -- + the optimized circuit as one packed segment
    STATUS     empty payload as a request; utf-8 JSON as the reply
    AUTH       the shared secret as utf-8 bytes  (client -> server)
    AUTH_OK    empty payload                     (server -> client)
    BUSY       <Bxxxd: reason kind, suggested retry-after seconds>
               + utf-8 message

AUTH is the shared-token handshake of *both* server protocols: a
``popqc worker`` or ``popqc serve`` process started with an auth token
refuses every other frame (typed ``ERR_AUTH`` error, connection
closed) until the connection presents the token, compared in constant
time.  BUSY is the optimization service's admission-control reply to a
JOB the server cannot take right now (active-job quota, per-client
quota, or a saturated scheduler queue); it names the reason and a
suggested retry delay, and :class:`repro.service.ServiceClient`
answers it with bounded exponential backoff.  JOB/RESULT/STATUS/BUSY
belong to the ``popqc serve`` optimization service
(:mod:`repro.service`), which speaks this codec on its own port; the
``popqc worker`` protocol never carries them.

Packed segments are 8-byte-aligned blocks, so consecutive segments in
a SEGMENTS/RESULTS payload are walked with
:func:`~repro.circuits.encoding.packed_segment_span` alone.
"""

from __future__ import annotations

import contextlib
import hmac
import pickle
import socket
import struct
import threading
import time
from collections import deque
from typing import Callable, Iterator, Optional, Sequence

from ..circuits.encoding import (
    EncodedSegment,
    pack_segment_into,
    packed_segment_nbytes,
    packed_segment_span,
    unpack_segment_from,
)
from .executor import StaleOracleError, _oracle_encoded_result, _pack_to_bytes

__all__ = [
    "BUSY_MAX_ACTIVE",
    "BUSY_PEER_QUOTA",
    "BUSY_QUEUE_FULL",
    "FRAME_AUTH",
    "FRAME_AUTH_OK",
    "FRAME_BUSY",
    "FRAME_ERROR",
    "FRAME_HEADER_SIZE",
    "FRAME_JOB",
    "FRAME_PING",
    "FRAME_PONG",
    "FRAME_REGISTER",
    "FRAME_REGISTER_OK",
    "FRAME_RESULT",
    "FRAME_RESULTS",
    "FRAME_SEGMENTS",
    "FRAME_SHUTDOWN",
    "FRAME_STATUS",
    "AuthenticationError",
    "ConnectionClosedError",
    "FrameProtocolError",
    "FrameReader",
    "HostConnection",
    "RemoteOracleError",
    "SocketHostPool",
    "WorkerHost",
    "WorkerUnavailableError",
    "local_cluster",
    "pack_busy_payload",
    "pack_frame",
    "pack_job_payload",
    "pack_register_payload",
    "pack_result_payload",
    "pack_results_payload",
    "pack_segments_payload",
    "parse_address",
    "recv_frame",
    "split_results_payload",
    "unpack_busy_payload",
    "unpack_job_payload",
    "unpack_register_payload",
    "unpack_result_payload",
    "unpack_segments_payload",
]


# -- frame codec ---------------------------------------------------------------

#: Magic prefix of every frame; a connection speaking anything else is
#: rejected at the first header.
FRAME_MAGIC = b"PQCF"

_FRAME_HEADER = struct.Struct("<4sBxxxQ")

#: Size of the fixed frame header in bytes — the number to add to a
#: payload length when accounting wire traffic, instead of a literal.
FRAME_HEADER_SIZE = _FRAME_HEADER.size

#: Frame types.
FRAME_REGISTER = 1
FRAME_REGISTER_OK = 2
FRAME_SEGMENTS = 3
FRAME_RESULTS = 4
FRAME_ERROR = 5
FRAME_PING = 6
FRAME_PONG = 7
FRAME_SHUTDOWN = 8
FRAME_JOB = 9
FRAME_RESULT = 10
FRAME_STATUS = 11
FRAME_AUTH = 12
FRAME_AUTH_OK = 13
FRAME_BUSY = 14

_KNOWN_FRAMES = frozenset(
    (
        FRAME_REGISTER,
        FRAME_REGISTER_OK,
        FRAME_SEGMENTS,
        FRAME_RESULTS,
        FRAME_ERROR,
        FRAME_PING,
        FRAME_PONG,
        FRAME_SHUTDOWN,
        FRAME_JOB,
        FRAME_RESULT,
        FRAME_STATUS,
        FRAME_AUTH,
        FRAME_AUTH_OK,
        FRAME_BUSY,
    )
)

#: Upper bound on a frame payload (1 GiB); a corrupt length field must
#: fail loudly instead of waiting forever for bytes that never come.
MAX_FRAME_BYTES = 1 << 30

_SEGMENTS_HEADER = struct.Struct("<QQQ")  # generation, batch id, count
_RESULTS_HEADER = struct.Struct("<QQ")  # batch id, count
_REGISTER_HEADER = struct.Struct("<Q")  # generation
_REGISTER_OK_HEADER = struct.Struct("<QQ")  # generation, capacity
_ERROR_HEADER = struct.Struct("<B")  # error kind
_JOB_HEADER = struct.Struct(
    "<QIIQI4x"
)  # job tag, omega, num qubits + 1, max rounds + 1, priority (pad to 8)
_RESULT_HEADER = struct.Struct("<QI")  # job tag, stats-JSON nbytes
_BUSY_HEADER = struct.Struct("<Bxxxd")  # reason kind, retry-after seconds

#: Error kinds carried by ERROR frames.
ERR_STALE_ORACLE = 1
ERR_NO_ORACLE = 2
ERR_ORACLE_FAILED = 3
ERR_BAD_FRAME = 4
ERR_JOB_FAILED = 5
ERR_AUTH = 6

#: Reason kinds carried by BUSY frames (service admission control).
BUSY_MAX_ACTIVE = 1
BUSY_PEER_QUOTA = 2
BUSY_QUEUE_FULL = 3

#: Job priorities ride the wire as a small positive weight; anything a
#: client sends is clamped into this range before it buys fleet share.
MAX_PRIORITY = 16


class FrameProtocolError(RuntimeError):
    """The byte stream violates the frame protocol: bad magic, an
    unknown frame type, an implausible length, or a stream that ended
    in the middle of a frame."""


class ConnectionClosedError(RuntimeError):
    """The peer closed the connection cleanly at a frame boundary."""


class RemoteOracleError(RuntimeError):
    """The oracle raised an exception on the worker host; the message
    carries the remote ``repr``."""


class WorkerUnavailableError(RuntimeError):
    """No worker host could be reached (or every host died mid-round
    and reconnection failed), so the batch queue cannot drain."""


class AuthenticationError(RuntimeError):
    """The peer refused the connection's credentials: a missing or
    wrong AUTH token.  Never retried — a bad token fails identically
    everywhere, so reconnect loops must not absorb it."""


def pack_frame(frame_type: int, payload: bytes = b"") -> bytes:
    """One wire frame: 16-byte header followed by ``payload``."""
    return _FRAME_HEADER.pack(FRAME_MAGIC, frame_type, len(payload)) + payload


class FrameReader:
    """Incremental frame parser over arbitrarily split byte chunks.

    Feed it whatever ``recv`` returned; :meth:`next_frame` yields a
    complete ``(frame type, payload)`` pair when one is buffered and
    ``None`` while bytes are still missing.  The property-test suite
    drives this with every possible chunking of a frame stream.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        """Append raw received bytes to the parse buffer."""
        self._buf += data

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet consumed as a complete frame."""
        return len(self._buf)

    def next_frame(self) -> Optional[tuple[int, bytes]]:
        """The next complete frame, or ``None`` if more bytes are needed.

        Raises :class:`FrameProtocolError` on a corrupt header.
        """
        if len(self._buf) < _FRAME_HEADER.size:
            return None
        magic, frame_type, length = _FRAME_HEADER.unpack_from(self._buf, 0)
        if magic != FRAME_MAGIC:
            raise FrameProtocolError(f"bad frame magic {magic!r}")
        if frame_type not in _KNOWN_FRAMES:
            raise FrameProtocolError(f"unknown frame type {frame_type}")
        if length > MAX_FRAME_BYTES:
            raise FrameProtocolError(f"frame length {length} exceeds the cap")
        end = _FRAME_HEADER.size + length
        if len(self._buf) < end:
            return None
        payload = bytes(self._buf[_FRAME_HEADER.size : end])
        del self._buf[:end]
        return frame_type, payload


def recv_frame(sock: socket.socket, reader: FrameReader) -> tuple[int, bytes]:
    """Block until one complete frame arrives on ``sock``.

    Raises :class:`ConnectionClosedError` when the peer closes cleanly
    between frames and :class:`FrameProtocolError` when the stream ends
    mid-frame (a torn message must never be mistaken for a short one).
    """
    while True:
        frame = reader.next_frame()
        if frame is not None:
            return frame
        data = sock.recv(1 << 16)
        if not data:
            if reader.pending_bytes:
                raise FrameProtocolError(
                    f"connection closed mid-frame with "
                    f"{reader.pending_bytes} bytes pending"
                )
            raise ConnectionClosedError("connection closed")
        reader.feed(data)


# -- payload codecs ------------------------------------------------------------


def pack_register_payload(oracle_blob: bytes, generation: int) -> bytes:
    """REGISTER payload: generation header + the pickled oracle bytes."""
    return _REGISTER_HEADER.pack(generation) + oracle_blob


def unpack_register_payload(payload: bytes) -> tuple[int, object]:
    """(generation, oracle) from a REGISTER payload."""
    (generation,) = _REGISTER_HEADER.unpack_from(payload, 0)
    oracle = pickle.loads(payload[_REGISTER_HEADER.size :])
    return generation, oracle


def pack_segments_payload(
    generation: int, batch_id: int, encoded: Sequence[EncodedSegment]
) -> bytes:
    """SEGMENTS payload: header + the batch in the flat wire format."""
    sizes = [packed_segment_nbytes(enc) for enc in encoded]
    buf = bytearray(_SEGMENTS_HEADER.size + sum(sizes))
    _SEGMENTS_HEADER.pack_into(buf, 0, generation, batch_id, len(encoded))
    pos = _SEGMENTS_HEADER.size
    for enc in encoded:
        pos = pack_segment_into(enc, buf, pos)
    return bytes(buf)


def unpack_segments_payload(
    payload: bytes,
) -> tuple[int, int, list[EncodedSegment]]:
    """(generation, batch id, segments) from a SEGMENTS payload.

    The returned segments are zero-copy views into ``payload``.
    Raises :class:`FrameProtocolError` when the declared count walks
    past the end of the payload.
    """
    if len(payload) < _SEGMENTS_HEADER.size:
        raise FrameProtocolError("SEGMENTS payload shorter than its header")
    generation, batch_id, count = _SEGMENTS_HEADER.unpack_from(payload, 0)
    pos = _SEGMENTS_HEADER.size
    segments: list[EncodedSegment] = []
    try:
        for _ in range(count):
            segment, pos = unpack_segment_from(payload, pos)
            segments.append(segment)
    except (struct.error, ValueError) as exc:
        raise FrameProtocolError(f"torn SEGMENTS payload: {exc}") from exc
    if pos > len(payload):
        raise FrameProtocolError("SEGMENTS payload truncated mid-segment")
    return generation, batch_id, segments


def pack_results_payload(batch_id: int, packed_results: Sequence[bytes]) -> bytes:
    """RESULTS payload: header + each result's packed bytes, in order."""
    head = _RESULTS_HEADER.pack(batch_id, len(packed_results))
    return head + b"".join(packed_results)


def split_results_payload(payload: bytes) -> tuple[int, list[bytes]]:
    """(batch id, per-segment packed blobs) from a RESULTS payload.

    Splits on :func:`packed_segment_span` header reads only — no
    per-gate decoding, preserving result laziness end to end.
    """
    if len(payload) < _RESULTS_HEADER.size:
        raise FrameProtocolError("RESULTS payload shorter than its header")
    batch_id, count = _RESULTS_HEADER.unpack_from(payload, 0)
    pos = _RESULTS_HEADER.size
    blobs: list[bytes] = []
    try:
        for _ in range(count):
            _, end = packed_segment_span(payload, pos)
            if end > len(payload):
                raise FrameProtocolError("RESULTS payload truncated mid-segment")
            blobs.append(payload[pos:end])
            pos = end
    except struct.error as exc:
        raise FrameProtocolError(f"torn RESULTS payload: {exc}") from exc
    return batch_id, blobs


def pack_error_payload(kind: int, message: str) -> bytes:
    """ERROR payload: kind byte + utf-8 message."""
    return _ERROR_HEADER.pack(kind) + message.encode("utf-8")


def pack_busy_payload(kind: int, retry_after: float, message: str) -> bytes:
    """BUSY payload: reason kind + suggested retry delay + utf-8 message."""
    return _BUSY_HEADER.pack(kind, retry_after) + message.encode("utf-8")


def unpack_busy_payload(payload: bytes) -> tuple[int, float, str]:
    """(reason kind, retry-after seconds, message) from a BUSY payload."""
    if len(payload) < _BUSY_HEADER.size:
        raise FrameProtocolError("BUSY payload shorter than its header")
    kind, retry_after = _BUSY_HEADER.unpack_from(payload, 0)
    message = payload[_BUSY_HEADER.size :].decode("utf-8", "replace")
    return kind, retry_after, message


def unpack_error_payload(payload: bytes) -> tuple[int, str]:
    """(kind, message) from an ERROR payload."""
    (kind,) = _ERROR_HEADER.unpack_from(payload, 0)
    return kind, payload[_ERROR_HEADER.size :].decode("utf-8", "replace")


def pack_job_payload(
    job_tag: int,
    omega: int,
    num_qubits: Optional[int],
    max_rounds: Optional[int],
    encoded: EncodedSegment,
    priority: int = 1,
) -> bytes:
    """JOB payload: job header + the circuit as one packed segment.

    ``job_tag`` is a client-chosen identifier echoed in the RESULT
    frame.  ``num_qubits`` and ``max_rounds`` both wire ``None`` as 0
    and a value ``v`` as ``v + 1``, so an explicit 0 (a legal
    ``max_rounds`` meaning "zero rounds") survives the trip.
    ``priority`` is the job's scheduling weight (1..``MAX_PRIORITY``;
    clamped on both ends of the wire): a priority-4 job draws roughly
    4x the fleet share of a priority-1 job in each merged round.
    """
    head = _JOB_HEADER.pack(
        job_tag,
        omega,
        0 if num_qubits is None else num_qubits + 1,
        0 if max_rounds is None else max_rounds + 1,
        min(MAX_PRIORITY, max(1, priority)),
    )
    buf = bytearray(len(head) + packed_segment_nbytes(encoded))
    buf[: len(head)] = head
    pack_segment_into(encoded, buf, len(head))
    return bytes(buf)


def unpack_job_payload(
    payload: bytes,
) -> tuple[int, int, Optional[int], Optional[int], EncodedSegment, int]:
    """(job tag, omega, num qubits, max rounds, circuit, priority)
    from a JOB payload.

    The circuit comes back as a zero-copy :class:`EncodedSegment` view
    into ``payload``.  The priority is clamped into
    ``[1, MAX_PRIORITY]`` — the sender is untrusted, and a forged
    weight must never buy more than the documented maximum share.
    Raises :class:`FrameProtocolError` on a torn payload.
    """
    if len(payload) < _JOB_HEADER.size:
        raise FrameProtocolError("JOB payload shorter than its header")
    job_tag, omega, nq1, mr1, priority = _JOB_HEADER.unpack_from(payload, 0)
    try:
        encoded, end = unpack_segment_from(payload, _JOB_HEADER.size)
    except (struct.error, ValueError) as exc:
        raise FrameProtocolError(f"torn JOB payload: {exc}") from exc
    if end > len(payload):
        raise FrameProtocolError("JOB payload truncated mid-circuit")
    return (
        job_tag,
        omega,
        nq1 - 1 if nq1 else None,
        mr1 - 1 if mr1 else None,
        encoded,
        min(MAX_PRIORITY, max(1, priority)),
    )


def pack_result_payload(
    job_tag: int, stats_json: bytes, encoded: EncodedSegment
) -> bytes:
    """RESULT payload: header + stats JSON + the packed optimized circuit.

    The packed circuit starts at the first 8-aligned offset after the
    JSON, so consecutive reads stay on the wire format's natural
    alignment.
    """
    head = _RESULT_HEADER.pack(job_tag, len(stats_json))
    pos = _RESULT_HEADER.size + len(stats_json)
    start = pos + (-pos) % 8
    buf = bytearray(start + packed_segment_nbytes(encoded))
    buf[: _RESULT_HEADER.size] = head
    buf[_RESULT_HEADER.size : pos] = stats_json
    pack_segment_into(encoded, buf, start)
    return bytes(buf)


def unpack_result_payload(
    payload: bytes,
) -> tuple[int, bytes, EncodedSegment]:
    """(job tag, stats JSON bytes, circuit) from a RESULT payload."""
    if len(payload) < _RESULT_HEADER.size:
        raise FrameProtocolError("RESULT payload shorter than its header")
    job_tag, json_len = _RESULT_HEADER.unpack_from(payload, 0)
    pos = _RESULT_HEADER.size + json_len
    if pos > len(payload):
        raise FrameProtocolError("RESULT payload shorter than its stats JSON")
    stats_json = bytes(payload[_RESULT_HEADER.size : pos])
    start = pos + (-pos) % 8
    try:
        encoded, end = unpack_segment_from(payload, start)
    except (struct.error, ValueError) as exc:
        raise FrameProtocolError(f"torn RESULT payload: {exc}") from exc
    if end > len(payload):
        raise FrameProtocolError("RESULT payload truncated mid-circuit")
    return job_tag, stats_json, encoded


def parse_address(spec: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (host defaults to loopback)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {spec!r}")
    return host or "127.0.0.1", int(port)


def _raise_remote_error(payload: bytes) -> None:
    """Turn an ERROR frame into the matching typed client exception."""
    kind, message = unpack_error_payload(payload)
    if kind == ERR_STALE_ORACLE:
        raise StaleOracleError(message)
    if kind == ERR_ORACLE_FAILED:
        raise RemoteOracleError(message)
    if kind == ERR_AUTH:
        raise AuthenticationError(message)
    raise FrameProtocolError(f"worker refused the frame (kind {kind}): {message}")


# -- worker host (server side) -------------------------------------------------


class WorkerHost:
    """TCP server answering segment-batch frames with result frames.

    One handler thread per client connection; each connection carries
    its own oracle registration (REGISTER frame, pickled oracle +
    generation token).  SEGMENTS frames tagged with any other
    generation are answered with a typed ``stale oracle`` error frame,
    mirroring :class:`~repro.parallel.StaleOracleError` on the process
    transports.  ``port=0`` binds an ephemeral port; :attr:`address`
    reports the bound endpoint either way.

    ``capacity`` advertises how many batches this host comfortably
    serves at once (its core count, typically — ``popqc worker
    --capacity``).  It is reported to every client in the REGISTER
    reply, and :class:`SocketHostPool` weights its round-robin by it,
    so a 16-core host in a heterogeneous cluster draws 4x the batches
    of a 4-core one instead of an equal share.

    ``auth_token`` (``popqc worker --auth-token``) demands an AUTH
    frame carrying the shared secret before any other frame is
    accepted on a connection; the compare is constant-time, and a
    missing or wrong token is refused with a typed ``ERR_AUTH`` error
    and a closed connection.  ``idle_timeout_seconds`` bounds how long
    a handler thread blocks waiting for a client's next frame, so a
    slow-loris connection (opened, then silent) cannot pin a thread
    for the life of the process.

    Attributes
    ----------
    segments_served / batches_served:
        Totals across all connections (for the CLI status line).
    bytes_received / bytes_sent:
        Frame bytes in and out, payloads included.
    auth_failures:
        Connections refused for a missing or wrong AUTH token.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity: int = 1,
        auth_token: Optional[str] = None,
        idle_timeout_seconds: Optional[float] = 600.0,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._auth_token = (
            auth_token.encode("utf-8") if auth_token is not None else None
        )
        self.idle_timeout_seconds = idle_timeout_seconds
        self.auth_failures = 0
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self.segments_served = 0
        self.batches_served = 0
        self.bytes_received = 0
        self.bytes_sent = 0
        self._lock = threading.Lock()
        self._closing = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: list[threading.Thread] = []
        self._conns: list[socket.socket] = []

    @property
    def address(self) -> str:
        """The bound endpoint as ``"host:port"``."""
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`stop` (blocking)."""
        while not self._closing.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:  # listener shut down by stop()
                break
            if self._closing.is_set():
                # accept() raced stop(): refuse, don't serve
                with contextlib.suppress(OSError):
                    conn.close()
                break
            if self.idle_timeout_seconds is not None:
                conn.settimeout(self.idle_timeout_seconds)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            # both mutations under the lock: stop() snapshots these
            # lists from another thread, and pruning finished handlers
            # here keeps a high-churn client from growing them forever
            with self._lock:
                self._conns.append(conn)
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]
                self._conn_threads.append(thread)
            thread.start()

    def start(self) -> "WorkerHost":
        """Serve in a daemon thread (for in-process clusters); returns self."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Close the listener and every open connection (idempotent).

        Clients blocked on a reply observe the close as a dropped
        connection — exactly the fault the client registry is built to
        absorb, which is why the fault-injection suite stops hosts
        mid-round with this method.
        """
        self._closing.set()
        # shutdown() (not just close()) wakes a thread blocked in
        # accept(): on Linux, close() alone leaves the in-flight accept
        # holding the listening socket open, silently accepting the
        # very reconnects a stopped host must refuse
        with contextlib.suppress(OSError):
            self._listener.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._listener.close()
        with self._lock:
            conns, self._conns = self._conns, []
            threads = list(self._conn_threads)
        for conn in conns:
            with contextlib.suppress(OSError):
                conn.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                conn.close()
        for thread in threads:
            thread.join(timeout=1.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)

    # -- connection handling ---------------------------------------------------

    def _send(self, conn: socket.socket, frame: bytes) -> None:
        conn.sendall(frame)
        with self._lock:
            self.bytes_sent += len(frame)

    def _check_auth(self, payload: bytes) -> bool:
        """Constant-time validation of one AUTH payload."""
        if self._auth_token is None:
            return True  # no token configured: AUTH is a friendly no-op
        return hmac.compare_digest(payload, self._auth_token)

    def _serve_connection(self, conn: socket.socket) -> None:
        """Serve one client until it disconnects or the host stops."""
        reader = FrameReader()
        oracle: Optional[Callable] = None
        generation = -1
        authed = self._auth_token is None
        try:
            while True:
                frame_type, payload = self._recv(conn, reader)
                if frame_type == FRAME_AUTH:
                    if self._check_auth(payload):
                        authed = True
                        self._send(conn, pack_frame(FRAME_AUTH_OK))
                        continue
                    with self._lock:
                        self.auth_failures += 1
                    self._send(
                        conn,
                        pack_frame(
                            FRAME_ERROR,
                            pack_error_payload(ERR_AUTH, "invalid auth token"),
                        ),
                    )
                    return  # wrong secret: drop the connection
                if not authed:
                    with self._lock:
                        self.auth_failures += 1
                    self._send(
                        conn,
                        pack_frame(
                            FRAME_ERROR,
                            pack_error_payload(
                                ERR_AUTH,
                                "authentication required before any "
                                "other frame",
                            ),
                        ),
                    )
                    return
                if frame_type == FRAME_REGISTER:
                    try:
                        generation, oracle = unpack_register_payload(payload)
                    except Exception as exc:  # torn header / corrupt pickle
                        self._send(
                            conn,
                            pack_frame(
                                FRAME_ERROR,
                                pack_error_payload(
                                    ERR_BAD_FRAME,
                                    f"bad REGISTER payload: {exc!r}",
                                ),
                            ),
                        )
                        continue  # previous registration stays in force
                    self._send(
                        conn,
                        pack_frame(
                            FRAME_REGISTER_OK,
                            _REGISTER_OK_HEADER.pack(generation, self.capacity),
                        ),
                    )
                elif frame_type == FRAME_PING:
                    self._send(conn, pack_frame(FRAME_PONG))
                elif frame_type == FRAME_SEGMENTS:
                    self._send(
                        conn, self._answer_segments(payload, oracle, generation)
                    )
                elif frame_type == FRAME_SHUTDOWN:
                    return
                else:
                    self._send(
                        conn,
                        pack_frame(
                            FRAME_ERROR,
                            pack_error_payload(
                                ERR_BAD_FRAME,
                                f"unexpected frame type {frame_type}",
                            ),
                        ),
                    )
        except (ConnectionClosedError, FrameProtocolError, OSError):
            return  # client went away; nothing to answer
        finally:
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)
            with contextlib.suppress(OSError):
                conn.close()

    def _recv(self, conn: socket.socket, reader: FrameReader) -> tuple[int, bytes]:
        frame_type, payload = recv_frame(conn, reader)
        with self._lock:
            self.bytes_received += _FRAME_HEADER.size + len(payload)
        return frame_type, payload

    def _answer_segments(
        self, payload: bytes, oracle: Optional[Callable], generation: int
    ) -> bytes:
        """The reply frame for one SEGMENTS request."""
        try:
            got_generation, batch_id, segments = unpack_segments_payload(payload)
        except FrameProtocolError as exc:
            return pack_frame(
                FRAME_ERROR, pack_error_payload(ERR_BAD_FRAME, str(exc))
            )
        if oracle is None:
            return pack_frame(
                FRAME_ERROR,
                pack_error_payload(
                    ERR_NO_ORACLE, "no oracle registered on this connection"
                ),
            )
        if got_generation != generation:
            return pack_frame(
                FRAME_ERROR,
                pack_error_payload(
                    ERR_STALE_ORACLE,
                    f"batch expects oracle generation {got_generation}, "
                    f"connection registered {generation}",
                ),
            )
        try:
            results = [
                _pack_to_bytes(_oracle_encoded_result(oracle, segment))
                for segment in segments
            ]
        except Exception as exc:  # noqa: BLE001 - forwarded to the client
            return pack_frame(
                FRAME_ERROR, pack_error_payload(ERR_ORACLE_FAILED, repr(exc))
            )
        with self._lock:
            self.segments_served += len(segments)
            self.batches_served += 1
        return pack_frame(FRAME_RESULTS, pack_results_payload(batch_id, results))


# -- client side ---------------------------------------------------------------


class HostConnection:
    """One client connection to a :class:`WorkerHost`.

    Request/response is synchronous per connection (the registry runs
    one dispatcher thread per host, so the cluster as a whole is
    parallel).  Byte counters feed the executor's wire statistics.
    """

    def __init__(
        self,
        address: str,
        connect_timeout: float = 5.0,
        request_timeout: Optional[float] = 120.0,
        auth_token: Optional[str] = None,
    ):
        self.address = address
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.auth_token = auth_token
        self.bytes_sent = 0
        self.bytes_received = 0
        self.last_used = 0.0
        #: Batches this host advertises it can serve at once (from the
        #: REGISTER reply; 1 until a registration succeeds).
        self.capacity = 1
        self._sock: Optional[socket.socket] = None
        self._reader = FrameReader()

    @property
    def connected(self) -> bool:
        """Whether a socket is currently open (not a liveness probe)."""
        return self._sock is not None

    def connect(self) -> None:
        """Open the TCP connection (no-op when already open).

        When an ``auth_token`` is configured the AUTH handshake runs
        as part of connecting, so every reconnect re-authenticates
        before any other frame; a refused token raises
        :class:`AuthenticationError` (and is never retried).
        """
        if self._sock is not None:
            return
        host, port = parse_address(self.address)
        sock = socket.create_connection((host, port), timeout=self.connect_timeout)
        sock.settimeout(self.request_timeout)
        self._sock = sock
        self._reader = FrameReader()
        self.last_used = time.monotonic()
        if self.auth_token is not None:
            try:
                self._authenticate()
            except BaseException:
                self.close()
                raise

    def _authenticate(self) -> None:
        """Present the shared token; expect AUTH_OK."""
        frame_type, payload = self._request(
            pack_frame(FRAME_AUTH, self.auth_token.encode("utf-8"))
        )
        if frame_type == FRAME_ERROR:
            _raise_remote_error(payload)
        if frame_type != FRAME_AUTH_OK:
            raise FrameProtocolError(
                f"expected AUTH_OK, got frame type {frame_type}"
            )

    def close(self) -> None:
        """Close the socket (idempotent)."""
        if self._sock is not None:
            with contextlib.suppress(OSError):
                self._sock.close()
            self._sock = None

    def _request(self, frame: bytes) -> tuple[int, bytes]:
        """Send one frame and block for the peer's reply frame."""
        if self._sock is None:
            raise WorkerUnavailableError(f"{self.address} is not connected")
        self._sock.sendall(frame)
        self.bytes_sent += len(frame)
        frame_type, payload = recv_frame(self._sock, self._reader)
        self.bytes_received += _FRAME_HEADER.size + len(payload)
        self.last_used = time.monotonic()
        return frame_type, payload

    def register(self, oracle_blob: bytes, generation: int) -> None:
        """Install a pickled oracle + generation on the worker.

        The REGISTER reply also carries the host's advertised capacity
        (kept in :attr:`capacity`; pre-capacity workers whose reply has
        no capacity field read as 1).
        """
        frame_type, payload = self._request(
            pack_frame(FRAME_REGISTER, pack_register_payload(oracle_blob, generation))
        )
        if frame_type == FRAME_ERROR:
            _raise_remote_error(payload)
        if frame_type != FRAME_REGISTER_OK:
            raise FrameProtocolError(
                f"expected REGISTER_OK, got frame type {frame_type}"
            )
        if len(payload) >= _REGISTER_OK_HEADER.size:
            echoed, capacity = _REGISTER_OK_HEADER.unpack_from(payload, 0)
            self.capacity = max(1, capacity)
        else:
            (echoed,) = _REGISTER_HEADER.unpack_from(payload, 0)
            self.capacity = 1
        if echoed != generation:
            raise FrameProtocolError(
                f"worker acknowledged generation {echoed}, expected {generation}"
            )

    def ping(self) -> None:
        """Heartbeat round trip; raises if the connection is dead."""
        frame_type, payload = self._request(pack_frame(FRAME_PING))
        if frame_type == FRAME_ERROR:
            _raise_remote_error(payload)
        if frame_type != FRAME_PONG:
            raise FrameProtocolError(f"expected PONG, got frame type {frame_type}")

    def run_batch(self, batch_id: int, payload: bytes) -> list[bytes]:
        """Send one SEGMENTS payload; return the per-segment result blobs."""
        frame_type, reply = self._request(pack_frame(FRAME_SEGMENTS, payload))
        if frame_type == FRAME_ERROR:
            _raise_remote_error(reply)
        if frame_type != FRAME_RESULTS:
            raise FrameProtocolError(
                f"expected RESULTS, got frame type {frame_type}"
            )
        got_batch, blobs = split_results_payload(reply)
        if got_batch != batch_id:
            raise FrameProtocolError(
                f"result batch {got_batch} does not match request {batch_id}"
            )
        return blobs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.connected else "down"
        return f"HostConnection({self.address}, {state})"


#: Connection failures the registry absorbs by requeueing + reconnect.
_HOST_FAILURES = (OSError, ConnectionClosedError, FrameProtocolError)


class SocketHostPool:
    """Client-side registry of worker hosts with failover dispatch.

    ``run_round`` drains a queue of segment batches with one dispatcher
    thread per connected host, each taking up to its host's advertised
    ``capacity`` batches per trip to the queue (capped at a fair share
    of the remaining queue, so a big host never hoards the tail while
    smaller live hosts idle) — a host advertising 4x the capacity
    draws roughly 4x the batches of its neighbours (weighted
    round-robin for heterogeneous clusters), while homogeneous
    clusters degrade to the plain shared-queue drain.  A host failing
    mid-batch has its untried batches requeued for the surviving hosts
    and is reconnected (and re-registered with the current oracle) so
    it can rejoin; when no host remains the round raises
    :class:`WorkerUnavailableError`.
    Remote stale-generation refusals surface as
    :class:`~repro.parallel.StaleOracleError` and oracle exceptions as
    :class:`RemoteOracleError` — both abort the round instead of being
    retried, because they would fail identically everywhere.

    Attributes
    ----------
    reconnects:
        Successful reconnect-and-re-register cycles after a failure.
    heartbeats:
        Heartbeat pings sent by :meth:`ensure_ready`.
    host_segments / host_seconds:
        Per-address totals of segments served and wall seconds spent
        serving them (the per-host throughput statistic).
    """

    def __init__(
        self,
        hosts: Sequence[str],
        connect_timeout: float = 5.0,
        request_timeout: Optional[float] = 120.0,
        heartbeat_seconds: float = 30.0,
        auth_token: Optional[str] = None,
    ):
        if not hosts:
            raise ValueError("SocketHostPool needs at least one host address")
        self.heartbeat_seconds = heartbeat_seconds
        self.reconnects = 0
        self.heartbeats = 0
        self.host_segments: dict[str, int] = {addr: 0 for addr in hosts}
        self.host_seconds: dict[str, float] = {addr: 0.0 for addr in hosts}
        self._conns = [
            HostConnection(addr, connect_timeout, request_timeout, auth_token)
            for addr in hosts
        ]
        self._retired_bytes_sent = 0
        self._retired_bytes_received = 0
        self._oracle_blob: Optional[bytes] = None
        self._generation = -1
        self._lock = threading.Lock()

    @property
    def hosts(self) -> list[str]:
        """The configured host addresses, in order."""
        return [conn.address for conn in self._conns]

    @property
    def host_capacity(self) -> dict[str, int]:
        """Advertised capacity per host address (1 until registered)."""
        return {conn.address: conn.capacity for conn in self._conns}

    @property
    def bytes_sent(self) -> int:
        """Total frame bytes sent across all connections ever opened."""
        return self._retired_bytes_sent + sum(c.bytes_sent for c in self._conns)

    @property
    def bytes_received(self) -> int:
        """Total frame bytes received across all connections ever opened."""
        return self._retired_bytes_received + sum(
            c.bytes_received for c in self._conns
        )

    def close(self) -> None:
        """Close every connection (the worker hosts keep running)."""
        for conn in self._conns:
            conn.close()

    # -- registration + heartbeat ---------------------------------------------

    def register(self, oracle: object, generation: int) -> None:
        """Pickle ``oracle`` once and install it on every reachable host.

        Hosts that cannot be reached are left unregistered; they are
        retried (with registration) by the mid-round reconnect path and
        by :meth:`ensure_ready`.  Raises
        :class:`WorkerUnavailableError` when *no* host accepts.
        """
        self._oracle_blob = pickle.dumps(oracle)
        self._generation = generation
        reachable = 0
        for conn in self._conns:
            if self._connect_and_register(conn, count_reconnect=False):
                reachable += 1
        if reachable == 0:
            raise WorkerUnavailableError(
                f"no worker host reachable among {self.hosts}"
            )

    def ensure_ready(self) -> None:
        """Heartbeat idle connections; reconnect the ones that fail.

        Called between rounds: connections idle past
        ``heartbeat_seconds`` get a PING, and any that fail it (or were
        down) go through the reconnect-and-re-register cycle so the
        next round starts with every recoverable host live.
        """
        now = time.monotonic()
        for conn in self._conns:
            if conn.connected and now - conn.last_used < self.heartbeat_seconds:
                continue
            if conn.connected:
                self.heartbeats += 1
                try:
                    conn.ping()
                    continue
                except _HOST_FAILURES:
                    self._retire(conn)
            self._connect_and_register(conn, count_reconnect=conn.last_used > 0)

    def _retire(self, conn: HostConnection) -> None:
        """Fold a dead connection's byte counters into the pool tally."""
        with self._lock:
            self._retired_bytes_sent += conn.bytes_sent
            self._retired_bytes_received += conn.bytes_received
        conn.bytes_sent = 0
        conn.bytes_received = 0
        conn.close()

    def _connect_and_register(
        self, conn: HostConnection, count_reconnect: bool
    ) -> bool:
        """(Re)open ``conn`` and install the current oracle on it."""
        try:
            conn.connect()
            if self._oracle_blob is not None:
                conn.register(self._oracle_blob, self._generation)
        except _HOST_FAILURES:
            self._retire(conn)
            return False
        if count_reconnect:
            with self._lock:
                self.reconnects += 1
        return True

    # -- round dispatch --------------------------------------------------------

    def run_round(
        self, batches: Sequence[tuple[int, int, bytes]]
    ) -> list[list[bytes]]:
        """Drain ``batches`` across the live hosts; return results in order.

        ``batches`` holds ``(batch id, segment count, SEGMENTS
        payload)`` triples.  Dispatch is a shared work queue consumed
        by one thread per live connection, each taking up to its
        host's advertised capacity per trip — faster and
        higher-capacity hosts take more batches.  Failures requeue
        (see the class docstring).
        """
        queue: deque[tuple[int, int, bytes]] = deque(batches)
        results: dict[int, list[bytes]] = {}
        fatal: list[BaseException] = []
        in_flight = [0]
        cond = threading.Condition()

        def dispatch(conn: HostConnection) -> None:
            while True:
                with cond:
                    # an empty queue is not the end of the round: a
                    # batch in flight on a dying host may be requeued,
                    # and this thread must be there to pick it up
                    while not fatal and not queue and in_flight[0]:
                        cond.wait(timeout=0.1)
                    if fatal or not queue:
                        return
                    # capacity-weighted drain: take up to the host's
                    # advertised batch appetite per trip, capped at a
                    # fair share of what remains — a big host must not
                    # hoard the tail of the queue while smaller live
                    # hosts idle (batches on one connection execute
                    # sequentially, so hoarding buys no parallelism)
                    live = sum(1 for c in self._conns if c.connected) or 1
                    fair = -(-len(queue) // live)
                    take = max(1, min(conn.capacity, fair))
                    items = []
                    while queue and len(items) < take:
                        items.append(queue.popleft())
                    in_flight[0] += len(items)
                for taken, item in enumerate(items):
                    batch_id, nsegs, payload = item
                    t0 = time.perf_counter()
                    try:
                        blobs = conn.run_batch(batch_id, payload)
                    except _HOST_FAILURES:
                        with cond:
                            # give the in-flight batch and the untried
                            # remainder back to the survivors
                            for untried in reversed(items[taken:]):
                                queue.appendleft(untried)
                            in_flight[0] -= len(items) - taken
                            cond.notify_all()
                        self._retire(conn)
                        try:
                            rejoined = self._connect_and_register(
                                conn, count_reconnect=True
                            )
                        except AuthenticationError as exc:
                            # the host now refuses our token: that is
                            # a configuration failure, not a flaky
                            # network — fail the round loudly instead
                            # of silently draining without this host
                            with cond:
                                fatal.append(exc)
                                cond.notify_all()
                            return
                        if not rejoined:
                            return  # host is gone; survivors drain
                        break  # rejoined: back to the queue
                    except BaseException as exc:  # stale oracle / remote error
                        with cond:
                            fatal.append(exc)
                            in_flight[0] -= len(items) - taken
                            cond.notify_all()
                        return
                    elapsed = time.perf_counter() - t0
                    with cond:
                        results[batch_id] = blobs
                        self.host_segments[conn.address] += nsegs
                        self.host_seconds[conn.address] += elapsed
                        in_flight[0] -= 1
                        cond.notify_all()

        live = [conn for conn in self._conns if conn.connected]
        threads = [
            threading.Thread(target=dispatch, args=(conn,), daemon=True)
            for conn in live
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if fatal:
            raise fatal[0]
        if len(results) != len(batches):
            raise WorkerUnavailableError(
                f"{len(batches) - len(results)} batch(es) undelivered: every "
                f"worker host in {self.hosts} is unreachable"
            )
        return [results[batch_id] for batch_id, _, _ in batches]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        up = sum(1 for c in self._conns if c.connected)
        return f"SocketHostPool(hosts={self.hosts}, up={up})"


@contextlib.contextmanager
def local_cluster(
    num_hosts: int = 2,
    capacities: Optional[Sequence[int]] = None,
    auth_token: Optional[str] = None,
) -> Iterator[list[str]]:
    """Start ``num_hosts`` in-process :class:`WorkerHost` servers.

    Yields their ``host:port`` addresses and stops them on exit.
    ``capacities`` optionally assigns a per-host capacity
    advertisement (default 1 each, the homogeneous cluster); its
    length must match ``num_hosts``.  ``auth_token`` starts every host
    demanding the shared token (clients must pass the same one).  This
    is the localhost cluster fixture the equivalence suite and the
    transport benchmark run against; CI's ``dist-smoke`` job exercises
    the same protocol against real ``popqc worker`` processes.
    """
    if capacities is not None and len(capacities) != num_hosts:
        raise ValueError(
            f"capacities has {len(capacities)} entries for {num_hosts} hosts"
        )
    hosts = [
        WorkerHost(
            capacity=capacities[i] if capacities else 1, auth_token=auth_token
        ).start()
        for i in range(num_hosts)
    ]
    try:
        yield [host.address for host in hosts]
    finally:
        for host in hosts:
            host.stop()
