"""Distributed socket transport: the packed wire format over TCP.

The transport ladder so far kept every byte on one machine: the
``encoded`` transport ships packed segments through an executor pipe,
``shm`` moves them through pooled shared-memory arenas, ``threads``
moves nothing at all.  This module adds the cluster rung from the
ROADMAP — the *same* packed bytes (:func:`repro.circuits.encoding.
pack_segment_into` / :func:`~repro.circuits.encoding.
unpack_segment_from`), carried over sockets to worker processes that
may live on other machines.

Three pieces:

* **A length-prefixed frame codec.**  Every message on the wire is one
  frame: a fixed 16-byte header (magic, frame type, payload length)
  followed by the payload.  Segment batches and result batches embed
  the flat segment wire format unchanged, so a segment's bytes are
  identical whether they land in a pipe, an arena or a TCP stream.
  :class:`FrameReader` is an incremental parser fed arbitrary
  ``recv`` chunks — partial frames simply wait for more bytes, and a
  stream that *ends* mid-frame raises :class:`FrameProtocolError`
  instead of yielding a torn message.
* **A worker host** (:class:`WorkerHost`): a TCP server loop, exposed
  as the ``popqc worker`` CLI subcommand, that accepts client
  connections, registers an oracle per connection through the same
  generation-token protocol the process transports use (a
  ``REGISTER`` frame carrying the pickled oracle and its generation;
  segment frames tagged with a different generation are refused with
  a typed error, never silently served), and answers batched segment
  frames with batched result frames.
* **A client-side host registry** (:class:`SocketHostPool`), used by
  :meth:`repro.parallel.ProcessMap.map_segments` when constructed
  with ``transport="socket"``: one connection (and one dispatcher
  thread) per worker host, round-robining the batches produced by
  :func:`repro.parallel.scheduling.batch_segments` across hosts
  through a shared work queue.  Heartbeat pings re-validate idle
  connections between rounds; a connection that dies mid-round has
  its in-flight batch *requeued* to the surviving hosts and is
  reconnected (and re-registered) for the next round, so a killed
  worker costs latency, never correctness.  When every host is gone
  the round fails with :class:`WorkerUnavailableError` — a typed,
  catchable failure, not a hang.

Results come back as flat packed segments and flow into
:class:`~repro.parallel.results.LazySegmentResult` unchanged, so lazy
decode and byte-identical equivalence hold on the socket transport
exactly as on the other four.  (Worker-side code in this module calls
the codec through *direct* imports rather than module attributes, so
the parent-side decode spies of ``tests/parallel/test_lazy_decode.py``
observe only what the driver decodes, even with in-process test
clusters.)

Frame layout (all integers little-endian)::

    frame      <4sBxxxQ: magic b"PQCF", frame type, payload nbytes
    REGISTER   <Q generation> + pickled oracle
    REGISTER_OK<QQ: generation, capacity>
    SEGMENTS   <QQQ: generation, batch id, count> + count packed segments
    RESULTS    <QQ: batch id, count> + count packed segments
    ERROR      <B kind> + utf-8 message
    PING/PONG  empty payload
    SHUTDOWN   empty payload
    JOB        <QIIQI4x: job tag, omega, num qubits + 1, max rounds + 1,
               priority> + the circuit as one packed segment
    RESULT     <QI: job tag, stats-JSON nbytes> + stats JSON
               -- pad to 8 -- + the optimized circuit as one packed segment
    STATUS     empty payload as a request; utf-8 JSON as the reply
    AUTH       the shared secret as utf-8 bytes  (client -> server)
    AUTH_OK    empty payload                     (server -> client)
    BUSY       <Bxxxd: reason kind, suggested retry-after seconds>
               + utf-8 message
    CACHE_LOOKUP <QQ: count, namespace nbytes> + namespace
               -- pad to 8 -- + count packed segments
    CACHE_RESULT <Q count> + count of (<Q value nbytes> + value
               -- pad to 8 --); a miss wires nbytes = CACHE_MISS
    CACHE_STORE  <QQ: count, namespace nbytes> + namespace
               -- pad to 8 -- + count of (one packed segment +
               <Q value nbytes> + value -- pad to 8 --)

AUTH is the shared-token handshake of *both* server protocols: a
``popqc worker`` or ``popqc serve`` process started with an auth token
refuses every other frame (typed ``ERR_AUTH`` error, connection
closed) until the connection presents the token, compared in constant
time.  BUSY is the optimization service's admission-control reply to a
JOB the server cannot take right now (active-job quota, per-client
quota, or a saturated scheduler queue); it names the reason and a
suggested retry delay, and :class:`repro.service.ServiceClient`
answers it with bounded exponential backoff.  JOB/RESULT/STATUS/BUSY
belong to the ``popqc serve`` optimization service
(:mod:`repro.service`), which speaks this codec on its own port; the
``popqc worker`` protocol never carries them.

CACHE_LOOKUP/CACHE_RESULT/CACHE_STORE are the **cluster cache tier**:
a ``popqc worker`` started with ``--cache HOST:PORT`` consults the
optimization service's server-side segment cache before running the
oracle on a batch, and publishes the results it did have to compute
back, so oracle work any host has paid for becomes a warm hit for
every other host.  The worker side is :class:`CacheClient`; the
service answers the frames out of its :class:`repro.service.
SegmentCache`.  A CACHE_STORE is acknowledged with an empty
CACHE_RESULT, so a worker's publishes are durably visible before its
RESULTS frame reaches the driver.  The tier degrades, never fails: an
unreachable cache server or a torn CACHE_RESULT reads as a miss and
the oracle runs locally (only an authentication refusal is surfaced,
per the AUTH rule above).

Packed segments are 8-byte-aligned blocks, so consecutive segments in
a SEGMENTS/RESULTS payload are walked with
:func:`~repro.circuits.encoding.packed_segment_span` alone.
"""

from __future__ import annotations

import contextlib
import hashlib
import hmac
import logging
import pickle
import socket
import struct
import threading
import time
from collections import deque
from typing import Callable, Iterator, Optional, Sequence

from ..circuits.encoding import (
    EncodedSegment,
    pack_segment_into,
    packed_segment_nbytes,
    packed_segment_span,
    unpack_segment_from,
)
from .executor import StaleOracleError, _oracle_encoded_result, _pack_to_bytes

__all__ = [
    "BUSY_MAX_ACTIVE",
    "BUSY_PEER_QUOTA",
    "BUSY_QUEUE_FULL",
    "CACHE_MISS",
    "FRAME_AUTH",
    "FRAME_AUTH_OK",
    "FRAME_BUSY",
    "FRAME_CACHE_LOOKUP",
    "FRAME_CACHE_RESULT",
    "FRAME_CACHE_STORE",
    "FRAME_ERROR",
    "FRAME_HEADER_SIZE",
    "FRAME_JOB",
    "FRAME_PING",
    "FRAME_PONG",
    "FRAME_REGISTER",
    "FRAME_REGISTER_OK",
    "FRAME_RESULT",
    "FRAME_RESULTS",
    "FRAME_SEGMENTS",
    "FRAME_SHUTDOWN",
    "FRAME_STATUS",
    "AuthenticationError",
    "CacheClient",
    "ConnectionClosedError",
    "FrameProtocolError",
    "FrameReader",
    "HostConnection",
    "RemoteOracleError",
    "SocketHostPool",
    "WorkerHost",
    "WorkerUnavailableError",
    "local_cluster",
    "pack_busy_payload",
    "pack_cache_lookup_payload",
    "pack_cache_result_payload",
    "pack_cache_store_payload",
    "pack_frame",
    "pack_job_payload",
    "pack_register_payload",
    "pack_result_payload",
    "pack_results_payload",
    "pack_segments_payload",
    "parse_address",
    "recv_frame",
    "split_results_payload",
    "unpack_busy_payload",
    "unpack_cache_lookup_payload",
    "unpack_cache_result_payload",
    "unpack_cache_store_payload",
    "unpack_job_payload",
    "unpack_register_payload",
    "unpack_result_payload",
    "unpack_segments_payload",
]


_log = logging.getLogger(__name__)


# -- frame codec ---------------------------------------------------------------

#: Magic prefix of every frame; a connection speaking anything else is
#: rejected at the first header.
FRAME_MAGIC = b"PQCF"

_FRAME_HEADER = struct.Struct("<4sBxxxQ")

#: Size of the fixed frame header in bytes — the number to add to a
#: payload length when accounting wire traffic, instead of a literal.
FRAME_HEADER_SIZE = _FRAME_HEADER.size

#: Frame types.
FRAME_REGISTER = 1
FRAME_REGISTER_OK = 2
FRAME_SEGMENTS = 3
FRAME_RESULTS = 4
FRAME_ERROR = 5
FRAME_PING = 6
FRAME_PONG = 7
FRAME_SHUTDOWN = 8
FRAME_JOB = 9
FRAME_RESULT = 10
FRAME_STATUS = 11
FRAME_AUTH = 12
FRAME_AUTH_OK = 13
FRAME_BUSY = 14
FRAME_CACHE_LOOKUP = 15
FRAME_CACHE_RESULT = 16
FRAME_CACHE_STORE = 17

_KNOWN_FRAMES = frozenset(
    (
        FRAME_REGISTER,
        FRAME_REGISTER_OK,
        FRAME_SEGMENTS,
        FRAME_RESULTS,
        FRAME_ERROR,
        FRAME_PING,
        FRAME_PONG,
        FRAME_SHUTDOWN,
        FRAME_JOB,
        FRAME_RESULT,
        FRAME_STATUS,
        FRAME_AUTH,
        FRAME_AUTH_OK,
        FRAME_BUSY,
        FRAME_CACHE_LOOKUP,
        FRAME_CACHE_RESULT,
        FRAME_CACHE_STORE,
    )
)

#: Upper bound on a frame payload (1 GiB); a corrupt length field must
#: fail loudly instead of waiting forever for bytes that never come.
MAX_FRAME_BYTES = 1 << 30

_SEGMENTS_HEADER = struct.Struct("<QQQ")  # generation, batch id, count
_RESULTS_HEADER = struct.Struct("<QQ")  # batch id, count
_REGISTER_HEADER = struct.Struct("<Q")  # generation
_REGISTER_OK_HEADER = struct.Struct("<QQ")  # generation, capacity
_ERROR_HEADER = struct.Struct("<B")  # error kind
_JOB_HEADER = struct.Struct(
    "<QIIQI4x"
)  # job tag, omega, num qubits + 1, max rounds + 1, priority (pad to 8)
_RESULT_HEADER = struct.Struct("<QI")  # job tag, stats-JSON nbytes
_BUSY_HEADER = struct.Struct("<Bxxxd")  # reason kind, retry-after seconds
_CACHE_BATCH_HEADER = struct.Struct("<QQ")  # entry count, namespace nbytes
_CACHE_VALUE_HEADER = struct.Struct("<Q")  # value nbytes (or CACHE_MISS)

#: Value-length sentinel in a CACHE_RESULT entry meaning "miss": the
#: cache tier has no bytes for that segment and the worker must run
#: the oracle itself.
CACHE_MISS = (1 << 64) - 1

#: Error kinds carried by ERROR frames.
ERR_STALE_ORACLE = 1
ERR_NO_ORACLE = 2
ERR_ORACLE_FAILED = 3
ERR_BAD_FRAME = 4
ERR_JOB_FAILED = 5
ERR_AUTH = 6

#: Reason kinds carried by BUSY frames (service admission control).
BUSY_MAX_ACTIVE = 1
BUSY_PEER_QUOTA = 2
BUSY_QUEUE_FULL = 3

#: Job priorities ride the wire as a small positive weight; anything a
#: client sends is clamped into this range before it buys fleet share.
MAX_PRIORITY = 16


class FrameProtocolError(RuntimeError):
    """The byte stream violates the frame protocol: bad magic, an
    unknown frame type, an implausible length, or a stream that ended
    in the middle of a frame."""


class ConnectionClosedError(RuntimeError):
    """The peer closed the connection cleanly at a frame boundary."""


class RemoteOracleError(RuntimeError):
    """The oracle raised an exception on the worker host; the message
    carries the remote ``repr``."""


class WorkerUnavailableError(RuntimeError):
    """No worker host could be reached (or every host died mid-round
    and reconnection failed), so the batch queue cannot drain."""


class AuthenticationError(RuntimeError):
    """The peer refused the connection's credentials: a missing or
    wrong AUTH token.  Never retried — a bad token fails identically
    everywhere, so reconnect loops must not absorb it."""


def pack_frame(frame_type: int, payload: bytes = b"") -> bytes:
    """One wire frame: 16-byte header followed by ``payload``."""
    return _FRAME_HEADER.pack(FRAME_MAGIC, frame_type, len(payload)) + payload


class FrameReader:
    """Incremental frame parser over arbitrarily split byte chunks.

    Feed it whatever ``recv`` returned; :meth:`next_frame` yields a
    complete ``(frame type, payload)`` pair when one is buffered and
    ``None`` while bytes are still missing.  The property-test suite
    drives this with every possible chunking of a frame stream.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        """Append raw received bytes to the parse buffer."""
        self._buf += data

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet consumed as a complete frame."""
        return len(self._buf)

    def next_frame(self) -> Optional[tuple[int, bytes]]:
        """The next complete frame, or ``None`` if more bytes are needed.

        Raises :class:`FrameProtocolError` on a corrupt header.
        """
        if len(self._buf) < _FRAME_HEADER.size:
            return None
        magic, frame_type, length = _FRAME_HEADER.unpack_from(self._buf, 0)
        if magic != FRAME_MAGIC:
            raise FrameProtocolError(f"bad frame magic {magic!r}")
        if frame_type not in _KNOWN_FRAMES:
            raise FrameProtocolError(f"unknown frame type {frame_type}")
        if length > MAX_FRAME_BYTES:
            raise FrameProtocolError(f"frame length {length} exceeds the cap")
        end = _FRAME_HEADER.size + length
        if len(self._buf) < end:
            return None
        payload = bytes(self._buf[_FRAME_HEADER.size : end])
        del self._buf[:end]
        return frame_type, payload


def recv_frame(sock: socket.socket, reader: FrameReader) -> tuple[int, bytes]:
    """Block until one complete frame arrives on ``sock``.

    Raises :class:`ConnectionClosedError` when the peer closes cleanly
    between frames and :class:`FrameProtocolError` when the stream ends
    mid-frame (a torn message must never be mistaken for a short one).
    """
    while True:
        frame = reader.next_frame()
        if frame is not None:
            return frame
        data = sock.recv(1 << 16)
        if not data:
            if reader.pending_bytes:
                raise FrameProtocolError(
                    f"connection closed mid-frame with "
                    f"{reader.pending_bytes} bytes pending"
                )
            raise ConnectionClosedError("connection closed")
        reader.feed(data)


# -- payload codecs ------------------------------------------------------------


def pack_register_payload(oracle_blob: bytes, generation: int) -> bytes:
    """REGISTER payload: generation header + the pickled oracle bytes."""
    return _REGISTER_HEADER.pack(generation) + oracle_blob


def unpack_register_payload(payload: bytes) -> tuple[int, object]:
    """(generation, oracle) from a REGISTER payload."""
    (generation,) = _REGISTER_HEADER.unpack_from(payload, 0)
    oracle = pickle.loads(payload[_REGISTER_HEADER.size :])
    return generation, oracle


def pack_segments_payload(
    generation: int, batch_id: int, encoded: Sequence[EncodedSegment]
) -> bytes:
    """SEGMENTS payload: header + the batch in the flat wire format."""
    sizes = [packed_segment_nbytes(enc) for enc in encoded]
    buf = bytearray(_SEGMENTS_HEADER.size + sum(sizes))
    _SEGMENTS_HEADER.pack_into(buf, 0, generation, batch_id, len(encoded))
    pos = _SEGMENTS_HEADER.size
    for enc in encoded:
        pos = pack_segment_into(enc, buf, pos)
    return bytes(buf)


def unpack_segments_payload(
    payload: bytes,
) -> tuple[int, int, list[EncodedSegment]]:
    """(generation, batch id, segments) from a SEGMENTS payload.

    The returned segments are zero-copy views into ``payload``.
    Raises :class:`FrameProtocolError` when the declared count walks
    past the end of the payload.
    """
    if len(payload) < _SEGMENTS_HEADER.size:
        raise FrameProtocolError("SEGMENTS payload shorter than its header")
    generation, batch_id, count = _SEGMENTS_HEADER.unpack_from(payload, 0)
    pos = _SEGMENTS_HEADER.size
    segments: list[EncodedSegment] = []
    try:
        for _ in range(count):
            segment, pos = unpack_segment_from(payload, pos)
            segments.append(segment)
    except (struct.error, ValueError) as exc:
        raise FrameProtocolError(f"torn SEGMENTS payload: {exc}") from exc
    if pos > len(payload):
        raise FrameProtocolError("SEGMENTS payload truncated mid-segment")
    return generation, batch_id, segments


def pack_results_payload(batch_id: int, packed_results: Sequence[bytes]) -> bytes:
    """RESULTS payload: header + each result's packed bytes, in order."""
    head = _RESULTS_HEADER.pack(batch_id, len(packed_results))
    return head + b"".join(packed_results)


def split_results_payload(payload: bytes) -> tuple[int, list[bytes]]:
    """(batch id, per-segment packed blobs) from a RESULTS payload.

    Splits on :func:`packed_segment_span` header reads only — no
    per-gate decoding, preserving result laziness end to end.
    """
    if len(payload) < _RESULTS_HEADER.size:
        raise FrameProtocolError("RESULTS payload shorter than its header")
    batch_id, count = _RESULTS_HEADER.unpack_from(payload, 0)
    pos = _RESULTS_HEADER.size
    blobs: list[bytes] = []
    try:
        for _ in range(count):
            _, end = packed_segment_span(payload, pos)
            if end > len(payload):
                raise FrameProtocolError("RESULTS payload truncated mid-segment")
            blobs.append(payload[pos:end])
            pos = end
    except struct.error as exc:
        raise FrameProtocolError(f"torn RESULTS payload: {exc}") from exc
    return batch_id, blobs


def pack_error_payload(kind: int, message: str) -> bytes:
    """ERROR payload: kind byte + utf-8 message."""
    return _ERROR_HEADER.pack(kind) + message.encode("utf-8")


def pack_busy_payload(kind: int, retry_after: float, message: str) -> bytes:
    """BUSY payload: reason kind + suggested retry delay + utf-8 message."""
    return _BUSY_HEADER.pack(kind, retry_after) + message.encode("utf-8")


def unpack_busy_payload(payload: bytes) -> tuple[int, float, str]:
    """(reason kind, retry-after seconds, message) from a BUSY payload."""
    if len(payload) < _BUSY_HEADER.size:
        raise FrameProtocolError("BUSY payload shorter than its header")
    kind, retry_after = _BUSY_HEADER.unpack_from(payload, 0)
    message = payload[_BUSY_HEADER.size :].decode("utf-8", "replace")
    return kind, retry_after, message


def unpack_error_payload(payload: bytes) -> tuple[int, str]:
    """(kind, message) from an ERROR payload."""
    (kind,) = _ERROR_HEADER.unpack_from(payload, 0)
    return kind, payload[_ERROR_HEADER.size :].decode("utf-8", "replace")


def pack_job_payload(
    job_tag: int,
    omega: int,
    num_qubits: Optional[int],
    max_rounds: Optional[int],
    encoded: EncodedSegment,
    priority: int = 1,
) -> bytes:
    """JOB payload: job header + the circuit as one packed segment.

    ``job_tag`` is a client-chosen identifier echoed in the RESULT
    frame.  ``num_qubits`` and ``max_rounds`` both wire ``None`` as 0
    and a value ``v`` as ``v + 1``, so an explicit 0 (a legal
    ``max_rounds`` meaning "zero rounds") survives the trip.
    ``priority`` is the job's scheduling weight (1..``MAX_PRIORITY``;
    clamped on both ends of the wire): a priority-4 job draws roughly
    4x the fleet share of a priority-1 job in each merged round.
    """
    head = _JOB_HEADER.pack(
        job_tag,
        omega,
        0 if num_qubits is None else num_qubits + 1,
        0 if max_rounds is None else max_rounds + 1,
        min(MAX_PRIORITY, max(1, priority)),
    )
    buf = bytearray(len(head) + packed_segment_nbytes(encoded))
    buf[: len(head)] = head
    pack_segment_into(encoded, buf, len(head))
    return bytes(buf)


def unpack_job_payload(
    payload: bytes,
) -> tuple[int, int, Optional[int], Optional[int], EncodedSegment, int]:
    """(job tag, omega, num qubits, max rounds, circuit, priority)
    from a JOB payload.

    The circuit comes back as a zero-copy :class:`EncodedSegment` view
    into ``payload``.  The priority is clamped into
    ``[1, MAX_PRIORITY]`` — the sender is untrusted, and a forged
    weight must never buy more than the documented maximum share.
    Raises :class:`FrameProtocolError` on a torn payload.
    """
    if len(payload) < _JOB_HEADER.size:
        raise FrameProtocolError("JOB payload shorter than its header")
    job_tag, omega, nq1, mr1, priority = _JOB_HEADER.unpack_from(payload, 0)
    try:
        encoded, end = unpack_segment_from(payload, _JOB_HEADER.size)
    except (struct.error, ValueError) as exc:
        raise FrameProtocolError(f"torn JOB payload: {exc}") from exc
    if end > len(payload):
        raise FrameProtocolError("JOB payload truncated mid-circuit")
    return (
        job_tag,
        omega,
        nq1 - 1 if nq1 else None,
        mr1 - 1 if mr1 else None,
        encoded,
        min(MAX_PRIORITY, max(1, priority)),
    )


def pack_result_payload(
    job_tag: int, stats_json: bytes, encoded: EncodedSegment
) -> bytes:
    """RESULT payload: header + stats JSON + the packed optimized circuit.

    The packed circuit starts at the first 8-aligned offset after the
    JSON, so consecutive reads stay on the wire format's natural
    alignment.
    """
    head = _RESULT_HEADER.pack(job_tag, len(stats_json))
    pos = _RESULT_HEADER.size + len(stats_json)
    start = pos + (-pos) % 8
    buf = bytearray(start + packed_segment_nbytes(encoded))
    buf[: _RESULT_HEADER.size] = head
    buf[_RESULT_HEADER.size : pos] = stats_json
    pack_segment_into(encoded, buf, start)
    return bytes(buf)


def unpack_result_payload(
    payload: bytes,
) -> tuple[int, bytes, EncodedSegment]:
    """(job tag, stats JSON bytes, circuit) from a RESULT payload."""
    if len(payload) < _RESULT_HEADER.size:
        raise FrameProtocolError("RESULT payload shorter than its header")
    job_tag, json_len = _RESULT_HEADER.unpack_from(payload, 0)
    pos = _RESULT_HEADER.size + json_len
    if pos > len(payload):
        raise FrameProtocolError("RESULT payload shorter than its stats JSON")
    stats_json = bytes(payload[_RESULT_HEADER.size : pos])
    start = pos + (-pos) % 8
    try:
        encoded, end = unpack_segment_from(payload, start)
    except (struct.error, ValueError) as exc:
        raise FrameProtocolError(f"torn RESULT payload: {exc}") from exc
    if end > len(payload):
        raise FrameProtocolError("RESULT payload truncated mid-circuit")
    return job_tag, stats_json, encoded


def pack_cache_lookup_payload(
    namespace: bytes, packed_segments: Sequence[bytes]
) -> bytes:
    """CACHE_LOOKUP payload: batch header + namespace + packed segments.

    The namespace is the oracle's cache namespace (the blake2b digest
    of the pickled-oracle REGISTER blob), so two workers registered
    with byte-identical oracles share cache lines and any other oracle
    cannot collide with them.  Key derivation stays server-side — the
    payload carries raw packed segment bytes, never keys.
    """
    head = _CACHE_BATCH_HEADER.pack(len(packed_segments), len(namespace))
    parts = [head, namespace, b"\x00" * ((-len(namespace)) % 8)]
    parts.extend(packed_segments)
    return b"".join(parts)


def unpack_cache_lookup_payload(payload: bytes) -> tuple[bytes, list[bytes]]:
    """(namespace, packed segments) from a CACHE_LOOKUP payload.

    Raises :class:`FrameProtocolError` on a torn payload — a lookup
    request the server cannot parse is refused, not guessed at.
    """
    if len(payload) < _CACHE_BATCH_HEADER.size:
        raise FrameProtocolError("CACHE_LOOKUP payload shorter than its header")
    count, ns_len = _CACHE_BATCH_HEADER.unpack_from(payload, 0)
    pos = _CACHE_BATCH_HEADER.size
    if pos + ns_len > len(payload):
        raise FrameProtocolError("CACHE_LOOKUP payload truncated in its namespace")
    namespace = bytes(payload[pos : pos + ns_len])
    pos += ns_len + (-ns_len) % 8
    packed: list[bytes] = []
    try:
        for _ in range(count):
            _, end = packed_segment_span(payload, pos)
            if end > len(payload):
                raise FrameProtocolError(
                    "CACHE_LOOKUP payload truncated mid-segment"
                )
            packed.append(bytes(payload[pos:end]))
            pos = end
    except struct.error as exc:
        raise FrameProtocolError(f"torn CACHE_LOOKUP payload: {exc}") from exc
    return namespace, packed


def pack_cache_result_payload(values: Sequence[Optional[bytes]]) -> bytes:
    """CACHE_RESULT payload: count + each value (``None`` wires a miss).

    An empty payload (count 0) doubles as the CACHE_STORE acknowledge.
    """
    parts = [_CACHE_VALUE_HEADER.pack(len(values))]
    for value in values:
        if value is None:
            parts.append(_CACHE_VALUE_HEADER.pack(CACHE_MISS))
        else:
            parts.append(_CACHE_VALUE_HEADER.pack(len(value)))
            parts.append(value)
            parts.append(b"\x00" * ((-len(value)) % 8))
    return b"".join(parts)


def unpack_cache_result_payload(payload: bytes) -> list[Optional[bytes]]:
    """Cached values (``None`` per miss) from a CACHE_RESULT payload.

    Deliberately lenient where every other unpacker is strict: the
    cache tier is an optimization, so a torn CACHE_RESULT must read as
    *misses*, never as an error that fails the batch.  A truncated
    entry — and everything after it, since nothing beyond a tear is
    trustworthy — comes back as ``None`` and the worker simply runs
    the oracle for those segments.
    """
    if len(payload) < _CACHE_VALUE_HEADER.size:
        return []
    (count,) = _CACHE_VALUE_HEADER.unpack_from(payload, 0)
    # A forged count cannot cost memory: every wired entry takes at
    # least one value header, so cap by what the payload could hold.
    limit = (len(payload) - _CACHE_VALUE_HEADER.size) // _CACHE_VALUE_HEADER.size
    count = min(count, max(0, limit))
    values: list[Optional[bytes]] = []
    pos = _CACHE_VALUE_HEADER.size
    for _ in range(count):
        if pos + _CACHE_VALUE_HEADER.size > len(payload):
            values.append(None)  # torn: reads as a miss
            continue
        (nbytes,) = _CACHE_VALUE_HEADER.unpack_from(payload, pos)
        pos += _CACHE_VALUE_HEADER.size
        if nbytes == CACHE_MISS:
            values.append(None)
            continue
        end = pos + nbytes
        if nbytes > MAX_FRAME_BYTES or end > len(payload):
            values.append(None)
            pos = len(payload)  # torn mid-value: the rest is garbage
            continue
        values.append(bytes(payload[pos:end]))
        pos = end + (-nbytes) % 8
    return values


def pack_cache_store_payload(
    namespace: bytes, entries: Sequence[tuple[bytes, bytes]]
) -> bytes:
    """CACHE_STORE payload: header + namespace + (segment, value) pairs.

    Each entry is the packed segment the worker was asked about
    followed by the packed result bytes its oracle produced, so the
    server derives the cache key exactly as the daemon-side cache
    front does and the stored bytes are byte-identical either way.
    """
    head = _CACHE_BATCH_HEADER.pack(len(entries), len(namespace))
    parts = [head, namespace, b"\x00" * ((-len(namespace)) % 8)]
    for packed, value in entries:
        parts.append(packed)
        parts.append(_CACHE_VALUE_HEADER.pack(len(value)))
        parts.append(value)
        parts.append(b"\x00" * ((-len(value)) % 8))
    return b"".join(parts)


def unpack_cache_store_payload(
    payload: bytes,
) -> tuple[bytes, list[tuple[bytes, bytes]]]:
    """(namespace, (segment, value) pairs) from a CACHE_STORE payload.

    Strict: a torn store is refused with
    :class:`FrameProtocolError` — the server must never insert bytes
    it cannot account for into the shared cache.
    """
    if len(payload) < _CACHE_BATCH_HEADER.size:
        raise FrameProtocolError("CACHE_STORE payload shorter than its header")
    count, ns_len = _CACHE_BATCH_HEADER.unpack_from(payload, 0)
    pos = _CACHE_BATCH_HEADER.size
    if pos + ns_len > len(payload):
        raise FrameProtocolError("CACHE_STORE payload truncated in its namespace")
    namespace = bytes(payload[pos : pos + ns_len])
    pos += ns_len + (-ns_len) % 8
    entries: list[tuple[bytes, bytes]] = []
    try:
        for _ in range(count):
            _, end = packed_segment_span(payload, pos)
            if end + _CACHE_VALUE_HEADER.size > len(payload):
                raise FrameProtocolError(
                    "CACHE_STORE payload truncated mid-segment"
                )
            packed = bytes(payload[pos:end])
            (nbytes,) = _CACHE_VALUE_HEADER.unpack_from(payload, end)
            pos = end + _CACHE_VALUE_HEADER.size
            if nbytes > MAX_FRAME_BYTES or pos + nbytes > len(payload):
                raise FrameProtocolError("CACHE_STORE payload truncated mid-value")
            entries.append((packed, bytes(payload[pos : pos + nbytes])))
            pos += nbytes + (-nbytes) % 8
    except struct.error as exc:
        raise FrameProtocolError(f"torn CACHE_STORE payload: {exc}") from exc
    return namespace, entries


def parse_address(spec: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (host defaults to loopback)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {spec!r}")
    return host or "127.0.0.1", int(port)


def _raise_remote_error(payload: bytes) -> None:
    """Turn an ERROR frame into the matching typed client exception."""
    kind, message = unpack_error_payload(payload)
    if kind == ERR_STALE_ORACLE:
        raise StaleOracleError(message)
    if kind == ERR_ORACLE_FAILED:
        raise RemoteOracleError(message)
    if kind == ERR_AUTH:
        raise AuthenticationError(message)
    raise FrameProtocolError(f"worker refused the frame (kind {kind}): {message}")


# -- worker host (server side) -------------------------------------------------


class WorkerHost:
    """TCP server answering segment-batch frames with result frames.

    One handler thread per client connection; each connection carries
    its own oracle registration (REGISTER frame, pickled oracle +
    generation token).  SEGMENTS frames tagged with any other
    generation are answered with a typed ``stale oracle`` error frame,
    mirroring :class:`~repro.parallel.StaleOracleError` on the process
    transports.  ``port=0`` binds an ephemeral port; :attr:`address`
    reports the bound endpoint either way.

    ``capacity`` advertises how many batches this host comfortably
    serves at once (its core count, typically — ``popqc worker
    --capacity``).  It is reported to every client in the REGISTER
    reply, and :class:`SocketHostPool` weights its round-robin by it,
    so a 16-core host in a heterogeneous cluster draws 4x the batches
    of a 4-core one instead of an equal share.

    ``auth_token`` (``popqc worker --auth-token``) demands an AUTH
    frame carrying the shared secret before any other frame is
    accepted on a connection; the compare is constant-time, and a
    missing or wrong token is refused with a typed ``ERR_AUTH`` error
    and a closed connection.  ``idle_timeout_seconds`` bounds how long
    a handler thread blocks waiting for a client's next frame, so a
    slow-loris connection (opened, then silent) cannot pin a thread
    for the life of the process.

    ``cache_address`` (``popqc worker --cache``) points the host at a
    ``popqc serve`` daemon's segment cache, making that cache a
    cluster-shared tier: before running the oracle on a batch the host
    asks the cache for each segment (CACHE_LOOKUP) and afterwards
    publishes what it had to compute (CACHE_STORE), so a segment any
    host in the fleet has optimized is a warm hit for all of them.
    The cache namespace is the blake2b digest of the raw REGISTER
    blob — byte-identical to the daemon's own
    :func:`~repro.parallel.executor.oracle_fingerprint`, because the
    pool ships ``pickle.dumps(oracle)`` verbatim.  Cache failures
    degrade to plain oracle execution (counted in ``cache_errors``);
    an authentication refusal from the cache tier permanently disables
    it for this host, since a bad token fails identically forever.

    Attributes
    ----------
    segments_served / batches_served:
        Totals across all connections (for the CLI status line).
    bytes_received / bytes_sent:
        Frame bytes in and out, payloads included.
    auth_failures:
        Connections refused for a missing or wrong AUTH token.
    cache_hits / cache_misses / cache_stores / cache_errors:
        Cluster-cache tier traffic (all zero without ``--cache``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity: int = 1,
        auth_token: Optional[str] = None,
        idle_timeout_seconds: Optional[float] = 600.0,
        cache_address: Optional[str] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._auth_token = (
            auth_token.encode("utf-8") if auth_token is not None else None
        )
        self.idle_timeout_seconds = idle_timeout_seconds
        self.auth_failures = 0
        self.cache_address = cache_address
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_stores = 0
        self._cache_error_count = 0
        self._cache: Optional["CacheClient"] = (
            CacheClient(cache_address, auth_token=auth_token)
            if cache_address is not None
            else None
        )
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self.segments_served = 0
        self.batches_served = 0
        self.bytes_received = 0
        self.bytes_sent = 0
        self._lock = threading.Lock()
        self._closing = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: list[threading.Thread] = []
        self._conns: list[socket.socket] = []

    @property
    def address(self) -> str:
        """The bound endpoint as ``"host:port"``."""
        return f"{self.host}:{self.port}"

    @property
    def cache_errors(self) -> int:
        """Cache-tier failures observed: the live client's transport
        errors plus any permanent auth-refusal disablement."""
        cache = self._cache
        return self._cache_error_count + (
            cache.errors if cache is not None else 0
        )

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`stop` (blocking)."""
        while not self._closing.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:  # listener shut down by stop()
                break
            if self._closing.is_set():
                # accept() raced stop(): refuse, don't serve
                with contextlib.suppress(OSError):
                    conn.close()
                break
            if self.idle_timeout_seconds is not None:
                conn.settimeout(self.idle_timeout_seconds)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            # both mutations under the lock: stop() snapshots these
            # lists from another thread, and pruning finished handlers
            # here keeps a high-churn client from growing them forever
            with self._lock:
                self._conns.append(conn)
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]
                self._conn_threads.append(thread)
            thread.start()

    def start(self) -> "WorkerHost":
        """Serve in a daemon thread (for in-process clusters); returns self."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Close the listener and every open connection (idempotent).

        Clients blocked on a reply observe the close as a dropped
        connection — exactly the fault the client registry is built to
        absorb, which is why the fault-injection suite stops hosts
        mid-round with this method.
        """
        self._closing.set()
        # shutdown() (not just close()) wakes a thread blocked in
        # accept(): on Linux, close() alone leaves the in-flight accept
        # holding the listening socket open, silently accepting the
        # very reconnects a stopped host must refuse
        with contextlib.suppress(OSError):
            self._listener.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._listener.close()
        with self._lock:
            conns, self._conns = self._conns, []
            threads = list(self._conn_threads)
        for conn in conns:
            with contextlib.suppress(OSError):
                conn.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                conn.close()
        for thread in threads:
            thread.join(timeout=1.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
        cache = self._cache
        if cache is not None:
            cache.close()

    # -- connection handling ---------------------------------------------------

    def _send(self, conn: socket.socket, frame: bytes) -> None:
        conn.sendall(frame)
        with self._lock:
            self.bytes_sent += len(frame)

    def _check_auth(self, payload: bytes) -> bool:
        """Constant-time validation of one AUTH payload."""
        if self._auth_token is None:
            return True  # no token configured: AUTH is a friendly no-op
        return hmac.compare_digest(payload, self._auth_token)

    def _serve_connection(self, conn: socket.socket) -> None:
        """Serve one client until it disconnects or the host stops."""
        reader = FrameReader()
        oracle: Optional[Callable] = None
        generation = -1
        namespace: Optional[bytes] = None
        authed = self._auth_token is None
        try:
            while True:
                frame_type, payload = self._recv(conn, reader)
                if frame_type == FRAME_AUTH:
                    if self._check_auth(payload):
                        authed = True
                        self._send(conn, pack_frame(FRAME_AUTH_OK))
                        continue
                    with self._lock:
                        self.auth_failures += 1
                    self._send(
                        conn,
                        pack_frame(
                            FRAME_ERROR,
                            pack_error_payload(ERR_AUTH, "invalid auth token"),
                        ),
                    )
                    return  # wrong secret: drop the connection
                if not authed:
                    with self._lock:
                        self.auth_failures += 1
                    self._send(
                        conn,
                        pack_frame(
                            FRAME_ERROR,
                            pack_error_payload(
                                ERR_AUTH,
                                "authentication required before any "
                                "other frame",
                            ),
                        ),
                    )
                    return
                if frame_type == FRAME_REGISTER:
                    try:
                        generation, oracle = unpack_register_payload(payload)
                    except Exception as exc:  # torn header / corrupt pickle
                        self._send(
                            conn,
                            pack_frame(
                                FRAME_ERROR,
                                pack_error_payload(
                                    ERR_BAD_FRAME,
                                    f"bad REGISTER payload: {exc!r}",
                                ),
                            ),
                        )
                        continue  # previous registration stays in force
                    # cache namespace off the *raw* blob: byte-identical
                    # to the driver-side oracle_fingerprint, which hashes
                    # the same pickle.dumps(oracle) bytes the pool sent
                    namespace = hashlib.blake2b(
                        payload[_REGISTER_HEADER.size :], digest_size=16
                    ).digest()
                    self._send(
                        conn,
                        pack_frame(
                            FRAME_REGISTER_OK,
                            _REGISTER_OK_HEADER.pack(generation, self.capacity),
                        ),
                    )
                elif frame_type == FRAME_PING:
                    self._send(conn, pack_frame(FRAME_PONG))
                elif frame_type == FRAME_SEGMENTS:
                    self._send(
                        conn,
                        self._answer_segments(
                            payload, oracle, generation, namespace
                        ),
                    )
                elif frame_type == FRAME_SHUTDOWN:
                    return
                else:
                    self._send(
                        conn,
                        pack_frame(
                            FRAME_ERROR,
                            pack_error_payload(
                                ERR_BAD_FRAME,
                                f"unexpected frame type {frame_type}",
                            ),
                        ),
                    )
        except (ConnectionClosedError, FrameProtocolError, OSError):
            return  # client went away; nothing to answer
        finally:
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)
            with contextlib.suppress(OSError):
                conn.close()

    def _recv(self, conn: socket.socket, reader: FrameReader) -> tuple[int, bytes]:
        frame_type, payload = recv_frame(conn, reader)
        with self._lock:
            self.bytes_received += _FRAME_HEADER.size + len(payload)
        return frame_type, payload

    def _cache_lookup(
        self, namespace: bytes, packed_in: list[bytes]
    ) -> Optional[list[Optional[bytes]]]:
        """Batch-consult the cluster cache; ``None`` when the tier is off."""
        cache = self._cache
        if cache is None:
            return None
        try:
            return cache.lookup(namespace, packed_in)
        except AuthenticationError:
            self._disable_cache()
            return None

    def _cache_store(
        self, namespace: bytes, entries: list[tuple[bytes, bytes]]
    ) -> bool:
        """Publish computed results back to the cluster cache.

        Returns whether the publish was acknowledged (an unreachable
        or refusing cache is a degradation, not a failure).
        """
        cache = self._cache
        if cache is None or not entries:
            return False
        try:
            return cache.store(namespace, entries)
        except AuthenticationError:
            self._disable_cache()
            return False

    def _disable_cache(self) -> None:
        """Drop the cache tier: its server refuses our token, and a bad
        token fails identically on every future request."""
        _log.warning(
            "cluster cache at %s refused authentication; disabling the "
            "cache tier for this worker",
            self.cache_address,
        )
        cache, self._cache = self._cache, None
        if cache is not None:
            cache.close()
            with self._lock:
                # fold the dropped client's tally into the permanent
                # count so cache_errors never goes backwards
                self._cache_error_count += cache.errors + 1
        else:
            with self._lock:
                self._cache_error_count += 1

    def _answer_segments(
        self,
        payload: bytes,
        oracle: Optional[Callable],
        generation: int,
        namespace: Optional[bytes] = None,
    ) -> bytes:
        """The reply frame for one SEGMENTS request.

        With a cluster cache configured, the oracle runs only on the
        segments the cache does not already hold; everything this host
        did compute is published back before the RESULTS frame is
        sent, so the publish is durably visible to other hosts by the
        time the driver sees the round complete.
        """
        try:
            got_generation, batch_id, segments = unpack_segments_payload(payload)
        except FrameProtocolError as exc:
            return pack_frame(
                FRAME_ERROR, pack_error_payload(ERR_BAD_FRAME, str(exc))
            )
        if oracle is None:
            return pack_frame(
                FRAME_ERROR,
                pack_error_payload(
                    ERR_NO_ORACLE, "no oracle registered on this connection"
                ),
            )
        if got_generation != generation:
            return pack_frame(
                FRAME_ERROR,
                pack_error_payload(
                    ERR_STALE_ORACLE,
                    f"batch expects oracle generation {got_generation}, "
                    f"connection registered {generation}",
                ),
            )
        cached: Optional[list[Optional[bytes]]] = None
        packed_in: list[bytes] = []
        if self._cache is not None and namespace is not None:
            packed_in = [_pack_to_bytes(segment) for segment in segments]
            cached = self._cache_lookup(namespace, packed_in)
        try:
            results: list[bytes] = []
            store_entries: list[tuple[bytes, bytes]] = []
            for i, segment in enumerate(segments):
                hit = cached[i] if cached is not None else None
                if hit is not None:
                    results.append(hit)
                    continue
                out = _pack_to_bytes(_oracle_encoded_result(oracle, segment))
                results.append(out)
                if cached is not None:
                    store_entries.append((packed_in[i], out))
        except Exception as exc:  # noqa: BLE001 - forwarded to the client
            return pack_frame(
                FRAME_ERROR, pack_error_payload(ERR_ORACLE_FAILED, repr(exc))
            )
        stored = False
        if namespace is not None:
            stored = self._cache_store(namespace, store_entries)
        with self._lock:
            self.segments_served += len(segments)
            self.batches_served += 1
            if cached is not None:
                hits = sum(1 for value in cached if value is not None)
                self.cache_hits += hits
                self.cache_misses += len(segments) - hits
                if stored:
                    self.cache_stores += len(store_entries)
        return pack_frame(FRAME_RESULTS, pack_results_payload(batch_id, results))


# -- client side ---------------------------------------------------------------


class HostConnection:
    """One client connection to a :class:`WorkerHost`.

    Request/response is synchronous per connection (the registry runs
    one dispatcher thread per host, so the cluster as a whole is
    parallel).  Byte counters feed the executor's wire statistics.
    """

    def __init__(
        self,
        address: str,
        connect_timeout: float = 5.0,
        request_timeout: Optional[float] = 120.0,
        auth_token: Optional[str] = None,
    ):
        self.address = address
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.auth_token = auth_token
        self.bytes_sent = 0
        self.bytes_received = 0
        self.last_used = 0.0
        #: Batches this host advertises it can serve at once (from the
        #: REGISTER reply; 1 until a registration succeeds).
        self.capacity = 1
        self._sock: Optional[socket.socket] = None
        self._reader = FrameReader()

    @property
    def connected(self) -> bool:
        """Whether a socket is currently open (not a liveness probe)."""
        return self._sock is not None

    def connect(self) -> None:
        """Open the TCP connection (no-op when already open).

        When an ``auth_token`` is configured the AUTH handshake runs
        as part of connecting, so every reconnect re-authenticates
        before any other frame; a refused token raises
        :class:`AuthenticationError` (and is never retried).
        """
        if self._sock is not None:
            return
        host, port = parse_address(self.address)
        sock = socket.create_connection((host, port), timeout=self.connect_timeout)
        sock.settimeout(self.request_timeout)
        self._sock = sock
        self._reader = FrameReader()
        self.last_used = time.monotonic()
        if self.auth_token is not None:
            try:
                self._authenticate()
            except BaseException:
                self.close()
                raise

    def _authenticate(self) -> None:
        """Present the shared token; expect AUTH_OK."""
        frame_type, payload = self._request(
            pack_frame(FRAME_AUTH, self.auth_token.encode("utf-8"))
        )
        if frame_type == FRAME_ERROR:
            _raise_remote_error(payload)
        if frame_type != FRAME_AUTH_OK:
            raise FrameProtocolError(
                f"expected AUTH_OK, got frame type {frame_type}"
            )

    def close(self) -> None:
        """Close the socket (idempotent)."""
        if self._sock is not None:
            with contextlib.suppress(OSError):
                self._sock.close()
            self._sock = None

    def _request(self, frame: bytes) -> tuple[int, bytes]:
        """Send one frame and block for the peer's reply frame."""
        if self._sock is None:
            raise WorkerUnavailableError(f"{self.address} is not connected")
        self._sock.sendall(frame)
        self.bytes_sent += len(frame)
        frame_type, payload = recv_frame(self._sock, self._reader)
        self.bytes_received += _FRAME_HEADER.size + len(payload)
        self.last_used = time.monotonic()
        return frame_type, payload

    def register(self, oracle_blob: bytes, generation: int) -> None:
        """Install a pickled oracle + generation on the worker.

        The REGISTER reply also carries the host's advertised capacity
        (kept in :attr:`capacity`; pre-capacity workers whose reply has
        no capacity field read as 1).
        """
        frame_type, payload = self._request(
            pack_frame(FRAME_REGISTER, pack_register_payload(oracle_blob, generation))
        )
        if frame_type == FRAME_ERROR:
            _raise_remote_error(payload)
        if frame_type != FRAME_REGISTER_OK:
            raise FrameProtocolError(
                f"expected REGISTER_OK, got frame type {frame_type}"
            )
        if len(payload) >= _REGISTER_OK_HEADER.size:
            echoed, capacity = _REGISTER_OK_HEADER.unpack_from(payload, 0)
            self.capacity = max(1, capacity)
        else:
            (echoed,) = _REGISTER_HEADER.unpack_from(payload, 0)
            self.capacity = 1
        if echoed != generation:
            raise FrameProtocolError(
                f"worker acknowledged generation {echoed}, expected {generation}"
            )

    def ping(self) -> None:
        """Heartbeat round trip; raises if the connection is dead."""
        frame_type, payload = self._request(pack_frame(FRAME_PING))
        if frame_type == FRAME_ERROR:
            _raise_remote_error(payload)
        if frame_type != FRAME_PONG:
            raise FrameProtocolError(f"expected PONG, got frame type {frame_type}")

    def run_batch(self, batch_id: int, payload: bytes) -> list[bytes]:
        """Send one SEGMENTS payload; return the per-segment result blobs."""
        frame_type, reply = self._request(pack_frame(FRAME_SEGMENTS, payload))
        if frame_type == FRAME_ERROR:
            _raise_remote_error(reply)
        if frame_type != FRAME_RESULTS:
            raise FrameProtocolError(
                f"expected RESULTS, got frame type {frame_type}"
            )
        got_batch, blobs = split_results_payload(reply)
        if got_batch != batch_id:
            raise FrameProtocolError(
                f"result batch {got_batch} does not match request {batch_id}"
            )
        return blobs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.connected else "down"
        return f"HostConnection({self.address}, {state})"


#: Connection failures the registry absorbs by requeueing + reconnect.
_HOST_FAILURES = (OSError, ConnectionClosedError, FrameProtocolError)


class CacheClient:
    """Worker-side client of the cluster cache tier.

    Speaks CACHE_LOOKUP/CACHE_STORE to a ``popqc serve`` daemon and
    reads CACHE_RESULT replies.  The tier is an optimization, so this
    client **degrades instead of failing**: an unreachable server, a
    dropped connection, a torn reply or an unexpected frame all read
    as cache misses (for lookups) or a dropped publish (for stores),
    counted in :attr:`errors` — segment work fronted by the cache must
    never fail because the cache did.  The one exception is
    :class:`AuthenticationError`, which is raised to the caller: a
    refused token fails identically forever and retrying it would only
    hide a configuration error.

    After a transport failure the client backs off for
    ``retry_seconds`` before trying the server again, so a dead cache
    daemon costs one connect timeout per backoff window, not one per
    batch.  Thread-safe; one request is on the wire at a time.
    """

    def __init__(
        self,
        address: str,
        connect_timeout: float = 2.0,
        request_timeout: Optional[float] = 30.0,
        auth_token: Optional[str] = None,
        retry_seconds: float = 5.0,
    ):
        self.address = address
        self.retry_seconds = retry_seconds
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0
        self._down_until = 0.0
        self._lock = threading.Lock()
        self._conn = HostConnection(
            address, connect_timeout, request_timeout, auth_token
        )

    @property
    def bytes_sent(self) -> int:
        """Frame bytes sent to the cache server."""
        return self._conn.bytes_sent

    @property
    def bytes_received(self) -> int:
        """Frame bytes received from the cache server."""
        return self._conn.bytes_received

    def _exchange(self, frame: bytes) -> Optional[tuple[int, bytes]]:
        """One request/reply on the shared connection, or ``None`` on a
        transport failure (counted, with the backoff window armed)."""
        if time.monotonic() < self._down_until:
            return None
        try:
            self._conn.connect()
            return self._conn._request(frame)
        except AuthenticationError:
            raise
        except _HOST_FAILURES:
            self.errors += 1
            self._down_until = time.monotonic() + self.retry_seconds
            self._conn.close()
            return None

    def lookup(
        self, namespace: bytes, packed_segments: Sequence[bytes]
    ) -> list[Optional[bytes]]:
        """Cached value bytes per segment (``None`` per miss).

        Always returns exactly ``len(packed_segments)`` entries; any
        reply the server tore or dropped reads as misses.
        """
        if not packed_segments:
            return []
        all_miss: list[Optional[bytes]] = [None] * len(packed_segments)
        with self._lock:
            reply = self._exchange(
                pack_frame(
                    FRAME_CACHE_LOOKUP,
                    pack_cache_lookup_payload(namespace, packed_segments),
                )
            )
            if reply is None:
                return all_miss
            frame_type, payload = reply
            if frame_type == FRAME_ERROR:
                self.errors += 1
                _raise_remote_error_auth_only(payload)
                return all_miss
            if frame_type != FRAME_CACHE_RESULT:
                self.errors += 1
                self._conn.close()
                return all_miss
            values = unpack_cache_result_payload(payload)
            if len(values) != len(packed_segments):
                # torn or miscounted reply: the missing tail is misses
                self.errors += 1
                values = (values + all_miss)[: len(packed_segments)]
            hits = sum(1 for value in values if value is not None)
            self.hits += hits
            self.misses += len(values) - hits
            return values

    def store(
        self, namespace: bytes, entries: Sequence[tuple[bytes, bytes]]
    ) -> bool:
        """Publish ``(packed segment, value)`` pairs; True when acked."""
        if not entries:
            return True
        with self._lock:
            reply = self._exchange(
                pack_frame(
                    FRAME_CACHE_STORE,
                    pack_cache_store_payload(namespace, entries),
                )
            )
            if reply is None:
                return False
            frame_type, payload = reply
            if frame_type == FRAME_CACHE_RESULT:
                self.stores += len(entries)
                return True
            self.errors += 1
            if frame_type == FRAME_ERROR:
                _raise_remote_error_auth_only(payload)
            else:
                self._conn.close()
            return False

    def close(self) -> None:
        """Close the connection (idempotent)."""
        self._conn.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CacheClient({self.address}, hits={self.hits}, "
            f"misses={self.misses}, errors={self.errors})"
        )


def _raise_remote_error_auth_only(payload: bytes) -> None:
    """Re-raise an ERROR reply only when it is an auth refusal; any
    other refusal is a degradation the cache client absorbs."""
    kind, message = unpack_error_payload(payload)
    if kind == ERR_AUTH:
        raise AuthenticationError(message)


class SocketHostPool:
    """Client-side registry of worker hosts with failover dispatch.

    ``run_round`` splits the round's batches into **per-host queues**
    by capacity-weighted round-robin (a host advertising 4x the
    capacity is dealt roughly 4x the batches), then drains them with
    one dispatcher thread per connected host.  Each dispatcher takes
    up to its host's advertised ``capacity`` batches per trip (capped
    at a fair share of everything still queued, so a big host never
    hoards the tail while smaller live hosts idle) — and when its own
    queue runs dry it **steals** from the tail of the deepest peer
    queue instead of idling, so a mis-sized initial split or a slow
    host costs tail latency, not throughput.  A host failing mid-batch
    has its untried batches requeued *to its own queue* — the peers
    steal them, which is the same path whether the host died holding
    dealt work or stolen work — and is reconnected (and re-registered
    with the current oracle) so it can rejoin; when no host remains
    the round raises :class:`WorkerUnavailableError`.
    Remote stale-generation refusals surface as
    :class:`~repro.parallel.StaleOracleError` and oracle exceptions as
    :class:`RemoteOracleError` — both abort the round instead of being
    retried, because they would fail identically everywhere.

    The pool is **elastic**: :meth:`add_host` and :meth:`remove_host`
    adjust the registry between (or during) rounds, which is how the
    optimization service's autoscaler grows and shrinks the fleet.
    Removing a host closes its connection, so a round in flight on it
    drains through the ordinary requeue-and-steal path — retirement
    costs latency, never a round.

    Attributes
    ----------
    reconnects:
        Successful reconnect-and-re-register cycles after a failure.
    heartbeats:
        Heartbeat pings sent by :meth:`ensure_ready`.
    steals:
        Batches taken from a peer's queue by a dispatcher whose own
        queue ran dry.
    host_segments / host_seconds:
        Per-address totals of segments served and wall seconds spent
        serving them (the per-host throughput statistic).
    """

    def __init__(
        self,
        hosts: Sequence[str],
        connect_timeout: float = 5.0,
        request_timeout: Optional[float] = 120.0,
        heartbeat_seconds: float = 30.0,
        auth_token: Optional[str] = None,
    ):
        if not hosts:
            raise ValueError("SocketHostPool needs at least one host address")
        self.heartbeat_seconds = heartbeat_seconds
        self.reconnects = 0
        self.heartbeats = 0
        self.steals = 0
        self.host_segments: dict[str, int] = {addr: 0 for addr in hosts}
        self.host_seconds: dict[str, float] = {addr: 0.0 for addr in hosts}
        self._connect_timeout = connect_timeout
        self._request_timeout = request_timeout
        self._auth_token = auth_token
        self._conns = [
            HostConnection(addr, connect_timeout, request_timeout, auth_token)
            for addr in hosts
        ]
        self._retired_bytes_sent = 0
        self._retired_bytes_received = 0
        self._oracle_blob: Optional[bytes] = None
        self._generation = -1
        self._lock = threading.Lock()

    def _snapshot(self) -> list[HostConnection]:
        """The connection list as of now (elastic membership changes
        from other threads must not tear an iteration)."""
        with self._lock:
            return list(self._conns)

    @property
    def hosts(self) -> list[str]:
        """The configured host addresses, in order."""
        return [conn.address for conn in self._snapshot()]

    @property
    def host_capacity(self) -> dict[str, int]:
        """Advertised capacity per host address (1 until registered)."""
        return {conn.address: conn.capacity for conn in self._snapshot()}

    @property
    def bytes_sent(self) -> int:
        """Total frame bytes sent across all connections ever opened."""
        return self._retired_bytes_sent + sum(
            c.bytes_sent for c in self._snapshot()
        )

    @property
    def bytes_received(self) -> int:
        """Total frame bytes received across all connections ever opened."""
        return self._retired_bytes_received + sum(
            c.bytes_received for c in self._snapshot()
        )

    def close(self) -> None:
        """Close every connection (the worker hosts keep running)."""
        for conn in self._snapshot():
            conn.close()

    # -- elastic membership ----------------------------------------------------

    def add_host(self, address: str) -> bool:
        """Add a worker host to the pool (elastic scale-up).

        The new host joins with the same timeouts and auth token as
        the rest of the pool and — when an oracle is installed — goes
        through the ordinary connect-and-register handshake at once,
        so the next round can deal batches to it.  Returns whether the
        host was reachable (an unreachable host stays in the registry
        and is retried by :meth:`ensure_ready`, exactly like a
        configured host that was down at startup).
        """
        conn = HostConnection(
            address,
            self._connect_timeout,
            self._request_timeout,
            self._auth_token,
        )
        with self._lock:
            self._conns.append(conn)
            self.host_segments.setdefault(address, 0)
            self.host_seconds.setdefault(address, 0.0)
        if self._oracle_blob is not None:
            return self._connect_and_register(conn, count_reconnect=False)
        try:
            conn.connect()
        except AuthenticationError:
            raise
        except _HOST_FAILURES:
            return False
        return True

    def remove_host(self, address: str) -> bool:
        """Retire one host with ``address`` from the pool (scale-down).

        Closes its connection, so a dispatcher mid-batch on it
        observes the ordinary host failure and requeues through the
        steal path — no round is lost to a retirement.  Per-host
        statistics for the address are kept.  Returns whether a host
        was removed.
        """
        with self._lock:
            found = next(
                (c for c in self._conns if c.address == address), None
            )
            if found is None:
                return False
            self._conns.remove(found)
        self._retire(found)
        return True

    # -- registration + heartbeat ---------------------------------------------

    def register(self, oracle: object, generation: int) -> None:
        """Pickle ``oracle`` once and install it on every reachable host.

        Hosts that cannot be reached are left unregistered; they are
        retried (with registration) by the mid-round reconnect path and
        by :meth:`ensure_ready`.  Raises
        :class:`WorkerUnavailableError` when *no* host accepts.
        """
        self._oracle_blob = pickle.dumps(oracle)
        self._generation = generation
        reachable = 0
        for conn in self._snapshot():
            if self._connect_and_register(conn, count_reconnect=False):
                reachable += 1
        if reachable == 0:
            raise WorkerUnavailableError(
                f"no worker host reachable among {self.hosts}"
            )

    def ensure_ready(self) -> None:
        """Heartbeat idle connections; reconnect the ones that fail.

        Called between rounds: connections idle past
        ``heartbeat_seconds`` get a PING, and any that fail it (or were
        down) go through the reconnect-and-re-register cycle so the
        next round starts with every recoverable host live.
        """
        now = time.monotonic()
        for conn in self._snapshot():
            if conn.connected and now - conn.last_used < self.heartbeat_seconds:
                continue
            if conn.connected:
                self.heartbeats += 1
                try:
                    conn.ping()
                    continue
                except _HOST_FAILURES:
                    self._retire(conn)
            self._connect_and_register(conn, count_reconnect=conn.last_used > 0)

    def _retire(self, conn: HostConnection) -> None:
        """Fold a dead connection's byte counters into the pool tally."""
        with self._lock:
            self._retired_bytes_sent += conn.bytes_sent
            self._retired_bytes_received += conn.bytes_received
        conn.bytes_sent = 0
        conn.bytes_received = 0
        conn.close()

    def _connect_and_register(
        self, conn: HostConnection, count_reconnect: bool
    ) -> bool:
        """(Re)open ``conn`` and install the current oracle on it."""
        try:
            conn.connect()
            if self._oracle_blob is not None:
                conn.register(self._oracle_blob, self._generation)
        except _HOST_FAILURES:
            self._retire(conn)
            return False
        if count_reconnect:
            with self._lock:
                self.reconnects += 1
        return True

    # -- round dispatch --------------------------------------------------------

    @staticmethod
    def _safe_capacity(conn: HostConnection) -> int:
        """The host's advertised capacity, floored at 1.

        A host advertising capacity 0 (a buggy or hostile peer — the
        stock :class:`WorkerHost` refuses to be configured that way)
        must not zero out the weighted deal or starve its dispatcher;
        it is treated as capacity 1 and logged once per observation.
        """
        capacity = conn.capacity
        if capacity < 1:
            _log.warning(
                "host %s advertises capacity %d; treating it as 1",
                conn.address,
                capacity,
            )
            return 1
        return capacity

    def run_round(
        self, batches: Sequence[tuple[int, int, bytes]]
    ) -> list[list[bytes]]:
        """Drain ``batches`` across the live hosts; return results in order.

        ``batches`` holds ``(batch id, segment count, SEGMENTS
        payload)`` triples.  Each live host is dealt a
        capacity-weighted share into its own queue and drains it with
        one dispatcher thread; a dispatcher whose queue runs dry
        steals from the deepest peer queue.  Failures requeue to the
        failing host's queue, where the peers steal them (see the
        class docstring).
        """
        live = [conn for conn in self._snapshot() if conn.connected]
        results: dict[int, list[bytes]] = {}
        fatal: list[BaseException] = []
        in_flight = [0]
        cond = threading.Condition()

        # capacity-weighted deal: host i appears capacity_i times in
        # the cycle, so a capacity-4 host is dealt 4x the batches of a
        # capacity-1 neighbour before any stealing happens
        queues: dict[int, deque[tuple[int, int, bytes]]] = {
            id(conn): deque() for conn in live
        }
        if live:
            cycle: list[int] = []
            for conn in live:
                cycle.extend([id(conn)] * self._safe_capacity(conn))
            for i, item in enumerate(batches):
                queues[cycle[i % len(cycle)]].append(item)

        def take_items(
            conn: HostConnection, my_queue: deque
        ) -> list[tuple[int, int, bytes]]:
            # caller holds cond
            alive = sum(1 for c in live if c.connected) or 1
            pending = sum(len(q) for q in queues.values())
            fair = -(-pending // alive)
            take = max(1, min(self._safe_capacity(conn), fair))
            items = []
            while my_queue and len(items) < take:
                items.append(my_queue.popleft())
            if not items:
                # own queue ran dry: steal from the deepest peer queue,
                # from the tail — the end its owner would reach last
                victims = [
                    q for q in queues.values() if q is not my_queue and q
                ]
                if victims:
                    victim = max(victims, key=len)
                    while victim and len(items) < take:
                        items.append(victim.pop())
                    items.reverse()  # preserve the victim's batch order
                    self.steals += len(items)
            return items

        def dispatch(conn: HostConnection) -> None:
            my_queue = queues[id(conn)]
            while True:
                with cond:
                    # empty queues are not the end of the round: a
                    # batch in flight on a dying host may be requeued,
                    # and this thread must be there to steal it
                    while (
                        not fatal
                        and not any(queues.values())
                        and in_flight[0]
                    ):
                        cond.wait(timeout=0.1)
                    if fatal or not any(queues.values()):
                        return
                    items = take_items(conn, my_queue)
                    if not items:
                        continue
                    in_flight[0] += len(items)
                for taken, item in enumerate(items):
                    batch_id, nsegs, payload = item
                    t0 = time.perf_counter()
                    try:
                        blobs = conn.run_batch(batch_id, payload)
                    except _HOST_FAILURES:
                        with cond:
                            # requeue the in-flight batch and the
                            # untried remainder to this host's own
                            # queue; the survivors steal from it
                            for untried in reversed(items[taken:]):
                                my_queue.appendleft(untried)
                            in_flight[0] -= len(items) - taken
                            cond.notify_all()
                        self._retire(conn)
                        try:
                            rejoined = self._connect_and_register(
                                conn, count_reconnect=True
                            )
                        except AuthenticationError as exc:
                            # the host now refuses our token: that is
                            # a configuration failure, not a flaky
                            # network — fail the round loudly instead
                            # of silently draining without this host
                            with cond:
                                fatal.append(exc)
                                cond.notify_all()
                            return
                        if not rejoined:
                            return  # host is gone; survivors steal
                        break  # rejoined: back to the queues
                    except BaseException as exc:  # stale oracle / remote error
                        with cond:
                            fatal.append(exc)
                            in_flight[0] -= len(items) - taken
                            cond.notify_all()
                        return
                    elapsed = time.perf_counter() - t0
                    with cond:
                        results[batch_id] = blobs
                        host_address = conn.address
                        self.host_segments[host_address] = (
                            self.host_segments.get(host_address, 0) + nsegs
                        )
                        self.host_seconds[host_address] = (
                            self.host_seconds.get(host_address, 0.0) + elapsed
                        )
                        in_flight[0] -= 1
                        cond.notify_all()

        threads = [
            threading.Thread(target=dispatch, args=(conn,), daemon=True)
            for conn in live
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if fatal:
            raise fatal[0]
        if len(results) != len(batches):
            raise WorkerUnavailableError(
                f"{len(batches) - len(results)} batch(es) undelivered: every "
                f"worker host in {self.hosts} is unreachable"
            )
        return [results[batch_id] for batch_id, _, _ in batches]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        up = sum(1 for c in self._conns if c.connected)
        return f"SocketHostPool(hosts={self.hosts}, up={up})"


@contextlib.contextmanager
def local_cluster(
    num_hosts: int = 2,
    capacities: Optional[Sequence[int]] = None,
    auth_token: Optional[str] = None,
    cache_address: Optional[str] = None,
) -> Iterator[list[str]]:
    """Start ``num_hosts`` in-process :class:`WorkerHost` servers.

    Yields their ``host:port`` addresses and stops them on exit.
    ``capacities`` optionally assigns a per-host capacity
    advertisement (default 1 each, the homogeneous cluster); its
    length must match ``num_hosts``.  ``auth_token`` starts every host
    demanding the shared token (clients must pass the same one).
    ``cache_address`` points every host at a cluster cache tier (a
    ``popqc serve`` daemon), as ``popqc worker --cache`` does.  This
    is the localhost cluster fixture the equivalence suite and the
    transport benchmark run against; CI's ``dist-smoke`` job exercises
    the same protocol against real ``popqc worker`` processes.
    """
    if capacities is not None and len(capacities) != num_hosts:
        raise ValueError(
            f"capacities has {len(capacities)} entries for {num_hosts} hosts"
        )
    hosts = [
        WorkerHost(
            capacity=capacities[i] if capacities else 1,
            auth_token=auth_token,
            cache_address=cache_address,
        ).start()
        for i in range(num_hosts)
    ]
    try:
        yield [host.address for host in hosts]
    finally:
        for host in hosts:
            host.stop()
