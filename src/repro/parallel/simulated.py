"""Simulated parallelism: serial execution, parallel accounting.

The paper evaluates scaling on a 64-core machine.  This reproduction's
reference environment has a single core and a GIL, so *measured* wall
clock cannot exhibit the paper's speedups (repro band: 3/5).  Instead of
dropping the scaling experiments we simulate them:

* every task of a ``parmap`` is executed serially and individually timed;
* the executor then charges, for that round, the **makespan** that greedy
  list scheduling over ``workers`` virtual workers would achieve on those
  task durations (see :mod:`repro.parallel.scheduling`).

The per-round makespan plus the measured serial administrative time is
exactly the quantity bounded by the paper's span theorem
(O(r (lg n + S))), so self-speedup curves computed this way have the same
shape as the paper's Figures 3 and 5: rising with circuit size, limited
by round count and by per-round task-count/imbalance.

The executor accumulates simulated time across calls; the POPQC driver
reads it through :attr:`SimulatedParallelism.simulated_elapsed`.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence, TypeVar

from .scheduling import greedy_makespan

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["SimulatedParallelism"]


class SimulatedParallelism:
    """A :class:`~repro.parallel.executor.ParallelMap` with virtual workers.

    Parameters
    ----------
    workers:
        Number of virtual workers the makespan accounting assumes.
    timer:
        Clock used to measure individual task durations; injectable for
        deterministic tests.
    """

    def __init__(
        self,
        workers: int,
        timer: Callable[[], float] = time.perf_counter,
        record_durations: bool = False,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self._timer = timer
        #: Accumulated simulated parallel time over all map() calls.
        self.simulated_elapsed = 0.0
        #: Accumulated serial time actually spent inside tasks.
        self.serial_elapsed = 0.0
        #: Per-call list of (task_count, serial_time, makespan) triples.
        self.round_log: list[tuple[int, float, float]] = []
        #: When record_durations=True, the raw per-task durations of each
        #: map() call; lets callers recompute makespans for *any* worker
        #: count from a single run (see experiments.figure3).
        self.record_durations = record_durations
        self.durations_log: list[list[float]] = []

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Run every task serially while accounting a p-worker makespan."""
        durations: list[float] = []
        results: list[R] = []
        for item in items:
            t0 = self._timer()
            results.append(fn(item))
            durations.append(self._timer() - t0)
        serial = sum(durations)
        makespan = greedy_makespan(durations, self.workers)
        self.serial_elapsed += serial
        self.simulated_elapsed += makespan
        self.round_log.append((len(items), serial, makespan))
        if self.record_durations:
            self.durations_log.append(durations)
        return results

    def makespan_for(self, workers: int) -> float:
        """Total makespan the recorded rounds would take on ``workers``
        virtual workers.  Requires ``record_durations=True``."""
        if not self.record_durations:
            raise ValueError("construct with record_durations=True")
        return sum(greedy_makespan(d, workers) for d in self.durations_log)

    def close(self) -> None:
        """No pooled resources; nothing to release."""
        return None

    def reset(self) -> None:
        """Clear accumulated accounting (between experiments)."""
        self.simulated_elapsed = 0.0
        self.serial_elapsed = 0.0
        self.round_log.clear()
        self.durations_log.clear()

    @property
    def speedup(self) -> float:
        """Ratio of serial task time to simulated parallel time so far."""
        if self.simulated_elapsed == 0.0:
            return 1.0
        return self.serial_elapsed / self.simulated_elapsed

    def __repr__(self) -> str:  # pragma: no cover
        return f"SimulatedParallelism(workers={self.workers})"
