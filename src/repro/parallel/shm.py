"""Pooled shared-memory arenas for the zero-copy oracle transport.

The ``"encoded"`` transport already collapsed per-gate pickling into a
handful of numpy buffers, but those buffers are still *copied* through
the executor pipe on every round — once into the pickle stream, once
out of it, per segment, per direction.  This module removes the copies:
each round the parent packs every segment (flat wire format of
:mod:`repro.circuits.encoding`) into one shared-memory **arena**, and
workers receive only ``(arena name, segment indices)`` — a few dozen
bytes per task.  Workers map the arena once, slice zero-copy views out
of it, and write their encoded results into a second arena whose
regions the parent reserved up front, so the reply pipe carries only
per-segment "it's in the arena" markers.

Arenas come from a :class:`ShmArenaPool` — a ring of reusable
``multiprocessing.shared_memory`` blocks.  Rounds reuse blocks instead
of re-creating them, so the steady-state cost of a round is two
``memcpy``-speed packs and zero ``shm_open``/``mmap`` calls.  The pool
unlinks every block it ever created on :meth:`ShmArenaPool.close` (and,
as a backstop, from a ``weakref.finalize``), so executor shutdown —
clean or after a worker crash — leaves no ``/dev/shm`` entries behind.

Arena layout (offsets in bytes)::

    input arena                      result arena
    [0:8)    round id                [0:8)    round id
    [8:16)   segment count n         [8:16)   segment count n
    [16:16+8n)  int64 offset per     [16:16+16n) int64 (offset, capacity)
             segment                          pair per segment
    [...]    packed segments         [...]    reserved result regions

The directory lives in the arena itself, so a task message never has to
carry per-segment geometry; workers read the header, check the round id
against the one in their task (stale-arena guard), and slice.

Platform notes: ``multiprocessing.shared_memory`` needs Python >= 3.8
and a POSIX/Windows shared-memory facility.  :data:`HAVE_SHM` reports
availability; :class:`~repro.parallel.ProcessMap` falls back to the
``"encoded"`` transport when it is ``False``.
"""

from __future__ import annotations

import struct
import weakref
from typing import Sequence

import numpy as np

from ..circuits.encoding import (
    EncodedSegment,
    pack_segment_into,
    packed_segment_nbytes,
)

try:  # pragma: no cover - import guard exercised via HAVE_SHM monkeypatching
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - all supported platforms have it
    _shared_memory = None

#: True when ``multiprocessing.shared_memory`` is importable here.
HAVE_SHM = _shared_memory is not None

__all__ = [
    "HAVE_SHM",
    "ShmArenaPool",
    "StaleArenaError",
    "attach_arena",
    "check_round",
    "packed_sizes",
    "read_arena_header",
    "read_input_directory",
    "read_result_directory",
    "input_arena_layout",
    "result_arena_layout",
    "write_input_arena",
    "write_result_directory",
]

_ARENA_HEADER = struct.Struct("<QQ")

#: Free-list depth; blocks beyond this are unlinked on release so a
#: one-off giant round does not pin memory forever.
_MAX_FREE_BLOCKS = 4

#: Smallest block the pool allocates (allocation is page-granular
#: anyway, and a floor keeps tiny rounds from fragmenting the ring).
_MIN_BLOCK_BYTES = 1 << 16


class StaleArenaError(RuntimeError):
    """A worker was handed an arena whose round id does not match its
    task — the parent reused the block before the task ran, which the
    barrier semantics of ``map_segments`` are supposed to prevent."""


def _unlink_blocks(blocks: list) -> None:
    """Close and unlink every block in ``blocks`` (idempotent)."""
    while blocks:
        block = blocks.pop()
        try:
            block.close()
            block.unlink()
        except (FileNotFoundError, OSError):  # already gone: fine
            pass


class ShmArenaPool:
    """A ring of reusable shared-memory blocks.

    ``acquire`` hands out the smallest free block that fits (or creates
    one, rounding the size up to a power of two so steady-state rounds
    of similar size always reuse); ``release`` returns it to the ring.
    The pool owns every block it created and unlinks them all on
    :meth:`close`, which is also registered as a finalizer so even an
    abandoned pool cleans up at garbage collection / interpreter exit.

    Attributes
    ----------
    allocations / reuses:
        How often ``acquire`` had to create a block vs. recycle one.
    bytes_allocated:
        Total capacity of all blocks ever created (monotonic).
    """

    def __init__(self) -> None:
        if not HAVE_SHM:  # pragma: no cover - platform-dependent
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self._blocks: list = []  # every live block, shared with finalizer
        self._free: list = []
        self.allocations = 0
        self.reuses = 0
        self.bytes_allocated = 0
        self._finalizer = weakref.finalize(self, _unlink_blocks, self._blocks)

    def acquire(self, nbytes: int):
        """A block with capacity >= ``nbytes`` (reused when possible)."""
        best = None
        for block in self._free:
            if block.size >= nbytes and (best is None or block.size < best.size):
                best = block
        if best is not None:
            self._free.remove(best)
            self.reuses += 1
            return best
        capacity = max(_MIN_BLOCK_BYTES, 1 << (max(1, nbytes) - 1).bit_length())
        block = _shared_memory.SharedMemory(create=True, size=capacity)
        self._blocks.append(block)
        self.allocations += 1
        self.bytes_allocated += block.size
        return block

    def release(self, block) -> None:
        """Return ``block`` to the ring for a later round."""
        self._free.append(block)
        if len(self._free) > _MAX_FREE_BLOCKS:
            # trim the largest block: steady-state rounds are similar in
            # size, so the outlier is the one-off giant round's arena
            extra = max(self._free, key=lambda b: b.size)
            self._free.remove(extra)
            self._blocks.remove(extra)
            _unlink_blocks([extra])

    def discard(self, block) -> None:
        """Unlink ``block`` instead of recycling it.

        Used after a failed round: the pool may still have straggler
        tasks writing into the arena (``ProcessPoolExecutor`` does not
        cancel a round's other batches when one raises), so the block
        must never be handed to a later round.  Workers' existing
        mappings stay valid until they close, so stray writes land in
        orphaned memory instead of a reused arena.
        """
        if block in self._blocks:
            self._blocks.remove(block)
        _unlink_blocks([block])

    @property
    def ring_bytes(self) -> int:
        """Current capacity of the ring (live blocks, bytes)."""
        return sum(block.size for block in self._blocks)

    def close(self) -> None:
        """Unlink every block the pool ever created."""
        self._free.clear()
        _unlink_blocks(self._blocks)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ShmArenaPool(blocks={len(self._blocks)}, "
            f"allocations={self.allocations}, reuses={self.reuses})"
        )


# -- worker-side attachment ----------------------------------------------------


def attach_arena(name: str):
    """Attach to an existing arena by name (worker side).

    The attachment is *not* registered with the multiprocessing
    resource tracker: the parent owns the block's lifetime, and letting
    workers also claim it makes the tracker either double-unregister
    (fork: shared tracker, KeyError noise) or unlink arenas the parent
    still uses (spawn: per-child tracker, bpo-39959).  Python 3.13 has
    ``track=False`` for exactly this; earlier versions need the
    registration call suppressed around the constructor.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    def _no_register(*args, **kwargs):
        return None

    original_register = resource_tracker.register
    resource_tracker.register = _no_register
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


# -- arena geometry ------------------------------------------------------------


def input_arena_layout(packed_sizes: Sequence[int]) -> tuple[list[int], int]:
    """(segment offsets, total bytes) for an input arena."""
    n = len(packed_sizes)
    pos = _align8(_ARENA_HEADER.size + 8 * n)
    offsets = []
    for size in packed_sizes:
        offsets.append(pos)
        pos += size  # packed sizes are already 8-byte multiples
    return offsets, pos


def result_arena_layout(
    packed_sizes: Sequence[int], slack_bytes: int = 64
) -> tuple[list[tuple[int, int]], int]:
    """((offset, capacity) per segment, total bytes) for a result arena.

    Each region is sized for the segment's *input* plus 25% + slack:
    accepted oracle rewrites shrink segments, so overflow (handled by a
    pipe fallback) only happens for pathological growing oracles.
    """
    n = len(packed_sizes)
    pos = _align8(_ARENA_HEADER.size + 16 * n)
    regions = []
    for size in packed_sizes:
        capacity = _align8(size + size // 4 + slack_bytes)
        regions.append((pos, capacity))
        pos += capacity
    return regions, pos


def write_input_arena(
    buf,
    round_id: int,
    encoded: Sequence[EncodedSegment],
    offsets: Sequence[int],
) -> None:
    """Write header, directory and packed segments into an input arena."""
    _ARENA_HEADER.pack_into(buf, 0, round_id, len(encoded))
    np.frombuffer(buf, dtype=np.int64, count=len(encoded), offset=_ARENA_HEADER.size)[
        :
    ] = offsets
    for enc, offset in zip(encoded, offsets):
        pack_segment_into(enc, buf, offset)


def write_result_directory(
    buf, round_id: int, regions: Sequence[tuple[int, int]]
) -> None:
    """Write header and (offset, capacity) directory into a result arena."""
    _ARENA_HEADER.pack_into(buf, 0, round_id, len(regions))
    table = np.frombuffer(
        buf, dtype=np.int64, count=2 * len(regions), offset=_ARENA_HEADER.size
    )
    table[0::2] = [off for off, _ in regions]
    table[1::2] = [cap for _, cap in regions]


def read_arena_header(buf) -> tuple[int, int]:
    """(round id, segment count) of an arena."""
    return _ARENA_HEADER.unpack_from(buf, 0)


def read_input_directory(buf, n: int) -> np.ndarray:
    """The int64 segment-offset table of an input arena."""
    return np.frombuffer(buf, dtype=np.int64, count=n, offset=_ARENA_HEADER.size)


def read_result_directory(buf, n: int) -> np.ndarray:
    """The int64 ``(offset, capacity)`` table of a result arena,
    shaped ``(n, 2)``."""
    flat = np.frombuffer(buf, dtype=np.int64, count=2 * n, offset=_ARENA_HEADER.size)
    return flat.reshape(n, 2)


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def check_round(buf, expected_round: int, arena_name: str) -> int:
    """Validate an arena's round id against a task's; return segment count."""
    round_id, n = read_arena_header(buf)
    if round_id != expected_round:
        raise StaleArenaError(
            f"arena {arena_name} holds round {round_id}, task expected "
            f"{expected_round}"
        )
    return n


def packed_sizes(encoded: Sequence[EncodedSegment]) -> list[int]:
    """Wire sizes of ``encoded`` in the flat format (8-byte multiples)."""
    return [packed_segment_nbytes(enc) for enc in encoded]
