"""Parallelism substrate: the parmap protocol, executors and scheduling.

Architecture
------------
POPQC's only parallel primitive is an order-preserving map over oracle
segments (paper Section 2.4).  Four executors implement it:

* :class:`SerialMap` — the reference 1-worker executor.
* :class:`ThreadMap` — shared thread pool; useful when the oracle
  releases the GIL.
* :class:`ProcessMap` — the oracle-transport executor.  Segments reach
  workers through one of four *oracle transports*: ``"encoded"``
  (default) registers the oracle once per worker via a pool
  initializer and ships each segment as compact numpy arrays
  (:mod:`repro.circuits.encoding`), so per-round IPC is a few
  contiguous buffers; ``"shm"`` packs every round's segments into one
  pooled shared-memory arena (:mod:`repro.parallel.shm`) and
  dispatches batched ``(arena, start, end)`` descriptors
  (:func:`batch_segments`), so the pipe carries no segment bytes at
  all; ``"threads"`` runs oracle calls on a shared thread pool over
  the parent's own buffers — no pipes, no arenas, no oracle
  registration — which pays off when the oracle releases the GIL
  (the vectorized rule engine, :mod:`repro.oracles.vector_engine`);
  ``"pickle"`` re-pickles the oracle callable and every
  ``list[Gate]`` per call (the seed behaviour, kept as a benchmark
  baseline).  Chunk and batch sizes adapt to measured per-segment
  oracle time (:func:`adaptive_chunksize` / :func:`batch_segments`),
  and every process-pool task carries an oracle generation token so
  stale workers fail loudly (:class:`StaleOracleError`) instead of
  applying the wrong oracle.
* :class:`SimulatedParallelism` — serial execution with p-worker
  makespan accounting for the scaling experiments.

Oracle results come back as :class:`LazySegmentResult` handles that
stay in the wire format until a driver reads their gates: POPQC's
acceptance test needs only ``len()`` (answered from the packed
header), so rejected oracle outputs are never decoded.  The skipped
work is tracked by :class:`DecodeStats` and surfaced as
``OptimizationStats.skipped_decode_bytes``.

The POPQC driver talks to executors through ``map``; executors that
also provide ``map_segments(oracle, segments)`` (currently
:class:`ProcessMap`) opt into the persistent-worker transport and the
driver will use it unless told otherwise (``popqc(...,
transport="pickle")``).

The fifth transport completes the ladder: ``"socket"``
(:mod:`repro.parallel.dist`) carries the same packed bytes as
length-prefixed frames over TCP to ``popqc worker`` hosts — serial →
pool → shm → threads → multi-host, every rung byte-identical.

Above the ladder sits the content-addressed segment result cache
(:mod:`repro.service.cache`): any :class:`ProcessMap` constructed with
``cache=`` answers repeated segments from it — on every transport
identically — instead of paying the oracle again, keyed by
:func:`oracle_fingerprint` so entries are scoped per oracle
configuration.
"""

from .dist import (
    AuthenticationError,
    CacheClient,
    FrameProtocolError,
    RemoteOracleError,
    SocketHostPool,
    WorkerHost,
    WorkerUnavailableError,
    local_cluster,
)
from .executor import (
    TRANSPORTS,
    ParallelMap,
    ProcessMap,
    SerialMap,
    StaleOracleError,
    ThreadMap,
    default_workers,
    oracle_fingerprint,
)
from .results import DecodeStats, LazySegmentResult
from .scheduling import (
    adaptive_chunksize,
    batch_segments,
    greedy_makespan,
    ideal_makespan,
    lpt_makespan,
)
from .shm import HAVE_SHM, ShmArenaPool, StaleArenaError
from .simulated import SimulatedParallelism

__all__ = [
    "HAVE_SHM",
    "TRANSPORTS",
    "AuthenticationError",
    "CacheClient",
    "DecodeStats",
    "FrameProtocolError",
    "LazySegmentResult",
    "ParallelMap",
    "ProcessMap",
    "RemoteOracleError",
    "SerialMap",
    "ShmArenaPool",
    "SimulatedParallelism",
    "SocketHostPool",
    "StaleArenaError",
    "StaleOracleError",
    "ThreadMap",
    "WorkerHost",
    "WorkerUnavailableError",
    "local_cluster",
    "adaptive_chunksize",
    "batch_segments",
    "default_workers",
    "greedy_makespan",
    "ideal_makespan",
    "lpt_makespan",
    "oracle_fingerprint",
]
