"""Parallelism substrate: the parmap protocol, executors and scheduling."""

from .executor import ParallelMap, ProcessMap, SerialMap, ThreadMap, default_workers
from .scheduling import greedy_makespan, ideal_makespan, lpt_makespan
from .simulated import SimulatedParallelism

__all__ = [
    "ParallelMap",
    "ProcessMap",
    "SerialMap",
    "SimulatedParallelism",
    "ThreadMap",
    "default_workers",
    "greedy_makespan",
    "ideal_makespan",
    "lpt_makespan",
]
