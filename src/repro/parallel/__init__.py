"""Parallelism substrate: the parmap protocol, executors and scheduling.

Architecture
------------
POPQC's only parallel primitive is an order-preserving map over oracle
segments (paper Section 2.4).  Four executors implement it:

* :class:`SerialMap` — the reference 1-worker executor.
* :class:`ThreadMap` — shared thread pool; useful when the oracle
  releases the GIL.
* :class:`ProcessMap` — real multicore execution over a persistent
  process pool.  Segments reach workers through one of three *oracle
  transports*: ``"encoded"`` (default) registers the oracle once per
  worker via a pool initializer and ships each segment as compact
  numpy arrays (:mod:`repro.circuits.encoding`), so per-round IPC is a
  few contiguous buffers; ``"shm"`` packs every round's segments into
  one pooled shared-memory arena (:mod:`repro.parallel.shm`) and
  dispatches batched ``(arena, start, end)`` descriptors
  (:func:`batch_segments`), so the pipe carries no segment bytes at
  all; ``"pickle"`` re-pickles the oracle callable and every
  ``list[Gate]`` per call (the seed behaviour, kept as a benchmark
  baseline).  Chunk and batch sizes adapt to measured per-segment
  oracle time (:func:`adaptive_chunksize` / :func:`batch_segments`),
  and every task carries an oracle generation token so stale workers
  fail loudly (:class:`StaleOracleError`) instead of applying the
  wrong oracle.
* :class:`SimulatedParallelism` — serial execution with p-worker
  makespan accounting for the scaling experiments.

The POPQC driver talks to executors through ``map``; executors that
also provide ``map_segments(oracle, segments)`` (currently
:class:`ProcessMap`) opt into the persistent-worker transport and the
driver will use it unless told otherwise (``popqc(...,
transport="pickle")``).

Remaining scaling directions (see ROADMAP "Open items"): a distributed
multi-host transport carrying the same packed wire format over
sockets, and thread-based workers once oracles release the GIL.
"""

from .executor import (
    TRANSPORTS,
    ParallelMap,
    ProcessMap,
    SerialMap,
    StaleOracleError,
    ThreadMap,
    default_workers,
)
from .scheduling import (
    adaptive_chunksize,
    batch_segments,
    greedy_makespan,
    ideal_makespan,
    lpt_makespan,
)
from .shm import HAVE_SHM, ShmArenaPool, StaleArenaError
from .simulated import SimulatedParallelism

__all__ = [
    "HAVE_SHM",
    "TRANSPORTS",
    "ParallelMap",
    "ProcessMap",
    "SerialMap",
    "ShmArenaPool",
    "SimulatedParallelism",
    "StaleArenaError",
    "StaleOracleError",
    "ThreadMap",
    "adaptive_chunksize",
    "batch_segments",
    "default_workers",
    "greedy_makespan",
    "ideal_makespan",
    "lpt_makespan",
]
