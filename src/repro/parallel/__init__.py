"""Parallelism substrate: the parmap protocol, executors and scheduling.

Architecture
------------
POPQC's only parallel primitive is an order-preserving map over oracle
segments (paper Section 2.4).  Four executors implement it:

* :class:`SerialMap` — the reference 1-worker executor.
* :class:`ThreadMap` — shared thread pool; useful when the oracle
  releases the GIL.
* :class:`ProcessMap` — real multicore execution over a persistent
  process pool.  Segments reach workers through one of two *oracle
  transports*: ``"encoded"`` (default) registers the oracle once per
  worker via a pool initializer and ships each segment as compact
  numpy arrays (:mod:`repro.circuits.encoding`), so per-round IPC is a
  few contiguous buffers; ``"pickle"`` re-pickles the oracle callable
  and every ``list[Gate]`` per call (the seed behaviour, kept as a
  benchmark baseline).  Chunk sizes adapt to measured per-segment
  oracle time (:func:`adaptive_chunksize`).
* :class:`SimulatedParallelism` — serial execution with p-worker
  makespan accounting for the scaling experiments.

The POPQC driver talks to executors through ``map``; executors that
also provide ``map_segments(oracle, segments)`` (currently
:class:`ProcessMap`) opt into the persistent-worker transport and the
driver will use it unless told otherwise (``popqc(...,
transport="pickle")``).

Remaining scaling directions (see ROADMAP "Open items"): shared-memory
segment buffers instead of pipe copies, batched multi-segment tasks,
and a distributed (multi-host) transport behind the same protocol.
"""

from .executor import (
    TRANSPORTS,
    ParallelMap,
    ProcessMap,
    SerialMap,
    ThreadMap,
    default_workers,
)
from .scheduling import (
    adaptive_chunksize,
    greedy_makespan,
    ideal_makespan,
    lpt_makespan,
)
from .simulated import SimulatedParallelism

__all__ = [
    "TRANSPORTS",
    "ParallelMap",
    "ProcessMap",
    "SerialMap",
    "SimulatedParallelism",
    "ThreadMap",
    "adaptive_chunksize",
    "default_workers",
    "greedy_makespan",
    "ideal_makespan",
    "lpt_makespan",
]
