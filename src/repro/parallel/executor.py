"""The ``parmap`` primitive (paper Section 2.4).

POPQC exposes parallelism only through a parallel map over a collection.
The paper implements it with Rust/Rayon fork-join; here the primitive is
an abstract :class:`ParallelMap` with four implementations:

* :class:`SerialMap` — plain sequential map (the 1-thread configuration).
* :class:`ThreadMap` — ``concurrent.futures.ThreadPoolExecutor``.  Under
  CPython's GIL this gives little speedup for pure-Python oracles but is
  useful when the oracle releases the GIL (numpy-heavy cost functions).
* :class:`ProcessMap` — ``ProcessPoolExecutor``; real multicore speedups.
  Beyond the generic :meth:`ProcessMap.map`, it implements the
  *oracle transport* protocol (:meth:`ProcessMap.map_segments`): the
  oracle callable is registered **once per worker** through a pool
  initializer, and gate segments cross the process boundary as compact
  numpy arrays (:mod:`repro.circuits.encoding`) instead of per-gate
  pickled objects.  This is the CPython analogue of Rayon handing a
  borrowed slice to a worker: the per-round IPC cost is a few
  contiguous buffers, not ``O(gates)`` pickle opcodes plus a fresh copy
  of the oracle.
* :class:`~repro.parallel.simulated.SimulatedParallelism` — executes
  serially, times each task, and reports the *makespan* a p-worker
  machine would achieve.  This is the executor the scaling experiments
  use (see DESIGN.md, substitution table).

All implementations preserve input order in the result list, which the
POPQC driver relies on.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Protocol, Sequence, TypeVar

from ..circuits.encoding import EncodedSegment, decode_segment, encode_segment
from ..circuits.gate import Gate
from .scheduling import adaptive_chunksize

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "ParallelMap",
    "SerialMap",
    "ThreadMap",
    "ProcessMap",
    "default_workers",
    "TRANSPORTS",
]

#: Oracle-transport modes supported by :class:`ProcessMap`.
TRANSPORTS = ("encoded", "pickle")


def default_workers() -> int:
    """Worker count used when none is given (``os.cpu_count()``)."""
    return os.cpu_count() or 1


class ParallelMap(Protocol):
    """Order-preserving parallel map protocol.

    Implementations may run tasks in any order but must return results in
    input order.  ``workers`` reports the parallelism the executor aims
    to provide (used by instrumentation only).

    Executors may additionally implement the oracle-transport extension
    (``map_segments(oracle, segments)``); the POPQC driver uses it when
    present to avoid re-shipping the oracle every round.
    """

    workers: int

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every element of ``items``."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release pooled resources (no-op for stateless executors)."""
        ...  # pragma: no cover - protocol


class SerialMap:
    """Sequential map; the reference executor and the 1-thread setting."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]

    def close(self) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return "SerialMap()"


class ThreadMap:
    """Thread-pool map.

    A shared pool is kept alive across calls so repeated rounds of the
    POPQC loop do not pay thread startup costs.
    """

    def __init__(self, workers: int | None = None):
        self.workers = workers or default_workers()
        self._pool: ThreadPoolExecutor | None = None

    def _ensure(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"ThreadMap(workers={self.workers})"


# -- persistent-worker oracle transport ---------------------------------------
#
# Worker-side state.  With the "encoded" transport the oracle callable is
# installed once per worker process (pool initializer); every subsequent
# task ships only an EncodedSegment and returns one.

_WORKER_ORACLE: Callable[[list[Gate]], list[Gate]] | None = None


def _register_worker_oracle(oracle: Callable[[list[Gate]], list[Gate]]) -> None:
    global _WORKER_ORACLE
    _WORKER_ORACLE = oracle


def _apply_registered_oracle(encoded: EncodedSegment) -> EncodedSegment:
    if _WORKER_ORACLE is None:
        raise RuntimeError("worker pool initialized without an oracle")
    return encode_segment(_WORKER_ORACLE(decode_segment(encoded)))


class _PickledOracleCall:
    """Picklable oracle-application wrapper.

    The pickle transport ships one of these with every chunk (the seed
    behaviour); the POPQC driver reuses it (as ``_OracleTask``) for the
    legacy ``pmap.map`` path so both baselines stay identical.
    """

    __slots__ = ("oracle",)

    def __init__(self, oracle: Callable[[list[Gate]], list[Gate]]):
        self.oracle = oracle

    def __call__(self, segment: list[Gate]) -> list[Gate]:
        return self.oracle(segment)


class ProcessMap:
    """Process-pool map for genuine multicore execution.

    Tasks and results cross process boundaries, so ``fn`` and the items
    must be picklable.  Small batches fall back to serial execution to
    avoid paying IPC costs for trivial rounds (the same adaptive idea as
    Rayon's loop splitting, which the paper relies on).

    Parameters
    ----------
    workers:
        Pool size; defaults to :func:`default_workers`.
    serial_cutoff:
        Batches of at most this many items run inline in the parent.
    transport:
        Wire format for :meth:`map_segments`.  ``"encoded"`` (default)
        registers the oracle once per worker and ships segments as
        compact numpy arrays; ``"pickle"`` reproduces the seed
        behaviour — the oracle and every ``list[Gate]`` are pickled on
        every call — and exists as the benchmark baseline.

    Attributes
    ----------
    serialization_time:
        Accumulated parent-side encode/decode seconds across all
        :meth:`map_segments` calls (``"encoded"`` transport only; the
        pickle transport's serialization happens inside the pool
        machinery and is not separable).
    last_serialization_time:
        Parent-side encode/decode seconds of the most recent
        :meth:`map_segments` call.
    pool_dispatches:
        Number of :meth:`map` / :meth:`map_segments` calls that
        actually crossed the process boundary (batches at or below
        ``serial_cutoff`` run inline and don't count).
    """

    def __init__(
        self,
        workers: int | None = None,
        serial_cutoff: int = 2,
        transport: str = "encoded",
    ):
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )
        self.workers = workers or default_workers()
        self.serial_cutoff = serial_cutoff
        self.transport = transport
        self.serialization_time = 0.0
        self.last_serialization_time = 0.0
        self.pool_dispatches = 0
        self._pool: ProcessPoolExecutor | None = None
        self._registered_oracle: object | None = None
        self._task_seconds_est = 0.0

    # -- generic map ---------------------------------------------------------

    def _ensure(self) -> ProcessPoolExecutor:
        """Pool for generic ``map`` (no oracle registered)."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            self._registered_oracle = None
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if len(items) <= self.serial_cutoff:
            return [fn(item) for item in items]
        # balance-only chunking: the learned task-time estimate belongs
        # to oracle segments (map_segments), not arbitrary callables
        chunk = adaptive_chunksize(len(items), self.workers, 0.0)
        self.pool_dispatches += 1
        return list(self._ensure().map(fn, items, chunksize=chunk))

    # -- oracle transport -----------------------------------------------------

    def _ensure_registered(self, oracle: object) -> ProcessPoolExecutor:
        """Pool whose workers have ``oracle`` installed via the initializer.

        Swapping oracles mid-run tears the pool down and rebuilds it;
        the POPQC loop uses one oracle for thousands of rounds, so the
        rebuild is a once-per-run cost.
        """
        if self._pool is not None and self._registered_oracle is not oracle:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_register_worker_oracle,
                initargs=(oracle,),
            )
            self._registered_oracle = oracle
        return self._pool

    def map_segments(
        self,
        oracle: Callable[[list[Gate]], list[Gate]],
        segments: Sequence[list[Gate]],
    ) -> list[list[Gate]]:
        """Apply ``oracle`` to every segment, preserving order.

        The oracle crosses the process boundary at most once per worker
        (``"encoded"`` transport); segments travel as numpy buffers.
        """
        self.last_serialization_time = 0.0
        if len(segments) <= self.serial_cutoff:
            return [oracle(seg) for seg in segments]

        chunk = adaptive_chunksize(len(segments), self.workers, self._task_seconds_est)
        self.pool_dispatches += 1
        prev_pool = self._pool
        was_warm = prev_pool is not None
        t_map = time.perf_counter()
        if self.transport == "pickle":
            results = list(
                self._ensure().map(
                    _PickledOracleCall(oracle), segments, chunksize=chunk
                )
            )
            if was_warm:
                self._observe(time.perf_counter() - t_map, len(segments), chunk)
            return results

        t0 = time.perf_counter()
        encoded = [encode_segment(seg) for seg in segments]
        ser = time.perf_counter() - t0
        pool = self._ensure_registered(oracle)
        was_warm = was_warm and pool is prev_pool  # oracle swap rebuilds cold
        t_map = time.perf_counter()
        out = list(pool.map(_apply_registered_oracle, encoded, chunksize=chunk))
        pool_elapsed = time.perf_counter() - t_map
        t0 = time.perf_counter()
        results = [decode_segment(enc) for enc in out]
        ser += time.perf_counter() - t0
        self.last_serialization_time = ser
        self.serialization_time += ser
        if was_warm:
            # only the pool interval: parent-side encode/decode is
            # serialization, not task time
            self._observe(pool_elapsed, len(segments), chunk)
        return results

    def _observe(self, elapsed: float, items: int, chunk: int) -> None:
        """Feed the adaptive chunking policy with measured per-task time.

        ``elapsed`` is parallel wall-clock, so one task's duration is
        roughly ``elapsed × parallelism / items``; parallelism is
        bounded by both the pool size and the number of chunks.  Using
        the bound errs toward over-estimating task time, i.e. toward
        the balance-oriented chunk — the safe direction.  Cold-pool
        calls (worker spawn inflates ``elapsed``) are not observed.
        """
        if items <= 0:
            return
        parallelism = min(self.workers, -(-items // max(1, chunk)))
        per_task = elapsed * parallelism / items
        if self._task_seconds_est == 0.0:
            self._task_seconds_est = per_task
        else:
            self._task_seconds_est = 0.7 * self._task_seconds_est + 0.3 * per_task

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._registered_oracle = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"ProcessMap(workers={self.workers}, transport={self.transport!r})"
