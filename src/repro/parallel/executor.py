"""The ``parmap`` primitive (paper Section 2.4).

POPQC exposes parallelism only through a parallel map over a collection.
The paper implements it with Rust/Rayon fork-join; here the primitive is
an abstract :class:`ParallelMap` with four implementations:

* :class:`SerialMap` — plain sequential map (the 1-thread configuration).
* :class:`ThreadMap` — ``concurrent.futures.ThreadPoolExecutor``.  Under
  CPython's GIL this gives little speedup for pure-Python oracles but is
  useful when the oracle releases the GIL (numpy-heavy cost functions).
* :class:`ProcessMap` — ``ProcessPoolExecutor``; real multicore speedups
  at the cost of pickling segments to workers.  Oracle callables must be
  picklable (all oracles in :mod:`repro.oracles` are).
* :class:`~repro.parallel.simulated.SimulatedParallelism` — executes
  serially, times each task, and reports the *makespan* a p-worker
  machine would achieve.  This is the executor the scaling experiments
  use (see DESIGN.md, substitution table).

All implementations preserve input order in the result list, which the
POPQC driver relies on.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Protocol, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["ParallelMap", "SerialMap", "ThreadMap", "ProcessMap", "default_workers"]


def default_workers() -> int:
    """Worker count used when none is given (``os.cpu_count()``)."""
    return os.cpu_count() or 1


class ParallelMap(Protocol):
    """Order-preserving parallel map protocol.

    Implementations may run tasks in any order but must return results in
    input order.  ``workers`` reports the parallelism the executor aims
    to provide (used by instrumentation only).
    """

    workers: int

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every element of ``items``."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release pooled resources (no-op for stateless executors)."""
        ...  # pragma: no cover - protocol


class SerialMap:
    """Sequential map; the reference executor and the 1-thread setting."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]

    def close(self) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return "SerialMap()"


class ThreadMap:
    """Thread-pool map.

    A shared pool is kept alive across calls so repeated rounds of the
    POPQC loop do not pay thread startup costs.
    """

    def __init__(self, workers: int | None = None):
        self.workers = workers or default_workers()
        self._pool: ThreadPoolExecutor | None = None

    def _ensure(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"ThreadMap(workers={self.workers})"


class ProcessMap:
    """Process-pool map for genuine multicore execution.

    Tasks and results cross process boundaries, so ``fn`` and the items
    must be picklable.  Small batches fall back to serial execution to
    avoid paying IPC costs for trivial rounds (the same adaptive idea as
    Rayon's loop splitting, which the paper relies on).
    """

    def __init__(self, workers: int | None = None, serial_cutoff: int = 2):
        self.workers = workers or default_workers()
        self.serial_cutoff = serial_cutoff
        self._pool: ProcessPoolExecutor | None = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if len(items) <= self.serial_cutoff:
            return [fn(item) for item in items]
        chunk = max(1, len(items) // (4 * self.workers))
        return list(self._ensure().map(fn, items, chunksize=chunk))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"ProcessMap(workers={self.workers})"
