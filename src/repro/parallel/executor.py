"""The ``parmap`` primitive (paper Section 2.4).

POPQC exposes parallelism only through a parallel map over a collection.
The paper implements it with Rust/Rayon fork-join; here the primitive is
an abstract :class:`ParallelMap` with four implementations:

* :class:`SerialMap` — plain sequential map (the 1-thread configuration).
* :class:`ThreadMap` — ``concurrent.futures.ThreadPoolExecutor``.  Under
  CPython's GIL this gives little speedup for pure-Python oracles but is
  useful when the oracle releases the GIL (numpy-heavy cost functions).
* :class:`ProcessMap` — ``ProcessPoolExecutor``; real multicore speedups.
  Beyond the generic :meth:`ProcessMap.map`, it implements the
  *oracle transport* protocol (:meth:`ProcessMap.map_segments`): the
  oracle callable is registered **once per worker** through a pool
  initializer (tagged with a generation token so a swapped oracle can
  never be silently applied by a stale worker), and gate segments cross
  the process boundary in one of three wire formats:

  - ``"encoded"`` — each segment travels as compact numpy arrays
    (:mod:`repro.circuits.encoding`) through the executor pipe;
  - ``"shm"`` — all of a round's segments are packed into one pooled
    shared-memory arena (:mod:`repro.parallel.shm`) with a
    segment-directory header, tasks carry only ``(arena, start, end)``
    descriptors batched by :func:`~repro.parallel.scheduling.batch_segments`,
    workers slice zero-copy views out of the arena and write encoded
    results into a second arena — the pipe never carries segment bytes;
  - ``"pickle"`` — the seed behaviour (re-pickle oracle + gate objects
    every call), kept as the benchmark baseline;
  - ``"socket"`` — the same packed bytes as length-prefixed frames
    over TCP to remote ``popqc worker`` hosts
    (:mod:`repro.parallel.dist`), for cluster-scale sweeps.

  This is the CPython analogue of Rayon handing a borrowed slice to a
  worker: the per-round IPC cost is a few index tuples, not
  ``O(gates)`` pickle opcodes plus a fresh copy of the oracle.
* :class:`~repro.parallel.simulated.SimulatedParallelism` — executes
  serially, times each task, and reports the *makespan* a p-worker
  machine would achieve.  This is the executor the scaling experiments
  use (see DESIGN.md, substitution table).

All implementations preserve input order in the result list, which the
POPQC driver relies on.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Protocol, Sequence, TypeVar

from ..circuits.encoding import (
    EncodedSegment,
    decode_segment,
    encode_segment,
    pack_segment_into,
    packed_segment_nbytes,
    packed_segment_span,
    unpack_segment_from,
)
from ..circuits.gate import Gate
from . import shm
from .results import DecodeStats, LazySegmentResult
from .scheduling import adaptive_chunksize, batch_segments

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "ParallelMap",
    "SerialMap",
    "ThreadMap",
    "ProcessMap",
    "StaleOracleError",
    "default_workers",
    "oracle_fingerprint",
    "TRANSPORTS",
]

#: Oracle-transport modes supported by :class:`ProcessMap`.
TRANSPORTS = ("shm", "encoded", "pickle", "threads", "socket")


class StaleOracleError(RuntimeError):
    """A worker received a task tagged with an oracle generation other
    than the one its pool initializer registered.  Without this check a
    worker initialized for oracle A would silently apply A to tasks
    meant for oracle B."""


def default_workers() -> int:
    """Worker count used when none is given (``os.cpu_count()``)."""
    return os.cpu_count() or 1


def oracle_fingerprint(oracle: object) -> bytes:
    """A 16-byte digest identifying ``oracle`` for cache key scoping.

    Hashes the oracle's pickle bytes — the serialization the process
    and socket transports ship to their workers — so two oracle
    objects share a fingerprint iff a worker could not tell them
    apart, and any configuration difference (rule set, engine,
    thresholds) separates their cache namespaces.  Raises whatever
    ``pickle`` raises for unpicklable oracles; cache callers go
    through :func:`oracle_cache_namespace`, which degrades instead.
    """
    return hashlib.blake2b(pickle.dumps(oracle), digest_size=16).digest()


def oracle_cache_namespace(oracle: object) -> bytes:
    """Cache-scoping key material for ``oracle``, never raising.

    Unpicklable oracles (lambdas, closures) are legal on the threads
    transport and the inline fallback, so the cache front must not
    crash on them: they get a random one-off namespace instead of a
    content fingerprint.  Callers memoize per oracle *identity*, so
    such an oracle still hits its own earlier entries within one
    executor/scheduler pairing — it just never shares entries across
    processes or restarts (which content addressing could not promise
    for an unserializable oracle anyway).
    """
    try:
        return oracle_fingerprint(oracle)
    except Exception:  # pickle errors vary by payload; all mean "opaque"
        return os.urandom(16)


class ParallelMap(Protocol):
    """Order-preserving parallel map protocol.

    Implementations may run tasks in any order but must return results in
    input order.  ``workers`` reports the parallelism the executor aims
    to provide (used by instrumentation only).

    Executors may additionally implement the oracle-transport extension
    (``map_segments(oracle, segments)``); the POPQC driver uses it when
    present to avoid re-shipping the oracle every round.
    """

    workers: int

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every element of ``items``."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release pooled resources (no-op for stateless executors)."""
        ...  # pragma: no cover - protocol


class SerialMap:
    """Sequential map; the reference executor and the 1-thread setting."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item, in order, in the calling thread."""
        return [fn(item) for item in items]

    def close(self) -> None:
        """No pooled resources; nothing to release."""
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return "SerialMap()"


class ThreadMap:
    """Thread-pool map.

    A shared pool is kept alive across calls so repeated rounds of the
    POPQC loop do not pay thread startup costs.
    """

    def __init__(self, workers: int | None = None):
        self.workers = workers or default_workers()
        self._pool: ThreadPoolExecutor | None = None

    def _ensure(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` over the shared thread pool, preserving order."""
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure().map(fn, items))

    def close(self) -> None:
        """Shut the shared pool down (a later ``map`` re-creates it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"ThreadMap(workers={self.workers})"


# -- persistent-worker oracle transport ---------------------------------------
#
# Worker-side state.  With the "encoded" and "shm" transports the oracle
# callable is installed once per worker process (pool initializer)
# together with its generation token; every subsequent task ships only
# segment descriptors tagged with the expected generation.

_WORKER_ORACLE: Callable[[list[Gate]], list[Gate]] | None = None
_WORKER_ORACLE_GEN: int = -1

#: Worker-side cache of attached shared-memory arenas, keyed by name.
#: Arena blocks are reused round over round, so this normally holds the
#: two or three blocks of the executor's ring.
_WORKER_ARENAS: dict[str, object] = {}

_WORKER_ARENA_CACHE_LIMIT = 8


def _register_worker_oracle(
    oracle: Callable[[list[Gate]], list[Gate]], generation: int
) -> None:
    global _WORKER_ORACLE, _WORKER_ORACLE_GEN
    _WORKER_ORACLE = oracle
    _WORKER_ORACLE_GEN = generation


def _require_worker_oracle(
    generation: int,
) -> Callable[[list[Gate]], list[Gate]]:
    """The registered oracle, after checking the task's generation token."""
    if _WORKER_ORACLE is None:
        raise RuntimeError("worker pool initialized without an oracle")
    if generation != _WORKER_ORACLE_GEN:
        raise StaleOracleError(
            f"task expects oracle generation {generation}, worker has "
            f"{_WORKER_ORACLE_GEN}"
        )
    return _WORKER_ORACLE


def _oracle_encoded_result(oracle, encoded: EncodedSegment) -> EncodedSegment:
    """Run ``oracle`` on a packed segment, staying packed when possible.

    Oracles implementing the ``run_packed`` protocol hook (e.g.
    :class:`repro.oracles.NamOracle` with the vector engine) transform
    the wire format directly; everything else round-trips through
    ``Gate`` objects.
    """
    run_packed = getattr(oracle, "run_packed", None)
    if run_packed is not None:
        return run_packed(encoded)
    return encode_segment(oracle(decode_segment(encoded)))


def _pack_to_bytes(encoded: EncodedSegment) -> bytes:
    """One packed segment as a standalone byte string."""
    buf = bytearray(packed_segment_nbytes(encoded))
    pack_segment_into(encoded, buf, 0)
    return bytes(buf)


def _result_wire_bytes(result) -> bytes:
    """One oracle result as standalone packed bytes (for cache storage).

    Lazy handles answer from their wire payload without decoding;
    plain gate lists (inline fallbacks below the serial cutoff, or
    oracles returning lists directly) are encoded and packed here.
    """
    packed_bytes = getattr(result, "packed_bytes", None)
    if packed_bytes is not None:
        return packed_bytes()
    return _pack_to_bytes(encode_segment(list(result)))


def _cached_round(cache, namespace, segments, dispatch, decode_stats=None):
    """The cache-front protocol shared by the executor hook and the
    fleet scheduler.

    Derives every segment's key from its canonical packed bytes scoped
    by ``namespace``, answers hits as lazy handles over the stored
    packed results, routes the misses (in order) through ``dispatch``
    — a callable taking the missing segments and returning their
    results — and stores the miss results on the way out.  Returns
    ``(results, hits, misses, bytes served from cache, lookup
    seconds)``; results are in segment order and byte-identical to an
    uncached round.
    """
    t0 = time.perf_counter()
    keys = [
        cache.key_for(_pack_to_bytes(encode_segment(seg)), extra=namespace)
        for seg in segments
    ]
    cached = [cache.get(key) for key in keys]
    lookup = time.perf_counter() - t0
    miss_idx = [i for i, hit in enumerate(cached) if hit is None]
    results: list = [None] * len(segments)
    bytes_saved = 0
    for i, hit in enumerate(cached):
        if hit is not None:
            bytes_saved += len(hit)
            results[i] = LazySegmentResult.from_packed(hit, decode_stats)
    if miss_idx:
        missed = dispatch([segments[i] for i in miss_idx])
        for i, res in zip(miss_idx, missed):
            results[i] = res
            cache.put(keys[i], _result_wire_bytes(res))
    hits = len(segments) - len(miss_idx)
    return results, hits, len(miss_idx), bytes_saved, lookup


def _apply_registered_oracle(generation: int, encoded: EncodedSegment) -> bytes:
    """Worker task of the encoded transport.

    Returns the oracle's output in the flat wire format so the parent
    can defer (and usually skip) decoding — see
    :class:`repro.parallel.results.LazySegmentResult`.
    """
    oracle = _require_worker_oracle(generation)
    return _pack_to_bytes(_oracle_encoded_result(oracle, encoded))


def _attach_worker_arena(name: str, keep: tuple[str, ...] = ()):
    """Attach (or fetch the cached attachment of) arena ``name``.

    ``keep`` names arenas the current task still references; eviction
    (bounded cache, arena names are never reused) skips them so their
    mapped buffers stay valid for the rest of the task.
    """
    block = _WORKER_ARENAS.get(name)
    if block is None:
        if len(_WORKER_ARENAS) >= _WORKER_ARENA_CACHE_LIMIT:
            for stale_name in list(_WORKER_ARENAS):
                if stale_name not in keep:
                    try:
                        _WORKER_ARENAS.pop(stale_name).close()
                    except BufferError:  # pragma: no cover - view still alive
                        pass
        block = shm.attach_arena(name)
        _WORKER_ARENAS[name] = block
    return block


def _apply_oracle_shm(
    task: tuple[str, str, int, int, int, int],
) -> list[bytes | None]:
    """Run the registered oracle over one batch of arena segments.

    ``task`` is ``(input arena, result arena, round id, oracle
    generation, start, end)``.  Inputs are sliced zero-copy out of the
    input arena; each encoded result is packed into the segment's
    reserved region of the result arena when it fits (returning
    ``None`` as an "in the arena" marker) and returned through the pipe
    as packed bytes only on overflow.
    """
    in_name, out_name, round_id, generation, start, end = task
    oracle = _require_worker_oracle(generation)
    keep = (in_name, out_name)
    in_buf = _attach_worker_arena(in_name, keep).buf
    out_buf = _attach_worker_arena(out_name, keep).buf
    n = shm.check_round(in_buf, round_id, in_name)
    shm.check_round(out_buf, round_id, out_name)
    offsets = shm.read_input_directory(in_buf, n)
    regions = shm.read_result_directory(out_buf, n)
    results: list[bytes | None] = []
    for i in range(start, end):
        encoded, _ = unpack_segment_from(in_buf, int(offsets[i]))
        out = _oracle_encoded_result(oracle, encoded)
        offset, capacity = int(regions[i, 0]), int(regions[i, 1])
        if packed_segment_nbytes(out) <= capacity:
            pack_segment_into(out, out_buf, offset)
            results.append(None)
        else:  # oracle grew the segment past the reserved slack
            results.append(_pack_to_bytes(out))
    return results


class _PickledOracleCall:
    """Picklable oracle-application wrapper.

    The pickle transport ships one of these with every chunk (the seed
    behaviour); the POPQC driver reuses it (as ``_OracleTask``) for the
    legacy ``pmap.map`` path so both baselines stay identical.
    """

    __slots__ = ("oracle",)

    def __init__(self, oracle: Callable[[list[Gate]], list[Gate]]):
        self.oracle = oracle

    def __call__(self, segment: list[Gate]) -> list[Gate]:
        return self.oracle(segment)


class ProcessMap:
    """Process-pool map for genuine multicore execution.

    Tasks and results cross process boundaries, so ``fn`` and the items
    must be picklable.  Small batches fall back to serial execution to
    avoid paying IPC costs for trivial rounds (the same adaptive idea as
    Rayon's loop splitting, which the paper relies on).

    Parameters
    ----------
    workers:
        Pool size; defaults to :func:`default_workers`.
    serial_cutoff:
        Batches of at most this many items run inline in the parent.
    transport:
        Wire format for :meth:`map_segments`.  ``"encoded"`` (default)
        registers the oracle once per worker and ships segments as
        compact numpy arrays; ``"shm"`` additionally packs every
        round's segments into one pooled shared-memory arena
        (:mod:`repro.parallel.shm`) and dispatches batched
        ``(arena, start, end)`` descriptors, so the pipe never carries
        segment bytes; ``"threads"`` skips pipes and arenas entirely —
        oracle calls run on a shared :class:`ThreadPoolExecutor` over
        the parent's own buffers, which pays off when the oracle
        releases the GIL (the vectorized rule engine,
        :mod:`repro.oracles.vector_engine`); ``"pickle"`` reproduces
        the seed behaviour — the oracle and every ``list[Gate]`` are
        pickled on every call — and exists as the benchmark baseline;
        ``"socket"`` ships the same packed bytes as length-prefixed
        frames over TCP to ``popqc worker`` hosts
        (:mod:`repro.parallel.dist`) for cluster-scale sweeps, with
        heartbeat, reconnect-and-requeue on host failure, and the
        generation-token protocol over the wire.  Requesting ``"shm"``
        on a platform without ``multiprocessing.shared_memory`` falls
        back to ``"encoded"`` (``requested_transport`` keeps the
        original).
    hosts:
        Worker host addresses (``"host:port"``) for the socket
        transport; required for (and only valid with)
        ``transport="socket"``.  When ``workers`` is not given it
        defaults to the host count — one dispatcher per connection.
    cache:
        Optional content-addressed segment result cache
        (:class:`repro.service.cache.SegmentCache`).  When set,
        :meth:`map_segments` fingerprints each segment's canonical
        packed bytes (keyed by :func:`oracle_fingerprint`, so entries
        are oracle-scoped), answers hits from the cache without
        touching the oracle or the transport, dispatches only the
        misses, and stores their packed results — so a repeated
        segment costs one hash and one lookup instead of an oracle
        call, on every transport identically.

    All transports return :class:`~repro.parallel.results.
    LazySegmentResult` handles from :meth:`map_segments`: results stay
    in the wire format until a driver actually reads their gates, so
    rejected oracle outputs are never decoded (see
    :class:`~repro.parallel.results.DecodeStats`).

    Attributes
    ----------
    serialization_time:
        Accumulated parent-side encode/pack seconds across all
        :meth:`map_segments` calls (``"encoded"``/``"shm"``/
        ``"threads"`` transports; the pickle transport's serialization
        happens inside the pool machinery and is not separable).
        Result *decoding* is lazy and attributed to whoever reads the
        gates, not counted here.
    last_serialization_time:
        Parent-side encode/pack seconds of the most recent
        :meth:`map_segments` call.
    pool_dispatches:
        Number of :meth:`map` / :meth:`map_segments` calls that
        actually crossed into a pool (batches at or below
        ``serial_cutoff`` run inline and don't count).
    batch_dispatches / segments_batched:
        Pool tasks dispatched and segments carried by the shm
        transport's batched dispatch; their ratio is the mean batch
        width.
    last_batch_sizes:
        Batch widths of the most recent shm :meth:`map_segments` call.
    thread_task_seconds / thread_wall_seconds:
        Summed per-task oracle seconds vs. wall-clock seconds of the
        threads transport's pool maps; their ratio estimates effective
        thread concurrency, i.e. how much GIL the oracle released.
    cache_hits / cache_misses:
        Segment lookups answered by / past the result cache (0 when no
        cache is configured).  Every hit is an oracle call that was
        never made.
    cache_bytes_saved:
        Packed result bytes served from the cache instead of a
        transport round trip.
    cache_lookup_seconds:
        Parent-side seconds spent fingerprinting and probing the cache
        (the price of admission; compare against the oracle time the
        hits saved).
    """

    def __init__(
        self,
        workers: int | None = None,
        serial_cutoff: int = 2,
        transport: str = "encoded",
        hosts: Sequence[str] | None = None,
        cache: object | None = None,
        auth_token: str | None = None,
    ):
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )
        self.requested_transport = transport
        if transport == "shm" and not shm.HAVE_SHM:  # platform fallback
            warnings.warn(
                "multiprocessing.shared_memory is unavailable; "
                "falling back to the 'encoded' transport",
                RuntimeWarning,
                stacklevel=2,
            )
            transport = "encoded"
        if transport == "socket":
            if not hosts:
                raise ValueError(
                    "transport='socket' requires hosts=['host:port', ...] "
                    "(start them with `popqc worker --bind host:port`)"
                )
        elif hosts:
            raise ValueError("hosts= only applies to transport='socket'")
        self.hosts = list(hosts) if hosts else []
        self.auth_token = auth_token
        if workers is None and transport == "socket":
            # cluster parallelism is one dispatcher per connected host
            workers = max(1, len(self.hosts))
        self.workers = workers or default_workers()
        self.serial_cutoff = serial_cutoff
        self.transport = transport
        self.serialization_time = 0.0
        self.last_serialization_time = 0.0
        self.pool_dispatches = 0
        self.batch_dispatches = 0
        self.segments_batched = 0
        self.last_batch_sizes: list[int] = []
        self.thread_task_seconds = 0.0
        self.thread_wall_seconds = 0.0
        self._decode_stats = DecodeStats()
        self._pool: ProcessPoolExecutor | None = None
        self._thread_pool: ThreadPoolExecutor | None = None
        self._registered_oracle: object | None = None
        self._oracle_generation = 0
        self._task_seconds_est = 0.0
        self._arenas: shm.ShmArenaPool | None = None
        self._round_id = 0
        self._socket_pool = None  # lazily built SocketHostPool
        self._socket_oracle: object | None = None
        self.cache = cache
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_bytes_saved = 0
        self.cache_lookup_seconds = 0.0
        # oracle digest memoized by identity: one pickle per oracle,
        # not one per round.  Kept as a single (oracle, digest) tuple
        # so a concurrent reader can never observe one oracle paired
        # with another oracle's digest.
        self._cache_ns_memo: tuple[object, bytes] = (None, b"")

    # -- generic map ---------------------------------------------------------

    def _discard_broken_pool(self) -> None:
        """Drop a pool whose workers died (e.g. a crashed oracle task).

        A :class:`~concurrent.futures.process.BrokenProcessPool` is
        permanent for the executor that raised it; rebuilding on the
        next dispatch turns a worker crash into a one-round failure
        instead of a dead ``ProcessMap``.
        """
        if self._pool is not None and getattr(self._pool, "_broken", False):
            self._pool.shutdown(wait=False)
            self._pool = None
            self._registered_oracle = None

    def _ensure(self) -> ProcessPoolExecutor:
        """Pool for generic ``map`` (no oracle registered)."""
        self._discard_broken_pool()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            self._registered_oracle = None
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` over the process pool (inline under the cutoff)."""
        if len(items) <= self.serial_cutoff:
            return [fn(item) for item in items]
        # balance-only chunking: the learned task-time estimate belongs
        # to oracle segments (map_segments), not arbitrary callables
        chunk = adaptive_chunksize(len(items), self.workers, 0.0)
        self.pool_dispatches += 1
        return list(self._ensure().map(fn, items, chunksize=chunk))

    # -- oracle transport -----------------------------------------------------

    def _ensure_registered(self, oracle: object) -> ProcessPoolExecutor:
        """Pool whose workers have ``oracle`` installed via the initializer.

        Swapping oracles mid-run tears the pool down, bumps the oracle
        generation and rebuilds; the POPQC loop uses one oracle for
        thousands of rounds, so the rebuild is a once-per-run cost.
        Every dispatched task carries the generation token and workers
        refuse mismatches (:class:`StaleOracleError`), so a pool that
        somehow survives with the old initializer can never silently
        apply the old oracle.
        """
        self._discard_broken_pool()
        if self._pool is not None and self._registered_oracle is not oracle:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None or self._registered_oracle is not oracle:
            self._oracle_generation += 1
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_register_worker_oracle,
                initargs=(oracle, self._oracle_generation),
            )
            self._registered_oracle = oracle
        return self._pool

    def map_segments(
        self,
        oracle: Callable[[list[Gate]], list[Gate]],
        segments: Sequence[list[Gate]],
    ) -> list:
        """Apply ``oracle`` to every segment, preserving order.

        The oracle crosses the process boundary at most once per worker
        (``"encoded"``/``"shm"`` transports) or not at all
        (``"threads"``); segments travel as numpy buffers through the
        pipe, as zero-copy shared-memory views, or stay in-process.
        Pool-backed calls return
        :class:`~repro.parallel.results.LazySegmentResult` handles that
        decode only when read.

        With a result ``cache`` configured, known segments are answered
        from it and only the misses reach the transport (see
        :meth:`_map_segments_cached`); the result contents are
        byte-identical either way.
        """
        if self.cache is not None:
            return self._map_segments_cached(oracle, segments)
        return self._map_segments_dispatch(oracle, segments)

    def _cache_namespace(self, oracle: object) -> bytes:
        """Oracle-scoping key material for cache lookups (memoized).

        The memo is read and replaced as one tuple: under concurrent
        callers the worst case is a redundant recompute, never a
        cross-oracle pairing.
        """
        memo_oracle, memo_ns = self._cache_ns_memo
        if memo_oracle is not oracle:
            memo_ns = oracle_cache_namespace(oracle)
            self._cache_ns_memo = (oracle, memo_ns)
        return memo_ns

    def _map_segments_cached(
        self,
        oracle: Callable[[list[Gate]], list[Gate]],
        segments: Sequence[list[Gate]],
    ) -> list:
        """Cache-aware front of :meth:`map_segments`.

        Every segment is encoded and packed into its canonical wire
        bytes (work the transport would do anyway for a miss), hashed,
        and looked up; hits become lazy handles over the cached packed
        result, misses go through the configured transport in one
        batch and their packed results are stored on the way out
        (:func:`_cached_round` is the shared protocol).
        """
        results, hits, misses, bytes_saved, lookup = _cached_round(
            self.cache,
            self._cache_namespace(oracle),
            segments,
            lambda missed: self._map_segments_dispatch(oracle, missed),
            self._decode_stats,
        )
        self.cache_hits += hits
        self.cache_misses += misses
        self.cache_bytes_saved += bytes_saved
        self.cache_lookup_seconds += lookup
        if misses == 0:  # dispatch never ran to reset the per-call stats
            self.last_serialization_time = 0.0
            self.last_batch_sizes = []
        # key derivation is serialization work: it packs the same bytes
        # the wire would carry
        self.last_serialization_time += lookup
        self.serialization_time += lookup
        return results

    def _map_segments_dispatch(
        self,
        oracle: Callable[[list[Gate]], list[Gate]],
        segments: Sequence[list[Gate]],
    ) -> list:
        """Transport dispatch of :meth:`map_segments` (cache already consulted)."""
        self.last_serialization_time = 0.0
        self.last_batch_sizes = []
        if len(segments) <= self.serial_cutoff:
            return [oracle(seg) for seg in segments]

        if self.transport == "shm":
            return self._map_segments_shm(oracle, segments)
        if self.transport == "threads":
            return self._map_segments_threads(oracle, segments)
        if self.transport == "socket":
            return self._map_segments_socket(oracle, segments)

        chunk = adaptive_chunksize(len(segments), self.workers, self._task_seconds_est)
        self.pool_dispatches += 1
        prev_pool = self._pool
        was_warm = prev_pool is not None
        t_map = time.perf_counter()
        if self.transport == "pickle":
            results = [
                LazySegmentResult.from_gates(out)
                for out in self._ensure().map(
                    _PickledOracleCall(oracle), segments, chunksize=chunk
                )
            ]
            if was_warm:
                self._observe(time.perf_counter() - t_map, len(segments), chunk)
            return results

        t0 = time.perf_counter()
        encoded = [encode_segment(seg) for seg in segments]
        ser = time.perf_counter() - t0
        pool = self._ensure_registered(oracle)
        was_warm = was_warm and pool is prev_pool  # oracle swap rebuilds cold
        generations = [self._oracle_generation] * len(encoded)
        t_map = time.perf_counter()
        results = [
            LazySegmentResult.from_packed(payload, self._decode_stats)
            for payload in pool.map(
                _apply_registered_oracle, generations, encoded, chunksize=chunk
            )
        ]
        pool_elapsed = time.perf_counter() - t_map
        self.last_serialization_time = ser
        self.serialization_time += ser
        if was_warm:
            # only the pool interval: parent-side encoding is
            # serialization, not task time
            self._observe(pool_elapsed, len(segments), chunk)
        return results

    def _ensure_threads(self) -> ThreadPoolExecutor:
        """The shared thread pool of the ``"threads"`` transport."""
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._thread_pool

    def _map_segments_threads(
        self,
        oracle: Callable[[list[Gate]], list[Gate]],
        segments: Sequence[list[Gate]],
    ) -> list:
        """One round over the thread transport: no pipes, no arenas.

        Workers share the parent's address space, so nothing is
        serialized and the oracle needs no registration or generation
        token.  Oracles implementing ``run_packed`` receive the packed
        layout (built parent-side, counted as serialization time) and
        their results stay packed for lazy decoding; plain oracles run
        on the gate lists directly.  Per-task durations are recorded so
        the executor can estimate how much GIL the oracle released
        (``thread_task_seconds`` / ``thread_wall_seconds``).
        """
        pool = self._ensure_threads()
        self.pool_dispatches += 1
        # Only a *natively* packed oracle is worth feeding the wire
        # format here: for gate-list oracles, encoding inputs just to
        # win lazy result decode costs more than it saves (unlike the
        # process transports, where the bytes must exist anyway).
        run_packed = (
            getattr(oracle, "run_packed", None)
            if getattr(oracle, "packed_native", False)
            else None
        )
        t_round = time.perf_counter()
        if run_packed is not None:
            t0 = time.perf_counter()
            encoded = [encode_segment(seg) for seg in segments]
            ser = time.perf_counter() - t0

            def task(enc: EncodedSegment) -> tuple[EncodedSegment, float]:
                t = time.perf_counter()
                out = run_packed(enc)
                return out, time.perf_counter() - t

            outs = list(pool.map(task, encoded))
            results = [
                LazySegmentResult.from_encoded(out, self._decode_stats)
                for out, _ in outs
            ]
        else:
            ser = 0.0

            def task(seg: list[Gate]) -> tuple[list[Gate], float]:
                t = time.perf_counter()
                out = oracle(seg)
                return out, time.perf_counter() - t

            outs = list(pool.map(task, segments))
            results = [LazySegmentResult.from_gates(out) for out, _ in outs]
        wall = time.perf_counter() - t_round - ser
        self.thread_task_seconds += sum(dt for _, dt in outs)
        self.thread_wall_seconds += wall
        self.last_serialization_time = ser
        self.serialization_time += ser
        return results

    def _ensure_socket_pool(self):
        """The lazily built client host registry of the socket transport."""
        if self._socket_pool is None:
            from .dist import SocketHostPool  # local: dist imports this module

            self._socket_pool = SocketHostPool(
                self.hosts, auth_token=self.auth_token
            )
        return self._socket_pool

    def add_socket_host(self, address: str) -> None:
        """Elastically add a worker host to the socket fleet.

        The host joins the configured list (and the live pool, if one
        is built) and widens the batching fan-out, so the next round
        deals work to it.  This is the scale-up hook of the
        optimization service's autoscaler.
        """
        if self.transport != "socket":
            raise ValueError("add_socket_host requires transport='socket'")
        self.hosts.append(address)
        self.workers += 1
        if self._socket_pool is not None:
            self._socket_pool.add_host(address)

    def remove_socket_host(self, address: str) -> None:
        """Elastically retire one worker host from the socket fleet.

        Removes the address from the configured list and the live pool
        (closing its connection, so a round in flight drains through
        the requeue-and-steal path).  The fan-out never drops below
        one worker.
        """
        if self.transport != "socket":
            raise ValueError("remove_socket_host requires transport='socket'")
        if address in self.hosts:
            self.hosts.remove(address)
            self.workers = max(1, self.workers - 1)
        if self._socket_pool is not None:
            self._socket_pool.remove_host(address)

    def _map_segments_socket(
        self,
        oracle: Callable[[list[Gate]], list[Gate]],
        segments: Sequence[list[Gate]],
    ) -> list:
        """One round over the distributed socket transport.

        Segments are packed into batched SEGMENTS frames (the same
        flat wire format as the shm arenas, length-prefixed for the
        stream) and round-robined across the connected worker hosts by
        :meth:`repro.parallel.dist.SocketHostPool.run_round`; results
        come back as packed RESULTS frames and wrap into lazy handles
        like every other transport.  The oracle crosses the wire once
        per host per registration (generation-tagged, exactly like the
        process-pool initializer protocol).
        """
        from .dist import pack_segments_payload  # local: avoid import cycle

        n = len(segments)
        pool = self._ensure_socket_pool()
        was_warm = self._socket_oracle is oracle
        if not was_warm:
            self._oracle_generation += 1
            pool.register(oracle, self._oracle_generation)
            self._socket_oracle = oracle
        else:
            pool.ensure_ready()

        t0 = time.perf_counter()
        encoded = [encode_segment(seg) for seg in segments]
        batches = batch_segments(n, self.workers, self._task_seconds_est)
        payloads = [
            (
                batch_id,
                end - start,
                pack_segments_payload(
                    self._oracle_generation, batch_id, encoded[start:end]
                ),
            )
            for batch_id, (start, end) in enumerate(batches)
        ]
        ser = time.perf_counter() - t0

        self.pool_dispatches += 1
        self.batch_dispatches += len(batches)
        self.segments_batched += n
        self.last_batch_sizes = [end - start for start, end in batches]

        t_map = time.perf_counter()
        blobs_per_batch = pool.run_round(payloads)
        elapsed = time.perf_counter() - t_map

        results = [
            LazySegmentResult.from_packed(blob, self._decode_stats)
            for blobs in blobs_per_batch
            for blob in blobs
        ]
        self.last_serialization_time = ser
        self.serialization_time += ser
        if was_warm:
            self._observe(elapsed, n, max(self.last_batch_sizes))
        return results

    def _map_segments_shm(
        self,
        oracle: Callable[[list[Gate]], list[Gate]],
        segments: Sequence[list[Gate]],
    ) -> list[list[Gate]]:
        """One round over the zero-copy shared-memory transport.

        Segments are packed into one pooled input arena, results come
        back through a result arena with parent-reserved regions, and
        the pool dispatch is one task per :func:`batch_segments` batch
        — the pipe carries only small descriptor tuples.
        """
        n = len(segments)
        t0 = time.perf_counter()
        encoded = [encode_segment(seg) for seg in segments]
        sizes = shm.packed_sizes(encoded)
        ser = time.perf_counter() - t0

        if self._arenas is None:
            self._arenas = shm.ShmArenaPool()
        in_offsets, in_total = shm.input_arena_layout(sizes)
        out_regions, out_total = shm.result_arena_layout(sizes)
        in_block = self._arenas.acquire(in_total)
        try:
            out_block = self._arenas.acquire(out_total)
        except BaseException:
            # arena exhaustion between the two acquires (e.g. ENOSPC on
            # /dev/shm): hand the first block back before propagating
            self._arenas.release(in_block)
            raise
        self._round_id += 1
        round_id = self._round_id
        round_ok = False
        try:
            t0 = time.perf_counter()
            shm.write_input_arena(in_block.buf, round_id, encoded, in_offsets)
            shm.write_result_directory(out_block.buf, round_id, out_regions)
            ser += time.perf_counter() - t0

            prev_pool = self._pool
            pool = self._ensure_registered(oracle)
            was_warm = prev_pool is not None and pool is prev_pool
            batches = batch_segments(n, self.workers, self._task_seconds_est)
            tasks = [
                (
                    in_block.name,
                    out_block.name,
                    round_id,
                    self._oracle_generation,
                    start,
                    end,
                )
                for start, end in batches
            ]
            self.pool_dispatches += 1
            self.batch_dispatches += len(batches)
            self.segments_batched += n
            self.last_batch_sizes = [end - start for start, end in batches]

            t_map = time.perf_counter()
            markers = [
                m
                for chunk in pool.map(_apply_oracle_shm, tasks, chunksize=1)
                for m in chunk
            ]
            pool_elapsed = time.perf_counter() - t_map

            # Copy each packed result out of the arena (header-sized
            # span read + one memcpy) so the block can be recycled;
            # decoding stays lazy and usually never happens.
            t0 = time.perf_counter()
            results: list[LazySegmentResult] = []
            out_buf = out_block.buf
            for marker, (offset, _) in zip(markers, out_regions):
                if marker is None:
                    _, end = packed_segment_span(out_buf, offset)
                    payload = bytes(out_buf[offset:end])
                else:  # overflow fallback: result came through the pipe
                    payload = marker
                results.append(
                    LazySegmentResult.from_packed(payload, self._decode_stats)
                )
            ser += time.perf_counter() - t0
            round_ok = True
        finally:
            if round_ok:
                self._arenas.release(in_block)
                self._arenas.release(out_block)
            else:
                # a failed round may leave straggler tasks writing into
                # the arenas: never recycle them
                self._arenas.discard(in_block)
                self._arenas.discard(out_block)

        self.last_serialization_time = ser
        self.serialization_time += ser
        if was_warm:
            self._observe(pool_elapsed, n, max(self.last_batch_sizes))
        return results

    def _observe(self, elapsed: float, items: int, chunk: int) -> None:
        """Feed the adaptive chunking policy with measured per-task time.

        ``elapsed`` is parallel wall-clock, so one task's duration is
        roughly ``elapsed × parallelism / items``; parallelism is
        bounded by both the pool size and the number of chunks.  Using
        the bound errs toward over-estimating task time, i.e. toward
        the balance-oriented chunk — the safe direction.  Cold-pool
        calls (worker spawn inflates ``elapsed``) are not observed.
        """
        if items <= 0:
            return
        parallelism = min(self.workers, -(-items // max(1, chunk)))
        per_task = elapsed * parallelism / items
        if self._task_seconds_est == 0.0:
            self._task_seconds_est = per_task
        else:
            self._task_seconds_est = 0.7 * self._task_seconds_est + 0.3 * per_task

    # -- shm arena instrumentation -------------------------------------------

    @property
    def arena_allocations(self) -> int:
        """Shared-memory blocks created by the arena ring (0 if unused)."""
        return self._arenas.allocations if self._arenas is not None else 0

    @property
    def arena_reuses(self) -> int:
        """Rounds served by recycling an existing arena block."""
        return self._arenas.reuses if self._arenas is not None else 0

    @property
    def arena_bytes(self) -> int:
        """Current capacity of the arena ring (live blocks, bytes)."""
        return self._arenas.ring_bytes if self._arenas is not None else 0

    # -- socket transport instrumentation ------------------------------------

    @property
    def socket_bytes_sent(self) -> int:
        """Frame bytes sent to worker hosts (socket transport, 0 otherwise)."""
        return self._socket_pool.bytes_sent if self._socket_pool else 0

    @property
    def socket_bytes_received(self) -> int:
        """Frame bytes received from worker hosts (socket transport)."""
        return self._socket_pool.bytes_received if self._socket_pool else 0

    @property
    def socket_reconnects(self) -> int:
        """Reconnect-and-re-register cycles after a host failure."""
        return self._socket_pool.reconnects if self._socket_pool else 0

    @property
    def socket_steals(self) -> int:
        """Batches a dispatcher stole from a peer host's queue."""
        return self._socket_pool.steals if self._socket_pool else 0

    @property
    def socket_host_segments(self) -> dict[str, int]:
        """Segments served per worker host address."""
        return dict(self._socket_pool.host_segments) if self._socket_pool else {}

    @property
    def socket_host_seconds(self) -> dict[str, float]:
        """Wall seconds spent serving batches, per worker host address."""
        return dict(self._socket_pool.host_seconds) if self._socket_pool else {}

    @property
    def socket_host_capacity(self) -> dict[str, int]:
        """Advertised capacity per worker host address (weighted dispatch)."""
        return dict(self._socket_pool.host_capacity) if self._socket_pool else {}

    # -- lazy-decode instrumentation -----------------------------------------

    @property
    def results_returned(self) -> int:
        """Byte-carrying oracle results handed back by ``map_segments``."""
        return self._decode_stats.results_returned

    @property
    def results_decoded(self) -> int:
        """Returned results whose gates were actually materialized."""
        return self._decode_stats.results_decoded

    @property
    def result_bytes_returned(self) -> int:
        """Wire bytes of all returned results."""
        return self._decode_stats.result_bytes_returned

    @property
    def result_bytes_decoded(self) -> int:
        """Wire bytes of the results that were decoded."""
        return self._decode_stats.result_bytes_decoded

    def close(self) -> None:
        """Shut down pools and release arenas (safe to call twice)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._registered_oracle = None
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        if self._arenas is not None:
            self._arenas.close()
            self._arenas = None
        if self._socket_pool is not None:
            self._socket_pool.close()
            self._socket_pool = None
            self._socket_oracle = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"ProcessMap(workers={self.workers}, transport={self.transport!r})"
