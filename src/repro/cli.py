"""``popqc`` command-line interface.

Subcommands:

* ``optimize FILE.qasm`` — optimize a QASM circuit and write the result;
* ``bench FAMILY`` — generate and optimize a benchmark instance;
* ``bench serve`` — replay the deterministic latency-SLO load suite
  against a live daemon and emit ``BENCH_service_load.json``
  (:mod:`repro.service.loadgen`); ``--print-schedule`` dumps the
  seed's canonical traffic manifest offline;
* ``worker`` — serve oracle segments over TCP for the distributed
  socket transport (``--transport socket --hosts ...`` on the driver
  side);
* ``serve`` — run the persistent optimization service: many concurrent
  jobs over one warm fleet, fronted by the content-addressed segment
  cache (:mod:`repro.service`);
* ``submit`` — send a circuit to a running ``popqc serve`` daemon and
  write back the optimized result;
* ``tables`` / ``figures`` — regenerate the paper's evaluation artifacts.
"""

from __future__ import annotations

import argparse
import os
import sys

from .analysis import analyze
from .baselines import optimize_whole_circuit
from .benchgen import family_names, generate
from .circuits import read_qasm, write_qasm
from .core import popqc, popqc_traced, render_trace
from .experiments import (
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)
from .oracles import NamOracle
from .parallel import (
    TRANSPORTS,
    ProcessMap,
    SerialMap,
    SimulatedParallelism,
    ThreadMap,
)

__all__ = ["main"]

_TABLES = {"1": run_table1, "2": run_table2, "3": run_table3, "4": run_table4}
_FIGURES = {
    "3": run_figure3,
    "4": run_figure4,
    "5": run_figure5,
    "6": run_figure6,
    "7": run_figure7,
    "8": run_figure8,
    "9": run_figure9,
}


def _make_parmap(spec: str, transport: str | None = None, hosts: str | None = None):
    if hosts is not None and transport != "socket":
        raise SystemExit("--hosts requires --transport socket")
    if transport == "socket" and hosts is None:
        raise SystemExit(
            "--transport socket requires --hosts HOST:PORT[,HOST:PORT...] "
            "(start workers with `popqc worker --bind HOST:PORT`)"
        )
    if spec.startswith("process"):
        _, _, count = spec.partition(":")
        return ProcessMap(
            int(count) if count else None,
            transport=transport or "encoded",
            hosts=[h.strip() for h in hosts.split(",") if h.strip()]
            if hosts
            else None,
            # socket workers may demand the shared secret; other
            # transports must not care that the env var is set
            auth_token=os.environ.get("POPQC_AUTH_TOKEN")
            if transport == "socket"
            else None,
        )
    if transport is not None:
        raise SystemExit(f"--transport only applies to process executors, not {spec!r}")
    if spec == "serial":
        return SerialMap()
    if spec.startswith("thread"):
        _, _, count = spec.partition(":")
        return ThreadMap(int(count) if count else None)
    if spec.startswith("simulated"):
        _, _, count = spec.partition(":")
        return SimulatedParallelism(int(count) if count else 64)
    raise SystemExit(f"unknown executor spec: {spec!r}")


def _load_circuit(spec: str):
    """Load ``FAMILY[:size]`` from the registry or a QASM path."""
    if ":" in spec or spec in family_names():
        name, _, size = spec.partition(":")
        if name in family_names():
            return generate(name, int(size) if size else 0)
    return read_qasm(spec)


def _bench_serve(args) -> int:
    """Run ``popqc bench serve``: the latency-SLO load harness.

    ``--print-schedule`` dumps the seed's canonical traffic manifest
    (no server needed); otherwise the three-phase SLO suite replays
    against ``--server`` and the schema-v1 record lands at ``--out``.
    """
    import json

    from .service.loadgen import (
        default_mixes,
        run_slo_suite,
        schedule_manifest,
    )

    if args.print_schedule:
        mixes = default_mixes(args.smoke, clients=args.clients)
        sys.stdout.write(schedule_manifest(list(mixes.values()), args.seed))
        return 0
    if not args.server:
        print(
            "bench serve needs --server HOST:PORT "
            "(or --print-schedule for the offline manifest)",
            file=sys.stderr,
        )
        return 2
    record = run_slo_suite(
        args.server,
        seed=args.seed,
        auth_token=args.auth_token,
        smoke=args.smoke,
        time_scale=args.time_scale,
        clients=args.clients,
    )
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, mix in record["mixes"].items():
        lat = mix["latency_seconds"]
        print(
            f"{name:>12}: {mix['jobs_completed']}/{mix['jobs_scheduled']} jobs"
            f"  p50={lat['p50'] * 1000:.1f}ms p99={lat['p99'] * 1000:.1f}ms"
            f"  hit_rate={mix['cache']['hit_rate']:.2f}"
            f"  busy={mix['busy_rejections']}"
        )
    derived = record["derived"]
    print(
        f"warm p50 speedup vs cold: {derived['warm_p50_speedup_vs_cold']:.2f}x"
        f"  (SLO >= {record['slo']['warm_p50_speedup_min']:.1f}x)"
    )
    print(
        "interactive p99 / flood p50: "
        f"{derived['interactive_p99_over_flood_p50']:.3f}"
        f"  (SLO <= {record['slo']['interactive_p99_over_flood_p50_max']:.1f})"
    )
    print(f"wrote {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="popqc", description="POPQC parallel quantum-circuit optimizer"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_opt = sub.add_parser("optimize", help="optimize an OpenQASM 2.0 file")
    p_opt.add_argument("input")
    p_opt.add_argument("-o", "--output", help="output QASM path")
    p_opt.add_argument("--omega", type=int, default=100)
    p_opt.add_argument(
        "--executor",
        default="serial",
        help="serial | thread[:N] | process[:N] | simulated[:N]",
    )
    p_opt.add_argument(
        "--transport",
        default=None,
        choices=list(TRANSPORTS),
        help="segment wire format, process executors only "
        "(encoded: persistent workers + numpy arrays, the default; "
        "shm: zero-copy shared-memory arenas with batched dispatch, "
        "falls back to encoded where unsupported; threads: shared-"
        "memory thread pool, best with GIL-releasing oracles such as "
        "the vectorized rule engine; socket: distributed worker hosts "
        "over TCP, needs --hosts; pickle: legacy)",
    )
    p_opt.add_argument(
        "--hosts",
        default=None,
        help="comma-separated worker host addresses (HOST:PORT) for "
        "--transport socket; start each with `popqc worker --bind HOST:PORT`",
    )
    p_opt.add_argument(
        "--oracle-engine",
        default="python",
        choices=["python", "vector"],
        help="rule-engine implementation: python (reference gate-list "
        "passes) or vector (numpy passes on the packed layout; "
        "GIL-releasing, pairs with --transport threads)",
    )

    p_bench = sub.add_parser(
        "bench",
        help="optimize a generated benchmark, or (`bench serve`) replay "
        "the latency-SLO load suite against a live popqc serve daemon",
    )
    p_bench.add_argument("family", choices=[*family_names(), "serve"])
    p_bench.add_argument("--size", type=int, default=1, choices=range(4))
    p_bench.add_argument("--omega", type=int, default=100)
    p_bench.add_argument("--executor", default="serial")
    p_bench.add_argument("--transport", default=None, choices=list(TRANSPORTS))
    p_bench.add_argument("--hosts", default=None)
    p_bench.add_argument(
        "--oracle-engine", default="python", choices=["python", "vector"]
    )
    p_bench.add_argument(
        "--baseline", action="store_true", help="also run the whole-circuit baseline"
    )
    g_load = p_bench.add_argument_group(
        "bench serve (latency-SLO load harness)"
    )
    g_load.add_argument(
        "--server",
        default=None,
        help="HOST:PORT of the live popqc serve daemon to load",
    )
    g_load.add_argument(
        "--clients",
        type=int,
        default=2,
        help="concurrent client connections per mix (interactive probe "
        "always uses 1)",
    )
    g_load.add_argument(
        "--seed",
        type=int,
        default=7,
        help="master seed; the same seed replays byte-identical traffic",
    )
    g_load.add_argument(
        "--smoke",
        action="store_true",
        help="shrunken mixes for a ~10 s CI soak (same structure and "
        "schema as the full suite)",
    )
    g_load.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="multiply every arrival offset (e.g. 0.5 compresses a "
        "recorded schedule to half its wall time)",
    )
    g_load.add_argument(
        "--out",
        default="BENCH_service_load.json",
        help="where to write the schema-v1 load record",
    )
    g_load.add_argument(
        "--auth-token",
        default=os.environ.get("POPQC_AUTH_TOKEN"),
        help="shared secret for the daemon (defaults to $POPQC_AUTH_TOKEN)",
    )
    g_load.add_argument(
        "--print-schedule",
        action="store_true",
        help="print the canonical schedule manifest (the exact traffic "
        "this seed submits, with circuit digests) and exit without "
        "touching any server",
    )

    p_worker = sub.add_parser(
        "worker",
        help="serve oracle segments over TCP (distributed socket transport)",
    )
    p_worker.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="HOST:PORT to listen on (port 0 picks an ephemeral port, "
        "printed on startup)",
    )
    p_worker.add_argument(
        "--capacity",
        type=int,
        default=1,
        help="advertised batch capacity (usually the host's core count); "
        "drivers weight their round-robin by it, so a --capacity 4 host "
        "draws 4x the batches of a --capacity 1 host",
    )
    p_worker.add_argument(
        "--auth-token",
        default=os.environ.get("POPQC_AUTH_TOKEN"),
        help="shared secret demanded of every driver connection (AUTH "
        "frame before any other; defaults to $POPQC_AUTH_TOKEN; omit "
        "to serve unauthenticated)",
    )
    p_worker.add_argument(
        "--cache",
        default=None,
        metavar="HOST:PORT",
        help="address of a popqc serve daemon to use as a cluster-shared "
        "segment cache: the worker looks warm segments up before running "
        "the oracle and publishes fresh results back, so a second host "
        "resolves segments the first already paid for (the same "
        "--auth-token is presented; a dead cache degrades to misses, "
        "never failures)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the persistent optimization service (jobs over TCP, "
        "shared worker fleet, content-addressed segment cache)",
    )
    p_serve.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="HOST:PORT to listen on (port 0 picks an ephemeral port, "
        "printed on startup)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=None, help="fleet worker count"
    )
    p_serve.add_argument(
        "--transport",
        default="encoded",
        choices=list(TRANSPORTS),
        help="fleet wire format (socket needs --hosts)",
    )
    p_serve.add_argument(
        "--hosts",
        default=None,
        help="comma-separated worker host addresses for --transport socket",
    )
    p_serve.add_argument(
        "--oracle-engine", default="python", choices=["python", "vector"]
    )
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the persistent segment-result cache "
        "(shared across restarts; omit for a memory-only cache)",
    )
    p_serve.add_argument(
        "--cache-entries",
        type=int,
        default=65536,
        help="in-memory cache bound (entries)",
    )
    p_serve.add_argument(
        "--cache-disk-bytes",
        type=int,
        default=None,
        help="bound on the on-disk cache store in bytes; oldest entries "
        "are pruned first once the bound is exceeded (default: unbounded; "
        "needs --cache-dir)",
    )
    p_serve.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without a segment cache (every segment pays the oracle)",
    )
    p_serve.add_argument(
        "--auth-token",
        default=os.environ.get("POPQC_AUTH_TOKEN"),
        help="shared secret demanded of every client (and presented to "
        "socket-fleet workers); defaults to $POPQC_AUTH_TOKEN; omit to "
        "serve unauthenticated",
    )
    p_serve.add_argument(
        "--max-active-jobs",
        type=int,
        default=None,
        help="global cap on jobs optimizing at once; excess JOBs get a "
        "typed BUSY refusal (default: unlimited)",
    )
    p_serve.add_argument(
        "--max-jobs-per-peer",
        type=int,
        default=None,
        help="per-client-address cap on concurrent jobs (default: unlimited)",
    )
    p_serve.add_argument(
        "--max-pending-rounds",
        type=int,
        default=None,
        help="scheduler queue depth past which new jobs are refused "
        "with BUSY (default: unlimited)",
    )
    p_serve.add_argument(
        "--min-workers",
        type=int,
        default=None,
        help="autoscale floor: spawn this many local popqc worker "
        "subprocesses at startup and never retire below it "
        "(needs --transport socket)",
    )
    p_serve.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="autoscale ceiling: grow the fleet with local popqc worker "
        "subprocesses while the scheduler backlog is deep, up to this "
        "many spawned workers; retire them when the queue stays empty "
        "(needs --transport socket)",
    )
    p_serve.add_argument(
        "--scale-window",
        type=float,
        default=2.0,
        help="seconds between autoscaler looks at the queue depth",
    )
    p_serve.add_argument(
        "--idle-timeout",
        type=float,
        default=300.0,
        help="seconds a connection may sit silent before its handler "
        "gives up on it (slow-loris defence); 0 disables",
    )

    p_submit = sub.add_parser(
        "submit",
        help="submit a circuit to a running popqc serve daemon",
    )
    p_submit.add_argument(
        "input", nargs="?", help="QASM file or FAMILY[:size] (omit with --status)"
    )
    p_submit.add_argument(
        "--server",
        default="127.0.0.1:7400",
        help="HOST:PORT of the popqc serve daemon",
    )
    p_submit.add_argument("--omega", type=int, default=100)
    p_submit.add_argument("-o", "--output", help="output QASM path")
    p_submit.add_argument(
        "--auth-token",
        default=os.environ.get("POPQC_AUTH_TOKEN"),
        help="shared secret of the daemon (defaults to $POPQC_AUTH_TOKEN)",
    )
    p_submit.add_argument(
        "--priority",
        type=int,
        default=1,
        help="weighted-fair share of this job in the server's merged "
        "fleet rounds (1-16; higher gets proportionally more of each "
        "round)",
    )
    p_submit.add_argument(
        "--status",
        action="store_true",
        help="also print the server status JSON (alone: status only)",
    )

    p_an = sub.add_parser("analyze", help="report circuit metrics")
    p_an.add_argument("input", help="QASM file or FAMILY[:size]")

    p_tr = sub.add_parser("trace", help="visualize a run's round dynamics")
    p_tr.add_argument("input", help="QASM file or FAMILY[:size]")
    p_tr.add_argument("--omega", type=int, default=100)
    p_tr.add_argument("--width", type=int, default=72)

    p_suite = sub.add_parser("suite", help="write the benchmark suite as QASM")
    p_suite.add_argument("--out", required=True, help="output directory")
    p_suite.add_argument("--sizes", type=int, nargs="*", default=[0, 1])
    p_suite.add_argument("--families", nargs="*", default=None)

    p_tab = sub.add_parser("tables", help="regenerate paper tables")
    p_tab.add_argument("which", nargs="*", default=list(_TABLES), choices=list(_TABLES))
    p_tab.add_argument("--sizes", type=int, nargs="*", default=[0, 1])

    p_fig = sub.add_parser("figures", help="regenerate paper figures")
    p_fig.add_argument(
        "which", nargs="*", default=list(_FIGURES), choices=list(_FIGURES)
    )

    args = parser.parse_args(argv)

    if args.command == "worker":
        from .parallel import WorkerHost
        from .parallel.dist import parse_address

        host, port = parse_address(args.bind)
        worker = WorkerHost(
            host,
            port,
            capacity=args.capacity,
            auth_token=args.auth_token,
            cache_address=args.cache,
        )
        print(f"popqc worker listening on {worker.address}", flush=True)
        try:
            worker.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
        finally:
            worker.stop()
            cache_note = (
                f", cluster cache {worker.cache_hits} hits / "
                f"{worker.cache_misses} misses / {worker.cache_stores} stores"
                if args.cache
                else ""
            )
            print(
                f"popqc worker served {worker.segments_served} segments in "
                f"{worker.batches_served} batches "
                f"({worker.bytes_received} B in, {worker.bytes_sent} B out"
                f"{cache_note})",
                flush=True,
            )
        return 0

    if args.command == "serve":
        import json as _json
        import signal

        from .parallel.dist import parse_address
        from .service import OptimizationService, SegmentCache

        def _sigterm(signum, frame):  # daemon stop must release the fleet
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, _sigterm)

        oracle = NamOracle(engine=args.oracle_engine)
        cache: object = (
            False
            if args.no_cache
            else SegmentCache(
                max_entries=args.cache_entries,
                disk_dir=args.cache_dir,
                max_disk_bytes=args.cache_disk_bytes,
            )
        )
        host, port = parse_address(args.bind)
        hosts = (
            [h.strip() for h in args.hosts.split(",") if h.strip()]
            if args.hosts
            else None
        )
        service = OptimizationService(
            oracle,
            host,
            port,
            workers=args.workers,
            transport=args.transport,
            hosts=hosts,
            cache=cache,
            auth_token=args.auth_token,
            max_active_jobs=args.max_active_jobs,
            max_jobs_per_peer=args.max_jobs_per_peer,
            max_pending_rounds=args.max_pending_rounds,
            idle_timeout_seconds=args.idle_timeout or None,
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            scale_window_seconds=args.scale_window,
        )
        print(f"popqc serve listening on {service.address}", flush=True)
        try:
            service.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
        finally:
            service.stop()
            print(_json.dumps(service.status(), indent=2), flush=True)
        return 0

    if args.command == "submit":
        import json as _json

        from .service import ServiceClient

        if args.input is None and not args.status:
            raise SystemExit("submit needs an input circuit (or --status)")
        with ServiceClient(args.server, auth_token=args.auth_token) as client:
            if args.input is not None:
                circuit = _load_circuit(args.input)
                job = client.optimize(
                    circuit, omega=args.omega, priority=args.priority
                )
                s = job.stats
                print(
                    f"{s['initial_gates']} -> {s['final_gates']} gates "
                    f"({100.0 * s['gate_reduction']:.1f}% reduction), "
                    f"{s['rounds']} rounds, {s['oracle_calls']} oracle calls "
                    f"({s['oracle_calls_saved']} served from cache, "
                    f"hit rate {100.0 * s['cache_hit_rate']:.0f}%), "
                    f"{s['wall_seconds']:.3f}s server-side"
                )
                if args.output:
                    write_qasm(job.circuit, args.output)
                    print(f"wrote {args.output}")
            if args.status:
                print(_json.dumps(client.status(), indent=2))
        return 0

    if args.command == "optimize":
        circuit = read_qasm(args.input)
        res = popqc(
            circuit,
            NamOracle(engine=args.oracle_engine),
            args.omega,
            parmap=_make_parmap(args.executor, args.transport, args.hosts),
        )
        print(res.stats.summary())
        if args.output:
            write_qasm(res.circuit, args.output)
            print(f"wrote {args.output}")
        return 0

    if args.command == "bench" and args.family == "serve":
        return _bench_serve(args)

    if args.command == "bench":
        circuit = generate(args.family, args.size)
        print(f"{args.family}[{args.size}]: {circuit.num_gates} gates, "
              f"{circuit.num_qubits} qubits")
        res = popqc(
            circuit,
            NamOracle(engine=args.oracle_engine),
            args.omega,
            parmap=_make_parmap(args.executor, args.transport, args.hosts),
        )
        print("popqc:   ", res.stats.summary())
        if args.baseline:
            base = optimize_whole_circuit(circuit)
            print(
                f"baseline: {circuit.num_gates} -> {base.num_gates} gates, "
                f"{base.time_seconds:.3f}s"
            )
        return 0

    if args.command == "analyze":
        circuit = _load_circuit(args.input)
        print(analyze(circuit).render())
        return 0

    if args.command == "trace":
        circuit = _load_circuit(args.input)
        res, trace = popqc_traced(circuit, NamOracle(), args.omega)
        print(render_trace(trace, width=args.width))
        print(res.stats.summary())
        return 0

    if args.command == "suite":
        from .benchgen import write_suite

        entries = write_suite(
            args.out, families=args.families, size_indices=tuple(args.sizes)
        )
        for e in entries:
            print(f"{e.path}: {e.num_gates} gates, {e.num_qubits} qubits")
        print(f"wrote {len(entries)} circuits + manifest.csv to {args.out}")
        return 0

    if args.command == "tables":
        for which in args.which:
            _, text = _TABLES[which](size_indices=tuple(args.sizes))
            print(text)
            print()
        return 0

    if args.command == "figures":
        for which in args.which:
            _, text = _FIGURES[which]()
            print(text)
            print()
        return 0

    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
