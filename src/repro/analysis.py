"""Circuit analysis: the metrics quantum-compiler evaluations report.

Collects, for a circuit, the cost metrics of Section 2.3 (gate count,
depth, two-qubit count, non-Clifford/T count) plus a per-layer
parallelism profile, and renders them as a compact report.  Used by the
``popqc analyze`` CLI subcommand and the experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from .circuits import Circuit, Gate, layers_asap

__all__ = ["CircuitReport", "analyze", "t_count", "non_clifford_count"]

_CLIFFORD_ANGLES = (0.0, math.pi / 2, math.pi, 3 * math.pi / 2)


def _is_clifford_rz(g: Gate) -> bool:
    assert g.name == "rz" and g.param is not None
    return any(abs(g.param - a) < 1e-9 for a in _CLIFFORD_ANGLES)


def t_count(circuit: Circuit | Sequence[Gate]) -> int:
    """Number of T/T-dagger rotations (RZ of an odd multiple of pi/4).

    The fault-tolerant-era cost metric (paper Section 8.1).
    """
    gates = circuit.gates if isinstance(circuit, Circuit) else circuit
    count = 0
    for g in gates:
        if g.name != "rz":
            continue
        assert g.param is not None
        ratio = g.param / (math.pi / 4)
        nearest = round(ratio)
        if abs(ratio - nearest) < 1e-9 and nearest % 2 == 1:
            count += 1
    return count


def non_clifford_count(circuit: Circuit | Sequence[Gate]) -> int:
    """Number of rotations outside the Clifford group."""
    gates = circuit.gates if isinstance(circuit, Circuit) else circuit
    return sum(
        1 for g in gates if g.name == "rz" and not _is_clifford_rz(g)
    )


@dataclass
class CircuitReport:
    """Summary metrics for one circuit."""

    num_qubits: int
    num_gates: int
    depth: int
    two_qubit_gates: int
    t_gates: int
    non_clifford_gates: int
    histogram: dict[str, int] = field(default_factory=dict)
    #: gates per layer: min / mean / max — the parallelism profile
    layer_width_min: int = 0
    layer_width_mean: float = 0.0
    layer_width_max: int = 0

    def render(self) -> str:
        """Human-readable multi-line report."""
        hist = ", ".join(f"{k}:{v}" for k, v in sorted(self.histogram.items()))
        return "\n".join(
            [
                f"qubits            {self.num_qubits}",
                f"gates             {self.num_gates}  ({hist})",
                f"depth             {self.depth}",
                f"two-qubit gates   {self.two_qubit_gates}",
                f"T gates           {self.t_gates}",
                f"non-Clifford RZ   {self.non_clifford_gates}",
                (
                    f"layer width       min {self.layer_width_min} / "
                    f"mean {self.layer_width_mean:.2f} / max {self.layer_width_max}"
                ),
            ]
        )


def analyze(circuit: Circuit) -> CircuitReport:
    """Compute a :class:`CircuitReport` for ``circuit``."""
    layers = layers_asap(circuit.gates, circuit.num_qubits)
    widths = [len(layer) for layer in layers] or [0]
    return CircuitReport(
        num_qubits=circuit.num_qubits,
        num_gates=circuit.num_gates,
        depth=len(layers),
        two_qubit_gates=circuit.two_qubit_count(),
        t_gates=t_count(circuit),
        non_clifford_gates=non_clifford_count(circuit),
        histogram=circuit.gate_histogram(),
        layer_width_min=min(widths),
        layer_width_mean=sum(widths) / len(widths),
        layer_width_max=max(widths),
    )
