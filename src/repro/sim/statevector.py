"""Dense statevector simulator.

This is the verification substrate: it lets the test suite check that
every rewrite rule, every oracle and the end-to-end POPQC pipeline
preserve circuit semantics (the circuit's unitary, up to global phase).

The state is kept as a numpy array of shape ``(2,) * n`` with qubit 0 as
axis 0.  One- and two-qubit gates are applied with ``tensordot`` +
``moveaxis``, which is O(2^n) per gate and comfortably handles the
n <= ~16 circuits used in tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..circuits import Circuit, Gate

__all__ = ["zero_state", "apply_gate", "apply_gates", "run", "basis_state"]


def zero_state(num_qubits: int) -> np.ndarray:
    """The |0...0> state as a ``(2,)*n`` tensor."""
    if num_qubits < 0:
        raise ValueError("num_qubits must be non-negative")
    state = np.zeros((2,) * num_qubits if num_qubits else (1,), dtype=np.complex128)
    state.flat[0] = 1.0
    return state


def basis_state(num_qubits: int, index: int) -> np.ndarray:
    """Computational basis state |index> with qubit 0 as the MSB."""
    state = np.zeros((2,) * num_qubits, dtype=np.complex128)
    state.flat[index] = 1.0
    return state


def apply_gate(state: np.ndarray, gate: Gate) -> np.ndarray:
    """Apply one gate to a ``(2,)*n`` state tensor, returning a new tensor."""
    k = gate.arity
    mat = gate.matrix().reshape((2,) * (2 * k))
    axes = gate.qubits
    # Contract gate input indices with the state's target axes.
    state = np.tensordot(mat, state, axes=(tuple(range(k, 2 * k)), axes))
    # tensordot moved the gate's output indices to the front; restore order.
    return np.moveaxis(state, tuple(range(k)), axes)


def apply_gates(state: np.ndarray, gates: Iterable[Gate]) -> np.ndarray:
    """Apply a gate sequence left to right."""
    for g in gates:
        state = apply_gate(state, g)
    return state


def run(circuit: Circuit | Sequence[Gate], num_qubits: int | None = None) -> np.ndarray:
    """Simulate a circuit from |0...0>, returning the flat 2^n amplitude vector."""
    if isinstance(circuit, Circuit):
        gates: Sequence[Gate] = circuit.gates
        n = circuit.num_qubits if num_qubits is None else num_qubits
    else:
        gates = circuit
        if num_qubits is None:
            from ..circuits import gates_qubit_span

            n = gates_qubit_span(gates)
        else:
            n = num_qubits
    state = zero_state(n)
    state = apply_gates(state, gates)
    return state.reshape(-1)
