"""Unitary construction for small circuits.

Builds the full 2^n x 2^n matrix of a circuit by applying it to each
basis column.  Practical up to n ~ 10 qubits, which covers the segment
widths used in the equivalence tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuits import Circuit, Gate, gates_qubit_span

__all__ = ["circuit_unitary", "gates_unitary"]


def gates_unitary(gates: Sequence[Gate], num_qubits: int) -> np.ndarray:
    """The unitary implemented by ``gates`` on ``num_qubits`` qubits.

    Qubit 0 is the most-significant bit of the matrix index, matching
    :mod:`repro.sim.statevector`.
    """
    dim = 1 << num_qubits
    if num_qubits > 14:
        raise ValueError(f"unitary too large for {num_qubits} qubits")
    cols = np.eye(dim, dtype=np.complex128).reshape((2,) * num_qubits + (dim,))
    # Apply the gate list to all basis columns at once by treating the
    # column index as a spectator axis.
    state = cols
    for g in gates:
        k = g.arity
        mat = g.matrix().reshape((2,) * (2 * k))
        state = np.tensordot(mat, state, axes=(tuple(range(k, 2 * k)), g.qubits))
        state = np.moveaxis(state, tuple(range(k)), g.qubits)
    return state.reshape(dim, dim)


def circuit_unitary(circuit: Circuit | Sequence[Gate]) -> np.ndarray:
    """Unitary of a :class:`Circuit` or a raw gate sequence."""
    if isinstance(circuit, Circuit):
        return gates_unitary(circuit.gates, circuit.num_qubits)
    return gates_unitary(circuit, gates_qubit_span(circuit))
