"""Randomized equivalence probing for circuits too wide for unitaries.

Full unitary comparison costs 4^n memory; statevector probing costs
2^n per trial and distinguishes inequivalent unitaries with
overwhelming probability: for random product inputs |psi>, two distinct
unitaries agree on |psi> (up to phase) only on a measure-zero set, and
numerically the failure probability per trial is bounded by the overlap
structure of U†V (a handful of trials suffices in practice; the tests
use it up to ~14 qubits).

This is a *probabilistic* check: ``True`` means "no counterexample
found", not a proof.  The deterministic check for narrow supports is
:func:`repro.sim.equivalence.segments_equivalent`.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence

from ..circuits import Circuit, Gate, H, RZ
from .equivalence import statevectors_equivalent
from .statevector import run

__all__ = ["probe_equivalent"]


def _random_product_prep(
    num_qubits: int, rng: random.Random
) -> list[Gate]:
    """A random product-state preparation layer."""
    prep: list[Gate] = []
    for q in range(num_qubits):
        if rng.random() < 0.5:
            prep.append(H(q))
        prep.append(RZ(q, rng.uniform(0.0, 2.0 * math.pi)))
        if rng.random() < 0.5:
            prep.append(H(q))
    return prep


def probe_equivalent(
    a: Circuit | Sequence[Gate],
    b: Circuit | Sequence[Gate],
    *,
    trials: int = 4,
    seed: Optional[int] = None,
    atol: float = 1e-7,
    max_qubits: int = 18,
) -> bool:
    """Compare two circuits on random product input states.

    Returns False as soon as one probe distinguishes them; True when
    all ``trials`` probes agree up to global phase.

    Raises ``ValueError`` if the joint register exceeds ``max_qubits``
    (statevector memory limit: 2^n amplitudes).
    """
    ca = a if isinstance(a, Circuit) else Circuit(a)
    cb = b if isinstance(b, Circuit) else Circuit(b)
    n = max(ca.num_qubits, cb.num_qubits)
    if n > max_qubits:
        raise ValueError(f"{n} qubits exceeds max_qubits={max_qubits}")
    if n == 0:
        return True
    rng = random.Random(seed)
    for _ in range(max(1, trials)):
        prep = _random_product_prep(n, rng)
        va = run(prep + list(ca.gates), num_qubits=n)
        vb = run(prep + list(cb.gates), num_qubits=n)
        if not statevectors_equivalent(va, vb, atol=atol):
            return False
    return True
