"""Simulation substrate: statevector simulator, unitary builder, equivalence."""

from .equivalence import (
    allclose_up_to_phase,
    circuits_equivalent,
    segments_equivalent,
    statevectors_equivalent,
)
from .probe import probe_equivalent
from .statevector import apply_gate, apply_gates, basis_state, run, zero_state
from .unitary import circuit_unitary, gates_unitary

__all__ = [
    "allclose_up_to_phase",
    "apply_gate",
    "apply_gates",
    "basis_state",
    "circuit_unitary",
    "circuits_equivalent",
    "gates_unitary",
    "probe_equivalent",
    "run",
    "segments_equivalent",
    "statevectors_equivalent",
    "zero_state",
]
