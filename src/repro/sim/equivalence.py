"""Equivalence checking up to global phase.

The fundamental property the optimizers must preserve (paper Section 2.2):
any subcircuit may be replaced by a subcircuit implementing the same
unitary.  Global phase is irrelevant for quantum computation, and several
of our rewrite rules (e.g. ``H X H -> RZ(pi)``) change it, so all checks
here mod out the phase.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuits import Circuit, Gate
from .unitary import gates_unitary

__all__ = [
    "allclose_up_to_phase",
    "circuits_equivalent",
    "segments_equivalent",
    "statevectors_equivalent",
]

_DEFAULT_ATOL = 1e-8


def allclose_up_to_phase(
    a: np.ndarray, b: np.ndarray, atol: float = _DEFAULT_ATOL
) -> bool:
    """True when ``a == exp(i phi) * b`` for some real ``phi``.

    Works for both matrices and vectors.  The phase is estimated from the
    largest-magnitude entry of ``b`` to avoid dividing by near-zeros.
    """
    if a.shape != b.shape:
        return False
    flat_b = b.reshape(-1)
    idx = int(np.argmax(np.abs(flat_b)))
    pivot = flat_b[idx]
    if abs(pivot) < atol:
        # b is (numerically) zero; a must be too.
        return bool(np.all(np.abs(a) <= atol))
    phase = a.reshape(-1)[idx] / pivot
    mag = abs(phase)
    if abs(mag - 1.0) > 1e-6:
        return False
    return bool(np.allclose(a, phase * b, atol=atol))


def statevectors_equivalent(
    a: np.ndarray, b: np.ndarray, atol: float = _DEFAULT_ATOL
) -> bool:
    """Statevector equality up to global phase."""
    return allclose_up_to_phase(a, b, atol=atol)


def circuits_equivalent(
    a: Circuit | Sequence[Gate],
    b: Circuit | Sequence[Gate],
    atol: float = _DEFAULT_ATOL,
) -> bool:
    """Unitary equality up to global phase for whole circuits.

    Both operands are evaluated on the larger of the two qubit counts so
    that circuits differing only in trailing idle qubits compare equal.
    """
    ca = a if isinstance(a, Circuit) else Circuit(a)
    cb = b if isinstance(b, Circuit) else Circuit(b)
    n = max(ca.num_qubits, cb.num_qubits)
    ua = gates_unitary(ca.gates, n)
    ub = gates_unitary(cb.gates, n)
    return allclose_up_to_phase(ua, ub, atol=atol)


def segments_equivalent(
    before: Sequence[Gate],
    after: Sequence[Gate],
    atol: float = _DEFAULT_ATOL,
    max_qubits: int = 12,
) -> bool:
    """Equivalence check for circuit *segments* with sparse qubit support.

    Segments cut out of a large circuit may touch high-numbered qubits;
    comparing them directly would require a huge unitary.  Both segments
    are first compacted onto the union of their supports.

    Raises ``ValueError`` when the union support exceeds ``max_qubits``
    (the caller should then fall back to structural checks or sampling).
    """
    support: set[int] = set()
    for g in before:
        support.update(g.qubits)
    for g in after:
        support.update(g.qubits)
    if not support:
        return True
    if len(support) > max_qubits:
        raise ValueError(
            f"segment support {len(support)} exceeds max_qubits={max_qubits}"
        )
    order = sorted(support)
    relabel = {q: i for i, q in enumerate(order)}

    def compact(gates: Sequence[Gate]) -> list[Gate]:
        return [
            Gate(g.name, tuple(relabel[q] for q in g.qubits), g.param) for g in gates
        ]

    n = len(order)
    ua = gates_unitary(compact(before), n)
    ub = gates_unitary(compact(after), n)
    return allclose_up_to_phase(ua, ub, atol=atol)
