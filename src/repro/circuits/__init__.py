"""Circuit substrate: gates, circuits, layering, QASM I/O, random circuits."""

from .circuit import Circuit
from .encoding import (
    EncodedSegment,
    decode_segment,
    encode_segment,
    encoded_nbytes,
    pack_segment_into,
    packed_segment_nbytes,
    segment_fingerprint,
    unpack_segment_from,
)
from .gate import (
    ANGLE_TOL,
    CNOT,
    GATE_NAMES,
    RZ,
    Gate,
    H,
    X,
    gate_matrix,
    gates_qubit_span,
    is_zero_angle,
    normalize_angle,
)
from .layering import (
    circuit_depth,
    flatten_layers,
    layers_alap,
    layers_asap,
    left_justified,
    right_justified,
)
from .qasm import QasmError, parse_qasm, read_qasm, to_qasm, write_qasm
from .random_circuits import (
    random_circuit,
    random_redundant_circuit,
    random_segment,
)

__all__ = [
    "ANGLE_TOL",
    "CNOT",
    "Circuit",
    "EncodedSegment",
    "GATE_NAMES",
    "decode_segment",
    "encode_segment",
    "encoded_nbytes",
    "Gate",
    "H",
    "QasmError",
    "RZ",
    "X",
    "circuit_depth",
    "flatten_layers",
    "gate_matrix",
    "gates_qubit_span",
    "is_zero_angle",
    "layers_alap",
    "layers_asap",
    "left_justified",
    "normalize_angle",
    "pack_segment_into",
    "packed_segment_nbytes",
    "parse_qasm",
    "random_circuit",
    "random_redundant_circuit",
    "random_segment",
    "read_qasm",
    "segment_fingerprint",
    "right_justified",
    "to_qasm",
    "unpack_segment_from",
    "write_qasm",
]
