"""OpenQASM 2.0 subset reader/writer.

The paper's benchmarks ship as QASM files (PennyLane / Qiskit / NWQBench);
our generators build circuits programmatically, but this module lets users
round-trip circuits through the same interchange format, and lets the
optimizers run on externally supplied QASM.

Supported statements: ``OPENQASM 2.0``, ``include``, a single ``qreg``
(or several, concatenated), ``creg`` (ignored), the base gates ``h``,
``x``, ``cx``/``cnot``, ``rz(expr)`` plus the common aliases ``z``, ``s``,
``sdg``, ``t``, ``tdg``, ``cz``, ``ccx``/``ccz``, ``swap`` and ``p``/``u1``
which are decomposed into the base set on load.  Angle expressions may use
``pi``, the arithmetic operators ``+ - * /`` and parentheses.
"""

from __future__ import annotations

import math
import re

from .circuit import Circuit
from .gate import CNOT, RZ, Gate, H, X

__all__ = ["parse_qasm", "to_qasm", "QasmError"]


class QasmError(ValueError):
    """Raised on malformed QASM input."""


_STATEMENT_RE = re.compile(r"([^;]*);")
_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_QARG_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\[(\d+)\]$")

# Tokens allowed in angle expressions, for safe eval.
_EXPR_RE = re.compile(r"^[\d\.\s\+\-\*/\(\)piePI]*$")


def _eval_angle(expr: str) -> float:
    """Evaluate a QASM angle expression such as ``-3*pi/4``."""
    expr = expr.strip()
    if not expr:
        raise QasmError("empty angle expression")
    if not _EXPR_RE.match(expr):
        raise QasmError(f"unsupported angle expression: {expr!r}")
    try:
        return float(eval(expr, {"__builtins__": {}}, {"pi": math.pi, "e": math.e}))
    except Exception as exc:  # noqa: BLE001 - surface as QasmError
        raise QasmError(f"bad angle expression: {expr!r}") from exc


def _strip_comments(text: str) -> str:
    out_lines = []
    for line in text.splitlines():
        idx = line.find("//")
        if idx >= 0:
            line = line[:idx]
        out_lines.append(line)
    return "\n".join(out_lines)


def parse_qasm(text: str) -> Circuit:
    """Parse an OpenQASM 2.0 program into a :class:`Circuit`.

    Multiple ``qreg`` declarations are laid out consecutively in
    declaration order.  Gates outside the base set are decomposed.
    """
    from ..benchgen import decompose as dec  # local import: avoid cycle

    text = _strip_comments(text)
    regs: dict[str, int] = {}  # name -> base offset
    total_qubits = 0
    gates: list[Gate] = []

    def resolve(arg: str) -> int:
        m = _QARG_RE.match(arg.strip())
        if not m:
            raise QasmError(f"bad qubit argument: {arg!r}")
        name, idx = m.group(1), int(m.group(2))
        if name not in regs:
            raise QasmError(f"unknown register: {name!r}")
        return regs[name] + idx

    for m in _STATEMENT_RE.finditer(text):
        stmt = m.group(1).strip()
        if not stmt:
            continue
        if stmt.startswith("OPENQASM") or stmt.startswith("include"):
            continue
        if stmt.startswith("qreg"):
            decl = re.match(r"qreg\s+([A-Za-z_][A-Za-z0-9_]*)\[(\d+)\]", stmt)
            if not decl:
                raise QasmError(f"bad qreg declaration: {stmt!r}")
            regs[decl.group(1)] = total_qubits
            total_qubits += int(decl.group(2))
            continue
        if stmt.startswith("creg") or stmt.startswith("barrier"):
            continue
        if stmt.startswith("measure"):
            continue  # measurement is outside the optimizer's scope

        # Greedy parenthesis match: qubit arguments never contain parens,
        # so the last ')' closes the (possibly nested) angle expression.
        head = re.match(r"([A-Za-z_][A-Za-z0-9_]*)\s*(\((.*)\))?\s*([^()]*)$", stmt)
        if not head:
            raise QasmError(f"unparseable statement: {stmt!r}")
        name = head.group(1).lower()
        param_src = head.group(3)
        args = [a for a in head.group(4).split(",") if a.strip()]
        qubits = [resolve(a) for a in args]

        if name == "h":
            gates.append(H(qubits[0]))
        elif name == "x":
            gates.append(X(qubits[0]))
        elif name in ("cx", "cnot"):
            gates.append(CNOT(qubits[0], qubits[1]))
        elif name in ("rz", "p", "u1"):
            gates.append(RZ(qubits[0], _eval_angle(param_src or "")))
        elif name == "z":
            gates.append(RZ(qubits[0], math.pi))
        elif name == "s":
            gates.append(RZ(qubits[0], math.pi / 2))
        elif name == "sdg":
            gates.append(RZ(qubits[0], -math.pi / 2))
        elif name == "t":
            gates.append(RZ(qubits[0], math.pi / 4))
        elif name == "tdg":
            gates.append(RZ(qubits[0], -math.pi / 4))
        elif name == "cz":
            gates.extend(dec.cz(qubits[0], qubits[1]))
        elif name == "swap":
            gates.extend(dec.swap(qubits[0], qubits[1]))
        elif name == "ccx":
            gates.extend(dec.toffoli(qubits[0], qubits[1], qubits[2]))
        elif name == "ccz":
            gates.extend(dec.ccz(qubits[0], qubits[1], qubits[2]))
        elif name in ("crz", "cp", "cu1"):
            gates.extend(
                dec.controlled_phase(_eval_angle(param_src or ""), qubits[0], qubits[1])
            )
        else:
            raise QasmError(f"unsupported gate: {name!r}")

    return Circuit(gates, total_qubits)


def to_qasm(circuit: Circuit, register: str = "q") -> str:
    """Serialize a base-gate-set circuit to OpenQASM 2.0 text."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg {register}[{circuit.num_qubits}];",
    ]
    for g in circuit.gates:
        if g.name == "h":
            lines.append(f"h {register}[{g.qubits[0]}];")
        elif g.name == "x":
            lines.append(f"x {register}[{g.qubits[0]}];")
        elif g.name == "cnot":
            lines.append(f"cx {register}[{g.qubits[0]}],{register}[{g.qubits[1]}];")
        elif g.name == "rz":
            lines.append(f"rz({g.param!r}) {register}[{g.qubits[0]}];")
        else:
            raise QasmError(f"cannot serialize non-base gate: {g.name!r}")
    return "\n".join(lines) + "\n"


def write_qasm(circuit: Circuit, path: str) -> None:
    """Write :func:`to_qasm` output to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_qasm(circuit))


def read_qasm(path: str) -> Circuit:
    """Parse a QASM file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_qasm(fh.read())
