"""Layered circuit representation (paper Sections 2.2, 7.8, A.4).

A *layer* is a maximal set of mutually independent gates (disjoint qubit
supports).  The layered representation serves two roles in the paper:

* the depth-aware experiment (Section 7.8) runs POPQC at layer
  granularity with a mixed ``10*depth + gates`` cost, and
* the initial-ordering experiment (Section A.4) uses the layering to
  produce *left-justified* and *right-justified* gate orders.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .circuit import Circuit
from .gate import Gate

__all__ = [
    "layers_asap",
    "layers_alap",
    "flatten_layers",
    "left_justified",
    "right_justified",
    "circuit_depth",
]


def layers_asap(gates: Sequence[Gate], num_qubits: int) -> list[list[Gate]]:
    """Greedy as-soon-as-possible layering.

    Each gate is placed in the earliest layer after the layers of all
    earlier gates that share a qubit with it.  Runs in O(total gate
    arity) time.
    """
    if not gates:
        return []
    frontier = [0] * num_qubits  # frontier[q] = last layer (1-based) used on q
    layers: list[list[Gate]] = []
    for g in gates:
        layer = max(frontier[q] for q in g.qubits)  # 0-based index of target layer
        if layer == len(layers):
            layers.append([])
        layers[layer].append(g)
        for q in g.qubits:
            frontier[q] = layer + 1
    return layers


def layers_alap(gates: Sequence[Gate], num_qubits: int) -> list[list[Gate]]:
    """As-late-as-possible layering (mirror image of :func:`layers_asap`)."""
    reversed_layers = layers_asap(list(reversed(gates)), num_qubits)
    # Reverse layer order, and restore original gate order within a layer.
    return [list(reversed(layer)) for layer in reversed(reversed_layers)]


def flatten_layers(layers: Iterable[Iterable[Gate]]) -> list[Gate]:
    """Concatenate layers back into a flat gate sequence."""
    flat: list[Gate] = []
    for layer in layers:
        flat.extend(layer)
    return flat


def left_justified(circuit: Circuit) -> Circuit:
    """Push every gate as far left as possible (paper Section A.4).

    Converts to the ASAP layered representation and flattens back;
    intra-layer order follows original gate order.
    """
    layers = layers_asap(circuit.gates, circuit.num_qubits)
    return Circuit(flatten_layers(layers), circuit.num_qubits)


def right_justified(circuit: Circuit) -> Circuit:
    """Push every gate as far right as possible (paper Section A.4)."""
    layers = layers_alap(circuit.gates, circuit.num_qubits)
    return Circuit(flatten_layers(layers), circuit.num_qubits)


def circuit_depth(gates: Sequence[Gate], num_qubits: int) -> int:
    """Depth of a raw gate sequence without building layer lists."""
    frontier = [0] * num_qubits
    depth = 0
    for g in gates:
        layer = max(frontier[q] for q in g.qubits) + 1
        for q in g.qubits:
            frontier[q] = layer
        if layer > depth:
            depth = layer
    return depth
