"""Gate model for the POPQC reproduction.

The paper (Section 7.2) evaluates on the gate set used by VOQC:
Hadamard (``h``), Pauli-X (``x``), controlled-not (``cnot``) and Z-rotation
(``rz``).  All benchmark generators and both oracle optimizers in this
repository emit circuits over exactly this set; richer gates (T, S, Z, CZ,
Toffoli, ...) are provided as *decompositions* into the base set by
:mod:`repro.benchgen.decompose` and as named constructors here for tests.

Conventions
-----------
``RZ(theta)`` is the matrix ``diag(1, exp(i*theta))`` — the *phase-rotation*
convention — so that ``RZ(pi) == Z``, ``RZ(pi/2) == S`` and
``RZ(pi/4) == T`` hold exactly (up to the global phase that all of our
equivalence checks already ignore).  Angles are stored normalized into
``[0, 2*pi)``; an angle indistinguishable from 0 (within :data:`ANGLE_TOL`)
denotes the identity and is removed by the optimizers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

__all__ = [
    "ANGLE_TOL",
    "TWO_PI",
    "Gate",
    "H",
    "X",
    "CNOT",
    "RZ",
    "normalize_angle",
    "is_zero_angle",
    "GATE_NAMES",
    "gate_matrix",
]

#: Angles closer than this to a multiple of 2*pi are treated as zero.
ANGLE_TOL = 1e-10

TWO_PI = 2.0 * math.pi

#: The base gate set (paper Section 7.2).
GATE_NAMES = ("h", "x", "cnot", "rz")

_H_MATRIX = np.array([[1.0, 1.0], [1.0, -1.0]], dtype=np.complex128) / math.sqrt(2.0)
_X_MATRIX = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=np.complex128)


def normalize_angle(theta: float) -> float:
    """Map ``theta`` into the canonical interval ``[0, 2*pi)``.

    Values within :data:`ANGLE_TOL` of ``0`` or ``2*pi`` normalize to
    exactly ``0.0`` so that identity rotations compare equal.
    """
    theta = math.fmod(theta, TWO_PI)
    if theta < 0.0:
        theta += TWO_PI
    if theta < ANGLE_TOL or TWO_PI - theta < ANGLE_TOL:
        return 0.0
    return theta


def is_zero_angle(theta: float) -> bool:
    """True when an ``rz`` with this angle is the identity."""
    return normalize_angle(theta) == 0.0


@dataclass(frozen=True, slots=True)
class Gate:
    """A single quantum gate: a name, an ordered qubit tuple and an
    optional rotation parameter.

    Instances are immutable and hashable so they can be shared freely
    between the circuit array, oracle inputs and multiprocessing workers.

    Attributes
    ----------
    name:
        Lower-case gate name, one of :data:`GATE_NAMES` for circuits fed
        to the optimizers.
    qubits:
        The qubits the gate acts on.  For ``cnot`` the order is
        ``(control, target)``.
    param:
        Rotation angle for ``rz``; ``None`` for parameter-free gates.
    """

    name: str
    qubits: tuple[int, ...]
    param: Optional[float] = None

    def __post_init__(self) -> None:
        if self.name == "rz":
            if self.param is None:
                raise ValueError("rz gate requires a rotation parameter")
            object.__setattr__(self, "param", normalize_angle(self.param))
        elif self.param is not None:
            raise ValueError(f"gate {self.name!r} does not take a parameter")
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in gate: {self.qubits}")

    # -- structural helpers -------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of qubits the gate touches."""
        return len(self.qubits)

    @property
    def is_identity(self) -> bool:
        """True for rotations indistinguishable from the identity."""
        return self.name == "rz" and self.param == 0.0

    def on(self, *qubits: int) -> "Gate":
        """Return a copy of this gate acting on different qubits."""
        return Gate(self.name, tuple(qubits), self.param)

    def touches(self, qubit: int) -> bool:
        """True if this gate acts on ``qubit``."""
        return qubit in self.qubits

    def overlaps(self, other: "Gate") -> bool:
        """True if this gate shares at least one qubit with ``other``."""
        mine = self.qubits
        return any(q in mine for q in other.qubits)

    def inverse(self) -> "Gate":
        """The inverse gate (h, x, cnot are self-inverse; rz negates)."""
        if self.name == "rz":
            assert self.param is not None
            return Gate("rz", self.qubits, -self.param)
        return self

    # -- matrices ------------------------------------------------------------

    def matrix(self) -> np.ndarray:
        """Dense matrix on the gate's own qubits (2x2 or 4x4).

        For two-qubit gates the returned matrix uses the convention that
        ``qubits[0]`` is the most-significant bit of the row/column index.
        """
        return gate_matrix(self.name, self.param)

    # -- formatting ----------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        if self.param is not None:
            return f"{self.name}({self.param:.6g}) {list(self.qubits)}"
        return f"{self.name} {list(self.qubits)}"


def gate_matrix(name: str, param: Optional[float] = None) -> np.ndarray:
    """Return the dense matrix for gate ``name`` (fresh copy).

    ``cnot`` uses ``(control, target)`` ordering with the control as the
    most-significant index bit.
    """
    if name == "h":
        return _H_MATRIX.copy()
    if name == "x":
        return _X_MATRIX.copy()
    if name == "rz":
        if param is None:
            raise ValueError("rz matrix requires a parameter")
        return np.array(
            [[1.0, 0.0], [0.0, np.exp(1j * param)]], dtype=np.complex128
        )
    if name == "cnot":
        return np.array(
            [
                [1, 0, 0, 0],
                [0, 1, 0, 0],
                [0, 0, 0, 1],
                [0, 0, 1, 0],
            ],
            dtype=np.complex128,
        )
    raise ValueError(f"unknown gate name: {name!r}")


# -- convenience constructors -------------------------------------------------


def H(q: int) -> Gate:
    """Hadamard on qubit ``q``."""
    return Gate("h", (q,))


def X(q: int) -> Gate:
    """Pauli-X on qubit ``q``."""
    return Gate("x", (q,))


def CNOT(control: int, target: int) -> Gate:
    """Controlled-NOT with the given control and target qubits."""
    return Gate("cnot", (control, target))


def RZ(q: int, theta: float) -> Gate:
    """Z-rotation ``diag(1, e^{i theta})`` on qubit ``q``."""
    return Gate("rz", (q,), theta)


def gates_qubit_span(gates: Iterable[Gate]) -> int:
    """Smallest qubit count that accommodates every gate in ``gates``."""
    top = -1
    for g in gates:
        for q in g.qubits:
            if q > top:
                top = q
    return top + 1
