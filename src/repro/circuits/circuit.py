"""The :class:`Circuit` container.

A circuit is an ordered gate sequence over ``num_qubits`` qubits (paper
Section 2.2, "gate sequence representation").  The container is
deliberately simple — the interesting parallel data structure lives in
:mod:`repro.core.index_tree`; this class is the user-facing value type that
flows in and out of the optimizers.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from .gate import Gate, gates_qubit_span

__all__ = ["Circuit"]


class Circuit:
    """An immutable-by-convention ordered sequence of gates.

    Parameters
    ----------
    gates:
        The gate sequence, applied left to right (``gates[0]`` first).
    num_qubits:
        Number of qubits; inferred from the gates when omitted.
    """

    __slots__ = ("_gates", "_num_qubits")

    def __init__(self, gates: Iterable[Gate] = (), num_qubits: int | None = None):
        self._gates: tuple[Gate, ...] = tuple(gates)
        span = gates_qubit_span(self._gates)
        if num_qubits is None:
            num_qubits = span
        elif num_qubits < span:
            raise ValueError(
                f"num_qubits={num_qubits} too small for gates spanning {span} qubits"
            )
        self._num_qubits = num_qubits

    # -- basic accessors -------------------------------------------------

    @property
    def gates(self) -> tuple[Gate, ...]:
        """The gate sequence as an immutable tuple."""
        return self._gates

    @property
    def num_qubits(self) -> int:
        """Number of qubits in the circuit."""
        return self._num_qubits

    @property
    def num_gates(self) -> int:
        """Total gate count (the paper's primary cost metric)."""
        return len(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return Circuit(self._gates[idx], self._num_qubits)
        return self._gates[idx]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (
            self._num_qubits == other._num_qubits and self._gates == other._gates
        )

    def __hash__(self) -> int:
        return hash((self._num_qubits, self._gates))

    def __repr__(self) -> str:  # pragma: no cover - debug formatting
        return f"Circuit({self.num_gates} gates, {self.num_qubits} qubits)"

    # -- structure -------------------------------------------------------

    def count(self, name: str) -> int:
        """Number of gates with the given name."""
        return sum(1 for g in self._gates if g.name == name)

    def gate_histogram(self) -> dict[str, int]:
        """Mapping from gate name to occurrence count."""
        hist: dict[str, int] = {}
        for g in self._gates:
            hist[g.name] = hist.get(g.name, 0) + 1
        return hist

    def two_qubit_count(self) -> int:
        """Number of multi-qubit gates (cnot count for the base set)."""
        return sum(1 for g in self._gates if g.arity > 1)

    def depth(self) -> int:
        """Circuit depth: length of the greedy ASAP layering.

        Defined as in Section 2.2 of the paper: the minimum number of
        layers of mutually independent gates that respects gate order.
        """
        if not self._gates:
            return 0
        frontier = [0] * self._num_qubits
        depth = 0
        for g in self._gates:
            layer = max(frontier[q] for q in g.qubits) + 1
            for q in g.qubits:
                frontier[q] = layer
            if layer > depth:
                depth = layer
        return depth

    # -- composition -------------------------------------------------------

    def extended(self, gates: Iterable[Gate]) -> "Circuit":
        """A new circuit with ``gates`` appended."""
        return Circuit(self._gates + tuple(gates), None)

    def concat(self, other: "Circuit") -> "Circuit":
        """Concatenation ``self ; other`` on the union qubit count."""
        n = max(self._num_qubits, other._num_qubits)
        return Circuit(self._gates + other._gates, n)

    def inverse(self) -> "Circuit":
        """The adjoint circuit (gates reversed and individually inverted)."""
        return Circuit(
            tuple(g.inverse() for g in reversed(self._gates)), self._num_qubits
        )

    def map_gates(self, fn: Callable[[Gate], Gate]) -> "Circuit":
        """Apply ``fn`` to each gate, keeping the qubit count."""
        return Circuit(tuple(fn(g) for g in self._gates), self._num_qubits)

    def remapped(self, mapping: Sequence[int]) -> "Circuit":
        """Relabel qubits: old qubit ``q`` becomes ``mapping[q]``."""
        gates = tuple(
            Gate(g.name, tuple(mapping[q] for q in g.qubits), g.param)
            for g in self._gates
        )
        return Circuit(gates)

    def support(self) -> tuple[int, ...]:
        """Sorted tuple of qubits actually touched by some gate."""
        used: set[int] = set()
        for g in self._gates:
            used.update(g.qubits)
        return tuple(sorted(used))

    def compacted(self) -> tuple["Circuit", tuple[int, ...]]:
        """Relabel the support onto ``0..k-1``.

        Returns the compacted circuit and the original qubit labels in
        order, so position ``i`` of the returned tuple is the original
        label of compacted qubit ``i``.  Used for segment-level unitary
        equivalence checks.
        """
        sup = self.support()
        inv = {q: i for i, q in enumerate(sup)}
        gates = tuple(
            Gate(g.name, tuple(inv[q] for q in g.qubits), g.param)
            for g in self._gates
        )
        return Circuit(gates, len(sup)), sup
