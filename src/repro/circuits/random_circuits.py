"""Random circuit generation for tests and micro-benchmarks.

Two flavours:

* :func:`random_circuit` — uniform random gates from the base set; used by
  property tests because it explores the full rewrite space.
* :func:`random_redundant_circuit` — a random circuit deliberately seeded
  with cancellation opportunities (inverse pairs at random separations,
  mergeable rotations); used to exercise the optimizers where reductions
  are guaranteed to exist.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from .circuit import Circuit
from .gate import CNOT, RZ, Gate, H, X

__all__ = ["random_circuit", "random_redundant_circuit", "random_segment"]

_ANGLES = (math.pi / 4, -math.pi / 4, math.pi / 2, -math.pi / 2, math.pi)


def _random_gate(rng: random.Random, num_qubits: int) -> Gate:
    kind = rng.randrange(4)
    if kind == 0:
        return H(rng.randrange(num_qubits))
    if kind == 1:
        return X(rng.randrange(num_qubits))
    if kind == 2:
        return RZ(rng.randrange(num_qubits), rng.choice(_ANGLES))
    a = rng.randrange(num_qubits)
    b = rng.randrange(num_qubits - 1)
    if b >= a:
        b += 1
    return CNOT(a, b)


def random_circuit(
    num_qubits: int, num_gates: int, seed: Optional[int] = None
) -> Circuit:
    """Uniform random circuit over the base gate set.

    Requires ``num_qubits >= 2`` so that cnot gates can be drawn.
    """
    if num_qubits < 2:
        raise ValueError("random_circuit needs at least 2 qubits")
    rng = random.Random(seed)
    return Circuit(
        [_random_gate(rng, num_qubits) for _ in range(num_gates)], num_qubits
    )


def random_redundant_circuit(
    num_qubits: int,
    num_gates: int,
    seed: Optional[int] = None,
    redundancy: float = 0.5,
) -> Circuit:
    """Random circuit seeded with guaranteed cancellation opportunities.

    With probability ``redundancy`` each step emits an inverse pair
    ``g, g^{-1}`` (sometimes separated by a commuting spacer gate on a
    different qubit); otherwise a uniform random gate.  The expected
    fraction of removable gates is therefore roughly ``redundancy``.
    """
    if num_qubits < 3:
        raise ValueError("random_redundant_circuit needs at least 3 qubits")
    rng = random.Random(seed)
    gates: list[Gate] = []
    while len(gates) < num_gates:
        if rng.random() < redundancy:
            g = _random_gate(rng, num_qubits)
            gates.append(g)
            if rng.random() < 0.5:
                # Spacer on qubits disjoint from g (always exists: >=3 qubits).
                free = [q for q in range(num_qubits) if q not in g.qubits]
                gates.append(H(rng.choice(free)))
            gates.append(g.inverse())
        else:
            gates.append(_random_gate(rng, num_qubits))
    return Circuit(gates[:num_gates], num_qubits)


def random_segment(
    num_qubits: int, num_gates: int, seed: Optional[int] = None
) -> list[Gate]:
    """Random gate list (not a :class:`Circuit`) for oracle-level tests."""
    return list(random_circuit(num_qubits, num_gates, seed).gates)
