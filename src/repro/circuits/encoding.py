"""Compact numpy-backed gate-segment encoding for IPC transport.

The POPQC driver ships 2Ω-gate segments to oracle workers every round.
Pickling a ``list[Gate]`` serializes one frozen dataclass per gate —
hundreds of per-object pickle opcodes and memo entries per segment, and
one Python-object reconstruction per gate on the other end.  This
module flattens a segment into a few parallel numpy arrays so a segment
crosses the process boundary as a handful of contiguous buffers.

The encoding is lossless: :func:`decode_segment` reconstructs a gate
list that compares equal (``==``) to the input of
:func:`encode_segment`, including gate names outside the base set and
arbitrary arities.  Parameters are stored bit-exactly as float64.

Layout of an :class:`EncodedSegment` with ``n`` gates:

``names``
    Tuple of distinct gate names appearing in the segment, in first-use
    order; the per-segment opcode table.
``ops``
    ``(n,)`` integer array; ``ops[i]`` indexes ``names``.  uint8 when
    the segment has at most 256 distinct names, int32 otherwise.
``arities``
    ``(n,)`` integer array of per-gate qubit counts (uint8 when every
    arity fits); gate ``i``'s qubits are the next ``arities[i]``
    entries of ``qubits``.
``qubits``
    Flat int32 array of qubit indices for all gates, concatenated.
``param_mask``
    Bit-packed (``numpy.packbits``) boolean array marking which gates
    carry a parameter.
``params``
    float64 array holding, in gate order, the parameters of exactly
    the gates whose mask bit is set.

Beyond the in-process dataclass, this module defines the segment *wire
format*: :func:`pack_segment_into` lays an :class:`EncodedSegment` out
as one contiguous, self-describing byte block, and
:func:`unpack_segment_from` reconstructs it as zero-copy numpy views
into the carrying buffer.  The shared-memory transport
(:mod:`repro.parallel.shm`) packs every round's segments into one arena
with this format; a future multi-host socket transport reuses the same
bytes over a different carrier.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .gate import Gate

__all__ = [
    "EncodedSegment",
    "encode_segment",
    "decode_segment",
    "encoded_nbytes",
    "packed_segment_nbytes",
    "pack_segment_into",
    "unpack_segment_from",
    "packed_segment_span",
    "segment_fingerprint",
]


@dataclass(frozen=True, eq=False)
class EncodedSegment:
    """A gate segment flattened into parallel numpy arrays.

    Equality is value-based (array contents), not the dataclass
    default, which would trip over numpy's elementwise ``==``.
    Instances are not hashable.
    """

    names: tuple[str, ...]
    ops: np.ndarray
    arities: np.ndarray
    qubits: np.ndarray
    param_mask: np.ndarray
    params: np.ndarray
    length: int

    def __len__(self) -> int:
        return self.length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EncodedSegment):
            return NotImplemented
        return (
            self.length == other.length
            and self.names == other.names
            and np.array_equal(self.ops, other.ops)
            and np.array_equal(self.arities, other.arities)
            and np.array_equal(self.qubits, other.qubits)
            and np.array_equal(self.param_mask, other.param_mask)
            and np.array_equal(self.params, other.params)
        )

    @property
    def nbytes(self) -> int:
        """Approximate wire size of the array payload in bytes."""
        return (
            self.ops.nbytes
            + self.arities.nbytes
            + self.qubits.nbytes
            + self.param_mask.nbytes
            + self.params.nbytes
        )


def encode_segment(segment: Sequence[Gate]) -> EncodedSegment:
    """Flatten ``segment`` into an :class:`EncodedSegment`.

    Round-trips exactly through :func:`decode_segment` for any gate
    list, including empty segments and gates of arbitrary arity.
    """
    n = len(segment)
    opcodes: dict[str, int] = {}
    op_list: list[int] = []
    arity_list: list[int] = []
    mask = np.zeros(n, dtype=bool)
    flat_qubits: list[int] = []
    param_values: list[float] = []
    for i, g in enumerate(segment):
        code = opcodes.get(g.name)
        if code is None:
            code = opcodes[g.name] = len(opcodes)
        op_list.append(code)
        arity_list.append(len(g.qubits))
        flat_qubits.extend(g.qubits)
        if g.param is not None:
            mask[i] = True
            param_values.append(g.param)
    op_dtype = np.uint8 if len(opcodes) <= 256 else np.int32
    arity_dtype = np.uint8 if max(arity_list, default=0) <= 255 else np.int32
    return EncodedSegment(
        names=tuple(opcodes),
        ops=np.asarray(op_list, dtype=op_dtype),
        arities=np.asarray(arity_list, dtype=arity_dtype),
        qubits=np.asarray(flat_qubits, dtype=np.int32),
        param_mask=np.packbits(mask),
        params=np.asarray(param_values, dtype=np.float64),
        length=n,
    )


def decode_segment(encoded: EncodedSegment) -> list[Gate]:
    """Reconstruct the gate list encoded by :func:`encode_segment`."""
    n = encoded.length
    names = encoded.names
    ops = encoded.ops.tolist()
    arities = encoded.arities.tolist()
    qubits = encoded.qubits.tolist()
    has_param = np.unpackbits(encoded.param_mask, count=n).tolist() if n else []
    params = encoded.params.tolist()
    gates: list[Gate] = []
    pos = 0
    next_param = 0
    for i in range(n):
        a = arities[i]
        param = None
        if has_param[i]:
            param = params[next_param]
            next_param += 1
        gates.append(Gate(names[ops[i]], tuple(qubits[pos : pos + a]), param))
        pos += a
    return gates


def encoded_nbytes(segment: Sequence[Gate]) -> int:
    """Wire size the encoded transport pays for ``segment`` (bytes)."""
    return encode_segment(segment).nbytes


# -- flat wire format ----------------------------------------------------------
#
# One EncodedSegment as a contiguous, self-describing byte block:
#
#   header   <IIIII: gates, names, qubit-index count, param count, flags
#            (flags bit0: ops are int32, bit1: arities are int32)
#   names    per name: <H byte length + utf-8 bytes
#   -- pad to 8 --
#   params   float64[param count]
#   qubits   int32[qubit-index count]
#   ops      uint8|int32[gates]        -- 4-aligned
#   arities  uint8|int32[gates]        -- 4-aligned
#   mask     uint8[ceil(gates / 8)]
#   -- pad to 8 --  (so consecutive segments stay 8-aligned)
#
# All sections are at naturally aligned offsets, so unpacking yields
# aligned zero-copy numpy views into the carrying buffer.

_PACK_HEADER = struct.Struct("<IIIII")
_NAME_LEN = struct.Struct("<H")
_FLAG_OPS_I32 = 1
_FLAG_ARITIES_I32 = 2


def _align(offset: int, alignment: int) -> int:
    return (offset + alignment - 1) & ~(alignment - 1)


def _names_blob(names: Sequence[str]) -> bytes:
    parts = []
    for name in names:
        raw = name.encode("utf-8")
        parts.append(_NAME_LEN.pack(len(raw)))
        parts.append(raw)
    return b"".join(parts)


def packed_segment_nbytes(encoded: EncodedSegment) -> int:
    """Size of ``encoded`` in the flat wire format (8-byte aligned)."""
    size = _PACK_HEADER.size + len(_names_blob(encoded.names))
    size = _align(size, 8)
    size += encoded.params.nbytes
    size += encoded.qubits.nbytes
    size = _align(size, 4) + encoded.ops.nbytes
    size = _align(size, 4) + encoded.arities.nbytes
    size += encoded.param_mask.nbytes
    return _align(size, 8)


def pack_segment_into(encoded: EncodedSegment, buf, offset: int = 0) -> int:
    """Write ``encoded`` into ``buf`` at ``offset``; return the end offset.

    ``buf`` is any writable contiguous buffer (``bytearray``,
    ``memoryview``, ``SharedMemory.buf``).  Array payloads are written
    in place — no intermediate pickle, no per-array allocation beyond
    the small header.
    """
    names = _names_blob(encoded.names)
    flags = 0
    if encoded.ops.dtype == np.int32:
        flags |= _FLAG_OPS_I32
    if encoded.arities.dtype == np.int32:
        flags |= _FLAG_ARITIES_I32
    mv = memoryview(buf)
    pos = offset
    _PACK_HEADER.pack_into(
        mv,
        pos,
        encoded.length,
        len(encoded.names),
        encoded.qubits.size,
        encoded.params.size,
        flags,
    )
    pos += _PACK_HEADER.size
    mv[pos : pos + len(names)] = names
    pos = _align(pos + len(names), 8)
    for arr, alignment in (
        (encoded.params, 8),
        (encoded.qubits, 4),
        (encoded.ops, 4),
        (encoded.arities, 4),
        (encoded.param_mask, 1),
    ):
        pos = _align(pos, alignment)
        if arr.size:
            np.frombuffer(mv, dtype=arr.dtype, count=arr.size, offset=pos)[:] = arr
        pos += arr.nbytes
    return _align(pos, 8)


def packed_segment_span(buf, offset: int = 0) -> tuple[int, int]:
    """``(gate count, end offset)`` of the packed segment at ``offset``.

    Reads only the fixed header and the name-table length prefixes — no
    array views, no gate decoding.  This is what lazy result handling
    uses to copy a packed result out of a shared-memory arena (and to
    answer ``len()``) without ever unpacking a segment nobody accepted.
    """
    mv = memoryview(buf)
    n, num_names, num_qubits, num_params, flags = _PACK_HEADER.unpack_from(
        mv, offset
    )
    pos = offset + _PACK_HEADER.size
    for _ in range(num_names):
        (ln,) = _NAME_LEN.unpack_from(mv, pos)
        pos += _NAME_LEN.size + ln
    pos = _align(pos, 8)
    pos += 8 * num_params
    pos += 4 * num_qubits
    op_size = 4 if flags & _FLAG_OPS_I32 else 1
    arity_size = 4 if flags & _FLAG_ARITIES_I32 else 1
    pos = _align(pos, 4) + op_size * n
    pos = _align(pos, 4) + arity_size * n
    pos += -(-n // 8)
    return n, _align(pos, 8)


#: Digest size (bytes) of :func:`segment_fingerprint`.  128 bits keeps
#: the collision probability negligible for any realistic cache volume
#: (~2^64 distinct segments before a birthday collision is likely).
FINGERPRINT_BYTES = 16


def segment_fingerprint(packed, *, namespace: bytes = b"") -> str:
    """Canonical content fingerprint of one packed segment (hex string).

    ``packed`` is the segment in the flat wire format as produced by
    :func:`pack_segment_into` into a *zero-initialized* buffer — the
    layout is deterministic and padding bytes are zero there, so equal
    gate lists always hash equal and distinct gate lists hash distinct
    (up to blake2b collisions, i.e. never in practice).  Do not
    fingerprint bytes sliced out of a recycled shared-memory arena,
    where pad gaps may carry stale data: repack first.

    ``namespace`` is mixed into the keyed hash and scopes the
    fingerprint — the segment-result cache passes a digest of the
    oracle here, so two oracles can never answer from each other's
    cache entries.  Namespaces longer than blake2b's 64-byte key limit
    are compressed through a digest first (truncating would silently
    drop key material and could collapse two namespaces into one).
    """
    if len(namespace) > 64:
        namespace = hashlib.blake2b(namespace, digest_size=32).digest()
    digest = hashlib.blake2b(
        bytes(packed), digest_size=FINGERPRINT_BYTES, key=namespace
    )
    return digest.hexdigest()


def unpack_segment_from(buf, offset: int = 0) -> tuple[EncodedSegment, int]:
    """Read one packed segment from ``buf``; return it and the end offset.

    The returned segment's arrays are zero-copy *views* into ``buf``:
    they stay valid only while the buffer does (for shared-memory
    arenas, until the block is reused for a later round).  Decode or
    copy before releasing the carrier.
    """
    mv = memoryview(buf)
    n, num_names, num_qubits, num_params, flags = _PACK_HEADER.unpack_from(mv, offset)
    pos = offset + _PACK_HEADER.size
    names = []
    for _ in range(num_names):
        (ln,) = _NAME_LEN.unpack_from(mv, pos)
        pos += _NAME_LEN.size
        names.append(bytes(mv[pos : pos + ln]).decode("utf-8"))
        pos += ln
    pos = _align(pos, 8)
    op_dtype = np.int32 if flags & _FLAG_OPS_I32 else np.uint8
    arity_dtype = np.int32 if flags & _FLAG_ARITIES_I32 else np.uint8
    arrays = []
    for dtype, count, alignment in (
        (np.float64, num_params, 8),
        (np.int32, num_qubits, 4),
        (op_dtype, n, 4),
        (arity_dtype, n, 4),
        (np.uint8, -(-n // 8), 1),
    ):
        pos = _align(pos, alignment)
        arrays.append(np.frombuffer(mv, dtype=dtype, count=count, offset=pos))
        pos += arrays[-1].nbytes
    params, qubits, ops, arities, mask = arrays
    segment = EncodedSegment(
        names=tuple(names),
        ops=ops,
        arities=arities,
        qubits=qubits,
        param_mask=mask,
        params=params,
        length=n,
    )
    return segment, _align(pos, 8)
