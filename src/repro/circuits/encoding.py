"""Compact numpy-backed gate-segment encoding for IPC transport.

The POPQC driver ships 2Ω-gate segments to oracle workers every round.
Pickling a ``list[Gate]`` serializes one frozen dataclass per gate —
hundreds of per-object pickle opcodes and memo entries per segment, and
one Python-object reconstruction per gate on the other end.  This
module flattens a segment into a few parallel numpy arrays so a segment
crosses the process boundary as a handful of contiguous buffers.

The encoding is lossless: :func:`decode_segment` reconstructs a gate
list that compares equal (``==``) to the input of
:func:`encode_segment`, including gate names outside the base set and
arbitrary arities.  Parameters are stored bit-exactly as float64.

Layout of an :class:`EncodedSegment` with ``n`` gates:

``names``
    Tuple of distinct gate names appearing in the segment, in first-use
    order; the per-segment opcode table.
``ops``
    ``(n,)`` integer array; ``ops[i]`` indexes ``names``.  uint8 when
    the segment has at most 256 distinct names, int32 otherwise.
``arities``
    ``(n,)`` integer array of per-gate qubit counts (uint8 when every
    arity fits); gate ``i``'s qubits are the next ``arities[i]``
    entries of ``qubits``.
``qubits``
    Flat int32 array of qubit indices for all gates, concatenated.
``param_mask``
    Bit-packed (``numpy.packbits``) boolean array marking which gates
    carry a parameter.
``params``
    float64 array holding, in gate order, the parameters of exactly
    the gates whose mask bit is set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .gate import Gate

__all__ = [
    "EncodedSegment",
    "encode_segment",
    "decode_segment",
    "encoded_nbytes",
]


@dataclass(frozen=True, eq=False)
class EncodedSegment:
    """A gate segment flattened into parallel numpy arrays.

    Equality is value-based (array contents), not the dataclass
    default, which would trip over numpy's elementwise ``==``.
    Instances are not hashable.
    """

    names: tuple[str, ...]
    ops: np.ndarray
    arities: np.ndarray
    qubits: np.ndarray
    param_mask: np.ndarray
    params: np.ndarray
    length: int

    def __len__(self) -> int:
        return self.length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EncodedSegment):
            return NotImplemented
        return (
            self.length == other.length
            and self.names == other.names
            and np.array_equal(self.ops, other.ops)
            and np.array_equal(self.arities, other.arities)
            and np.array_equal(self.qubits, other.qubits)
            and np.array_equal(self.param_mask, other.param_mask)
            and np.array_equal(self.params, other.params)
        )

    @property
    def nbytes(self) -> int:
        """Approximate wire size of the array payload in bytes."""
        return (
            self.ops.nbytes
            + self.arities.nbytes
            + self.qubits.nbytes
            + self.param_mask.nbytes
            + self.params.nbytes
        )


def encode_segment(segment: Sequence[Gate]) -> EncodedSegment:
    """Flatten ``segment`` into an :class:`EncodedSegment`.

    Round-trips exactly through :func:`decode_segment` for any gate
    list, including empty segments and gates of arbitrary arity.
    """
    n = len(segment)
    opcodes: dict[str, int] = {}
    op_list: list[int] = []
    arity_list: list[int] = []
    mask = np.zeros(n, dtype=bool)
    flat_qubits: list[int] = []
    param_values: list[float] = []
    for i, g in enumerate(segment):
        code = opcodes.get(g.name)
        if code is None:
            code = opcodes[g.name] = len(opcodes)
        op_list.append(code)
        arity_list.append(len(g.qubits))
        flat_qubits.extend(g.qubits)
        if g.param is not None:
            mask[i] = True
            param_values.append(g.param)
    op_dtype = np.uint8 if len(opcodes) <= 256 else np.int32
    arity_dtype = np.uint8 if max(arity_list, default=0) <= 255 else np.int32
    return EncodedSegment(
        names=tuple(opcodes),
        ops=np.asarray(op_list, dtype=op_dtype),
        arities=np.asarray(arity_list, dtype=arity_dtype),
        qubits=np.asarray(flat_qubits, dtype=np.int32),
        param_mask=np.packbits(mask),
        params=np.asarray(param_values, dtype=np.float64),
        length=n,
    )


def decode_segment(encoded: EncodedSegment) -> list[Gate]:
    """Reconstruct the gate list encoded by :func:`encode_segment`."""
    n = encoded.length
    names = encoded.names
    ops = encoded.ops.tolist()
    arities = encoded.arities.tolist()
    qubits = encoded.qubits.tolist()
    has_param = np.unpackbits(encoded.param_mask, count=n).tolist() if n else []
    params = encoded.params.tolist()
    gates: list[Gate] = []
    pos = 0
    next_param = 0
    for i in range(n):
        a = arities[i]
        param = None
        if has_param[i]:
            param = params[next_param]
            next_param += 1
        gates.append(Gate(names[ops[i]], tuple(qubits[pos : pos + a]), param))
        pos += a
    return gates


def encoded_nbytes(segment: Sequence[Gate]) -> int:
    """Wire size the encoded transport pays for ``segment`` (bytes)."""
    return encode_segment(segment).nbytes
