"""Client side of the ``popqc serve`` protocol.

:class:`ServiceClient` is the Python API (``popqc submit`` is the CLI
wrapper): it packs a circuit into one JOB frame, blocks for the RESULT
frame, and returns the optimized circuit together with the server's
per-job stats object.  One client holds one connection; jobs on it run
sequentially, and concurrency comes from running several clients (the
server merges their rounds into shared fleet rounds).

Against a hardened server the client also speaks the admission
protocol: it presents the shared ``auth_token`` in an AUTH frame
immediately after connecting, and answers BUSY refusals with a bounded
exponential-backoff retry loop (``busy_retries`` attempts, sleeping
``max(server hint, backoff)`` between them) before giving up with
:class:`~repro.service.server.ServiceBusyError`.
"""

from __future__ import annotations

import contextlib
import json
import socket
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from ..circuits import Circuit
from ..circuits.encoding import decode_segment, encode_segment
from ..circuits.gate import Gate
from ..parallel.dist import (
    ERR_AUTH,
    FRAME_AUTH,
    FRAME_AUTH_OK,
    FRAME_BUSY,
    FRAME_ERROR,
    FRAME_JOB,
    FRAME_PING,
    FRAME_PONG,
    FRAME_RESULT,
    FRAME_STATUS,
    AuthenticationError,
    FrameProtocolError,
    FrameReader,
    pack_frame,
    pack_job_payload,
    parse_address,
    recv_frame,
    unpack_busy_payload,
    unpack_error_payload,
    unpack_result_payload,
)
from .server import ServiceBusyError, ServiceError

__all__ = ["JobResult", "ServiceClient"]

#: Hard ceiling on the server-supplied BUSY retry hint, in seconds.
#: The hint is untrusted wire input feeding ``time.sleep`` — the same
#: rule as the JOB priority clamp — so a forged huge value must not
#: stall a client beyond one polite minute per attempt.
MAX_RETRY_AFTER_SECONDS = 60.0


def _clamp_retry_after(retry_after: float) -> float:
    """Clamp a wire-supplied BUSY retry hint to a sane range.

    Negative values, NaN and other garbage read as 0.0 (the client's
    own backoff still applies); anything above
    :data:`MAX_RETRY_AFTER_SECONDS` — including infinity — is capped
    there.  ``not (x > 0.0)`` rather than ``x <= 0.0`` so NaN, which
    fails every comparison, lands in the safe branch.
    """
    if not (retry_after > 0.0):
        return 0.0
    return min(retry_after, MAX_RETRY_AFTER_SECONDS)


@dataclass
class JobResult:
    """One served job: the optimized circuit plus the server's stats.

    ``stats`` is the JSON object from the RESULT frame — gate counts,
    rounds, cache hit rate and oracle calls saved, server-side wall
    seconds (see ``OptimizationService._job_stats``).
    """

    circuit: Circuit
    stats: dict

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of this job's segments answered by the server cache."""
        return float(self.stats.get("cache_hit_rate", 0.0))


class ServiceClient:
    """Blocking client for one ``popqc serve`` endpoint.

    Usable as a context manager; the connection opens lazily on the
    first request.  Server-side job failures raise
    :class:`~repro.service.server.ServiceError`; transport problems
    raise the frame-protocol errors of :mod:`repro.parallel.dist`; a
    missing or wrong ``auth_token`` raises
    :class:`~repro.parallel.dist.AuthenticationError` (never retried).

    BUSY refusals are retried with exponential backoff, starting at
    ``busy_backoff_seconds`` and doubling up to
    ``busy_backoff_max_seconds``, at most ``busy_retries`` times; each
    sleep honours the server's suggested retry delay when it is
    longer.  ``busy_rejections`` counts every BUSY the client has
    absorbed (retried or not), for tests and capacity dashboards.
    """

    def __init__(
        self,
        address: str,
        connect_timeout: float = 5.0,
        request_timeout: Optional[float] = 600.0,
        auth_token: Optional[str] = None,
        busy_retries: int = 8,
        busy_backoff_seconds: float = 0.05,
        busy_backoff_max_seconds: float = 2.0,
    ):
        if busy_retries < 0:
            raise ValueError("busy_retries must be >= 0")
        self.address = address
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.auth_token = auth_token
        self.busy_retries = busy_retries
        self.busy_backoff_seconds = busy_backoff_seconds
        self.busy_backoff_max_seconds = busy_backoff_max_seconds
        self.busy_rejections = 0
        self._sock: Optional[socket.socket] = None
        self._reader = FrameReader()
        self._job_tag = 0

    # -- connection ------------------------------------------------------------

    def connect(self) -> "ServiceClient":
        """Open the TCP connection (no-op when already open)."""
        if self._sock is None:
            host, port = parse_address(self.address)
            self._sock = socket.create_connection(
                (host, port), timeout=self.connect_timeout
            )
            self._sock.settimeout(self.request_timeout)
            self._reader = FrameReader()
            if self.auth_token is not None:
                try:
                    self._authenticate()
                except BaseException:
                    self.close()
                    raise
        return self

    def _authenticate(self) -> None:
        """Present the shared token; AUTH must precede any other frame."""
        assert self._sock is not None
        self._sock.sendall(
            pack_frame(FRAME_AUTH, self.auth_token.encode("utf-8"))
        )
        frame_type, payload = recv_frame(self._sock, self._reader)
        if frame_type == FRAME_ERROR:
            kind, message = unpack_error_payload(payload)
            if kind == ERR_AUTH:
                raise AuthenticationError(message)
            raise ServiceError(
                f"server refused the request (kind {kind}): {message}"
            )
        if frame_type != FRAME_AUTH_OK:
            raise FrameProtocolError(
                f"expected AUTH_OK, got frame type {frame_type}"
            )

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._sock is not None:
            with contextlib.suppress(OSError):
                self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, frame: bytes) -> tuple[int, bytes]:
        """Send one frame and block for the server's reply frame."""
        self.connect()
        assert self._sock is not None
        self._sock.sendall(frame)
        frame_type, payload = recv_frame(self._sock, self._reader)
        if frame_type == FRAME_ERROR:
            kind, message = unpack_error_payload(payload)
            if kind == ERR_AUTH:
                raise AuthenticationError(message)
            raise ServiceError(
                f"server refused the request (kind {kind}): {message}"
            )
        return frame_type, payload

    # -- requests --------------------------------------------------------------

    def optimize(
        self,
        circuit: Circuit | Sequence[Gate],
        omega: int = 100,
        max_rounds: Optional[int] = None,
        priority: int = 1,
    ) -> JobResult:
        """Submit one optimization job and block for its result.

        ``priority`` is this job's weight in the server's weighted-fair
        scheduler (clamped to ``[1, MAX_PRIORITY]`` on the wire):
        relative to the other jobs in flight it buys a proportionally
        larger share of every merged fleet round.
        """
        if isinstance(circuit, Circuit):
            gates, num_qubits = list(circuit.gates), circuit.num_qubits
        else:
            gates, num_qubits = list(circuit), None
        self._job_tag += 1
        tag = self._job_tag
        frame = pack_frame(
            FRAME_JOB,
            pack_job_payload(
                tag,
                omega,
                num_qubits,
                max_rounds,
                encode_segment(gates),
                priority=priority,
            ),
        )
        backoff = self.busy_backoff_seconds
        for attempt in range(self.busy_retries + 1):
            frame_type, payload = self._request(frame)
            if frame_type != FRAME_BUSY:
                break
            kind, retry_after, message = unpack_busy_payload(payload)
            retry_after = _clamp_retry_after(retry_after)
            self.busy_rejections += 1
            if attempt == self.busy_retries:
                raise ServiceBusyError(
                    f"server busy after {self.busy_retries} retries "
                    f"(kind {kind}): {message}"
                )
            time.sleep(min(self.busy_backoff_max_seconds, max(retry_after, backoff)))
            backoff = min(self.busy_backoff_max_seconds, backoff * 2)
        if frame_type != FRAME_RESULT:
            raise FrameProtocolError(
                f"expected RESULT, got frame type {frame_type}"
            )
        got_tag, stats_json, encoded = unpack_result_payload(payload)
        if got_tag != tag:
            raise FrameProtocolError(
                f"result tag {got_tag} does not match job tag {tag}"
            )
        return JobResult(
            circuit=Circuit(decode_segment(encoded), num_qubits),
            stats=json.loads(stats_json.decode("utf-8")),
        )

    def status(self) -> dict:
        """The server's status object (jobs, cache, fleet, latency)."""
        frame_type, payload = self._request(pack_frame(FRAME_STATUS))
        if frame_type != FRAME_STATUS:
            raise FrameProtocolError(
                f"expected STATUS reply, got frame type {frame_type}"
            )
        return json.loads(payload.decode("utf-8"))

    def ping(self) -> None:
        """Heartbeat round trip; raises if the server is gone."""
        frame_type, _payload = self._request(pack_frame(FRAME_PING))
        if frame_type != FRAME_PONG:
            raise FrameProtocolError(f"expected PONG, got frame type {frame_type}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self._sock is not None else "down"
        return f"ServiceClient({self.address}, {state})"
