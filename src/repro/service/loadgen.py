"""Latency-SLO load harness for the optimization service.

The transport benchmarks measure *throughput per round*; a service
for interactive traffic is judged on p50/p99 **latency under
concurrent load**.  This module generates that load: it replays
deterministic traffic mixes — benchgen families at configurable
arrival rates, priority distributions and duplicate-circuit fractions
— against a live ``popqc serve`` daemon over N concurrent
:class:`~repro.service.client.ServiceClient` connections, records
per-job submit→result latency, and aggregates latency percentiles,
cache-hit-rate trajectories, BUSY-rejection counts and throughput
into the machine-readable ``BENCH_service_load.json`` record
(:data:`SCHEMA`, gated in CI by ``benchmarks/check_bench_trend.py``).

Determinism is the load harness's core contract: a
:class:`TrafficMix` plus a master seed expands into a fixed
:func:`build_schedule` — arrival offsets, family picks, per-circuit
seeds, priorities and duplicate links — and every circuit is built
from an *explicit* ``random.Random`` derived from that schedule (the
benchgen generators take ``rng=``; no module-level randomness
anywhere).  Two runs with the same seed therefore submit **byte-for-
byte identical traffic**; :func:`schedule_manifest` serializes that
traffic (with canonical circuit fingerprints) so the property is
checkable from the CLI: ``popqc bench serve --print-schedule``.

The standard SLO suite (:func:`run_slo_suite`) runs three phases
against one server:

1. ``cold`` — unique circuits only; every segment pays the oracle the
   first time it is seen.
2. ``warm`` — duplicate-heavy traffic: a small unique pool followed
   by replays that resolve from the content-addressed segment cache.
   The gated SLO: the duplicate traffic's p50 must be at least
   :data:`WARM_P50_SPEEDUP_MIN` times lower than cold p50 — the
   cache's latency benefit, pinned as a ratio so it is
   hardware-independent.
3. ``flood`` + ``interactive`` concurrently — a low-priority batch
   flood of large circuits while small high-priority submits arrive
   mid-flood.  The gated SLO: interactive p99 must stay below
   :data:`INTERACTIVE_P99_OVER_FLOOD_P50_MAX` times the flood p50,
   turning the weighted-fair starvation test into a measured bound.
"""

from __future__ import annotations

import json
import math
import os
import platform
import random
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from ..benchgen import generate, generate_params
from ..circuits import Circuit
from ..circuits.encoding import (
    encode_segment,
    pack_segment_into,
    packed_segment_nbytes,
    segment_fingerprint,
)
from .client import ServiceClient
from .server import ServiceBusyError

__all__ = [
    "INTERACTIVE_P99_OVER_FLOOD_P50_MAX",
    "SCHEMA",
    "WARM_P50_SPEEDUP_MIN",
    "JobOutcome",
    "LoadReport",
    "MixReport",
    "ScheduledJob",
    "TrafficMix",
    "build_circuits",
    "build_schedule",
    "circuit_digest",
    "default_mixes",
    "percentile",
    "run_load",
    "run_slo_suite",
    "schedule_manifest",
]

#: Schema tag of the emitted ``BENCH_service_load.json`` record.
SCHEMA = "popqc-bench-service-load/v1"

#: Gated SLO: the warm mix's duplicate (cache-hit) traffic must show
#: a p50 at least this many times lower than the cold mix's p50 (the
#: segment cache's latency benefit as a hardware-independent ratio).
WARM_P50_SPEEDUP_MIN = 2.0

#: Gated SLO: high-priority interactive submits injected during a
#: batch flood must keep their p99 below this multiple of the flood
#: jobs' p50 (the weighted-fair scheduler's starvation bound).
INTERACTIVE_P99_OVER_FLOOD_P50_MAX = 1.0


@dataclass(frozen=True)
class TrafficMix:
    """One recorded traffic mix: what to submit, how fast, how skewed.

    Attributes
    ----------
    name:
        Mix label; also salts the mix's RNG stream, so two mixes with
        the same parameters but different names carry different
        circuits.
    families:
        Pool of ``(family, spec)`` pairs, where ``spec`` is either a
        registry size index (``int``) or a mapping of explicit
        generator parameters.  Jobs draw families *stratified*: each
        consecutive block of ``len(families)`` jobs covers every
        family exactly once in RNG-shuffled order, so a mix's latency
        percentiles don't swing with one seed's family luck.
    jobs:
        Number of jobs in the mix.
    arrival_rate_jobs_per_s:
        Open-loop Poisson arrival rate; ``0`` disables pacing (every
        job is eligible immediately — a closed loop over the mix's
        clients).
    duplicate_fraction:
        Probability that a job replays the circuit of an earlier job
        in the same mix (cache-hit traffic).  Duplicate links always
        point at the original, never at another duplicate.
    unique_pool:
        When set, the first ``unique_pool`` jobs are unique and every
        later job duplicates a uniformly chosen pool member
        (``duplicate_fraction`` is ignored).  Because clients drain
        the schedule in order, the pool completes before its replays
        start — the shape that isolates pure cache-hit latency.
    priorities:
        ``(priority, weight)`` distribution jobs draw from; priority
        is the weighted-fair share presented to the server.
    omega:
        Ω submitted with every job.
    clients:
        Concurrent :class:`ServiceClient` connections replaying this
        mix.
    """

    name: str
    families: tuple
    jobs: int
    arrival_rate_jobs_per_s: float = 0.0
    duplicate_fraction: float = 0.0
    unique_pool: Optional[int] = None
    priorities: tuple = ((1, 1.0),)
    omega: int = 100
    clients: int = 2


@dataclass(frozen=True)
class ScheduledJob:
    """One deterministic slot of a mix's schedule.

    ``at_seconds`` is the arrival offset from the run start;
    ``circuit_seed`` fully determines the circuit (through an explicit
    ``random.Random``), and ``duplicate_of`` marks a replay of an
    earlier job's circuit instead.
    """

    index: int
    at_seconds: float
    family: str
    spec: Any
    circuit_seed: int
    priority: int
    duplicate_of: Optional[int]


@dataclass
class JobOutcome:
    """What one submitted job came back with (or failed with)."""

    mix: str
    index: int
    priority: int
    scheduled_at: float
    queue_delay_seconds: float
    latency_seconds: float
    duplicate: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    busy_rejections: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the job completed with a RESULT frame."""
        return self.error is None


def build_schedule(mix: TrafficMix, seed: int) -> list[ScheduledJob]:
    """Expand ``mix`` into its deterministic job schedule.

    All randomness — inter-arrival gaps, family picks, per-circuit
    seeds, priorities, duplicate links — comes from one
    ``random.Random`` seeded by ``(seed, mix.name)``, so the same
    arguments always return the same schedule, on any machine.
    """
    master = random.Random(f"popqc-loadgen/{seed}/{mix.name}")
    priorities = [int(p) for p, _ in mix.priorities]
    weights = [float(w) for _, w in mix.priorities]
    jobs: list[ScheduledJob] = []
    at = 0.0
    block: list = []
    for i in range(mix.jobs):
        if mix.arrival_rate_jobs_per_s > 0:
            at += master.expovariate(mix.arrival_rate_jobs_per_s)
        # stratified family draw: each consecutive block of
        # len(families) jobs covers every family exactly once, in
        # RNG-shuffled order — random-looking traffic whose latency
        # percentiles don't swing with the seed's family luck
        if not block:
            block = list(mix.families)
            master.shuffle(block)
        family, spec = block.pop()
        circuit_seed = master.getrandbits(48)
        priority = master.choices(priorities, weights=weights)[0]
        duplicate_of: Optional[int] = None
        if mix.unique_pool is not None:
            if i >= mix.unique_pool:
                duplicate_of = master.randrange(min(mix.unique_pool, len(jobs)))
        elif jobs and master.random() < mix.duplicate_fraction:
            target = master.randrange(len(jobs))
            # chase one link so duplicates always point at an original
            root = jobs[target].duplicate_of
            duplicate_of = target if root is None else root
        if duplicate_of is not None:
            original = jobs[duplicate_of]
            family, spec = original.family, original.spec
            circuit_seed = original.circuit_seed
        jobs.append(
            ScheduledJob(
                index=i,
                at_seconds=at,
                family=family,
                spec=spec,
                circuit_seed=circuit_seed,
                priority=priority,
                duplicate_of=duplicate_of,
            )
        )
    return jobs


def _build_one(job: ScheduledJob) -> Circuit:
    """Build ``job``'s circuit from its explicit derived RNG."""
    rng = random.Random(job.circuit_seed)
    if isinstance(job.spec, Mapping):
        return generate_params(job.family, rng=rng, **dict(job.spec))
    return generate(job.family, int(job.spec), rng=rng)


def build_circuits(schedule: Sequence[ScheduledJob]) -> list[Circuit]:
    """Materialize every scheduled circuit (duplicates share objects).

    Generation happens up front so circuit construction never pollutes
    the measured submit→result latencies.
    """
    circuits: list[Circuit] = []
    for job in schedule:
        if job.duplicate_of is not None:
            circuits.append(circuits[job.duplicate_of])
        else:
            circuits.append(_build_one(job))
    return circuits


def circuit_digest(circuit: Circuit) -> str:
    """Canonical content fingerprint of a circuit's packed wire bytes.

    The same digest the segment cache keys on (unscoped): equal gate
    lists hash equal on every platform, making schedule manifests
    byte-comparable across runs and machines.
    """
    encoded = encode_segment(list(circuit.gates))
    buf = bytearray(packed_segment_nbytes(encoded))
    pack_segment_into(encoded, buf)
    return segment_fingerprint(buf)


def schedule_manifest(mixes: Sequence[TrafficMix], seed: int) -> str:
    """Canonical JSON of the full traffic a seeded run will submit.

    Two calls with the same mixes and seed return identical bytes —
    the load harness's reproducibility contract, asserted in CI and
    checkable by hand via ``popqc bench serve --print-schedule``.
    """
    manifest: dict[str, Any] = {"schema": SCHEMA + "+schedule", "seed": seed}
    mix_entries: dict[str, Any] = {}
    for mix in mixes:
        schedule = build_schedule(mix, seed)
        circuits = build_circuits(schedule)
        mix_entries[mix.name] = [
            {
                "index": job.index,
                "at_seconds": round(job.at_seconds, 9),
                "family": job.family,
                "spec": dict(job.spec)
                if isinstance(job.spec, Mapping)
                else job.spec,
                "circuit_seed": job.circuit_seed,
                "priority": job.priority,
                "duplicate_of": job.duplicate_of,
                "num_gates": circuits[job.index].num_gates,
                "num_qubits": circuits[job.index].num_qubits,
                "digest": circuit_digest(circuits[job.index]),
            }
            for job in schedule
        ]
    manifest["mixes"] = mix_entries
    return json.dumps(manifest, sort_keys=True, indent=2) + "\n"


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches ``numpy.percentile``'s default method; returns 0.0 for an
    empty sequence so reports of failed mixes stay well-formed.
    """
    if not values:
        return 0.0
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[int(rank)]
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)


@dataclass
class MixReport:
    """Aggregated outcomes of one mix's replay."""

    name: str
    scheduled: int
    outcomes: list = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def completed(self) -> list:
        """Outcomes that came back with a RESULT frame."""
        return [o for o in self.outcomes if o.ok]

    @property
    def failed(self) -> list:
        """Outcomes that errored (BUSY exhaustion included)."""
        return [o for o in self.outcomes if not o.ok]

    @property
    def latencies(self) -> list[float]:
        """Submit→result seconds of completed jobs, completion order."""
        return [o.latency_seconds for o in self.completed]

    @property
    def duplicate_latencies(self) -> list[float]:
        """Latencies of completed duplicate (replayed-circuit) jobs —
        the pure cache-hit traffic of a warm mix, excluding its
        cache-warming unique pool."""
        return [o.latency_seconds for o in self.completed if o.duplicate]

    @property
    def cache_hit_rate(self) -> float:
        """Aggregate segment-cache hit rate across completed jobs."""
        hits = sum(o.cache_hits for o in self.completed)
        misses = sum(o.cache_misses for o in self.completed)
        return hits / (hits + misses) if hits + misses else 0.0

    def cache_hit_trajectory(self, buckets: int = 6) -> list[dict]:
        """Hit rate over the run: completed jobs (in completion order)
        split into up to ``buckets`` contiguous windows, each reporting
        its aggregate hit rate — how the cache warms as traffic flows.
        """
        done = self.completed
        if not done:
            return []
        buckets = max(1, min(buckets, len(done)))
        size = len(done) / buckets
        out = []
        for b in range(buckets):
            window = done[int(b * size) : int((b + 1) * size)]
            if not window:
                continue
            hits = sum(o.cache_hits for o in window)
            misses = sum(o.cache_misses for o in window)
            out.append(
                {
                    "jobs": len(window),
                    "hit_rate": hits / (hits + misses)
                    if hits + misses
                    else 0.0,
                }
            )
        return out

    def as_dict(self, trajectory_buckets: int = 6) -> dict:
        """This mix's section of the ``BENCH_service_load.json`` record."""
        lat = self.latencies
        completed = self.completed
        priorities: dict[str, int] = {}
        for o in self.outcomes:
            priorities[str(o.priority)] = priorities.get(str(o.priority), 0) + 1
        return {
            "jobs_scheduled": self.scheduled,
            "jobs_completed": len(completed),
            "jobs_failed": len(self.failed),
            "busy_rejections": sum(o.busy_rejections for o in self.outcomes),
            "latency_seconds": {
                "p50": percentile(lat, 50),
                "p90": percentile(lat, 90),
                "p99": percentile(lat, 99),
                "mean": sum(lat) / len(lat) if lat else 0.0,
                "max": max(lat) if lat else 0.0,
            },
            "queue_delay_seconds": {
                "p50": percentile(
                    [o.queue_delay_seconds for o in completed], 50
                ),
                "max": max(
                    (o.queue_delay_seconds for o in completed), default=0.0
                ),
            },
            "duplicate_latency_seconds": {
                "count": len(self.duplicate_latencies),
                "p50": percentile(self.duplicate_latencies, 50),
                "p99": percentile(self.duplicate_latencies, 99),
            },
            "throughput_jobs_per_s": len(completed) / self.wall_seconds
            if self.wall_seconds > 0
            else 0.0,
            "wall_seconds": self.wall_seconds,
            "cache": {
                "hit_rate": self.cache_hit_rate,
                "trajectory": self.cache_hit_trajectory(trajectory_buckets),
            },
            "priorities": priorities,
            "errors": sorted({o.error for o in self.failed if o.error}),
        }


@dataclass
class LoadReport:
    """Everything one :func:`run_load` call measured."""

    mixes: dict
    wall_seconds: float


def _replay_worker(
    address: str,
    mix: TrafficMix,
    schedule: Sequence[ScheduledJob],
    circuits: Sequence[Circuit],
    next_index: Callable[[], Optional[int]],
    report: MixReport,
    started: threading.Event,
    start_at: list,
    lock: threading.Lock,
    auth_token: Optional[str],
    time_scale: float,
    busy_retries: int,
    pool_done: threading.Event,
) -> None:
    """One client connection draining its mix's schedule in order."""
    client = ServiceClient(
        address,
        auth_token=auth_token,
        busy_retries=busy_retries,
        busy_backoff_seconds=0.02,
        busy_backoff_max_seconds=0.5,
    )
    try:
        started.wait()
        while True:
            i = next_index()
            if i is None:
                return
            job = schedule[i]
            if job.duplicate_of is not None and mix.unique_pool is not None:
                # a unique_pool mix measures pure cache-hit latency:
                # hold every replay until the whole pool has completed
                # (with >1 client a replay could otherwise overlap an
                # in-flight pool original and miss the cache)
                pool_done.wait()
            target = start_at[0] + job.at_seconds * time_scale
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            queue_delay = max(0.0, time.monotonic() - target)
            busy_before = client.busy_rejections
            t0 = time.perf_counter()
            try:
                result = client.optimize(
                    circuits[i], omega=mix.omega, priority=job.priority
                )
            except Exception as exc:  # noqa: BLE001 - recorded, not raised
                outcome = JobOutcome(
                    mix=mix.name,
                    index=i,
                    priority=job.priority,
                    scheduled_at=job.at_seconds * time_scale,
                    queue_delay_seconds=queue_delay,
                    latency_seconds=time.perf_counter() - t0,
                    duplicate=job.duplicate_of is not None,
                    busy_rejections=client.busy_rejections - busy_before,
                    error=f"{type(exc).__name__}: {exc}",
                )
                if isinstance(exc, ServiceBusyError):
                    # the connection survives a BUSY refusal; other
                    # errors may have poisoned it, so reconnect
                    pass
                else:
                    client.close()
            else:
                outcome = JobOutcome(
                    mix=mix.name,
                    index=i,
                    priority=job.priority,
                    scheduled_at=job.at_seconds * time_scale,
                    queue_delay_seconds=queue_delay,
                    latency_seconds=time.perf_counter() - t0,
                    duplicate=job.duplicate_of is not None,
                    cache_hits=int(result.stats.get("cache_hits", 0)),
                    cache_misses=int(result.stats.get("cache_misses", 0)),
                    busy_rejections=client.busy_rejections - busy_before,
                )
            with lock:
                report.outcomes.append(outcome)
                if mix.unique_pool is not None and not pool_done.is_set():
                    pool = sum(
                        1
                        for o in report.outcomes
                        if o.index < mix.unique_pool
                    )
                    if pool >= min(mix.unique_pool, len(schedule)):
                        pool_done.set()
    finally:
        client.close()


def run_load(
    address: str,
    mixes: Sequence[TrafficMix],
    *,
    seed: int,
    auth_token: Optional[str] = None,
    time_scale: float = 1.0,
    busy_retries: int = 40,
) -> LoadReport:
    """Replay ``mixes`` concurrently against a live server.

    Each mix gets its own pool of ``mix.clients`` connections; all
    pools share one start instant, so concurrent mixes interleave on
    the server exactly as their schedules dictate (the flood +
    interactive scenario).  Per-job outcomes land in one
    :class:`MixReport` per mix.

    ``time_scale`` multiplies every arrival offset (compress a
    recorded mix for a quick soak, stretch it for a long one);
    ``busy_retries`` is each client's BUSY-absorption budget — every
    absorbed rejection is counted in the report either way.
    """
    lock = threading.Lock()
    started = threading.Event()
    start_at = [0.0]
    reports: dict[str, MixReport] = {}
    threads: list[threading.Thread] = []
    for mix in mixes:
        schedule = build_schedule(mix, seed)
        circuits = build_circuits(schedule)
        report = MixReport(name=mix.name, scheduled=len(schedule))
        reports[mix.name] = report
        pool_done = threading.Event()
        if mix.unique_pool is None:
            pool_done.set()
        counter = iter(range(len(schedule)))
        counter_lock = threading.Lock()

        def next_index(
            counter=counter, counter_lock=counter_lock
        ) -> Optional[int]:
            with counter_lock:
                return next(counter, None)

        for _ in range(max(1, mix.clients)):
            threads.append(
                threading.Thread(
                    target=_replay_worker,
                    args=(
                        address,
                        mix,
                        schedule,
                        circuits,
                        next_index,
                        report,
                        started,
                        start_at,
                        lock,
                        auth_token,
                        time_scale,
                        busy_retries,
                        pool_done,
                    ),
                    daemon=True,
                )
            )
    for thread in threads:
        thread.start()
    t0 = time.perf_counter()
    start_at[0] = time.monotonic()
    started.set()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    for report in reports.values():
        report.wall_seconds = wall
    return LoadReport(mixes=reports, wall_seconds=wall)


#: The small interactive probe circuit of the flood scenario: a few
#: hundred gates, so its latency is scheduler-bound, not oracle-bound.
_INTERACTIVE_SPEC = {"num_search_qubits": 4, "iterations": 2}


def default_mixes(
    smoke: bool = False, clients: int = 2
) -> dict[str, TrafficMix]:
    """The standard SLO suite's four mixes.

    ``smoke`` shrinks every mix for a ~10 s CI soak while keeping the
    same structure (unique-vs-duplicate split, flood + interactive
    overlap), so the smoke record exercises every schema field.
    ``clients`` sets the connection-pool width of the cold, warm and
    flood mixes (the interactive probe always runs one client — its
    SLO is about scheduling, not client-side parallelism).
    """
    # size index 1: big enough that a cold job is oracle-compute-bound
    # (a cache hit's fixed round-trip overhead would blur the warm
    # speedup ratio on size-0 circuits)
    families = (
        ("Grover", 1),
        ("Shor", 1),
        ("VQE", 1),
        ("HHL", 1),
        ("BoolSat", 1),
    )
    cold_jobs = 6 if smoke else 14
    # warm pool = one of every family (stratified), so the duplicate
    # traffic's p50 aggregates cache-hit latency over the same family
    # spread the cold p50 aggregates cold latency over
    warm_jobs = 12 if smoke else 15
    flood_spec = ("VQE", 1 if smoke else 2)
    flood_jobs = 2 if smoke else 4
    interactive_jobs = 4 if smoke else 6
    interactive_rate = 4.0 if smoke else 2.0
    return {
        "cold": TrafficMix(
            name="cold",
            families=families,
            jobs=cold_jobs,
            duplicate_fraction=0.0,
            clients=clients,
        ),
        "warm": TrafficMix(
            name="warm",
            families=families,
            jobs=warm_jobs,
            unique_pool=len(families),
            clients=clients,
        ),
        "flood": TrafficMix(
            name="flood",
            families=(flood_spec,),
            jobs=flood_jobs,
            priorities=((1, 1.0),),
            clients=clients,
        ),
        "interactive": TrafficMix(
            name="interactive",
            families=(("Grover", _INTERACTIVE_SPEC),),
            jobs=interactive_jobs,
            arrival_rate_jobs_per_s=interactive_rate,
            priorities=((8, 1.0),),
            clients=1,
        ),
    }


def _host_record() -> dict:
    """The environment fingerprint stamped into every record."""
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
    }


def run_slo_suite(
    address: str,
    *,
    seed: int = 7,
    auth_token: Optional[str] = None,
    smoke: bool = False,
    time_scale: float = 1.0,
    trajectory_buckets: int = 6,
    clients: int = 2,
) -> dict:
    """Run the three-phase SLO suite and build the schema-v1 record.

    Phase 1 replays the ``cold`` mix (unique circuits), phase 2 the
    ``warm`` mix (duplicate-heavy), phase 3 the ``flood`` and
    ``interactive`` mixes concurrently — all against the same live
    server, whose cache therefore warms across phases exactly as a
    long-running deployment's would.

    The returned record carries per-mix latency percentiles and
    cache-hit trajectories, the derived SLO ratios, and the thresholds
    (``slo``) the CI gate enforces; see ``benchmarks/README.md`` for
    the field-by-field schema.
    """
    mixes = default_mixes(smoke, clients=clients)
    phases = (("cold",), ("warm",), ("flood", "interactive"))
    reports: dict[str, MixReport] = {}
    t0 = time.perf_counter()
    for phase in phases:
        result = run_load(
            address,
            [mixes[name] for name in phase],
            seed=seed,
            auth_token=auth_token,
            time_scale=time_scale,
        )
        reports.update(result.mixes)
    total_wall = time.perf_counter() - t0

    cold_p50 = percentile(reports["cold"].latencies, 50)
    # the warm SLO measures the cache-hit traffic itself: the
    # duplicate jobs' p50, not the mix's cache-warming unique pool
    warm_p50 = percentile(
        reports["warm"].duplicate_latencies or reports["warm"].latencies, 50
    )
    flood_p50 = percentile(reports["flood"].latencies, 50)
    interactive_p99 = percentile(reports["interactive"].latencies, 99)
    return {
        "schema": SCHEMA,
        # the one permitted wall-clock read in this module: a report
        # timestamp, never interval math — every duration above comes
        # from time.perf_counter()/time.monotonic()
        "generated_unix": time.time(),
        "host": _host_record(),
        "config": {
            "seed": seed,
            "smoke": smoke,
            "time_scale": time_scale,
            "phases": [list(p) for p in phases],
            "clients": {m.name: m.clients for m in mixes.values()},
            "jobs": {m.name: m.jobs for m in mixes.values()},
        },
        "mixes": {
            name: report.as_dict(trajectory_buckets)
            for name, report in reports.items()
        },
        "derived": {
            "warm_p50_speedup_vs_cold": cold_p50 / warm_p50
            if warm_p50 > 0
            else 0.0,
            "interactive_p99_over_flood_p50": interactive_p99 / flood_p50
            if flood_p50 > 0
            else 0.0,
            "total_wall_seconds": total_wall,
        },
        "slo": {
            "warm_p50_speedup_min": WARM_P50_SPEEDUP_MIN,
            "interactive_p99_over_flood_p50_max": (
                INTERACTIVE_P99_OVER_FLOOD_P50_MAX
            ),
        },
    }
