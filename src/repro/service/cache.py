"""Content-addressed segment result cache.

Real optimization workloads — parameter sweeps, iterative compilation,
benchmark suites — are full of *repeated* segments: the same 2Ω-gate
window shows up in job after job (and round after round, once a region
of the circuit has converged).  The oracle is a pure function of the
segment, so re-running it on bytes it has already answered is pure
waste.  This module makes the answer addressable by content:

    key    = blake2b(packed segment bytes, keyed by an oracle digest)
    value  = the oracle's result in the same packed wire format

The key derivation (:func:`repro.circuits.encoding.segment_fingerprint`)
hashes the segment's *canonical packed bytes* — the exact bytes every
transport already produces — so the cache key costs one hash over a
buffer that exists anyway, and two segments share an entry iff they
would be byte-identical on the wire.  The oracle digest
(:func:`oracle_namespace`) keys the hash, so entries written under one
oracle are unreachable under any other: a cache can even be shared on
disk between servers running different rule sets without cross-talk.

Storage is two-level:

* an **in-memory LRU** bounded by entry count and byte volume (the hot
  working set of the running server);
* an optional **disk store** (one file per entry, written atomically
  via rename) that survives server restarts and can be shared by
  several servers, bounded by ``max_disk_bytes`` with oldest-first
  pruning (unbounded only when no bound is configured).  A truncated
  or corrupt entry — a crashed writer, a torn disk — reads as a
  *miss*, never an exception, and the bad file is removed so it
  cannot poison later lookups.

Values are packed result bytes, so a cache hit feeds straight into
:meth:`repro.parallel.results.LazySegmentResult.from_packed` — the
same lazy handle an oracle round would have produced, byte for byte.
"""

from __future__ import annotations

import contextlib
import os
import struct
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional

from ..circuits.encoding import segment_fingerprint
from ..parallel.executor import oracle_fingerprint

__all__ = ["CacheStats", "SegmentCache", "oracle_namespace"]

#: On-disk entry header: magic + payload length.  The length makes
#: truncation detectable without trusting the filesystem's size alone.
_DISK_HEADER = struct.Struct("<4sQ")
_DISK_MAGIC = b"PQCS"

#: A 16-byte digest identifying an oracle for cache scoping — the
#: service-layer name for :func:`repro.parallel.executor.
#: oracle_fingerprint` (two oracles share a namespace iff they pickle
#: identically, i.e. would behave identically on a transport worker).
oracle_namespace = oracle_fingerprint


class CacheStats:
    """Counters for one :class:`SegmentCache`.

    ``hits`` counts lookups answered from memory or disk;
    ``disk_hits`` is the subset that had to be read back from the disk
    store.  ``bytes_saved`` sums the packed result bytes served from
    the cache — wire bytes (and oracle work) that were never paid
    again.  ``corrupt_entries`` counts disk entries dropped because
    they failed validation; ``disk_evictions`` counts entries pruned
    oldest-first to keep the disk store under its byte bound.
    """

    __slots__ = (
        "hits",
        "misses",
        "stores",
        "evictions",
        "disk_hits",
        "disk_evictions",
        "corrupt_entries",
        "bytes_saved",
    )

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.disk_hits = 0
        self.disk_evictions = 0
        self.corrupt_entries = 0
        self.bytes_saved = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """The counters as a plain dict (for STATUS frames and logs)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_evictions": self.disk_evictions,
            "corrupt_entries": self.corrupt_entries,
            "bytes_saved": self.bytes_saved,
            "hit_rate": self.hit_rate,
        }


class SegmentCache:
    """Two-level (memory LRU + optional disk) packed-result cache.

    Parameters
    ----------
    max_entries / max_bytes:
        Bounds on the in-memory level; the least recently used entries
        are evicted when either is exceeded.  Entries evicted from
        memory remain readable from disk.
    disk_dir:
        Directory of the persistent level (created if missing).
        ``None`` keeps the cache memory-only.
    max_disk_bytes:
        Byte bound on the disk store (``--cache-disk-bytes``).  When a
        write pushes the store past the bound, the **oldest entries by
        modification time are pruned first** until it fits — a
        long-lived daemon must never fill the disk.  ``None`` leaves
        the store unbounded (the pre-bound behavior, reasonable only
        for short-lived or externally rotated stores).
    namespace:
        Key material mixed into every fingerprint, normally
        :func:`oracle_namespace` of the oracle being fronted.  Entries
        from different namespaces can share both levels safely.

    All methods are thread-safe; the server's connection handlers and
    the fleet scheduler hit one shared instance concurrently.
    """

    def __init__(
        self,
        max_entries: int = 65536,
        max_bytes: int = 256 * 1024 * 1024,
        disk_dir: Optional[str | Path] = None,
        namespace: bytes = b"",
        max_disk_bytes: Optional[int] = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if max_disk_bytes is not None and max_disk_bytes < 1:
            raise ValueError("max_disk_bytes must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.max_disk_bytes = max_disk_bytes
        self.namespace = namespace
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, bytes] = OrderedDict()
        self._memory_bytes = 0
        self._disk: Optional[Path] = None
        self._disk_bytes = 0
        if disk_dir is not None:
            self._disk = Path(disk_dir)
            self._disk.mkdir(parents=True, exist_ok=True)
            # a restarted daemon inherits whatever the store already
            # holds; the bound must account for it from the first write
            for entry in self._disk.glob("*.seg"):
                with contextlib.suppress(OSError):
                    self._disk_bytes += entry.stat().st_size

    # -- key derivation --------------------------------------------------------

    def key_for(self, packed, extra: bytes = b"") -> str:
        """The cache key of one canonically packed segment.

        ``extra`` is additional key material appended to the cache's
        own namespace — the executor's cache hook passes the digest of
        the oracle currently being mapped, so even a cache constructed
        without a namespace can never serve one oracle's results to
        another.
        """
        return segment_fingerprint(packed, namespace=self.namespace + extra)

    # -- lookup / store --------------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        """The packed result bytes for ``key``, or ``None`` on a miss.

        Memory hits refresh LRU recency; disk hits are promoted into
        the memory level.  A corrupt disk entry is deleted and reported
        as a miss.
        """
        with self._lock:
            value = self._memory.get(key)
            if value is not None:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                self.stats.bytes_saved += len(value)
                return value
        value = self._disk_read(key)
        with self._lock:
            if value is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self.stats.bytes_saved += len(value)
            self._install(key, value)
        return value

    def put(self, key: str, value: bytes) -> None:
        """Store packed result bytes under ``key`` in both levels."""
        value = bytes(value)
        with self._lock:
            self.stats.stores += 1
            self._install(key, value)
        self._disk_write(key, value)

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def memory_bytes(self) -> int:
        """Byte volume currently held by the in-memory level."""
        return self._memory_bytes

    def clear_memory(self) -> None:
        """Drop the in-memory level (the disk store is untouched)."""
        with self._lock:
            self._memory.clear()
            self._memory_bytes = 0

    # -- memory level ----------------------------------------------------------

    def _install(self, key: str, value: bytes) -> None:
        """Insert/refresh ``key`` in memory and evict past the bounds."""
        old = self._memory.pop(key, None)
        if old is not None:
            self._memory_bytes -= len(old)
        self._memory[key] = value
        self._memory_bytes += len(value)
        while len(self._memory) > self.max_entries or (
            self._memory_bytes > self.max_bytes and len(self._memory) > 1
        ):
            _, evicted = self._memory.popitem(last=False)
            self._memory_bytes -= len(evicted)
            self.stats.evictions += 1

    # -- disk level ------------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        assert self._disk is not None
        return self._disk / f"{key}.seg"

    def _disk_read(self, key: str) -> Optional[bytes]:
        """One validated disk entry, or ``None`` (missing or corrupt)."""
        if self._disk is None:
            return None
        path = self._entry_path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        if len(raw) >= _DISK_HEADER.size:
            magic, length = _DISK_HEADER.unpack_from(raw, 0)
            if magic == _DISK_MAGIC and len(raw) == _DISK_HEADER.size + length:
                return raw[_DISK_HEADER.size :]
        # truncated or foreign bytes: drop the entry so it cannot keep
        # costing a read+validate on every lookup.  Deletion is
        # idempotent under the lock: concurrent readers of the same bad
        # entry race to unlink it, and only the one whose unlink landed
        # counts the corruption (and its bytes) — the losers observe
        # the file already gone and report a plain miss.
        with self._lock:
            try:
                path.unlink()
            except OSError:
                pass  # a concurrent reader already removed it
            else:
                self.stats.corrupt_entries += 1
                self._disk_bytes = max(0, self._disk_bytes - len(raw))
        return None

    def _disk_write(self, key: str, value: bytes) -> None:
        """Write one entry atomically (write-to-temp + rename) and keep
        the store under ``max_disk_bytes``."""
        if self._disk is None:
            return
        path = self._entry_path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        blob = _DISK_HEADER.pack(_DISK_MAGIC, len(value)) + value
        old = 0
        with contextlib.suppress(OSError):
            old = path.stat().st_size
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except OSError:
            # a full or read-only disk degrades the cache, never the run
            with contextlib.suppress(OSError):
                tmp.unlink()
            return
        with self._lock:
            self._disk_bytes += len(blob) - old
            over = (
                self.max_disk_bytes is not None
                and self._disk_bytes > self.max_disk_bytes
            )
        if over:
            self._prune_disk(keep=path)

    def _prune_disk(self, keep: Optional[Path] = None) -> None:
        """Prune the disk store oldest-first down to ``max_disk_bytes``.

        ``keep`` protects the entry just written — a store whose bound
        is smaller than one entry must still serve that entry, it just
        cannot accumulate others.  The scan recomputes the byte total
        from the directory itself, so drift from concurrent writers
        self-corrects on every prune.
        """
        assert self._disk is not None and self.max_disk_bytes is not None
        with self._lock:
            entries = []
            total = 0
            for entry in self._disk.glob("*.seg"):
                try:
                    st = entry.stat()
                except OSError:
                    continue
                entries.append((st.st_mtime, st.st_size, entry))
                total += st.st_size
            entries.sort(key=lambda item: item[0])
            for _mtime, size, entry in entries:
                if total <= self.max_disk_bytes:
                    break
                if keep is not None and entry == keep:
                    continue
                with contextlib.suppress(OSError):
                    entry.unlink()
                    total -= size
                    self.stats.disk_evictions += 1
            self._disk_bytes = total

    @property
    def disk_bytes(self) -> int:
        """Byte volume currently accounted to the disk store."""
        return self._disk_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        disk = str(self._disk) if self._disk else "none"
        return (
            f"SegmentCache(entries={len(self._memory)}, "
            f"bytes={self._memory_bytes}, disk={disk})"
        )
