"""Content-addressed segment result cache.

Real optimization workloads — parameter sweeps, iterative compilation,
benchmark suites — are full of *repeated* segments: the same 2Ω-gate
window shows up in job after job (and round after round, once a region
of the circuit has converged).  The oracle is a pure function of the
segment, so re-running it on bytes it has already answered is pure
waste.  This module makes the answer addressable by content:

    key    = blake2b(packed segment bytes, keyed by an oracle digest)
    value  = the oracle's result in the same packed wire format

The key derivation (:func:`repro.circuits.encoding.segment_fingerprint`)
hashes the segment's *canonical packed bytes* — the exact bytes every
transport already produces — so the cache key costs one hash over a
buffer that exists anyway, and two segments share an entry iff they
would be byte-identical on the wire.  The oracle digest
(:func:`oracle_namespace`) keys the hash, so entries written under one
oracle are unreachable under any other: a cache can even be shared on
disk between servers running different rule sets without cross-talk.

Storage is two-level:

* an **in-memory LRU** bounded by entry count and byte volume (the hot
  working set of the running server);
* an optional **disk store** (one file per entry, written atomically
  via rename) that survives server restarts and can be shared by
  several servers.  A truncated or corrupt entry — a crashed writer,
  a torn disk — reads as a *miss*, never an exception, and the bad
  file is removed so it cannot poison later lookups.

Values are packed result bytes, so a cache hit feeds straight into
:meth:`repro.parallel.results.LazySegmentResult.from_packed` — the
same lazy handle an oracle round would have produced, byte for byte.
"""

from __future__ import annotations

import contextlib
import os
import struct
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional

from ..circuits.encoding import segment_fingerprint
from ..parallel.executor import oracle_fingerprint

__all__ = ["CacheStats", "SegmentCache", "oracle_namespace"]

#: On-disk entry header: magic + payload length.  The length makes
#: truncation detectable without trusting the filesystem's size alone.
_DISK_HEADER = struct.Struct("<4sQ")
_DISK_MAGIC = b"PQCS"

#: A 16-byte digest identifying an oracle for cache scoping — the
#: service-layer name for :func:`repro.parallel.executor.
#: oracle_fingerprint` (two oracles share a namespace iff they pickle
#: identically, i.e. would behave identically on a transport worker).
oracle_namespace = oracle_fingerprint


class CacheStats:
    """Counters for one :class:`SegmentCache`.

    ``hits`` counts lookups answered from memory or disk;
    ``disk_hits`` is the subset that had to be read back from the disk
    store.  ``bytes_saved`` sums the packed result bytes served from
    the cache — wire bytes (and oracle work) that were never paid
    again.  ``corrupt_entries`` counts disk entries dropped because
    they failed validation.
    """

    __slots__ = (
        "hits",
        "misses",
        "stores",
        "evictions",
        "disk_hits",
        "corrupt_entries",
        "bytes_saved",
    )

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.disk_hits = 0
        self.corrupt_entries = 0
        self.bytes_saved = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """The counters as a plain dict (for STATUS frames and logs)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "corrupt_entries": self.corrupt_entries,
            "bytes_saved": self.bytes_saved,
            "hit_rate": self.hit_rate,
        }


class SegmentCache:
    """Two-level (memory LRU + optional disk) packed-result cache.

    Parameters
    ----------
    max_entries / max_bytes:
        Bounds on the in-memory level; the least recently used entries
        are evicted when either is exceeded.  The disk store, when
        configured, is unbounded — entries evicted from memory remain
        readable from disk.
    disk_dir:
        Directory of the persistent level (created if missing).
        ``None`` keeps the cache memory-only.
    namespace:
        Key material mixed into every fingerprint, normally
        :func:`oracle_namespace` of the oracle being fronted.  Entries
        from different namespaces can share both levels safely.

    All methods are thread-safe; the server's connection handlers and
    the fleet scheduler hit one shared instance concurrently.
    """

    def __init__(
        self,
        max_entries: int = 65536,
        max_bytes: int = 256 * 1024 * 1024,
        disk_dir: Optional[str | Path] = None,
        namespace: bytes = b"",
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.namespace = namespace
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, bytes] = OrderedDict()
        self._memory_bytes = 0
        self._disk: Optional[Path] = None
        if disk_dir is not None:
            self._disk = Path(disk_dir)
            self._disk.mkdir(parents=True, exist_ok=True)

    # -- key derivation --------------------------------------------------------

    def key_for(self, packed, extra: bytes = b"") -> str:
        """The cache key of one canonically packed segment.

        ``extra`` is additional key material appended to the cache's
        own namespace — the executor's cache hook passes the digest of
        the oracle currently being mapped, so even a cache constructed
        without a namespace can never serve one oracle's results to
        another.
        """
        return segment_fingerprint(packed, namespace=self.namespace + extra)

    # -- lookup / store --------------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        """The packed result bytes for ``key``, or ``None`` on a miss.

        Memory hits refresh LRU recency; disk hits are promoted into
        the memory level.  A corrupt disk entry is deleted and reported
        as a miss.
        """
        with self._lock:
            value = self._memory.get(key)
            if value is not None:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                self.stats.bytes_saved += len(value)
                return value
        value = self._disk_read(key)
        with self._lock:
            if value is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self.stats.bytes_saved += len(value)
            self._install(key, value)
        return value

    def put(self, key: str, value: bytes) -> None:
        """Store packed result bytes under ``key`` in both levels."""
        value = bytes(value)
        with self._lock:
            self.stats.stores += 1
            self._install(key, value)
        self._disk_write(key, value)

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def memory_bytes(self) -> int:
        """Byte volume currently held by the in-memory level."""
        return self._memory_bytes

    def clear_memory(self) -> None:
        """Drop the in-memory level (the disk store is untouched)."""
        with self._lock:
            self._memory.clear()
            self._memory_bytes = 0

    # -- memory level ----------------------------------------------------------

    def _install(self, key: str, value: bytes) -> None:
        """Insert/refresh ``key`` in memory and evict past the bounds."""
        old = self._memory.pop(key, None)
        if old is not None:
            self._memory_bytes -= len(old)
        self._memory[key] = value
        self._memory_bytes += len(value)
        while len(self._memory) > self.max_entries or (
            self._memory_bytes > self.max_bytes and len(self._memory) > 1
        ):
            _, evicted = self._memory.popitem(last=False)
            self._memory_bytes -= len(evicted)
            self.stats.evictions += 1

    # -- disk level ------------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        assert self._disk is not None
        return self._disk / f"{key}.seg"

    def _disk_read(self, key: str) -> Optional[bytes]:
        """One validated disk entry, or ``None`` (missing or corrupt)."""
        if self._disk is None:
            return None
        path = self._entry_path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        if len(raw) >= _DISK_HEADER.size:
            magic, length = _DISK_HEADER.unpack_from(raw, 0)
            if magic == _DISK_MAGIC and len(raw) == _DISK_HEADER.size + length:
                return raw[_DISK_HEADER.size :]
        # truncated or foreign bytes: drop the entry so it cannot keep
        # costing a read+validate on every lookup
        with self._lock:
            self.stats.corrupt_entries += 1
        with contextlib.suppress(OSError):
            path.unlink()
        return None

    def _disk_write(self, key: str, value: bytes) -> None:
        """Write one entry atomically (write-to-temp + rename)."""
        if self._disk is None:
            return
        path = self._entry_path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        try:
            tmp.write_bytes(_DISK_HEADER.pack(_DISK_MAGIC, len(value)) + value)
            os.replace(tmp, path)
        except OSError:
            # a full or read-only disk degrades the cache, never the run
            with contextlib.suppress(OSError):
                tmp.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        disk = str(self._disk) if self._disk else "none"
        return (
            f"SegmentCache(entries={len(self._memory)}, "
            f"bytes={self._memory_bytes}, disk={disk})"
        )
