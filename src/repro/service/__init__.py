"""The ``popqc serve`` layer: a persistent optimization service.

PRs 1–4 built the per-run hot path — five oracle transports from
in-process pipes to multi-host sockets, all carrying the same packed
wire format byte-identically.  This package is the layer above: a
long-running daemon (``popqc serve``) that multiplexes many concurrent
optimization *jobs* over one warm worker fleet, and never pays the
oracle twice for a segment it has already optimized.

Three pieces:

* :mod:`repro.service.cache` — a content-addressed **segment result
  cache**: canonical fingerprint of a segment's packed wire bytes →
  the oracle's packed result bytes, with an in-memory LRU in front of
  an optional disk store that survives server restarts.  The cache is
  wired into :class:`repro.parallel.ProcessMap` (``cache=``), so every
  transport short-circuits repeated segments to a hash lookup.
* :mod:`repro.service.scheduler` — the cross-job round scheduler: each
  job optimizes through a :class:`~repro.service.scheduler.FleetView`
  proxy, and segments from concurrently running jobs are merged into
  shared ``batch_segments`` rounds over the one persistent fleet.
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  ``popqc serve`` daemon speaking JOB/RESULT/STATUS frames on the
  same length-prefixed frame protocol as the socket transport
  (:mod:`repro.parallel.dist`), and the :class:`ServiceClient` /
  ``popqc submit`` side of it.
* :mod:`repro.service.loadgen` — the latency-SLO load harness
  (``popqc bench serve``): deterministic traffic mixes replayed over
  concurrent clients, aggregated into latency percentiles and
  cache-hit trajectories (``BENCH_service_load.json``, gated in CI).
"""

from .cache import CacheStats, SegmentCache, oracle_namespace
from .client import JobResult, ServiceClient
from .loadgen import (
    LoadReport,
    MixReport,
    ScheduledJob,
    TrafficMix,
    build_schedule,
    default_mixes,
    run_load,
    run_slo_suite,
    schedule_manifest,
)
from .scheduler import FleetScheduler, FleetView
from .server import (
    OptimizationService,
    ServiceBusyError,
    ServiceError,
    SubprocessWorker,
)

__all__ = [
    "CacheStats",
    "FleetScheduler",
    "FleetView",
    "JobResult",
    "LoadReport",
    "MixReport",
    "OptimizationService",
    "ScheduledJob",
    "SegmentCache",
    "ServiceBusyError",
    "ServiceClient",
    "ServiceError",
    "SubprocessWorker",
    "TrafficMix",
    "build_schedule",
    "default_mixes",
    "oracle_namespace",
    "run_load",
    "run_slo_suite",
    "schedule_manifest",
]
