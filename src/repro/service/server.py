"""The ``popqc serve`` daemon: optimization jobs as a network service.

One long-running process owns the expensive state — a warm worker
fleet (any of the five transports), a registered oracle, and the
content-addressed segment cache — and serves optimization *jobs*
submitted over TCP.  The wire protocol is the same length-prefixed
frame codec as the distributed worker transport
(:mod:`repro.parallel.dist`), extended with three frame types:

* ``JOB`` — a circuit (as one packed segment) plus Ω and run options;
* ``RESULT`` — the optimized circuit (packed) plus a per-job stats
  JSON object (gate reduction, rounds, cache hit rate, latency);
* ``STATUS`` — an empty request answered with a server-status JSON
  (jobs served, cache hit rate, per-job latency, fleet shape).

Each client connection is served by its own thread, one job at a time
per connection; *across* connections, jobs run concurrently and their
oracle rounds are merged into shared fleet rounds by the
:class:`~repro.service.scheduler.FleetScheduler`, with the segment
cache short-circuiting any segment the service has optimized before.
A job's output is byte-identical to a standalone ``popqc`` run of the
same circuit with the same oracle and Ω.
"""

from __future__ import annotations

import contextlib
import hmac
import json
import socket
import threading
import time
from collections import deque
from typing import Optional, Sequence

from ..circuits import Circuit
from ..circuits.encoding import decode_segment, encode_segment
from ..core import popqc
from ..parallel import ProcessMap
from ..parallel.dist import (
    BUSY_MAX_ACTIVE,
    BUSY_PEER_QUOTA,
    BUSY_QUEUE_FULL,
    ERR_AUTH,
    ERR_BAD_FRAME,
    ERR_JOB_FAILED,
    FRAME_AUTH,
    FRAME_AUTH_OK,
    FRAME_BUSY,
    FRAME_ERROR,
    FRAME_HEADER_SIZE,
    FRAME_JOB,
    FRAME_PING,
    FRAME_PONG,
    FRAME_RESULT,
    FRAME_SHUTDOWN,
    FRAME_STATUS,
    ConnectionClosedError,
    FrameProtocolError,
    FrameReader,
    pack_busy_payload,
    pack_error_payload,
    pack_frame,
    pack_result_payload,
    recv_frame,
    unpack_job_payload,
)
from .cache import SegmentCache
from .scheduler import FleetScheduler

__all__ = ["OptimizationService", "ServiceBusyError", "ServiceError"]


class ServiceError(RuntimeError):
    """A job failed server-side; the message carries the remote repr."""


class ServiceBusyError(ServiceError):
    """The server refused the job with BUSY frames until the client's
    retry budget ran out (admission control: active-job quota,
    per-client quota, or a saturated scheduler queue)."""


class OptimizationService:
    """TCP daemon multiplexing optimization jobs over one warm fleet.

    Parameters
    ----------
    oracle:
        The oracle every job is optimized against (jobs choose Ω and
        round caps, not the oracle — the fleet registers exactly one).
    host / port:
        Bind endpoint; ``port=0`` picks an ephemeral port
        (:attr:`address` reports the bound one).
    workers / transport / hosts:
        Fleet shape, passed to :class:`~repro.parallel.ProcessMap`
        (``hosts`` for ``transport="socket"``).
    cache:
        A :class:`~repro.service.cache.SegmentCache`, or ``None`` to
        build a default in-memory cache, or ``False`` to serve without
        one (every segment pays the oracle).  Keys are scoped per
        oracle by the scheduler's lookup protocol itself, so a cache
        (or its disk store) needs no namespace of its own and is
        interchangeable with the ``ProcessMap(cache=...)`` path.
    gather_window_seconds:
        Cross-job merge window of the round scheduler.
    round_budget_segments:
        Weighted-fair quantum of one merged fleet round (see
        :class:`~repro.service.scheduler.FleetScheduler`).
    auth_token:
        Shared secret demanded of every connection (an AUTH frame
        before any other; constant-time compare).  For a socket-fleet
        service the same token is presented to the ``popqc worker``
        hosts, so one secret covers both rungs of the service.
        ``None`` serves unauthenticated (trusted networks only).
    max_active_jobs / max_jobs_per_peer / max_pending_rounds:
        Admission control, each ``None`` (unlimited) or ``>= 1``: the
        global cap on jobs being optimized at once, the per-client
        (peer address) cap, and the scheduler queue depth past which
        new jobs are refused.  A refused JOB is answered with a typed
        BUSY frame naming the reason and a suggested retry delay —
        never a hang and never a dropped connection.
    idle_timeout_seconds:
        How long a connection may sit silent before its handler thread
        gives up on it (slow-loris defence); ``None`` disables.

    Attributes
    ----------
    jobs_completed / jobs_failed / jobs_rejected:
        Totals across all connections.
    auth_failures:
        Connections refused for a missing or wrong AUTH token.
    bytes_received / bytes_sent:
        Frame bytes in and out, payloads included.
    """

    def __init__(
        self,
        oracle: object,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: Optional[int] = None,
        transport: str = "encoded",
        hosts: Optional[Sequence[str]] = None,
        cache: object = None,
        gather_window_seconds: float = 0.002,
        round_budget_segments: Optional[int] = None,
        auth_token: Optional[str] = None,
        max_active_jobs: Optional[int] = None,
        max_jobs_per_peer: Optional[int] = None,
        max_pending_rounds: Optional[int] = None,
        idle_timeout_seconds: Optional[float] = 300.0,
    ):
        for name, bound in (
            ("max_active_jobs", max_active_jobs),
            ("max_jobs_per_peer", max_jobs_per_peer),
            ("max_pending_rounds", max_pending_rounds),
        ):
            if bound is not None and bound < 1:
                raise ValueError(f"{name} must be positive or None")
        self.oracle = oracle
        if cache is None:
            cache = SegmentCache()
        elif cache is False:
            cache = None
        self.cache = cache
        self._auth_token = (
            auth_token.encode("utf-8") if auth_token is not None else None
        )
        self.max_active_jobs = max_active_jobs
        self.max_jobs_per_peer = max_jobs_per_peer
        self.max_pending_rounds = max_pending_rounds
        self.idle_timeout_seconds = idle_timeout_seconds
        fleet = ProcessMap(
            workers,
            transport=transport,
            hosts=hosts,
            auth_token=auth_token if transport == "socket" else None,
        )
        self._scheduler = FleetScheduler(
            fleet,
            cache=cache,
            gather_window_seconds=gather_window_seconds,
            round_budget_segments=round_budget_segments,
        )
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_rejected = 0
        self.auth_failures = 0
        self.bytes_received = 0
        self.bytes_sent = 0
        self._jobs_active = 0
        self._peers: dict[str, dict] = {}
        self._latencies: deque[float] = deque(maxlen=256)
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._closing = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: list[threading.Thread] = []
        self._conns: list[socket.socket] = []

    @property
    def address(self) -> str:
        """The bound endpoint as ``"host:port"``."""
        return f"{self.host}:{self.port}"

    @property
    def jobs_active(self) -> int:
        """Jobs currently being optimized."""
        return self._jobs_active

    # -- lifecycle (mirrors WorkerHost) ---------------------------------------

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`stop` (blocking)."""
        while not self._closing.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:  # listener shut down by stop()
                break
            if self._closing.is_set():
                with contextlib.suppress(OSError):
                    conn.close()
                break
            if self.idle_timeout_seconds is not None:
                conn.settimeout(self.idle_timeout_seconds)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            # both mutations under the lock: stop() iterates these
            # lists from another thread, and pruning finished handlers
            # here keeps a high-churn client from growing them forever
            with self._lock:
                self._conns.append(conn)
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]
                self._conn_threads.append(thread)
            thread.start()

    def start(self) -> "OptimizationService":
        """Serve in a daemon thread (for in-process tests); returns self."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Close the listener, connections, scheduler and fleet."""
        self._closing.set()
        with contextlib.suppress(OSError):
            self._listener.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._listener.close()
        with self._lock:
            conns, self._conns = self._conns, []
            threads = list(self._conn_threads)
        for conn in conns:
            with contextlib.suppress(OSError):
                conn.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                conn.close()
        for thread in threads:
            thread.join(timeout=5.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
        self._scheduler.close()

    # -- connection handling ---------------------------------------------------

    def _peer_entry(self, peer: str) -> dict:
        """The accounting record for one peer address (caller holds
        the lock)."""
        entry = self._peers.get(peer)
        if entry is None:
            entry = {
                "connections": 0,
                "jobs_completed": 0,
                "jobs_failed": 0,
                "jobs_active": 0,
                "rejections": 0,
                "bytes_received": 0,
                "bytes_sent": 0,
            }
            self._peers[peer] = entry
        return entry

    def _send(self, conn: socket.socket, frame: bytes, peer: dict) -> None:
        conn.sendall(frame)
        with self._lock:
            self.bytes_sent += len(frame)
            peer["bytes_sent"] += len(frame)

    def _check_auth(self, payload: bytes) -> bool:
        """Constant-time validation of one AUTH payload."""
        if self._auth_token is None:
            return True  # no token configured: AUTH is a friendly no-op
        return hmac.compare_digest(payload, self._auth_token)

    def _serve_connection(self, conn: socket.socket) -> None:
        """Serve one client until it disconnects or the service stops."""
        reader = FrameReader()
        try:
            peer_addr = conn.getpeername()[0]
        except OSError:
            peer_addr = "unknown"
        with self._lock:
            peer = self._peer_entry(peer_addr)
            peer["connections"] += 1
        authed = self._auth_token is None
        try:
            while True:
                frame_type, payload = recv_frame(conn, reader)
                with self._lock:
                    self.bytes_received += FRAME_HEADER_SIZE + len(payload)
                    peer["bytes_received"] += FRAME_HEADER_SIZE + len(payload)
                if frame_type == FRAME_AUTH:
                    if self._check_auth(payload):
                        authed = True
                        self._send(conn, pack_frame(FRAME_AUTH_OK), peer)
                        continue
                    with self._lock:
                        self.auth_failures += 1
                        peer["rejections"] += 1
                    self._send(
                        conn,
                        pack_frame(
                            FRAME_ERROR,
                            pack_error_payload(ERR_AUTH, "invalid auth token"),
                        ),
                        peer,
                    )
                    return  # wrong secret: drop the connection
                if not authed:
                    with self._lock:
                        self.auth_failures += 1
                        peer["rejections"] += 1
                    self._send(
                        conn,
                        pack_frame(
                            FRAME_ERROR,
                            pack_error_payload(
                                ERR_AUTH,
                                "authentication required before any "
                                "other frame",
                            ),
                        ),
                        peer,
                    )
                    return
                if frame_type == FRAME_JOB:
                    self._send(conn, self._answer_job(payload, peer), peer)
                elif frame_type == FRAME_STATUS:
                    body = json.dumps(self.status()).encode("utf-8")
                    self._send(conn, pack_frame(FRAME_STATUS, body), peer)
                elif frame_type == FRAME_PING:
                    self._send(conn, pack_frame(FRAME_PONG), peer)
                elif frame_type == FRAME_SHUTDOWN:
                    return
                else:
                    self._send(
                        conn,
                        pack_frame(
                            FRAME_ERROR,
                            pack_error_payload(
                                ERR_BAD_FRAME,
                                f"unexpected frame type {frame_type}",
                            ),
                        ),
                        peer,
                    )
        except (ConnectionClosedError, FrameProtocolError, OSError):
            return  # client went away (or went silent past the idle
            # timeout); nothing to answer
        finally:
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)
            with contextlib.suppress(OSError):
                conn.close()

    # -- job execution ---------------------------------------------------------

    def _retry_after_hint(self) -> float:
        """A BUSY frame's suggested delay: the mean recent job latency
        clamped to a sane band (caller holds the lock)."""
        if not self._latencies:
            return 0.1
        mean = sum(self._latencies) / len(self._latencies)
        return min(2.0, max(0.05, mean))

    def _admit_job(self, peer: dict) -> Optional[bytes]:
        """Reserve an active-job slot, or the BUSY frame refusing it.

        The check and the reservation happen under one lock acquisition
        so two racing connections cannot both squeeze past the same
        last slot.
        """
        with self._lock:
            busy = None
            if (
                self.max_active_jobs is not None
                and self._jobs_active >= self.max_active_jobs
            ):
                busy = (
                    BUSY_MAX_ACTIVE,
                    f"all {self.max_active_jobs} job slots are busy",
                )
            elif (
                self.max_jobs_per_peer is not None
                and peer["jobs_active"] >= self.max_jobs_per_peer
            ):
                busy = (
                    BUSY_PEER_QUOTA,
                    f"client already has {peer['jobs_active']} jobs in "
                    "flight",
                )
            elif (
                self.max_pending_rounds is not None
                and self._scheduler.pending_requests >= self.max_pending_rounds
            ):
                busy = (
                    BUSY_QUEUE_FULL,
                    f"scheduler queue is at its cap of "
                    f"{self.max_pending_rounds}",
                )
            if busy is not None:
                self.jobs_rejected += 1
                peer["rejections"] += 1
                kind, message = busy
                return pack_frame(
                    FRAME_BUSY,
                    pack_busy_payload(kind, self._retry_after_hint(), message),
                )
            self._jobs_active += 1
            peer["jobs_active"] += 1
            return None

    def _answer_job(self, payload: bytes, peer: dict) -> bytes:
        """The reply frame for one JOB request."""
        try:
            (
                job_tag,
                omega,
                num_qubits,
                max_rounds,
                encoded,
                priority,
            ) = unpack_job_payload(payload)
        except FrameProtocolError as exc:
            return pack_frame(
                FRAME_ERROR, pack_error_payload(ERR_BAD_FRAME, str(exc))
            )
        refusal = self._admit_job(peer)
        if refusal is not None:
            return refusal
        t0 = time.perf_counter()
        try:
            circuit = Circuit(decode_segment(encoded), num_qubits)
            view = self._scheduler.view(weight=priority)
            result = popqc(
                circuit,
                self.oracle,
                omega,
                parmap=view,
                max_rounds=max_rounds,
            )
        except Exception as exc:  # noqa: BLE001 - forwarded to the client
            with self._lock:
                self._jobs_active -= 1
                peer["jobs_active"] -= 1
                self.jobs_failed += 1
                peer["jobs_failed"] += 1
            return pack_frame(
                FRAME_ERROR, pack_error_payload(ERR_JOB_FAILED, repr(exc))
            )
        elapsed = time.perf_counter() - t0
        stats_json = json.dumps(
            self._job_stats(result.stats, elapsed, priority)
        ).encode("utf-8")
        out = encode_segment(result.circuit.gates)
        with self._lock:
            self._jobs_active -= 1
            peer["jobs_active"] -= 1
            self.jobs_completed += 1
            peer["jobs_completed"] += 1
            self._latencies.append(elapsed)
        return pack_frame(
            FRAME_RESULT, pack_result_payload(job_tag, stats_json, out)
        )

    @staticmethod
    def _job_stats(stats, wall_seconds: float, priority: int = 1) -> dict:
        """The per-job stats object shipped in a RESULT frame."""
        return {
            "initial_gates": stats.initial_gates,
            "final_gates": stats.final_gates,
            "gate_reduction": stats.gate_reduction,
            "rounds": stats.rounds,
            "oracle_calls": stats.oracle_calls,
            "oracle_calls_saved": stats.oracle_calls_saved,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "cache_hit_rate": stats.cache_hit_rate,
            "cache_bytes_saved": stats.cache_bytes_saved,
            "cache_lookup_seconds": stats.cache_lookup_seconds,
            "transport": stats.transport,
            "workers": stats.workers,
            "total_seconds": stats.total_time,
            "wall_seconds": wall_seconds,
            "priority": priority,
        }

    def status(self) -> dict:
        """The server-status object answered to STATUS frames."""
        with self._lock:
            latencies = list(self._latencies)
            status = {
                "address": self.address,
                "uptime_seconds": time.monotonic() - self._started,
                "jobs_completed": self.jobs_completed,
                "jobs_failed": self.jobs_failed,
                "jobs_active": self._jobs_active,
                "admission": {
                    "auth_required": self._auth_token is not None,
                    "auth_failures": self.auth_failures,
                    "max_active_jobs": self.max_active_jobs,
                    "max_jobs_per_peer": self.max_jobs_per_peer,
                    "max_pending_rounds": self.max_pending_rounds,
                    "jobs_rejected": self.jobs_rejected,
                },
                "clients": {
                    addr: dict(entry) for addr, entry in self._peers.items()
                },
            }
        status["scheduler"] = {
            "rounds_dispatched": self._scheduler.rounds_dispatched,
            "requests_merged": self._scheduler.requests_merged,
            "segments_dispatched": self._scheduler.segments_dispatched,
        }
        fleet = self._scheduler.fleet
        status["fleet"] = {
            "workers": fleet.workers,
            "transport": getattr(fleet, "transport", "encoded"),
        }
        status["cache"] = (
            self.cache.stats.as_dict() if self.cache is not None else None
        )
        status["job_latency"] = {
            "count": len(latencies),
            "mean_seconds": sum(latencies) / len(latencies) if latencies else 0.0,
            "max_seconds": max(latencies) if latencies else 0.0,
            "last_seconds": latencies[-1] if latencies else 0.0,
        }
        return status

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"OptimizationService({self.address}, "
            f"jobs={self.jobs_completed}, active={self._jobs_active})"
        )
