"""The ``popqc serve`` daemon: optimization jobs as a network service.

One long-running process owns the expensive state — a warm worker
fleet (any of the five transports), a registered oracle, and the
content-addressed segment cache — and serves optimization *jobs*
submitted over TCP.  The wire protocol is the same length-prefixed
frame codec as the distributed worker transport
(:mod:`repro.parallel.dist`), extended with three frame types:

* ``JOB`` — a circuit (as one packed segment) plus Ω and run options;
* ``RESULT`` — the optimized circuit (packed) plus a per-job stats
  JSON object (gate reduction, rounds, cache hit rate, latency);
* ``STATUS`` — an empty request answered with a server-status JSON
  (jobs served, cache hit rate, per-job latency, fleet shape).

Each client connection is served by its own thread, one job at a time
per connection; *across* connections, jobs run concurrently and their
oracle rounds are merged into shared fleet rounds by the
:class:`~repro.service.scheduler.FleetScheduler`, with the segment
cache short-circuiting any segment the service has optimized before.
A job's output is byte-identical to a standalone ``popqc`` run of the
same circuit with the same oracle and Ω.

The daemon is also the hub of two cluster-scale features:

* **Cluster cache tier** — the service answers
  ``CACHE_LOOKUP``/``CACHE_STORE`` frames out of its own
  :class:`~repro.service.cache.SegmentCache`, so ``popqc worker
  --cache`` hosts can serve each other's warm segments instead of
  re-running the oracle (see :mod:`repro.parallel.dist`).
* **Autoscaling** (``--min-workers/--max-workers/--scale-window``,
  socket fleets only) — a background thread reads the scheduler's
  queued-segment backlog and spawns or retires local ``popqc worker``
  subprocesses through the ordinary REGISTER/capacity handshake;
  retiring drains through the pool's reconnect-and-requeue path, so
  scale-down never loses a round.
"""

from __future__ import annotations

import contextlib
import hmac
import json
import logging
import os
import re
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Optional, Sequence

from ..circuits import Circuit
from ..circuits.encoding import decode_segment, encode_segment
from ..core import popqc
from ..parallel import ProcessMap
from ..parallel.dist import (
    BUSY_MAX_ACTIVE,
    BUSY_PEER_QUOTA,
    BUSY_QUEUE_FULL,
    ERR_AUTH,
    ERR_BAD_FRAME,
    ERR_JOB_FAILED,
    FRAME_AUTH,
    FRAME_AUTH_OK,
    FRAME_BUSY,
    FRAME_CACHE_LOOKUP,
    FRAME_CACHE_RESULT,
    FRAME_CACHE_STORE,
    FRAME_ERROR,
    FRAME_HEADER_SIZE,
    FRAME_JOB,
    FRAME_PING,
    FRAME_PONG,
    FRAME_RESULT,
    FRAME_SHUTDOWN,
    FRAME_STATUS,
    ConnectionClosedError,
    FrameProtocolError,
    FrameReader,
    pack_busy_payload,
    pack_cache_result_payload,
    pack_error_payload,
    pack_frame,
    pack_result_payload,
    recv_frame,
    unpack_cache_lookup_payload,
    unpack_cache_store_payload,
    unpack_job_payload,
)
from .cache import SegmentCache
from .scheduler import FleetScheduler

__all__ = [
    "OptimizationService",
    "ServiceBusyError",
    "ServiceError",
    "SubprocessWorker",
]

_log = logging.getLogger(__name__)


class ServiceError(RuntimeError):
    """A job failed server-side; the message carries the remote repr."""


class ServiceBusyError(ServiceError):
    """The server refused the job with BUSY frames until the client's
    retry budget ran out (admission control: active-job quota,
    per-client quota, or a saturated scheduler queue)."""


#: Pattern extracting the bound endpoint from the worker CLI banner.
_WORKER_BANNER = re.compile(r"listening on (\S+)")


class SubprocessWorker:
    """One autoscaler-spawned ``popqc worker`` subprocess.

    The default ``worker_spawner`` of :class:`OptimizationService`:
    launches ``python -m repro.cli worker --bind 127.0.0.1:0`` (plus
    the service's auth token and, when the service has a cache, a
    ``--cache`` pointing back at the service itself, so every spawned
    worker joins the cluster cache tier), blocks until the worker
    prints its bound address, and exposes it as :attr:`address`.
    :meth:`stop` terminates the subprocess and reaps it, so a stopped
    service never leaks workers.
    """

    def __init__(
        self,
        auth_token: Optional[str] = None,
        cache_address: Optional[str] = None,
        capacity: int = 1,
    ):
        src_root = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            src_root + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src_root
        )
        cmd = [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--bind",
            "127.0.0.1:0",
            "--capacity",
            str(capacity),
        ]
        if auth_token is not None:
            cmd += ["--auth-token", auth_token]
        if cache_address is not None:
            cmd += ["--cache", cache_address]
        self._proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        assert self._proc.stdout is not None
        banner = self._proc.stdout.readline()
        match = _WORKER_BANNER.search(banner)
        if match is None:
            self.stop()
            raise RuntimeError(
                f"spawned worker printed no address banner: {banner!r}"
            )
        self.address = match.group(1)

    @property
    def pid(self) -> int:
        """The subprocess PID (for the status object and logs)."""
        return self._proc.pid

    def stop(self) -> None:
        """Terminate and reap the subprocess (idempotent)."""
        if self._proc.poll() is None:
            self._proc.terminate()
            try:
                self._proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                self._proc.kill()
                self._proc.wait(timeout=5.0)
        if self._proc.stdout is not None:
            with contextlib.suppress(OSError):
                self._proc.stdout.close()


class OptimizationService:
    """TCP daemon multiplexing optimization jobs over one warm fleet.

    Parameters
    ----------
    oracle:
        The oracle every job is optimized against (jobs choose Ω and
        round caps, not the oracle — the fleet registers exactly one).
    host / port:
        Bind endpoint; ``port=0`` picks an ephemeral port
        (:attr:`address` reports the bound one).
    workers / transport / hosts:
        Fleet shape, passed to :class:`~repro.parallel.ProcessMap`
        (``hosts`` for ``transport="socket"``).
    cache:
        A :class:`~repro.service.cache.SegmentCache`, or ``None`` to
        build a default in-memory cache, or ``False`` to serve without
        one (every segment pays the oracle).  Keys are scoped per
        oracle by the scheduler's lookup protocol itself, so a cache
        (or its disk store) needs no namespace of its own and is
        interchangeable with the ``ProcessMap(cache=...)`` path.
    gather_window_seconds:
        Cross-job merge window of the round scheduler.
    round_budget_segments:
        Weighted-fair quantum of one merged fleet round (see
        :class:`~repro.service.scheduler.FleetScheduler`).
    auth_token:
        Shared secret demanded of every connection (an AUTH frame
        before any other; constant-time compare).  For a socket-fleet
        service the same token is presented to the ``popqc worker``
        hosts, so one secret covers both rungs of the service.
        ``None`` serves unauthenticated (trusted networks only).
    max_active_jobs / max_jobs_per_peer / max_pending_rounds:
        Admission control, each ``None`` (unlimited) or ``>= 1``: the
        global cap on jobs being optimized at once, the per-client
        (peer address) cap, and the scheduler queue depth past which
        new jobs are refused.  A refused JOB is answered with a typed
        BUSY frame naming the reason and a suggested retry delay —
        never a hang and never a dropped connection.
    idle_timeout_seconds:
        How long a connection may sit silent before its handler thread
        gives up on it (slow-loris defence); ``None`` disables.
    min_workers / max_workers / scale_window_seconds:
        Queue-depth-driven autoscaling (socket fleets only).
        ``min_workers`` local ``popqc worker`` subprocesses are
        spawned at startup (so ``hosts`` may be omitted entirely);
        when ``max_workers`` is set, a background thread samples the
        scheduler's queued-segment backlog every
        ``scale_window_seconds`` and spawns another worker while the
        backlog exceeds one round budget, or retires the youngest
        spawned worker (down to ``min_workers``) after two consecutive
        idle windows.  Spawned workers present the service's auth
        token and join the cluster cache tier automatically.
    worker_spawner:
        Factory for spawned workers — any callable returning an object
        with ``.address`` and ``.stop()``.  Defaults to
        :class:`SubprocessWorker`; tests inject in-process hosts.

    Attributes
    ----------
    jobs_completed / jobs_failed / jobs_rejected:
        Totals across all connections.
    auth_failures:
        Connections refused for a missing or wrong AUTH token.
    bytes_received / bytes_sent:
        Frame bytes in and out, payloads included.
    scale_ups / scale_downs / scale_failures:
        Autoscaler actions (spawn, retire, failed spawn).
    cluster_cache_lookups / cluster_cache_hits / cluster_cache_stores:
        CACHE_LOOKUP segments answered (and the hit subset) and
        CACHE_STORE entries accepted from worker hosts.
    """

    def __init__(
        self,
        oracle: object,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: Optional[int] = None,
        transport: str = "encoded",
        hosts: Optional[Sequence[str]] = None,
        cache: object = None,
        gather_window_seconds: float = 0.002,
        round_budget_segments: Optional[int] = None,
        auth_token: Optional[str] = None,
        max_active_jobs: Optional[int] = None,
        max_jobs_per_peer: Optional[int] = None,
        max_pending_rounds: Optional[int] = None,
        idle_timeout_seconds: Optional[float] = 300.0,
        min_workers: Optional[int] = None,
        max_workers: Optional[int] = None,
        scale_window_seconds: float = 2.0,
        worker_spawner: Optional[Callable[[], object]] = None,
    ):
        for name, bound in (
            ("max_active_jobs", max_active_jobs),
            ("max_jobs_per_peer", max_jobs_per_peer),
            ("max_pending_rounds", max_pending_rounds),
        ):
            if bound is not None and bound < 1:
                raise ValueError(f"{name} must be positive or None")
        elastic = min_workers is not None or max_workers is not None
        if elastic and transport != "socket":
            raise ValueError(
                "autoscaling (min_workers/max_workers) requires "
                "transport='socket'"
            )
        if min_workers is not None and min_workers < 0:
            raise ValueError("min_workers must be >= 0 or None")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive or None")
        if (
            min_workers is not None
            and max_workers is not None
            and min_workers > max_workers
        ):
            raise ValueError("min_workers cannot exceed max_workers")
        if scale_window_seconds <= 0:
            raise ValueError("scale_window_seconds must be positive")
        self.oracle = oracle
        if cache is None:
            cache = SegmentCache()
        elif cache is False:
            cache = None
        self.cache = cache
        self._auth_token = (
            auth_token.encode("utf-8") if auth_token is not None else None
        )
        self.max_active_jobs = max_active_jobs
        self.max_jobs_per_peer = max_jobs_per_peer
        self.max_pending_rounds = max_pending_rounds
        self.idle_timeout_seconds = idle_timeout_seconds
        self.min_workers = min_workers if min_workers is not None else 0
        self.max_workers = max_workers
        self.scale_window_seconds = scale_window_seconds
        self.scale_ups = 0
        self.scale_downs = 0
        self.scale_failures = 0
        self.cluster_cache_lookups = 0
        self.cluster_cache_hits = 0
        self.cluster_cache_stores = 0
        # the listener binds before any worker spawns: spawned workers
        # point their --cache at this service's own address
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._spawned: list = []
        self._scale_lock = threading.Lock()
        self._idle_windows = 0
        self._closing = threading.Event()
        if worker_spawner is None:
            worker_spawner = self._default_spawner(auth_token)
        self._worker_spawner = worker_spawner
        try:
            for _ in range(self.min_workers):
                self._spawned.append(worker_spawner())
            all_hosts = list(hosts) if hosts else []
            all_hosts += [worker.address for worker in self._spawned]
            fleet = ProcessMap(
                workers,
                transport=transport,
                hosts=all_hosts if transport == "socket" else hosts,
                auth_token=auth_token if transport == "socket" else None,
            )
            self._scheduler = FleetScheduler(
                fleet,
                cache=cache,
                gather_window_seconds=gather_window_seconds,
                round_budget_segments=round_budget_segments,
            )
        except BaseException:
            for worker in self._spawned:
                with contextlib.suppress(Exception):
                    worker.stop()
            with contextlib.suppress(OSError):
                self._listener.close()
            raise
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_rejected = 0
        self.auth_failures = 0
        self.bytes_received = 0
        self.bytes_sent = 0
        self._jobs_active = 0
        self._peers: dict[str, dict] = {}
        self._latencies: deque[float] = deque(maxlen=256)
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: list[threading.Thread] = []
        self._conns: list[socket.socket] = []
        self._autoscale_thread: Optional[threading.Thread] = None
        if self.max_workers is not None:
            self._autoscale_thread = threading.Thread(
                target=self._autoscale_loop, name="autoscaler", daemon=True
            )
            self._autoscale_thread.start()

    def _default_spawner(self, auth_token: Optional[str]) -> Callable[[], object]:
        """The production worker factory: local subprocesses that share
        the service's token and (when it has a cache) its cache tier."""

        def spawn() -> SubprocessWorker:
            return SubprocessWorker(
                auth_token=auth_token,
                cache_address=self.address if self.cache is not None else None,
            )

        return spawn

    @property
    def address(self) -> str:
        """The bound endpoint as ``"host:port"``."""
        return f"{self.host}:{self.port}"

    @property
    def jobs_active(self) -> int:
        """Jobs currently being optimized."""
        return self._jobs_active

    # -- lifecycle (mirrors WorkerHost) ---------------------------------------

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`stop` (blocking)."""
        while not self._closing.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:  # listener shut down by stop()
                break
            if self._closing.is_set():
                with contextlib.suppress(OSError):
                    conn.close()
                break
            if self.idle_timeout_seconds is not None:
                conn.settimeout(self.idle_timeout_seconds)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            # both mutations under the lock: stop() iterates these
            # lists from another thread, and pruning finished handlers
            # here keeps a high-churn client from growing them forever
            with self._lock:
                self._conns.append(conn)
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]
                self._conn_threads.append(thread)
            thread.start()

    def start(self) -> "OptimizationService":
        """Serve in a daemon thread (for in-process tests); returns self."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Close the listener, connections, scheduler, fleet and any
        autoscaler-spawned workers."""
        self._closing.set()
        if self._autoscale_thread is not None:
            self._autoscale_thread.join(timeout=self.scale_window_seconds + 5.0)
        with contextlib.suppress(OSError):
            self._listener.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._listener.close()
        with self._lock:
            conns, self._conns = self._conns, []
            threads = list(self._conn_threads)
        for conn in conns:
            with contextlib.suppress(OSError):
                conn.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                conn.close()
        for thread in threads:
            thread.join(timeout=5.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
        self._scheduler.close()
        with self._scale_lock:
            spawned, self._spawned = self._spawned, []
        for worker in spawned:
            with contextlib.suppress(Exception):
                worker.stop()

    # -- autoscaling -----------------------------------------------------------

    def scale_up(self) -> Optional[str]:
        """Spawn one worker and attach it to the fleet.

        Returns its address, or ``None`` when the fleet is already at
        ``max_workers`` or the spawn failed (counted in
        ``scale_failures``; the autoscaler simply tries again next
        window).
        """
        with self._scale_lock:
            if (
                self.max_workers is not None
                and len(self._spawned) >= self.max_workers
            ):
                return None
            try:
                worker = self._worker_spawner()
            except Exception:
                self.scale_failures += 1
                _log.exception("autoscaler failed to spawn a worker")
                return None
            self._spawned.append(worker)
            self.scale_ups += 1
        self._scheduler.fleet.add_socket_host(worker.address)
        _log.info("autoscaler added worker %s", worker.address)
        return worker.address

    def scale_down(self) -> Optional[str]:
        """Retire the youngest spawned worker (never below ``min_workers``).

        The host is removed from the pool first — closing its
        connection, so any batch in flight on it requeues through the
        work-stealing path — and the subprocess is stopped after.
        Returns the retired address, or ``None`` at the floor.
        """
        with self._scale_lock:
            if len(self._spawned) <= self.min_workers:
                return None
            worker = self._spawned.pop()
            self.scale_downs += 1
        self._scheduler.fleet.remove_socket_host(worker.address)
        worker.stop()
        _log.info("autoscaler retired worker %s", worker.address)
        return worker.address

    def _autoscale_loop(self) -> None:
        """Sample the backlog every window until the service stops."""
        while not self._closing.wait(self.scale_window_seconds):
            self._autoscale_tick()

    def _autoscale_tick(self) -> None:
        """One scale decision off the scheduler's queued-segment depth.

        Scale up while more than one round budget's worth of segments
        is queued (the fleet is at least a full round behind); scale
        down one worker after two consecutive windows with an empty
        queue and no active jobs, so a short lull between rounds of
        one job never churns the fleet.
        """
        fleet = self._scheduler.fleet
        backlog = self._scheduler.pending_segments
        round_budget = max(16, 4 * fleet.workers)
        if backlog > round_budget:
            self._idle_windows = 0
            self.scale_up()
            return
        if backlog == 0 and self._jobs_active == 0:
            self._idle_windows += 1
            if self._idle_windows >= 2:
                if self.scale_down() is not None:
                    self._idle_windows = 0
        else:
            self._idle_windows = 0

    # -- connection handling ---------------------------------------------------

    def _peer_entry(self, peer: str) -> dict:
        """The accounting record for one peer address (caller holds
        the lock)."""
        entry = self._peers.get(peer)
        if entry is None:
            entry = {
                "connections": 0,
                "jobs_completed": 0,
                "jobs_failed": 0,
                "jobs_active": 0,
                "rejections": 0,
                "bytes_received": 0,
                "bytes_sent": 0,
            }
            self._peers[peer] = entry
        return entry

    def _send(self, conn: socket.socket, frame: bytes, peer: dict) -> None:
        conn.sendall(frame)
        with self._lock:
            self.bytes_sent += len(frame)
            peer["bytes_sent"] += len(frame)

    def _check_auth(self, payload: bytes) -> bool:
        """Constant-time validation of one AUTH payload."""
        if self._auth_token is None:
            return True  # no token configured: AUTH is a friendly no-op
        return hmac.compare_digest(payload, self._auth_token)

    def _serve_connection(self, conn: socket.socket) -> None:
        """Serve one client until it disconnects or the service stops."""
        reader = FrameReader()
        try:
            peer_addr = conn.getpeername()[0]
        except OSError:
            peer_addr = "unknown"
        with self._lock:
            peer = self._peer_entry(peer_addr)
            peer["connections"] += 1
        authed = self._auth_token is None
        try:
            while True:
                frame_type, payload = recv_frame(conn, reader)
                with self._lock:
                    self.bytes_received += FRAME_HEADER_SIZE + len(payload)
                    peer["bytes_received"] += FRAME_HEADER_SIZE + len(payload)
                if frame_type == FRAME_AUTH:
                    if self._check_auth(payload):
                        authed = True
                        self._send(conn, pack_frame(FRAME_AUTH_OK), peer)
                        continue
                    with self._lock:
                        self.auth_failures += 1
                        peer["rejections"] += 1
                    self._send(
                        conn,
                        pack_frame(
                            FRAME_ERROR,
                            pack_error_payload(ERR_AUTH, "invalid auth token"),
                        ),
                        peer,
                    )
                    return  # wrong secret: drop the connection
                if not authed:
                    with self._lock:
                        self.auth_failures += 1
                        peer["rejections"] += 1
                    self._send(
                        conn,
                        pack_frame(
                            FRAME_ERROR,
                            pack_error_payload(
                                ERR_AUTH,
                                "authentication required before any "
                                "other frame",
                            ),
                        ),
                        peer,
                    )
                    return
                if frame_type == FRAME_JOB:
                    self._send(conn, self._answer_job(payload, peer), peer)
                elif frame_type == FRAME_STATUS:
                    body = json.dumps(self.status()).encode("utf-8")
                    self._send(conn, pack_frame(FRAME_STATUS, body), peer)
                elif frame_type == FRAME_CACHE_LOOKUP:
                    self._send(conn, self._answer_cache_lookup(payload), peer)
                elif frame_type == FRAME_CACHE_STORE:
                    self._send(conn, self._answer_cache_store(payload), peer)
                elif frame_type == FRAME_PING:
                    self._send(conn, pack_frame(FRAME_PONG), peer)
                elif frame_type == FRAME_SHUTDOWN:
                    return
                else:
                    self._send(
                        conn,
                        pack_frame(
                            FRAME_ERROR,
                            pack_error_payload(
                                ERR_BAD_FRAME,
                                f"unexpected frame type {frame_type}",
                            ),
                        ),
                        peer,
                    )
        except (ConnectionClosedError, FrameProtocolError, OSError):
            return  # client went away (or went silent past the idle
            # timeout); nothing to answer
        finally:
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)
            with contextlib.suppress(OSError):
                conn.close()

    # -- cluster cache tier ----------------------------------------------------

    def _answer_cache_lookup(self, payload: bytes) -> bytes:
        """The CACHE_RESULT reply for one worker's CACHE_LOOKUP.

        Keys are derived server-side from the raw packed bytes plus
        the request's namespace — the same derivation the scheduler's
        own cache front uses, so a segment stored by either path is a
        hit for both.  A service running without a cache answers every
        entry as a miss (the tier degrades, it never errors).
        """
        try:
            namespace, packed = unpack_cache_lookup_payload(payload)
        except FrameProtocolError as exc:
            return pack_frame(
                FRAME_ERROR, pack_error_payload(ERR_BAD_FRAME, str(exc))
            )
        cache = self.cache
        if cache is None:
            values: list[Optional[bytes]] = [None] * len(packed)
        else:
            values = [
                cache.get(cache.key_for(blob, extra=namespace))
                for blob in packed
            ]
        with self._lock:
            self.cluster_cache_lookups += len(packed)
            self.cluster_cache_hits += sum(
                1 for value in values if value is not None
            )
        return pack_frame(
            FRAME_CACHE_RESULT, pack_cache_result_payload(values)
        )

    def _answer_cache_store(self, payload: bytes) -> bytes:
        """The acknowledge (empty CACHE_RESULT) for one CACHE_STORE.

        The ack is what makes cache sharing deterministic: a worker's
        publish is durably in the shared cache before its RESULTS
        frame reaches the driver, so any host asked for the same
        segment afterwards observes the hit.
        """
        try:
            namespace, entries = unpack_cache_store_payload(payload)
        except FrameProtocolError as exc:
            return pack_frame(
                FRAME_ERROR, pack_error_payload(ERR_BAD_FRAME, str(exc))
            )
        cache = self.cache
        if cache is not None:
            for packed, value in entries:
                cache.put(cache.key_for(packed, extra=namespace), value)
        with self._lock:
            self.cluster_cache_stores += len(entries)
        return pack_frame(FRAME_CACHE_RESULT, pack_cache_result_payload([]))

    # -- job execution ---------------------------------------------------------

    def _retry_after_hint(self) -> float:
        """A BUSY frame's suggested delay: the mean recent job latency
        clamped to a sane band (caller holds the lock)."""
        if not self._latencies:
            return 0.1
        mean = sum(self._latencies) / len(self._latencies)
        return min(2.0, max(0.05, mean))

    def _admit_job(self, peer: dict) -> Optional[bytes]:
        """Reserve an active-job slot, or the BUSY frame refusing it.

        The check and the reservation happen under one lock acquisition
        so two racing connections cannot both squeeze past the same
        last slot.
        """
        with self._lock:
            busy = None
            if (
                self.max_active_jobs is not None
                and self._jobs_active >= self.max_active_jobs
            ):
                busy = (
                    BUSY_MAX_ACTIVE,
                    f"all {self.max_active_jobs} job slots are busy",
                )
            elif (
                self.max_jobs_per_peer is not None
                and peer["jobs_active"] >= self.max_jobs_per_peer
            ):
                busy = (
                    BUSY_PEER_QUOTA,
                    f"client already has {peer['jobs_active']} jobs in "
                    "flight",
                )
            elif (
                self.max_pending_rounds is not None
                and self._scheduler.pending_requests >= self.max_pending_rounds
            ):
                busy = (
                    BUSY_QUEUE_FULL,
                    f"scheduler queue is at its cap of "
                    f"{self.max_pending_rounds}",
                )
            if busy is not None:
                self.jobs_rejected += 1
                peer["rejections"] += 1
                kind, message = busy
                return pack_frame(
                    FRAME_BUSY,
                    pack_busy_payload(kind, self._retry_after_hint(), message),
                )
            self._jobs_active += 1
            peer["jobs_active"] += 1
            return None

    def _answer_job(self, payload: bytes, peer: dict) -> bytes:
        """The reply frame for one JOB request."""
        try:
            (
                job_tag,
                omega,
                num_qubits,
                max_rounds,
                encoded,
                priority,
            ) = unpack_job_payload(payload)
        except FrameProtocolError as exc:
            return pack_frame(
                FRAME_ERROR, pack_error_payload(ERR_BAD_FRAME, str(exc))
            )
        refusal = self._admit_job(peer)
        if refusal is not None:
            return refusal
        t0 = time.perf_counter()
        try:
            circuit = Circuit(decode_segment(encoded), num_qubits)
            view = self._scheduler.view(weight=priority)
            result = popqc(
                circuit,
                self.oracle,
                omega,
                parmap=view,
                max_rounds=max_rounds,
            )
        except Exception as exc:  # noqa: BLE001 - forwarded to the client
            with self._lock:
                self._jobs_active -= 1
                peer["jobs_active"] -= 1
                self.jobs_failed += 1
                peer["jobs_failed"] += 1
            return pack_frame(
                FRAME_ERROR, pack_error_payload(ERR_JOB_FAILED, repr(exc))
            )
        elapsed = time.perf_counter() - t0
        stats_json = json.dumps(
            self._job_stats(result.stats, elapsed, priority)
        ).encode("utf-8")
        out = encode_segment(result.circuit.gates)
        with self._lock:
            self._jobs_active -= 1
            peer["jobs_active"] -= 1
            self.jobs_completed += 1
            peer["jobs_completed"] += 1
            self._latencies.append(elapsed)
        return pack_frame(
            FRAME_RESULT, pack_result_payload(job_tag, stats_json, out)
        )

    @staticmethod
    def _job_stats(stats, wall_seconds: float, priority: int = 1) -> dict:
        """The per-job stats object shipped in a RESULT frame."""
        return {
            "initial_gates": stats.initial_gates,
            "final_gates": stats.final_gates,
            "gate_reduction": stats.gate_reduction,
            "rounds": stats.rounds,
            "oracle_calls": stats.oracle_calls,
            "oracle_calls_saved": stats.oracle_calls_saved,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "cache_hit_rate": stats.cache_hit_rate,
            "cache_bytes_saved": stats.cache_bytes_saved,
            "cache_lookup_seconds": stats.cache_lookup_seconds,
            "transport": stats.transport,
            "workers": stats.workers,
            "total_seconds": stats.total_time,
            "wall_seconds": wall_seconds,
            "priority": priority,
        }

    def status(self) -> dict:
        """The server-status object answered to STATUS frames."""
        with self._lock:
            latencies = list(self._latencies)
            status = {
                "address": self.address,
                "uptime_seconds": time.monotonic() - self._started,
                "jobs_completed": self.jobs_completed,
                "jobs_failed": self.jobs_failed,
                "jobs_active": self._jobs_active,
                "admission": {
                    "auth_required": self._auth_token is not None,
                    "auth_failures": self.auth_failures,
                    "max_active_jobs": self.max_active_jobs,
                    "max_jobs_per_peer": self.max_jobs_per_peer,
                    "max_pending_rounds": self.max_pending_rounds,
                    "jobs_rejected": self.jobs_rejected,
                },
                "clients": {
                    addr: dict(entry) for addr, entry in self._peers.items()
                },
            }
        status["scheduler"] = {
            "rounds_dispatched": self._scheduler.rounds_dispatched,
            "requests_merged": self._scheduler.requests_merged,
            "segments_dispatched": self._scheduler.segments_dispatched,
            "pending_segments": self._scheduler.pending_segments,
        }
        fleet = self._scheduler.fleet
        status["fleet"] = {
            "workers": fleet.workers,
            "transport": getattr(fleet, "transport", "encoded"),
            "hosts": list(getattr(fleet, "hosts", [])),
        }
        status["cache"] = (
            self.cache.stats.as_dict() if self.cache is not None else None
        )
        with self._scale_lock:
            spawned = [worker.address for worker in self._spawned]
        status["autoscale"] = {
            "enabled": self.max_workers is not None,
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "scale_window_seconds": self.scale_window_seconds,
            "spawned_workers": spawned,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "scale_failures": self.scale_failures,
        }
        status["cluster_cache"] = {
            "lookups": self.cluster_cache_lookups,
            "hits": self.cluster_cache_hits,
            "stores": self.cluster_cache_stores,
        }
        status["job_latency"] = {
            "count": len(latencies),
            "mean_seconds": sum(latencies) / len(latencies) if latencies else 0.0,
            "max_seconds": max(latencies) if latencies else 0.0,
            "last_seconds": latencies[-1] if latencies else 0.0,
        }
        return status

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"OptimizationService({self.address}, "
            f"jobs={self.jobs_completed}, active={self._jobs_active})"
        )
