"""The ``popqc serve`` daemon: optimization jobs as a network service.

One long-running process owns the expensive state — a warm worker
fleet (any of the five transports), a registered oracle, and the
content-addressed segment cache — and serves optimization *jobs*
submitted over TCP.  The wire protocol is the same length-prefixed
frame codec as the distributed worker transport
(:mod:`repro.parallel.dist`), extended with three frame types:

* ``JOB`` — a circuit (as one packed segment) plus Ω and run options;
* ``RESULT`` — the optimized circuit (packed) plus a per-job stats
  JSON object (gate reduction, rounds, cache hit rate, latency);
* ``STATUS`` — an empty request answered with a server-status JSON
  (jobs served, cache hit rate, per-job latency, fleet shape).

Each client connection is served by its own thread, one job at a time
per connection; *across* connections, jobs run concurrently and their
oracle rounds are merged into shared fleet rounds by the
:class:`~repro.service.scheduler.FleetScheduler`, with the segment
cache short-circuiting any segment the service has optimized before.
A job's output is byte-identical to a standalone ``popqc`` run of the
same circuit with the same oracle and Ω.
"""

from __future__ import annotations

import contextlib
import json
import socket
import threading
import time
from collections import deque
from typing import Optional, Sequence

from ..circuits import Circuit
from ..circuits.encoding import decode_segment, encode_segment
from ..core import popqc
from ..parallel import ProcessMap
from ..parallel.dist import (
    ERR_BAD_FRAME,
    ERR_JOB_FAILED,
    FRAME_ERROR,
    FRAME_JOB,
    FRAME_PING,
    FRAME_PONG,
    FRAME_RESULT,
    FRAME_SHUTDOWN,
    FRAME_STATUS,
    ConnectionClosedError,
    FrameProtocolError,
    FrameReader,
    pack_error_payload,
    pack_frame,
    pack_result_payload,
    recv_frame,
    unpack_job_payload,
)
from .cache import SegmentCache
from .scheduler import FleetScheduler

__all__ = ["OptimizationService", "ServiceError"]


class ServiceError(RuntimeError):
    """A job failed server-side; the message carries the remote repr."""


class OptimizationService:
    """TCP daemon multiplexing optimization jobs over one warm fleet.

    Parameters
    ----------
    oracle:
        The oracle every job is optimized against (jobs choose Ω and
        round caps, not the oracle — the fleet registers exactly one).
    host / port:
        Bind endpoint; ``port=0`` picks an ephemeral port
        (:attr:`address` reports the bound one).
    workers / transport / hosts:
        Fleet shape, passed to :class:`~repro.parallel.ProcessMap`
        (``hosts`` for ``transport="socket"``).
    cache:
        A :class:`~repro.service.cache.SegmentCache`, or ``None`` to
        build a default in-memory cache, or ``False`` to serve without
        one (every segment pays the oracle).  Keys are scoped per
        oracle by the scheduler's lookup protocol itself, so a cache
        (or its disk store) needs no namespace of its own and is
        interchangeable with the ``ProcessMap(cache=...)`` path.
    gather_window_seconds:
        Cross-job merge window of the round scheduler.

    Attributes
    ----------
    jobs_completed / jobs_failed:
        Totals across all connections.
    bytes_received / bytes_sent:
        Frame bytes in and out, payloads included.
    """

    def __init__(
        self,
        oracle: object,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: Optional[int] = None,
        transport: str = "encoded",
        hosts: Optional[Sequence[str]] = None,
        cache: object = None,
        gather_window_seconds: float = 0.002,
    ):
        self.oracle = oracle
        if cache is None:
            cache = SegmentCache()
        elif cache is False:
            cache = None
        self.cache = cache
        fleet = ProcessMap(workers, transport=transport, hosts=hosts)
        self._scheduler = FleetScheduler(
            fleet, cache=cache, gather_window_seconds=gather_window_seconds
        )
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.bytes_received = 0
        self.bytes_sent = 0
        self._jobs_active = 0
        self._latencies: deque[float] = deque(maxlen=256)
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._closing = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: list[threading.Thread] = []
        self._conns: list[socket.socket] = []

    @property
    def address(self) -> str:
        """The bound endpoint as ``"host:port"``."""
        return f"{self.host}:{self.port}"

    @property
    def jobs_active(self) -> int:
        """Jobs currently being optimized."""
        return self._jobs_active

    # -- lifecycle (mirrors WorkerHost) ---------------------------------------

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`stop` (blocking)."""
        while not self._closing.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:  # listener shut down by stop()
                break
            if self._closing.is_set():
                with contextlib.suppress(OSError):
                    conn.close()
                break
            with self._lock:
                self._conns.append(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            self._conn_threads = [t for t in self._conn_threads if t.is_alive()]
            self._conn_threads.append(thread)
            thread.start()

    def start(self) -> "OptimizationService":
        """Serve in a daemon thread (for in-process tests); returns self."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Close the listener, connections, scheduler and fleet."""
        self._closing.set()
        with contextlib.suppress(OSError):
            self._listener.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._listener.close()
        with self._lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            with contextlib.suppress(OSError):
                conn.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                conn.close()
        for thread in self._conn_threads:
            thread.join(timeout=5.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
        self._scheduler.close()

    # -- connection handling ---------------------------------------------------

    def _send(self, conn: socket.socket, frame: bytes) -> None:
        conn.sendall(frame)
        with self._lock:
            self.bytes_sent += len(frame)

    def _serve_connection(self, conn: socket.socket) -> None:
        """Serve one client until it disconnects or the service stops."""
        reader = FrameReader()
        try:
            while True:
                frame_type, payload = recv_frame(conn, reader)
                with self._lock:
                    self.bytes_received += 16 + len(payload)
                if frame_type == FRAME_JOB:
                    self._send(conn, self._answer_job(payload))
                elif frame_type == FRAME_STATUS:
                    body = json.dumps(self.status()).encode("utf-8")
                    self._send(conn, pack_frame(FRAME_STATUS, body))
                elif frame_type == FRAME_PING:
                    self._send(conn, pack_frame(FRAME_PONG))
                elif frame_type == FRAME_SHUTDOWN:
                    return
                else:
                    self._send(
                        conn,
                        pack_frame(
                            FRAME_ERROR,
                            pack_error_payload(
                                ERR_BAD_FRAME,
                                f"unexpected frame type {frame_type}",
                            ),
                        ),
                    )
        except (ConnectionClosedError, FrameProtocolError, OSError):
            return  # client went away; nothing to answer
        finally:
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)
            with contextlib.suppress(OSError):
                conn.close()

    # -- job execution ---------------------------------------------------------

    def _answer_job(self, payload: bytes) -> bytes:
        """The reply frame for one JOB request."""
        try:
            job_tag, omega, num_qubits, max_rounds, encoded = unpack_job_payload(
                payload
            )
        except FrameProtocolError as exc:
            return pack_frame(
                FRAME_ERROR, pack_error_payload(ERR_BAD_FRAME, str(exc))
            )
        with self._lock:
            self._jobs_active += 1
        t0 = time.perf_counter()
        try:
            circuit = Circuit(decode_segment(encoded), num_qubits)
            view = self._scheduler.view()
            result = popqc(
                circuit,
                self.oracle,
                omega,
                parmap=view,
                max_rounds=max_rounds,
            )
        except Exception as exc:  # noqa: BLE001 - forwarded to the client
            with self._lock:
                self._jobs_active -= 1
                self.jobs_failed += 1
            return pack_frame(
                FRAME_ERROR, pack_error_payload(ERR_JOB_FAILED, repr(exc))
            )
        elapsed = time.perf_counter() - t0
        stats_json = json.dumps(
            self._job_stats(result.stats, elapsed)
        ).encode("utf-8")
        out = encode_segment(result.circuit.gates)
        with self._lock:
            self._jobs_active -= 1
            self.jobs_completed += 1
            self._latencies.append(elapsed)
        return pack_frame(
            FRAME_RESULT, pack_result_payload(job_tag, stats_json, out)
        )

    @staticmethod
    def _job_stats(stats, wall_seconds: float) -> dict:
        """The per-job stats object shipped in a RESULT frame."""
        return {
            "initial_gates": stats.initial_gates,
            "final_gates": stats.final_gates,
            "gate_reduction": stats.gate_reduction,
            "rounds": stats.rounds,
            "oracle_calls": stats.oracle_calls,
            "oracle_calls_saved": stats.oracle_calls_saved,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "cache_hit_rate": stats.cache_hit_rate,
            "cache_bytes_saved": stats.cache_bytes_saved,
            "cache_lookup_seconds": stats.cache_lookup_seconds,
            "transport": stats.transport,
            "workers": stats.workers,
            "total_seconds": stats.total_time,
            "wall_seconds": wall_seconds,
        }

    def status(self) -> dict:
        """The server-status object answered to STATUS frames."""
        with self._lock:
            latencies = list(self._latencies)
            status = {
                "address": self.address,
                "uptime_seconds": time.monotonic() - self._started,
                "jobs_completed": self.jobs_completed,
                "jobs_failed": self.jobs_failed,
                "jobs_active": self._jobs_active,
            }
        status["scheduler"] = {
            "rounds_dispatched": self._scheduler.rounds_dispatched,
            "requests_merged": self._scheduler.requests_merged,
            "segments_dispatched": self._scheduler.segments_dispatched,
        }
        fleet = self._scheduler.fleet
        status["fleet"] = {
            "workers": fleet.workers,
            "transport": getattr(fleet, "transport", "encoded"),
        }
        status["cache"] = (
            self.cache.stats.as_dict() if self.cache is not None else None
        )
        status["job_latency"] = {
            "count": len(latencies),
            "mean_seconds": sum(latencies) / len(latencies) if latencies else 0.0,
            "max_seconds": max(latencies) if latencies else 0.0,
            "last_seconds": latencies[-1] if latencies else 0.0,
        }
        return status

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"OptimizationService({self.address}, "
            f"jobs={self.jobs_completed}, active={self._jobs_active})"
        )
