"""Cross-job round scheduling over one persistent worker fleet.

A ``popqc serve`` daemon runs many optimization jobs concurrently, but
owns exactly one warm :class:`~repro.parallel.ProcessMap` fleet — the
expensive thing (spawned workers, registered oracle, pooled arenas,
connected hosts) that the whole service exists to amortize.  This
module multiplexes the jobs onto it:

* Each job optimizes through a :class:`FleetView` — an object shaped
  like a ``ParallelMap`` (it has ``map_segments``), so the unmodified
  POPQC driver runs against it.
* Every ``map_segments`` round a job issues becomes a *round request*
  on the shared :class:`FleetScheduler`.  The scheduler front-ends the
  request with the content-addressed segment cache (hits are answered
  immediately and never enter the queue — per-job hit accounting falls
  out for free), then merges the cache-missing segments of every
  concurrently pending request into **one** combined
  ``fleet.map_segments`` call.  The fleet's own
  :func:`~repro.parallel.scheduling.batch_segments` policy then splits
  the combined round across workers exactly as it would a single big
  job — so two half-width jobs fill the fleet as well as one full-width
  job, instead of each using half of it.
* Results are split back per request, cache-missing outputs are stored
  as packed bytes on the way out, and each job's driver resumes.

Merging is opportunistic: the dispatcher grabs whatever requests are
pending (after a short gather window, giving concurrent jobs that are
mid-round a beat to arrive) and never delays a lone request by more
than that window.

Merged rounds are **weighted-fair**, not all-you-can-eat: each fleet
round carries at most ``round_budget_segments`` segments, split
between the pending requests in proportion to their jobs' priority
weights (every waiting request gets at least one segment).  A request
bigger than its share is dispatched *partially* and finishes over
several rounds — which is exactly the point: a 10M-gate batch job's
round no longer occupies the fleet wall-to-wall while a 50-gate
interactive submit waits for it to drain.  The interactive job's
round completes within ``ceil(segments / share)`` fleet rounds of
arriving, regardless of how much batch work is queued.  Per-segment
results are independent of the round composition on every transport,
so a job's output is byte-identical whether its rounds ran alone,
merged, split across fleet rounds, or from the cache.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, Sequence

from ..circuits.gate import Gate
from ..parallel.executor import _cached_round, oracle_cache_namespace
from .cache import SegmentCache

__all__ = ["FleetScheduler", "FleetView"]


class _RoundRequest:
    """One job's pending oracle round (its cache misses only).

    A request may span several fleet rounds: ``next_index`` marks the
    first segment not yet dispatched, ``results`` fills in place as
    slices come back, and ``done`` fires once every slot is filled (or
    the request failed).  The dispatcher is single-threaded and each
    fleet round is synchronous, so dispatched always implies resolved
    by the end of the round that carried it.
    """

    __slots__ = (
        "oracle",
        "segments",
        "weight",
        "next_index",
        "done",
        "results",
        "error",
    )

    def __init__(self, oracle, segments, weight: int = 1):
        self.oracle = oracle
        self.segments = segments
        self.weight = max(1, int(weight))
        self.next_index = 0
        self.done = threading.Event()
        self.results: list = [None] * len(segments)
        self.error: Optional[BaseException] = None

    @property
    def remaining(self) -> int:
        """Segments not yet dispatched to the fleet."""
        return len(self.segments) - self.next_index


class FleetScheduler:
    """Serializes concurrent jobs' rounds onto one shared fleet.

    Parameters
    ----------
    fleet:
        The persistent executor (any transport).  The scheduler owns
        its dispatch: jobs must reach it only through
        :class:`FleetView`.  Configure the fleet *without* a cache —
        the scheduler fronts it here so hits are attributed per job.
    cache:
        Optional :class:`~repro.service.cache.SegmentCache` consulted
        before any segment is queued for dispatch.
    gather_window_seconds:
        How long the dispatcher waits, after the first pending request,
        for concurrent jobs' rounds to arrive and merge.  The cost of a
        lone job's round is bounded by this; the win is whole-fleet
        batching for overlapping jobs.
    round_budget_segments:
        The most segments one merged fleet round may carry — the
        weighted-fair quantum.  ``None`` (default) computes
        ``max(16, 4 * fleet.workers)``: big enough to keep every
        worker batched, small enough that an interactive job never
        waits behind more than one quantum of batch work.

    Attributes
    ----------
    rounds_dispatched / requests_merged / segments_dispatched:
        Combined fleet rounds run, job round-request participations
        they carried, and segments they carried.  A request split
        across fleet rounds counts one participation per round, so
        ``requests_merged > rounds_dispatched`` is cross-job batching
        (or fair splitting) actually happening.
    """

    def __init__(
        self,
        fleet,
        cache: Optional[SegmentCache] = None,
        gather_window_seconds: float = 0.002,
        round_budget_segments: Optional[int] = None,
    ):
        if round_budget_segments is not None and round_budget_segments < 1:
            raise ValueError("round_budget_segments must be positive")
        self.fleet = fleet
        self.cache = cache
        self.gather_window_seconds = gather_window_seconds
        self.round_budget_segments = round_budget_segments
        self.rounds_dispatched = 0
        self.requests_merged = 0
        self.segments_dispatched = 0
        self._pending: list[_RoundRequest] = []
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closing = False
        # oracle digest memoized by identity: one pickle per oracle,
        # not one per job round.  A single (oracle, digest) tuple —
        # run_round is called from many connection threads, and a
        # torn two-field memo could pair one oracle with another's
        # digest; the tuple makes the worst case a recompute.
        self._ns_memo: tuple[object, bytes] = (None, b"")
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="fleet-scheduler", daemon=True
        )
        self._thread.start()

    def view(self, weight: int = 1) -> "FleetView":
        """A fresh per-job executor proxy bound to this scheduler.

        ``weight`` is the job's priority weight: its share of every
        merged fleet round is proportional to it (a weight-4 job draws
        roughly 4x the segments per round of a weight-1 job).
        """
        return FleetView(self, weight=weight)

    @property
    def pending_requests(self) -> int:
        """Round requests currently queued or mid-flight (admission
        control reads this as the queue depth)."""
        with self._lock:
            return len(self._pending)

    @property
    def pending_segments(self) -> int:
        """Segments queued but not yet dispatched, across all pending
        requests — the backlog signal the service's autoscaler reads
        to decide whether the fleet is underwater."""
        with self._lock:
            return sum(req.remaining for req in self._pending)

    def close(self) -> None:
        """Stop the dispatcher and close the fleet (idempotent).

        Pending and future requests fail with :class:`RuntimeError`
        rather than hanging.
        """
        with self._wake:
            if self._closing:
                return
            self._closing = True
            pending, self._pending = self._pending, []
            self._wake.notify_all()
        for req in pending:
            req.error = RuntimeError("fleet scheduler closed")
            req.done.set()
        self._thread.join(timeout=5.0)
        self.fleet.close()

    # -- job-facing entry point ------------------------------------------------

    def _namespace(self, oracle: object) -> bytes:
        """Oracle-scoping key material for cache lookups (memoized).

        Tuple-swapped memo: concurrent job threads can at worst
        recompute the digest, never observe a cross-oracle pairing.
        """
        memo_oracle, memo_ns = self._ns_memo
        if memo_oracle is not oracle:
            memo_ns = oracle_cache_namespace(oracle)
            self._ns_memo = (oracle, memo_ns)
        return memo_ns

    def run_round(
        self,
        oracle: Callable[[list[Gate]], list[Gate]],
        segments: Sequence[list[Gate]],
        weight: int = 1,
    ) -> tuple[list, int, int, int, float]:
        """One job round: cache front, then merged fleet dispatch.

        Returns ``(results, cache hits, cache misses, bytes served
        from cache, lookup seconds)``; results are in segment order
        and byte-identical to an uncached, unmerged round.  Without a
        cache every counter is 0 — segments dispatched straight to the
        fleet are not "misses", there was no lookup.  The cache
        protocol is :func:`repro.parallel.executor._cached_round` —
        the same one ``ProcessMap(cache=...)`` runs, so a disk store
        is readable by both paths interchangeably — with the
        merged-dispatch queue as its miss route, so hits never enter
        the queue at all.  ``weight`` buys the request its
        weighted-fair share of each merged fleet round.
        """
        n = len(segments)
        if n == 0:
            return [], 0, 0, 0, 0.0
        if self.cache is None:
            return self._dispatch(list(segments), oracle, weight), 0, 0, 0, 0.0
        return _cached_round(
            self.cache,
            self._namespace(oracle),
            segments,
            lambda missed: self._dispatch(missed, oracle, weight),
            getattr(self.fleet, "_decode_stats", None),
        )

    # -- merged dispatch -------------------------------------------------------

    def _dispatch(self, segments: list, oracle, weight: int = 1) -> list:
        """Queue one round request and block until the fleet answers."""
        req = _RoundRequest(oracle, segments, weight)
        with self._wake:
            if self._closing:
                raise RuntimeError("fleet scheduler closed")
            self._pending.append(req)
            self._wake.notify_all()
        req.done.wait()
        if req.error is not None:
            raise req.error
        return req.results

    def _round_budget(self) -> int:
        """The segment quantum of one merged fleet round."""
        if self.round_budget_segments is not None:
            return self.round_budget_segments
        return max(16, 4 * getattr(self.fleet, "workers", 4))

    def _take_round(self) -> list[tuple[_RoundRequest, int, int]]:
        """The next merged round as ``(request, start, count)`` slices.

        Blocks until at least one request is queued, lingers for the
        gather window, then allocates the round budget across every
        pending request sharing the first one's oracle (the fleet
        registers one oracle per round; a job running a different
        oracle simply waits one round) by weighted share: request
        ``i`` gets ``max(1, budget * weight_i / sum(weights))``
        segments, in arrival order, and any budget left after the
        shares (requests smaller than their share) tops up the
        heaviest requests first.  Requests are *not* removed from the
        pending list here — a partially dispatched request stays
        queued for the next round's allocation.
        """
        with self._wake:
            while not self._pending and not self._closing:
                self._wake.wait()
            if self._closing:
                return []
        if self.gather_window_seconds > 0:
            time.sleep(self.gather_window_seconds)
        with self._wake:
            if not self._pending:
                return []
            lead = self._pending[0].oracle
            group = [r for r in self._pending if r.oracle is lead]
            budget = self._round_budget()
            total_weight = sum(r.weight for r in group)
            parts: list[tuple[_RoundRequest, int, int]] = []
            left = budget
            for req in group:
                if left <= 0:
                    break
                share = max(1, (budget * req.weight) // total_weight)
                take = min(req.remaining, share, left)
                if take > 0:
                    parts.append((req, req.next_index, take))
                    req.next_index += take
                    left -= take
            if left > 0:
                # leftover budget: heaviest first, then arrival order
                # (Python's sort is stable, so ties keep queue order)
                for req in sorted(group, key=lambda r: -r.weight):
                    if left <= 0:
                        break
                    take = min(req.remaining, left)
                    if take > 0:
                        parts.append((req, req.next_index, take))
                        req.next_index += take
                        left -= take
            return parts

    def _dispatch_loop(self) -> None:
        """Dispatcher thread: allocate, run, scatter, repeat until closed."""
        while True:
            parts = self._take_round()
            if not parts:
                with self._lock:
                    if self._closing:
                        return
                continue
            merged: list = []
            for req, start, count in parts:
                merged.extend(req.segments[start : start + count])
            involved = {id(req): req for req, _, _ in parts}
            try:
                flat = self.fleet.map_segments(parts[0][0].oracle, merged)
            except BaseException as exc:  # noqa: BLE001 - forwarded per job
                with self._wake:
                    self._pending = [
                        r for r in self._pending if id(r) not in involved
                    ]
                for req in involved.values():
                    req.error = exc
                    req.done.set()
                continue
            pos = 0
            for req, start, count in parts:
                req.results[start : start + count] = flat[pos : pos + count]
                pos += count
            completed: list[_RoundRequest] = []
            with self._wake:
                self.rounds_dispatched += 1
                self.requests_merged += len(involved)
                self.segments_dispatched += len(merged)
                for req in involved.values():
                    if req.remaining == 0 and req in self._pending:
                        self._pending.remove(req)
                        completed.append(req)
            for req in completed:
                req.done.set()


class FleetView:
    """A per-job ``ParallelMap`` proxy over the shared scheduler.

    Implements just enough of the executor surface for the POPQC
    driver: ``map_segments`` (routed through
    :meth:`FleetScheduler.run_round`), a serial ``map`` fallback, and
    the per-job cache counters the stats layer snapshots
    (``cache_hits`` / ``cache_misses`` / ``cache_bytes_saved`` /
    ``cache_lookup_seconds``), so ``OptimizationStats.cache_hit_rate``
    and the lookup-cost accounting are exact for *this* job even while
    other jobs share the cache and the fleet.  ``weight`` is the job's
    priority weight, carried into every round request it issues.
    """

    def __init__(self, scheduler: FleetScheduler, weight: int = 1):
        self._scheduler = scheduler
        self.weight = max(1, int(weight))
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_bytes_saved = 0
        self.cache_lookup_seconds = 0.0
        self.last_serialization_time = 0.0

    @property
    def workers(self) -> int:
        """The shared fleet's worker count."""
        return self._scheduler.fleet.workers

    @property
    def transport(self) -> str:
        """The shared fleet's wire format (labels per-job stats)."""
        return getattr(self._scheduler.fleet, "transport", "encoded")

    def map_segments(
        self,
        oracle: Callable[[list[Gate]], list[Gate]],
        segments: Sequence[list[Gate]],
    ) -> list:
        """One oracle round through the cache and the shared fleet."""
        results, hits, misses, saved, lookup = self._scheduler.run_round(
            oracle, segments, weight=self.weight
        )
        self.cache_hits += hits
        self.cache_misses += misses
        self.cache_bytes_saved += saved
        self.cache_lookup_seconds += lookup
        return results

    def map(self, fn, items):
        """Serial fallback map (jobs parallelize through segments only)."""
        return [fn(item) for item in items]

    def close(self) -> None:
        """No-op: the scheduler owns the fleet's lifetime."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FleetView(scheduler={self._scheduler!r})"
