"""The index tree (paper Section 3, Figure 1).

A complete binary tree over the circuit's gate array.  Each leaf carries
weight 1 if the corresponding array slot holds a gate and 0 if it holds a
tombstone; each internal node carries the sum of its children.  The tree
supports, in O(lg n):

* ``before(i)`` — number of live gates strictly before array index ``i``;
* ``select(r)`` — array index of the live gate with rank ``r``;

and O(l lg n) batched weight updates for ``l`` modified slots, matching
the cost table of Algorithm 1 in the paper.

The tree is stored in numpy heap layout (node ``k``'s children are
``2k`` and ``2k+1``), which makes construction a handful of vectorized
adds and keeps the memory footprint at ~16 bytes per gate.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["IndexTree"]


class IndexTree:
    """Rank/select structure over a boolean liveness array.

    Parameters
    ----------
    flags:
        Initial liveness of each array slot (1 = gate, 0 = tombstone).
    """

    __slots__ = ("_size", "_cap", "_w")

    def __init__(self, flags: Sequence[int] | np.ndarray):
        n = len(flags)
        cap = 1
        while cap < max(n, 1):
            cap <<= 1
        w = np.zeros(2 * cap, dtype=np.int64)
        if n:
            w[cap : cap + n] = np.asarray(flags, dtype=np.int64)
        # Build internal levels bottom-up with vectorized pairwise sums.
        lo = cap
        while lo > 1:
            half = lo >> 1
            level = w[lo : 2 * lo]
            w[half:lo] = level[0::2] + level[1::2]
            lo = half
        self._size = n
        self._cap = cap
        self._w = w

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        """Number of array slots (live + tombstoned)."""
        return self._size

    @property
    def total(self) -> int:
        """Number of live slots."""
        return int(self._w[1]) if self._size else 0

    def is_live(self, index: int) -> bool:
        """Whether slot ``index`` currently holds a gate."""
        self._check_index(index)
        return bool(self._w[self._cap + index])

    def before(self, index: int) -> int:
        """Count of live slots strictly before ``index``.

        ``index`` may equal ``len(self)``, in which case the live total
        is returned (useful for half-open range arithmetic).
        """
        if index < 0 or index > self._size:
            raise IndexError(f"index {index} out of range [0, {self._size}]")
        if index == self._size:
            # Prefix over the whole array; also avoids walking off the
            # heap when size == capacity.
            return self.total
        w = self._w
        pos = self._cap + index
        acc = 0
        while pos > 1:
            if pos & 1:
                acc += w[pos - 1]
            pos >>= 1
        return int(acc)

    def select(self, rank: int) -> int:
        """Array index of the live slot with 0-based rank ``rank``."""
        if rank < 0 or rank >= self.total:
            raise IndexError(f"rank {rank} out of range [0, {self.total})")
        w = self._w
        pos = 1
        r = rank
        while pos < self._cap:
            left = 2 * pos
            lw = w[left]
            if r < lw:
                pos = left
            else:
                r -= int(lw)
                pos = left + 1
        return pos - self._cap

    def next_live(self, index: int) -> int | None:
        """Smallest live slot index >= ``index``, or None if none exists."""
        if index < 0:
            index = 0
        if index >= self._size:
            return None
        rank = self.before(index)
        if self.is_live(index):
            return index
        if rank >= self.total:
            return None
        return self.select(rank)

    # -- updates ---------------------------------------------------------

    def set_live(self, index: int, live: bool) -> None:
        """Set the liveness of one slot, updating ancestor weights."""
        self._check_index(index)
        w = self._w
        pos = self._cap + index
        delta = int(live) - int(w[pos])
        if delta == 0:
            return
        while pos >= 1:
            w[pos] += delta
            pos >>= 1

    def set_live_batch(self, updates: Iterable[tuple[int, bool]]) -> None:
        """Apply many ``(index, live)`` updates.

        Cost O(l lg n) for ``l`` updates; matches the paper's
        ``substitute`` bound.
        """
        for index, live in updates:
            self.set_live(index, live)

    # -- bulk views --------------------------------------------------------

    def live_indices(self) -> np.ndarray:
        """Sorted array of all live slot indices (O(n))."""
        leaves = self._w[self._cap : self._cap + self._size]
        return np.nonzero(leaves)[0]

    def _check_index(self, index: int) -> None:
        if index < 0 or index >= self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")

    def __repr__(self) -> str:  # pragma: no cover
        return f"IndexTree(size={self._size}, live={self.total})"
