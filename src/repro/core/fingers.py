"""Finger selection (paper Algorithm 4).

Fingers are array indices into the tombstone array marking regions that
may still contain unoptimized Ω-segments.  Two fingers are
*non-interfering* when at least 2Ω live gates separate them, which makes
the 2Ω-segments centered on them disjoint and safe to optimize in
parallel (Lemma 5).

``select_fingers`` partitions the circuit's live ranks into groups of 2Ω
and picks the first finger of every even-numbered group (or of every odd
group, whichever set is larger), guaranteeing that at least a 1/4Ω
fraction of all fingers is selected each round (Lemma 1).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["select_fingers", "initial_fingers"]


def initial_fingers(num_gates: int, omega: int) -> list[int]:
    """Initial finger set: one finger at the start of each Ω-segment.

    Matches Algorithm 2 line 2 (``{0, Ω, 2Ω, ...}``) restricted to valid
    array indices.
    """
    if omega < 1:
        raise ValueError("omega must be positive")
    if num_gates <= 0:
        return []
    return list(range(0, num_gates, omega))


def select_fingers(
    ranks: Sequence[int], omega: int
) -> tuple[list[int], list[int]]:
    """Partition finger *positions* into (selected, remaining).

    Parameters
    ----------
    ranks:
        The live rank of each finger, in sorted order (the caller computes
        ``ranks[i] = C.before(F[i])``; sortedness follows from F being
        sorted by array index).
    omega:
        The segment-size parameter Ω.

    Returns
    -------
    (selected, remaining):
        Index lists into the finger array.  ``selected`` is
        non-interfering: consecutive selected fingers differ in rank by
        at least 2Ω (they come from distinct same-parity groups).

    Notes
    -----
    Follows Algorithm 4: group index is ``rank // 2Ω``; the first finger
    of each group is eligible; the larger of the even-group and odd-group
    sets is selected.  Ties go to the odd set, matching the pseudocode's
    strict ``>`` comparison.
    """
    if omega < 1:
        raise ValueError("omega must be positive")
    group_size = 2 * omega
    even: list[int] = []
    odd: list[int] = []
    prev_group = -1
    for i, rank in enumerate(ranks):
        if i > 0 and rank < ranks[i - 1]:
            raise ValueError("finger ranks must be sorted")
        group = rank // group_size
        if group > prev_group:
            (even if group % 2 == 0 else odd).append(i)
        prev_group = group
    chosen = even if len(even) > len(odd) else odd
    chosen_set = set(chosen)
    remaining = [i for i in range(len(ranks)) if i not in chosen_set]
    return chosen, remaining
