"""Round-free sequential local optimization — the rounds ablation.

POPQC's rounds exist to expose parallelism: selection (Algorithm 4)
finds a non-interfering finger subset so their segments can be
optimized concurrently.  On a single thread the rounds are pure
structure, so the natural sequential ablation processes one finger at
a time with no selection and no barrier.  The invariant ("every
unoptimized Ω-segment contains a finger") and therefore Theorem 7's
local-optimality guarantee are preserved — the proof of Lemma 6 never
uses the round structure.

Comparing :func:`popqc_greedy` against ``popqc(..., SerialMap())``
isolates the overhead of per-round rank recomputation and selection
(``benchmarks/test_ablations.py``), and gives the best possible
sequential baseline built from POPQC's own machinery.
"""

from __future__ import annotations

import bisect
import time
from typing import Optional, Sequence

from ..circuits import Circuit, Gate
from .fingers import initial_fingers
from .popqc import CostFn, OracleFn, PopqcResult
from .stats import OptimizationStats, RoundStats
from .tombstone import TombstoneArray

__all__ = ["popqc_greedy"]


def popqc_greedy(
    circuit: Circuit | Sequence[Gate],
    oracle: OracleFn,
    omega: int,
    *,
    cost: Optional[CostFn] = None,
    max_steps: Optional[int] = None,
) -> PopqcResult:
    """Sequential local optimization: one finger at a time, left to right.

    Produces a locally optimal circuit (same guarantee as
    :func:`repro.core.popqc.popqc`) with zero parallelism and zero
    selection overhead.  ``stats.rounds`` counts processed fingers.
    """
    if omega < 1:
        raise ValueError("omega must be positive")
    if isinstance(circuit, Circuit):
        gates = list(circuit.gates)
        num_qubits: Optional[int] = circuit.num_qubits
    else:
        gates = list(circuit)
        num_qubits = None
    cost_fn = cost if cost is not None else (lambda seg: float(len(seg)))

    stats = OptimizationStats(
        initial_gates=len(gates), initial_cost=cost_fn(gates), workers=1
    )
    t_start = time.perf_counter()
    array: TombstoneArray[Gate] = TombstoneArray(gates)
    fingers = initial_fingers(len(gates), omega)  # sorted array indices

    steps = 0
    while fingers:
        if max_steps is not None and steps >= max_steps:
            break
        steps += 1
        f = fingers.pop(0)
        total_live = array.live_count
        if total_live == 0:
            break
        rank = min(array.before(f), total_live)
        lo = max(0, rank - omega)
        hi = min(total_live, rank + omega)
        slots, seg = array.segment(lo, hi)
        if not slots:
            continue
        t_oracle = time.perf_counter()
        opt = oracle(seg)
        stats.oracle_time += time.perf_counter() - t_oracle
        stats.oracle_calls += 1
        if len(opt) <= len(slots) and cost_fn(opt) < cost_fn(seg):
            stats.oracle_accepted += 1
            updates = [
                (slot, opt[i] if i < len(opt) else None)
                for i, slot in enumerate(slots)
            ]
            new_fingers = []
            if lo > 0:
                new_fingers.append(slots[0])
            if hi < total_live:
                new_fingers.append(array.index_of(hi))
            array.substitute(updates)
            for nf in new_fingers:
                pos = bisect.bisect_left(fingers, nf)
                if pos >= len(fingers) or fingers[pos] != nf:
                    fingers.insert(pos, nf)

    final_gates = array.items()
    stats.rounds = steps
    stats.final_gates = len(final_gates)
    stats.final_cost = cost_fn(final_gates)
    stats.total_time = time.perf_counter() - t_start
    stats.admin_time = max(0.0, stats.total_time - stats.oracle_time)
    stats.per_round.append(
        RoundStats(
            fingers=steps,
            selected=stats.oracle_calls,
            accepted=stats.oracle_accepted,
            oracle_time=stats.oracle_time,
            admin_time=stats.admin_time,
        )
    )
    return PopqcResult(Circuit(final_gates, num_qubits), stats)
