"""Fenwick-tree (binary indexed tree) rank/select structure.

An alternative implementation of the :class:`repro.core.index_tree.IndexTree`
interface with the same asymptotic bounds but a flat prefix-sum layout.
The POPQC driver accepts either (``tree_factory`` argument); the property
test suite cross-checks the two against each other and against a naive
reference, which is how we validate the index-tree logic the paper's
correctness rests on.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["FenwickTree"]


class FenwickTree:
    """Binary indexed tree over a boolean liveness array.

    Supports ``before`` (prefix count), ``select`` (binary-lifting
    descent), and point updates; drop-in compatible with
    :class:`~repro.core.index_tree.IndexTree`.
    """

    __slots__ = ("_size", "_bit", "_live", "_log")

    def __init__(self, flags: Sequence[int] | np.ndarray):
        n = len(flags)
        self._size = n
        self._live = np.asarray(flags, dtype=np.int8).copy()
        bit = np.zeros(n + 1, dtype=np.int64)
        # O(n) construction: place values then push partial sums upward.
        bit[1:] = self._live
        for i in range(1, n + 1):
            j = i + (i & -i)
            if j <= n:
                bit[j] += bit[i]
        self._bit = bit
        log = 0
        while (1 << (log + 1)) <= n:
            log += 1
        self._log = log

    def __len__(self) -> int:
        return self._size

    @property
    def total(self) -> int:
        """Number of live slots in the whole array."""
        return self.before(self._size)

    def is_live(self, index: int) -> bool:
        """Whether slot ``index`` is live (not tombstoned)."""
        self._check_index(index)
        return bool(self._live[index])

    def before(self, index: int) -> int:
        """Number of live slots strictly before ``index``."""
        if index < 0 or index > self._size:
            raise IndexError(f"index {index} out of range [0, {self._size}]")
        acc = 0
        i = index  # prefix sum over [0, index) = BIT query at position index
        bit = self._bit
        while i > 0:
            acc += bit[i]
            i -= i & -i
        return int(acc)

    def select(self, rank: int) -> int:
        """Array index of the live slot with 0-based rank ``rank``."""
        if rank < 0 or rank >= self.total:
            raise IndexError(f"rank {rank} out of range [0, {self.total})")
        pos = 0
        remaining = rank + 1
        bit = self._bit
        for k in range(self._log, -1, -1):
            nxt = pos + (1 << k)
            if nxt <= self._size and bit[nxt] < remaining:
                pos = nxt
                remaining -= int(bit[nxt])
        return pos  # 0-based index of the slot holding the target rank

    def next_live(self, index: int) -> int | None:
        """The first live slot at or after ``index`` (None past the end)."""
        if index < 0:
            index = 0
        if index >= self._size:
            return None
        if self._live[index]:
            return index
        rank = self.before(index)
        if rank >= self.total:
            return None
        return self.select(rank)

    def set_live(self, index: int, live: bool) -> None:
        """Set slot ``index``'s liveness, updating prefix sums in O(lg n)."""
        self._check_index(index)
        delta = int(live) - int(self._live[index])
        if delta == 0:
            return
        self._live[index] = int(live)
        i = index + 1
        bit = self._bit
        n = self._size
        while i <= n:
            bit[i] += delta
            i += i & -i

    def set_live_batch(self, updates: Iterable[tuple[int, bool]]) -> None:
        """Apply many ``(index, live)`` updates (point updates in a loop)."""
        for index, live in updates:
            self.set_live(index, live)

    def live_indices(self) -> np.ndarray:
        """Indices of all live slots, ascending."""
        return np.nonzero(self._live)[0]

    def _check_index(self, index: int) -> None:
        if index < 0 or index >= self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")

    def __repr__(self) -> str:  # pragma: no cover
        return f"FenwickTree(size={self._size}, live={self.total})"
