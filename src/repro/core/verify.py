"""Executable statements of the paper's guarantees.

Theorem 7 says the output of POPQC is *locally optimal*: no Ω-segment of
the result can be improved by another oracle call.  This module turns
that theorem into a checkable predicate used throughout the test suite,
plus a potential-function monitor for Lemma 2's oracle-call bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..circuits import Circuit, Gate
from .popqc import CostFn, OracleFn

__all__ = [
    "LocalOptimalityViolation",
    "find_local_optimality_violations",
    "assert_locally_optimal",
    "oracle_call_bound",
]


@dataclass
class LocalOptimalityViolation:
    """A window the oracle can still improve, refuting local optimality."""

    start_rank: int
    window: list[Gate]
    optimized: list[Gate]
    cost_before: float
    cost_after: float

    def __str__(self) -> str:  # pragma: no cover - diagnostics
        return (
            f"segment at rank {self.start_rank}: cost {self.cost_before} -> "
            f"{self.cost_after} ({len(self.window)} -> {len(self.optimized)} gates)"
        )


def find_local_optimality_violations(
    circuit: Circuit | Sequence[Gate],
    oracle: OracleFn,
    omega: int,
    *,
    cost: Optional[CostFn] = None,
    stride: int = 1,
    max_windows: Optional[int] = None,
    seed: Optional[int] = None,
) -> list[LocalOptimalityViolation]:
    """Scan every Ω-window of the circuit and report oracle improvements.

    Parameters
    ----------
    stride:
        Check windows starting at every ``stride``-th position (1 =
        exhaustive, matching the definition in Section 6).
    max_windows:
        If given, check a random sample of this many windows instead of
        all of them (for large circuits).
    """
    gates = list(circuit.gates) if isinstance(circuit, Circuit) else list(circuit)
    cost_fn = cost if cost is not None else (lambda seg: float(len(seg)))
    n = len(gates)
    if n == 0:
        return []
    starts = list(range(0, max(1, n - omega + 1), stride))
    if max_windows is not None and len(starts) > max_windows:
        rng = random.Random(seed)
        starts = sorted(rng.sample(starts, max_windows))
    violations: list[LocalOptimalityViolation] = []
    for s in starts:
        window = gates[s : s + omega]
        opt = oracle(window)
        c0, c1 = cost_fn(window), cost_fn(opt)
        if c1 < c0:
            violations.append(
                LocalOptimalityViolation(s, window, opt, c0, c1)
            )
    return violations


def assert_locally_optimal(
    circuit: Circuit | Sequence[Gate],
    oracle: OracleFn,
    omega: int,
    *,
    cost: Optional[CostFn] = None,
    stride: int = 1,
    max_windows: Optional[int] = None,
    seed: Optional[int] = None,
) -> None:
    """Raise AssertionError when any checked Ω-window is improvable."""
    violations = find_local_optimality_violations(
        circuit,
        oracle,
        omega,
        cost=cost,
        stride=stride,
        max_windows=max_windows,
        seed=seed,
    )
    if violations:
        head = "\n  ".join(str(v) for v in violations[:5])
        raise AssertionError(
            f"{len(violations)} locally non-optimal window(s), e.g.:\n  {head}"
        )


def oracle_call_bound(num_gates: int, omega: int) -> int:
    """Lemma 2's potential bound on total oracle calls.

    The potential is ``L = |F| + 2|C|`` and decreases by >= 1 per call,
    so calls are bounded by the initial potential
    ``ceil(n / omega) + 2n``.
    """
    if num_gates <= 0:
        return 0
    return -(-num_gates // omega) + 2 * num_gates
