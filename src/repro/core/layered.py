"""Layered POPQC (paper Section 7.8).

The index-tree data structure "naturally generalizes to the layered
representation of circuits: we think of each layer as a 'big' gate and
perform all operations at the granularity of layers" (Section 3).  This
module implements that generalization: the tombstone array stores whole
layers (tuples of mutually independent gates), Ω counts layers, and the
acceptance test uses a cost function over the segment's *gates* — the
depth-aware experiment uses ``cost = 10*depth + gates`` as in the paper.

The oracle still receives a flat gate list (a real optimizer does not
care about our layering); its output is re-layered before substitution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from ..circuits import Circuit, Gate, layers_asap
from ..parallel import ParallelMap, SerialMap, SimulatedParallelism
from .fingers import initial_fingers, select_fingers
from .popqc import CostFn, OracleFn, resolve_segment_transport
from .stats import (
    OptimizationStats,
    RoundStats,
    finalize_transport,
    record_transport,
)
from .tombstone import TombstoneArray

__all__ = ["layered_popqc", "LayeredPopqcResult", "mixed_cost"]

Layer = tuple[Gate, ...]


@dataclass
class LayeredPopqcResult:
    """Optimized circuit plus statistics for the layered variant."""

    circuit: Circuit
    stats: OptimizationStats


def mixed_cost(depth_weight: float = 10.0) -> CostFn:
    """The paper's depth-aware cost: ``depth_weight * depth + gates``."""
    from ..circuits import circuit_depth, gates_qubit_span

    def cost(gates: Sequence[Gate]) -> float:
        gates = list(gates)
        if not gates:
            return 0.0
        n = gates_qubit_span(gates)
        return depth_weight * circuit_depth(gates, n) + len(gates)

    return cost


class _LayerOracleTask:
    """Flatten a layer segment, run the oracle, and report raw gates."""

    __slots__ = ("oracle",)

    def __init__(self, oracle: OracleFn):
        self.oracle = oracle

    def __call__(self, layers: list[Layer]) -> list[Gate]:
        flat: list[Gate] = []
        for layer in layers:
            flat.extend(layer)
        return self.oracle(flat)


def _flatten(layers: Sequence[Layer]) -> list[Gate]:
    out: list[Gate] = []
    for layer in layers:
        out.extend(layer)
    return out


def layered_popqc(
    circuit: Circuit,
    oracle: OracleFn,
    omega: int,
    *,
    parmap: Optional[ParallelMap] = None,
    cost: Optional[CostFn] = None,
    max_rounds: Optional[int] = None,
    transport: str = "auto",
) -> LayeredPopqcResult:
    """POPQC at layer granularity with a gate-level cost function.

    ``omega`` counts *layers* (the paper uses Ω=100 layers for the
    Quartz/depth experiment).  ``cost`` defaults to the paper's mixed
    cost ``10*depth + gates``.  ``transport`` selects the oracle
    transport as in :func:`repro.core.popqc.popqc`: layer segments are
    flattened to gate lists parent-side, shipped through
    ``pmap.map_segments`` (the oracle never sees our layering anyway),
    and re-layered on return.
    """
    if omega < 1:
        raise ValueError("omega must be positive")
    pmap = parmap if parmap is not None else SerialMap()
    cost_fn = cost if cost is not None else mixed_cost()
    num_qubits = circuit.num_qubits
    use_segments = resolve_segment_transport(pmap, transport)

    layers: list[Layer] = [
        tuple(layer) for layer in layers_asap(circuit.gates, num_qubits)
    ]
    stats = OptimizationStats(
        initial_gates=circuit.num_gates,
        initial_cost=cost_fn(list(circuit.gates)),
        workers=getattr(pmap, "workers", 1),
    )
    dispatches_before = record_transport(stats, pmap, use_segments)
    t_start = time.perf_counter()

    array: TombstoneArray[Layer] = TombstoneArray(layers)
    fingers = initial_fingers(len(layers), omega)
    task = _LayerOracleTask(oracle)
    simulated = isinstance(pmap, SimulatedParallelism)

    while fingers:
        if max_rounds is not None and stats.rounds >= max_rounds:
            break
        stats.rounds += 1
        rstats = RoundStats(fingers=len(fingers))
        t_round = time.perf_counter()

        fingers = _layered_round(
            array,
            fingers,
            task,
            omega,
            pmap,
            cost_fn,
            num_qubits,
            rstats,
            simulated,
            use_segments,
        )

        round_total = time.perf_counter() - t_round
        rstats.admin_time = max(0.0, round_total - rstats.oracle_time)
        stats.oracle_calls += rstats.selected
        stats.oracle_accepted += rstats.accepted
        stats.oracle_time += rstats.oracle_time
        stats.admin_time += rstats.admin_time
        stats.serialization_time += rstats.serialization_time
        stats.simulated_oracle_time += rstats.oracle_makespan
        stats.per_round.append(rstats)

    final_gates = _flatten(array.items())
    stats.final_gates = len(final_gates)
    stats.final_cost = cost_fn(final_gates)
    stats.total_time = time.perf_counter() - t_start
    finalize_transport(stats, pmap, dispatches_before)
    return LayeredPopqcResult(Circuit(final_gates, num_qubits), stats)


def _layered_round(
    array: TombstoneArray[Layer],
    fingers: list[int],
    task: _LayerOracleTask,
    omega: int,
    pmap: ParallelMap,
    cost_fn: CostFn,
    num_qubits: int,
    rstats: RoundStats,
    simulated: bool,
    use_segments: bool = False,
) -> list[int]:
    total_live = array.live_count
    if total_live == 0:
        return []

    ranks = [array.before(f) for f in fingers]
    selected_pos, remaining_pos = select_fingers(ranks, omega)
    kept_remaining = [fingers[p] for p in remaining_pos]

    seg_slots: list[list[int]] = []
    seg_layers: list[list[Layer]] = []
    seg_bounds: list[tuple[int, int]] = []
    for p in selected_pos:
        rank = min(ranks[p], total_live)
        lo = max(0, rank - omega)
        hi = min(total_live, rank + omega)
        slots, seg = array.segment(lo, hi)
        seg_slots.append(slots)
        seg_layers.append(seg)
        seg_bounds.append((lo, hi))

    makespan_before = (
        pmap.simulated_elapsed if simulated else 0.0  # type: ignore[attr-defined]
    )
    t_oracle = time.perf_counter()
    if use_segments:
        # flatten parent-side: the persistent-worker transport carries
        # gate segments, and the oracle is layering-agnostic anyway
        results = pmap.map_segments(  # type: ignore[attr-defined]
            task.oracle, [_flatten(seg) for seg in seg_layers]
        )
        rstats.serialization_time = getattr(pmap, "last_serialization_time", 0.0)
    else:
        results = pmap.map(task, seg_layers)
    rstats.oracle_time = time.perf_counter() - t_oracle
    if simulated:
        rstats.oracle_makespan = (
            pmap.simulated_elapsed - makespan_before  # type: ignore[attr-defined]
        )
    rstats.selected = len(seg_layers)

    updates: list[tuple[int, Optional[Layer]]] = []
    new_fingers: list[int] = []
    for slots, seg, (lo, hi), opt_gates in zip(
        seg_slots, seg_layers, seg_bounds, results
    ):
        if not slots:
            continue
        old_gates = _flatten(seg)
        opt_layers = [tuple(layer) for layer in layers_asap(opt_gates, num_qubits)]
        if len(opt_layers) <= len(slots) and cost_fn(opt_gates) < cost_fn(old_gates):
            rstats.accepted += 1
            for i, slot in enumerate(slots):
                updates.append((slot, opt_layers[i] if i < len(opt_layers) else None))
            if lo > 0:
                new_fingers.append(slots[0])
            if hi < total_live:
                new_fingers.append(array.index_of(hi))

    if updates:
        array.substitute(updates)
    return sorted(set(kept_remaining) | set(new_fingers))
