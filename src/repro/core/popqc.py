"""The POPQC algorithm (paper Algorithms 2 and 3).

The driver keeps a sorted set of *fingers* (array indices into the
tombstone array) and maintains the invariant that every Ω-segment that
might still be optimizable contains a finger.  Each round it:

1. computes each finger's live rank (``before``),
2. selects a non-interfering subset (Algorithm 4, :mod:`.fingers`),
3. extracts the 2Ω-segment centered on each selected finger,
4. maps the oracle over the segments with the configured ``parmap``,
5. accepts an oracle result iff it strictly reduces the cost function,
   writing the new gates over the segment's slots (tombstoning the
   remainder) and planting boundary fingers,
6. merges surviving and new fingers and repeats until no fingers remain.

The output circuit is locally optimal with respect to the oracle and Ω
(Theorem 7) whenever the oracle is *well-behaved* — our rule-based
oracles achieve this by running their rewrite passes to a fixpoint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..circuits import Circuit, Gate
from ..parallel import TRANSPORTS, ParallelMap, SerialMap, SimulatedParallelism
from ..parallel.executor import _PickledOracleCall
from .fingers import initial_fingers, select_fingers
from .index_tree import IndexTree
from .stats import (
    OptimizationStats,
    RoundStats,
    finalize_transport,
    record_transport,
)
from .tombstone import TombstoneArray

__all__ = [
    "popqc",
    "PopqcResult",
    "OracleFn",
    "CostFn",
    "OracleContractViolation",
    "resolve_segment_transport",
]


class OracleContractViolation(RuntimeError):
    """Raised in validation mode when an oracle output is not equivalent
    to its input segment (or acts outside the segment's qubit support).

    The paper assumes a correct oracle; this check turns that assumption
    into an enforceable contract for third-party oracles.
    """

#: An oracle maps a gate segment to an equivalent (hopefully cheaper) one.
OracleFn = Callable[[list[Gate]], list[Gate]]

#: A cost maps a gate segment to a comparable number (default: length).
CostFn = Callable[[Sequence[Gate]], float]


@dataclass
class PopqcResult:
    """Optimized circuit plus run statistics."""

    circuit: Circuit
    stats: OptimizationStats


def _gate_count_cost(segment: Sequence[Gate]) -> float:
    return float(len(segment))


#: Picklable oracle-application task for process-pool executors; shared
#: with the pickle transport so both legacy paths stay identical.
_OracleTask = _PickledOracleCall


def resolve_segment_transport(pmap: ParallelMap, transport: str) -> bool:
    """Whether a driver should route oracle maps through
    ``pmap.map_segments`` for the requested ``transport``.

    ``"auto"`` uses the executor's persistent-worker transport when it
    offers one; ``"pickle"`` forces the legacy object-map path.  A
    concrete wire format
    (``"encoded"``/``"shm"``/``"threads"``/``"socket"``)
    requires a transport-capable executor configured for that format —
    except that requesting ``"shm"`` from an executor that *fell back*
    to ``"encoded"`` (platform without shared memory) is accepted, so
    one call site works everywhere.  Raises :class:`ValueError`
    otherwise.
    """
    valid_transports = ("auto", *TRANSPORTS)
    if transport not in valid_transports:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of {valid_transports}"
        )
    supports_segments = hasattr(pmap, "map_segments")
    if transport == "pickle":
        return False
    if transport == "auto":
        return supports_segments
    if not supports_segments:
        raise ValueError(
            f"transport={transport!r} requires an executor with map_segments; "
            f"{pmap!r} has none"
        )
    configured = getattr(pmap, "transport", transport)
    requested = getattr(pmap, "requested_transport", configured)
    if transport not in (configured, requested):
        raise ValueError(
            f"transport={transport!r} conflicts with the executor's own wire "
            f"format ({pmap!r})"
        )
    return True


def popqc(
    circuit: Circuit | Sequence[Gate],
    oracle: OracleFn,
    omega: int,
    *,
    parmap: Optional[ParallelMap] = None,
    cost: Optional[CostFn] = None,
    tree_factory: Callable[[Sequence[int]], IndexTree] = IndexTree,
    max_rounds: Optional[int] = None,
    check_invariants: bool = False,
    validate_oracle: bool = False,
    validation_max_qubits: int = 12,
    transport: str = "auto",
) -> PopqcResult:
    """Optimize ``circuit`` to local optimality w.r.t. ``oracle`` and Ω.

    Parameters
    ----------
    circuit:
        Input circuit or raw gate sequence.
    oracle:
        The external optimizer applied to 2Ω-segments.  Must return a
        gate sequence equivalent to its input; only outputs that
        strictly reduce ``cost`` (and fit in the segment's slots) are
        accepted.
    omega:
        Segment-size parameter Ω (paper default: 200).
    parmap:
        Parallel-map executor; defaults to :class:`SerialMap`.
    cost:
        Acceptance cost; defaults to gate count, matching Algorithm 3's
        ``|optSegment| < |segment|`` test.  The depth-aware experiment
        passes a mixed cost here.
    tree_factory:
        Rank/select structure for the tombstone array (IndexTree or
        FenwickTree).
    max_rounds:
        Optional safety cap on the number of rounds.
    check_invariants:
        When True, verify non-interference and slot-disjointness every
        round (used by the test suite; adds overhead).
    validate_oracle:
        When True, every *accepted* oracle output is checked against
        its input segment: the output must act only on the segment's
        qubits, and (when the joint support fits in
        ``validation_max_qubits``) must implement the same unitary up
        to global phase.  Violations raise
        :class:`OracleContractViolation`.  Intended for integrating
        untrusted oracles; costs one small simulation per accepted
        call.
    transport:
        How oracle segments reach the executor's workers.  ``"auto"``
        (default) uses the executor's persistent-worker transport when
        it offers one (``map_segments``, currently
        :class:`~repro.parallel.ProcessMap`) and plain ``map``
        otherwise.  ``"encoded"``, ``"shm"``, ``"threads"`` and
        ``"socket"`` (distributed worker hosts over TCP, see
        :mod:`repro.parallel.dist`) require
        a transport-capable executor configured for that wire format
        (raises :class:`ValueError` otherwise; see
        :func:`resolve_segment_transport`); ``"pickle"`` forces the
        legacy path that re-pickles the oracle and the gate objects
        every round, kept for benchmarking.  Results from
        ``map_segments`` decode lazily: only accepted rewrites are
        ever unpacked into gates (``stats.skipped_decode_bytes``
        reports the savings).

    Returns
    -------
    PopqcResult with the optimized :class:`Circuit` and statistics.
    """
    if omega < 1:
        raise ValueError("omega must be positive")
    if isinstance(circuit, Circuit):
        gates: list[Gate] = list(circuit.gates)
        num_qubits: Optional[int] = circuit.num_qubits
    else:
        gates = list(circuit)
        num_qubits = None
    pmap = parmap if parmap is not None else SerialMap()
    cost_fn = cost if cost is not None else _gate_count_cost

    use_segments = resolve_segment_transport(pmap, transport)

    stats = OptimizationStats(
        initial_gates=len(gates),
        initial_cost=cost_fn(gates),
        workers=getattr(pmap, "workers", 1),
    )
    dispatches_before = record_transport(stats, pmap, use_segments)
    t_start = time.perf_counter()

    array: TombstoneArray[Gate] = TombstoneArray(gates, tree_factory)
    fingers = initial_fingers(len(gates), omega)
    task = _OracleTask(oracle)
    simulated = isinstance(pmap, SimulatedParallelism)

    while fingers:
        if max_rounds is not None and stats.rounds >= max_rounds:
            break
        stats.rounds += 1
        rstats = RoundStats(fingers=len(fingers))
        t_round = time.perf_counter()

        fingers = _run_round(
            array,
            fingers,
            task,
            omega,
            pmap,
            cost_fn,
            rstats,
            simulated,
            check_invariants,
            validate_oracle,
            validation_max_qubits,
            use_segments,
        )

        round_total = time.perf_counter() - t_round
        rstats.admin_time = max(0.0, round_total - rstats.oracle_time)
        stats.oracle_calls += rstats.selected
        stats.oracle_accepted += rstats.accepted
        stats.oracle_time += rstats.oracle_time
        stats.admin_time += rstats.admin_time
        stats.serialization_time += rstats.serialization_time
        stats.simulated_oracle_time += rstats.oracle_makespan
        stats.per_round.append(rstats)

    final_gates = array.items()
    stats.final_gates = len(final_gates)
    stats.final_cost = cost_fn(final_gates)
    stats.total_time = time.perf_counter() - t_start
    finalize_transport(stats, pmap, dispatches_before)
    return PopqcResult(Circuit(final_gates, num_qubits), stats)


def _run_round(
    array: TombstoneArray[Gate],
    fingers: list[int],
    task: _OracleTask,
    omega: int,
    pmap: ParallelMap,
    cost_fn: CostFn,
    rstats: RoundStats,
    simulated: bool,
    check_invariants: bool,
    validate_oracle: bool = False,
    validation_max_qubits: int = 12,
    use_segments: bool = False,
) -> list[int]:
    """One iteration of ``optimizeSegments`` (Algorithm 3).

    Returns the next round's sorted finger list.
    """
    total_live = array.live_count
    if total_live == 0:
        return []

    # Rank every finger.  Fingers are array indices, so sorted finger
    # order implies sorted rank order (before() is monotone).
    ranks = [array.before(f) for f in fingers]
    selected_pos, remaining_pos = select_fingers(ranks, omega)

    if check_invariants:
        _assert_non_interfering([ranks[p] for p in selected_pos], omega)

    # Extract the 2Ω-segment centered on each selected finger.
    seg_slots: list[list[int]] = []
    seg_gates: list[list[Gate]] = []
    seg_bounds: list[tuple[int, int]] = []
    kept_remaining = [fingers[p] for p in remaining_pos]
    for p in selected_pos:
        rank = min(ranks[p], total_live)
        lo = max(0, rank - omega)
        hi = min(total_live, rank + omega)
        slots, seg = array.segment(lo, hi)
        seg_slots.append(slots)
        seg_gates.append(seg)
        seg_bounds.append((lo, hi))

    if check_invariants:
        _assert_disjoint_slots(seg_slots)

    # Parallel oracle map (the only source of parallelism, per Sec. 2.4).
    makespan_before = (
        pmap.simulated_elapsed if simulated else 0.0  # type: ignore[attr-defined]
    )
    t_oracle = time.perf_counter()
    if use_segments:
        results = pmap.map_segments(  # type: ignore[attr-defined]
            task.oracle, seg_gates
        )
        rstats.serialization_time = getattr(pmap, "last_serialization_time", 0.0)
    else:
        results = pmap.map(task, seg_gates)
    rstats.oracle_time = time.perf_counter() - t_oracle
    if simulated:
        rstats.oracle_makespan = (
            pmap.simulated_elapsed - makespan_before  # type: ignore[attr-defined]
        )
    rstats.selected = len(seg_gates)

    # Accept / reject, build the batched substitution and new fingers.
    updates: list[tuple[int, Optional[Gate]]] = []
    new_fingers: list[int] = []
    for slots, seg, (lo, hi), opt in zip(seg_slots, seg_gates, seg_bounds, results):
        if not slots:
            continue
        if len(opt) <= len(slots) and cost_fn(opt) < cost_fn(seg):
            if validate_oracle:
                _validate_oracle_output(seg, opt, validation_max_qubits)
            rstats.accepted += 1
            for i, slot in enumerate(slots):
                updates.append((slot, opt[i] if i < len(opt) else None))
            # Boundary fingers (Lemma 6): the first slot of the optimized
            # region covers segments crossing its left boundary; the first
            # live gate after the region covers the right boundary.  Both
            # are computed before the substitution shifts ranks.
            if lo > 0:
                new_fingers.append(slots[0])
            if hi < total_live:
                new_fingers.append(array.index_of(hi))
        # else: oracle found nothing (or result does not fit) — finger drops.

    if updates:
        array.substitute(updates)

    # mergeAndDeduplicate: both lists hold array indices; keep sorted order.
    merged = sorted(set(kept_remaining) | set(new_fingers))
    return merged


def _validate_oracle_output(
    segment: list[Gate], output: list[Gate], max_qubits: int
) -> None:
    """Enforce the oracle contract on one accepted rewrite.

    Cheap structural check always: the output may only touch qubits the
    input touched (an equivalent replacement cannot involve new wires).
    Semantic check when feasible: unitary equivalence up to global
    phase on the compacted joint support.
    """
    in_support: set[int] = set()
    for g in segment:
        in_support.update(g.qubits)
    for g in output:
        for q in g.qubits:
            if q not in in_support:
                raise OracleContractViolation(
                    f"oracle output touches qubit {q} outside the segment "
                    f"support {sorted(in_support)}"
                )
    if len(in_support) <= max_qubits:
        from ..sim import segments_equivalent  # lazy: sim pulls in numpy ops

        if not segments_equivalent(segment, output):
            raise OracleContractViolation(
                f"oracle output ({len(output)} gates) is not equivalent to "
                f"its input segment ({len(segment)} gates)"
            )


def _assert_non_interfering(selected_ranks: list[int], omega: int) -> None:
    for a, b in zip(selected_ranks, selected_ranks[1:]):
        if b - a < 2 * omega:
            raise AssertionError(
                f"selected fingers interfere: ranks {a} and {b} with omega={omega}"
            )


def _assert_disjoint_slots(seg_slots: list[list[int]]) -> None:
    seen: set[int] = set()
    for slots in seg_slots:
        for s in slots:
            if s in seen:
                raise AssertionError(f"slot {s} appears in two segments")
            seen.add(s)
