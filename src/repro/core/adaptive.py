"""Circuit-adaptive choice of the locality parameter Ω.

Section A.4 of the paper observes that families whose gates can "slide"
long distances in the array representation (Sqrt: >5% of gates slide
more than 200 positions) are sensitive to the initial ordering and to
Ω, and proposes — as future work — "a circuit-specific heuristic for
choosing Ω according to the maximum sliding distance of gates in the
circuit's array representation".  This module implements that
heuristic.

A gate's *sliding distance* is how far its position moves between the
as-soon-as-possible (left-justified) and as-late-as-possible
(right-justified) orderings: the slack the dependency structure gives
it.  Two gates can only interact under an optimizer if some ordering
brings them within the same window, so Ω should cover the typical
slack.  We take a high quantile of the sliding-distance distribution
(robust against a few free-floating gates) and clamp it into a
practical band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..circuits import Circuit, Gate
from ..parallel import ParallelMap
from .popqc import CostFn, OracleFn, PopqcResult, popqc

__all__ = [
    "sliding_distances",
    "suggest_omega",
    "popqc_adaptive",
    "SlidingProfile",
]


def _justified_positions(
    gates: Sequence[Gate], num_qubits: int, latest: bool
) -> list[int]:
    """Per-gate position after left- (or right-) justification.

    Works on gate *indices* so duplicate gate values are tracked
    individually.
    """
    n = len(gates)
    if n == 0:
        return []
    if latest:
        order = list(reversed(range(n)))
    else:
        order = list(range(n))
    frontier = [0] * num_qubits
    layer_of = [0] * n
    for idx in order:
        g = gates[idx]
        layer = max(frontier[q] for q in g.qubits)
        layer_of[idx] = layer
        for q in g.qubits:
            frontier[q] = layer + 1
    if latest:
        top = max(layer_of)
        layer_of = [top - l for l in layer_of]
    # stable order: by layer, then original index
    ranked = sorted(range(n), key=lambda i: (layer_of[i], i))
    pos = [0] * n
    for new_pos, idx in enumerate(ranked):
        pos[idx] = new_pos
    return pos


def sliding_distances(circuit: Circuit) -> list[int]:
    """Per-gate slack: |ASAP position - ALAP position|."""
    gates = circuit.gates
    left = _justified_positions(gates, circuit.num_qubits, latest=False)
    right = _justified_positions(gates, circuit.num_qubits, latest=True)
    return [abs(l - r) for l, r in zip(left, right)]


@dataclass
class SlidingProfile:
    """Summary of a circuit's gate-sliding behaviour."""

    max_distance: int
    quantile_distance: int
    fraction_over_omega: float
    suggested_omega: int


def suggest_omega(
    circuit: Circuit,
    *,
    quantile: float = 0.95,
    omega_min: int = 50,
    omega_max: int = 800,
    reference_omega: int = 200,
) -> SlidingProfile:
    """The Section A.4 heuristic: Ω from the sliding-distance profile.

    Returns a :class:`SlidingProfile`; ``suggested_omega`` is the
    ``quantile``-th sliding distance (so an Ω-window covers the slack of
    almost all gates), clamped into ``[omega_min, omega_max]``.
    """
    if not 0.0 < quantile <= 1.0:
        raise ValueError("quantile must be in (0, 1]")
    dists = sorted(sliding_distances(circuit))
    if not dists:
        return SlidingProfile(0, 0, 0.0, omega_min)
    q_idx = min(len(dists) - 1, int(quantile * len(dists)))
    q_dist = dists[q_idx]
    over = sum(1 for d in dists if d > reference_omega) / len(dists)
    omega = max(omega_min, min(omega_max, q_dist))
    return SlidingProfile(dists[-1], q_dist, over, omega)


def popqc_adaptive(
    circuit: Circuit,
    oracle: OracleFn,
    *,
    parmap: Optional[ParallelMap] = None,
    cost: Optional[CostFn] = None,
    quantile: float = 0.95,
    omega_min: int = 50,
    omega_max: int = 800,
    max_rounds: Optional[int] = None,
) -> tuple[PopqcResult, SlidingProfile]:
    """Run POPQC with the circuit-adapted Ω.

    Returns the optimization result and the sliding profile that chose
    the Ω (recorded so experiments can report it).
    """
    profile = suggest_omega(
        circuit, quantile=quantile, omega_min=omega_min, omega_max=omega_max
    )
    result = popqc(
        circuit,
        oracle,
        profile.suggested_omega,
        parmap=parmap,
        cost=cost,
        max_rounds=max_rounds,
    )
    return result, profile
