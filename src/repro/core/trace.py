"""Round-by-round tracing of a POPQC run (Figure 2, as a tool).

The paper's Figure 2 walks through two rounds of finger dynamics; this
module makes that view available for any run: per round, the finger
ranks, the selected (non-interfering) subset, the accepted regions and
the shrinking live-gate count — plus an ASCII renderer that scales the
circuit onto a fixed-width band so the optimization wave is visible in
a terminal.

Usage::

    from repro.core.trace import popqc_traced, render_trace
    result, trace = popqc_traced(circuit, oracle, omega=100)
    print(render_trace(trace))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..circuits import Circuit, Gate
from ..parallel import ParallelMap, SerialMap
from .fingers import initial_fingers, select_fingers
from .popqc import (
    CostFn,
    OracleFn,
    PopqcResult,
    _OracleTask,
    resolve_segment_transport,
)
from .stats import (
    OptimizationStats,
    RoundStats,
    finalize_transport,
    record_transport,
)
from .tombstone import TombstoneArray

__all__ = ["RoundTrace", "popqc_traced", "render_trace"]


@dataclass
class RoundTrace:
    """Observable state of one POPQC round."""

    round_index: int
    live_before: int
    live_after: int
    finger_ranks: list[int]
    selected_ranks: list[int]
    #: accepted regions as (rank_lo, rank_hi) in pre-round rank space
    accepted_regions: list[tuple[int, int]]


def popqc_traced(
    circuit: Circuit | Sequence[Gate],
    oracle: OracleFn,
    omega: int,
    *,
    parmap: Optional[ParallelMap] = None,
    cost: Optional[CostFn] = None,
    max_rounds: Optional[int] = None,
    transport: str = "auto",
) -> tuple[PopqcResult, list[RoundTrace]]:
    """Run POPQC while recording a :class:`RoundTrace` per round.

    A transparent reimplementation of the driver loop (same round
    semantics as :func:`repro.core.popqc.popqc`; the agreement is pinned
    by tests) that additionally snapshots each round.  ``transport``
    selects the oracle transport exactly as in the main driver.
    """
    import time

    if omega < 1:
        raise ValueError("omega must be positive")
    if isinstance(circuit, Circuit):
        gates = list(circuit.gates)
        num_qubits: Optional[int] = circuit.num_qubits
    else:
        gates = list(circuit)
        num_qubits = None
    pmap = parmap if parmap is not None else SerialMap()
    cost_fn = cost if cost is not None else (lambda seg: float(len(seg)))
    use_segments = resolve_segment_transport(pmap, transport)

    stats = OptimizationStats(
        initial_gates=len(gates),
        initial_cost=cost_fn(gates),
        workers=getattr(pmap, "workers", 1),
    )
    dispatches_before = record_transport(stats, pmap, use_segments)
    t_start = time.perf_counter()
    array: TombstoneArray[Gate] = TombstoneArray(gates)
    fingers = initial_fingers(len(gates), omega)
    task = _OracleTask(oracle)
    trace: list[RoundTrace] = []

    while fingers:
        if max_rounds is not None and stats.rounds >= max_rounds:
            break
        stats.rounds += 1
        rstats = RoundStats(fingers=len(fingers))
        total_live = array.live_count
        if total_live == 0:
            break

        ranks = [array.before(f) for f in fingers]
        selected_pos, remaining_pos = select_fingers(ranks, omega)
        kept_remaining = [fingers[p] for p in remaining_pos]

        seg_slots, seg_gates, seg_bounds = [], [], []
        for p in selected_pos:
            rank = min(ranks[p], total_live)
            lo = max(0, rank - omega)
            hi = min(total_live, rank + omega)
            slots, seg = array.segment(lo, hi)
            seg_slots.append(slots)
            seg_gates.append(seg)
            seg_bounds.append((lo, hi))

        t_oracle = time.perf_counter()
        if use_segments:
            results = pmap.map_segments(  # type: ignore[attr-defined]
                task.oracle, seg_gates
            )
            rstats.serialization_time = getattr(pmap, "last_serialization_time", 0.0)
        else:
            results = pmap.map(task, seg_gates)
        rstats.oracle_time = time.perf_counter() - t_oracle
        rstats.selected = len(seg_gates)

        updates: list[tuple[int, Optional[Gate]]] = []
        new_fingers: list[int] = []
        accepted_regions: list[tuple[int, int]] = []
        for slots, seg, (lo, hi), opt in zip(seg_slots, seg_gates, seg_bounds, results):
            if not slots:
                continue
            if len(opt) <= len(slots) and cost_fn(opt) < cost_fn(seg):
                rstats.accepted += 1
                accepted_regions.append((lo, hi))
                for i, slot in enumerate(slots):
                    updates.append((slot, opt[i] if i < len(opt) else None))
                if lo > 0:
                    new_fingers.append(slots[0])
                if hi < total_live:
                    new_fingers.append(array.index_of(hi))
        if updates:
            array.substitute(updates)

        trace.append(
            RoundTrace(
                round_index=stats.rounds,
                live_before=total_live,
                live_after=array.live_count,
                finger_ranks=list(ranks),
                selected_ranks=[ranks[p] for p in selected_pos],
                accepted_regions=accepted_regions,
            )
        )
        stats.oracle_calls += rstats.selected
        stats.oracle_accepted += rstats.accepted
        stats.oracle_time += rstats.oracle_time
        stats.serialization_time += rstats.serialization_time
        stats.per_round.append(rstats)
        fingers = sorted(set(kept_remaining) | set(new_fingers))

    final_gates = array.items()
    stats.final_gates = len(final_gates)
    stats.final_cost = cost_fn(final_gates)
    stats.total_time = time.perf_counter() - t_start
    stats.admin_time = max(0.0, stats.total_time - stats.oracle_time)
    finalize_transport(stats, pmap, dispatches_before)
    return PopqcResult(Circuit(final_gates, num_qubits), stats), trace


def render_trace(trace: Sequence[RoundTrace], width: int = 72) -> str:
    """Render the rounds as an ASCII band per round.

    Legend: ``.`` untouched, ``|`` finger, ``#`` selected finger,
    ``=`` region optimized this round.  Positions are ranks scaled onto
    ``width`` columns of the pre-round live gate count.
    """
    if not trace:
        return "(no rounds)"
    lines = ["round  live   band"]
    for rt in trace:
        scale = max(1, rt.live_before)
        band = ["."] * width

        def col(rank: int) -> int:
            return min(width - 1, rank * width // scale)

        for lo, hi in rt.accepted_regions:
            for c in range(col(lo), col(max(lo, hi - 1)) + 1):
                band[c] = "="
        for r in rt.finger_ranks:
            band[col(min(r, scale - 1))] = "|"
        for r in rt.selected_ranks:
            band[col(min(r, scale - 1))] = "#"
        lines.append(f"{rt.round_index:5d} {rt.live_before:6d}   {''.join(band)}")
    last = trace[-1]
    lines.append(f"final  {last.live_after:6d}")
    return "\n".join(lines)
