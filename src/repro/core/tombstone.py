"""The tombstone array — the paper's Circuit data structure (Algorithm 1).

Pairs a plain object array (``None`` marks a tombstone) with an index
tree so that live items can be ranked and selected in O(lg n).  The
structure is generic over the item type: POPQC stores :class:`Gate`
objects here, while the layered variant (Section 7.8) stores whole
layers (tuples of gates) as single items.

Interface and cost bounds follow Algorithm 1:

=====================  =============================  =================
operation              meaning                        cost
=====================  =============================  =================
``create`` (init)      build from an item list        O(n) work
``before(i)``          live items before index i      O(lg n)
``get(r)``             r-th live item                 O(lg n)
``substitute(pairs)``  replace items, None removes    O(l lg n)
``items()``            all live items, in order       O(n)
=====================  =============================  =================
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Optional, Sequence, TypeVar

from .index_tree import IndexTree

T = TypeVar("T")

__all__ = ["TombstoneArray"]


class TombstoneArray(Generic[T]):
    """Sparse array of items with O(lg n) rank/select over live slots.

    Parameters
    ----------
    items:
        Initial (fully live) item sequence.
    tree_factory:
        Constructor for the rank/select structure; defaults to
        :class:`~repro.core.index_tree.IndexTree`, and
        :class:`~repro.core.fenwick.FenwickTree` is a drop-in
        alternative.
    """

    __slots__ = ("_slots", "_tree")

    def __init__(
        self,
        items: Iterable[T],
        tree_factory: Callable[[Sequence[int]], IndexTree] = IndexTree,
    ):
        self._slots: list[Optional[T]] = list(items)
        self._tree = tree_factory([1] * len(self._slots))

    # -- size ----------------------------------------------------------------

    def __len__(self) -> int:
        """Number of array slots, including tombstones."""
        return len(self._slots)

    @property
    def live_count(self) -> int:
        """Number of live (non-tombstone) items."""
        return self._tree.total

    # -- rank / select -------------------------------------------------------

    def before(self, index: int) -> int:
        """Number of live items strictly before array ``index``."""
        return self._tree.before(index)

    def rank_of(self, index: int) -> int:
        """Rank a finger at array ``index`` maps to (alias of ``before``)."""
        return self._tree.before(index)

    def get(self, rank: int) -> T:
        """The live item with the given rank (tombstones excluded)."""
        item = self._slots[self._tree.select(rank)]
        assert item is not None
        return item

    def index_of(self, rank: int) -> int:
        """Array index of the live item with the given rank."""
        return self._tree.select(rank)

    def is_live(self, index: int) -> bool:
        """Whether array slot ``index`` holds a live item."""
        return self._tree.is_live(index)

    def peek(self, index: int) -> Optional[T]:
        """Raw slot contents (None for a tombstone)."""
        return self._slots[index]

    # -- segments --------------------------------------------------------------

    def segment(self, rank_lo: int, rank_hi: int) -> tuple[list[int], list[T]]:
        """Live items with ranks in ``[rank_lo, rank_hi)``.

        Returns parallel lists of array indices and items.  Cost
        O((rank_hi - rank_lo) lg n): one ``select`` for the first item,
        then a forward walk that uses ``next_live`` to hop tombstone
        runs.
        """
        total = self._tree.total
        rank_lo = max(rank_lo, 0)
        rank_hi = min(rank_hi, total)
        count = rank_hi - rank_lo
        if count <= 0:
            return [], []
        indices: list[int] = []
        items: list[T] = []
        idx = self._tree.select(rank_lo)
        slots = self._slots
        n = len(slots)
        while count > 0:
            item = slots[idx]
            if item is not None:
                indices.append(idx)
                items.append(item)
                count -= 1
                idx += 1
            else:
                nxt = self._tree.next_live(idx)
                assert nxt is not None, "ran past the live suffix"
                idx = nxt
            if count > 0 and idx >= n:  # pragma: no cover - guarded by ranks
                raise AssertionError("segment walked off the array")
        return indices, items

    # -- updates -----------------------------------------------------------------

    def substitute(self, updates: Iterable[tuple[int, Optional[T]]]) -> None:
        """Replace slot contents; ``None`` writes a tombstone.

        Mirrors the paper's ``substitute``: O(l lg n) for ``l`` updates.
        """
        tree = self._tree
        slots = self._slots
        for index, item in updates:
            slots[index] = item
            tree.set_live(index, item is not None)

    # -- bulk views ----------------------------------------------------------------

    def items(self) -> list[T]:
        """All live items in array order (the paper's ``gates``)."""
        slots = self._slots
        return [slots[i] for i in self._tree.live_indices()]

    def live_indices(self) -> list[int]:
        """Array indices of all live items."""
        return [int(i) for i in self._tree.live_indices()]

    def __repr__(self) -> str:  # pragma: no cover
        return f"TombstoneArray(slots={len(self._slots)}, live={self.live_count})"
