"""Instrumentation for POPQC runs.

The evaluation section of the paper reports, beyond gate reductions:
round counts (Fig. 4), oracle-call counts and their linearity in n
(Fig. 7), the fraction of time spent inside the oracle (Fig. 8), and
parallel/self-speedup figures (Figs. 3 and 5).  All of those quantities
are collected here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RoundStats", "OptimizationStats"]


@dataclass
class RoundStats:
    """Per-round accounting."""

    fingers: int = 0
    selected: int = 0
    accepted: int = 0
    oracle_time: float = 0.0
    admin_time: float = 0.0
    #: Simulated p-worker makespan of this round's oracle map (only when
    #: the executor is a SimulatedParallelism; 0 otherwise).
    oracle_makespan: float = 0.0


@dataclass
class OptimizationStats:
    """Whole-run accounting returned alongside the optimized circuit."""

    initial_gates: int = 0
    final_gates: int = 0
    initial_cost: float = 0.0
    final_cost: float = 0.0
    rounds: int = 0
    oracle_calls: int = 0
    oracle_accepted: int = 0
    oracle_time: float = 0.0
    admin_time: float = 0.0
    total_time: float = 0.0
    #: Sum of per-round simulated makespans (SimulatedParallelism only).
    simulated_oracle_time: float = 0.0
    #: Worker count of the executor used.
    workers: int = 1
    per_round: list[RoundStats] = field(default_factory=list)

    # -- derived quantities -------------------------------------------------

    @property
    def gate_reduction(self) -> float:
        """Fractional gate-count reduction, the paper's quality metric."""
        if self.initial_gates == 0:
            return 0.0
        return 1.0 - self.final_gates / self.initial_gates

    @property
    def oracle_fraction(self) -> float:
        """Fraction of total time spent inside the oracle (Fig. 8)."""
        if self.total_time <= 0.0:
            return 0.0
        return self.oracle_time / self.total_time

    @property
    def total_fingers(self) -> int:
        """Sum of finger-set sizes across rounds (Lemma 3's quantity)."""
        return sum(r.fingers for r in self.per_round)

    @property
    def parallel_time(self) -> float:
        """Estimated p-worker wall time.

        Oracle work is charged at its per-round simulated makespan when
        available; administrative work is charged serially (conservative
        — see DESIGN.md).  Equals ``total_time`` for serial runs.
        """
        if self.simulated_oracle_time > 0.0:
            return self.admin_time + self.simulated_oracle_time
        return self.total_time

    @property
    def self_speedup(self) -> float:
        """Serial-time / parallel-time ratio for this run."""
        par = self.parallel_time
        if par <= 0.0:
            return 1.0
        return self.total_time / par

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.initial_gates} -> {self.final_gates} gates "
            f"({100.0 * self.gate_reduction:.1f}% reduction), "
            f"{self.rounds} rounds, {self.oracle_calls} oracle calls, "
            f"{self.total_time:.3f}s total ({100.0 * self.oracle_fraction:.0f}% oracle)"
        )
