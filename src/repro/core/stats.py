"""Instrumentation for POPQC runs.

The evaluation section of the paper reports, beyond gate reductions:
round counts (Fig. 4), oracle-call counts and their linearity in n
(Fig. 7), the fraction of time spent inside the oracle (Fig. 8), and
parallel/self-speedup figures (Figs. 3 and 5).  All of those quantities
are collected here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "RoundStats",
    "OptimizationStats",
    "record_transport",
    "finalize_transport",
]


@dataclass
class RoundStats:
    """Per-round accounting."""

    fingers: int = 0
    selected: int = 0
    accepted: int = 0
    oracle_time: float = 0.0
    admin_time: float = 0.0
    #: Parent-side segment encode/decode time for this round's oracle
    #: map (persistent-worker encoded transport only; 0 otherwise).
    #: A *subset* of ``oracle_time``, which times the whole oracle map
    #: call including this encode/decode.
    serialization_time: float = 0.0
    #: Simulated p-worker makespan of this round's oracle map (only when
    #: the executor is a SimulatedParallelism; 0 otherwise).
    oracle_makespan: float = 0.0


@dataclass
class OptimizationStats:
    """Whole-run accounting returned alongside the optimized circuit."""

    initial_gates: int = 0
    final_gates: int = 0
    initial_cost: float = 0.0
    final_cost: float = 0.0
    rounds: int = 0
    oracle_calls: int = 0
    oracle_accepted: int = 0
    oracle_time: float = 0.0
    admin_time: float = 0.0
    total_time: float = 0.0
    #: Parent-side segment encode/decode time summed over rounds
    #: (persistent-worker encoded transport only; 0 otherwise).  A
    #: *subset* of ``oracle_time``: the oracle map is timed end to end,
    #: encode/decode included, so ``oracle_fraction`` and
    #: ``serialization_fraction`` overlap by this amount.
    serialization_time: float = 0.0
    #: Oracle transport the run used: ``"inline"`` (objects passed
    #: within the process), ``"encoded"``, ``"shm"``, ``"threads"`` or
    #: ``"pickle"``.
    transport: str = "inline"
    #: Capacity of the executor's shared-memory arena ring when the run
    #: finished (shm transport only): the memory the run's rounds were
    #: served from, whether freshly allocated or recycled.
    shm_arena_bytes: int = 0
    #: Arena-ring behaviour during the run: blocks created vs. rounds
    #: served by recycling an existing block.
    shm_block_allocs: int = 0
    shm_block_reuses: int = 0
    #: Batched-dispatch accounting (shm transport only): pool tasks
    #: dispatched and segments they carried.
    batch_dispatches: int = 0
    segments_batched: int = 0
    #: Lazy-decode accounting (byte-carrying transports): oracle
    #: results returned vs. results whose gates were ever decoded, and
    #: the wire bytes of each.  The gap is work the acceptance test
    #: skipped by rejecting on ``len()`` alone.
    results_returned: int = 0
    results_decoded: int = 0
    result_bytes_returned: int = 0
    result_bytes_decoded: int = 0
    #: Threads-transport accounting: summed per-task oracle seconds
    #: vs. pool wall seconds.  Their ratio estimates effective thread
    #: concurrency (1.0 = fully GIL-bound).
    thread_task_seconds: float = 0.0
    thread_wall_seconds: float = 0.0
    #: Socket-transport accounting: frame bytes on the wire in each
    #: direction and reconnect-and-requeue cycles after host failures.
    socket_bytes_sent: int = 0
    socket_bytes_received: int = 0
    socket_reconnects: int = 0
    #: Per-host throughput of the socket transport: address →
    #: ``{"segments", "seconds", "segments_per_s", "capacity"}`` for
    #: this run.
    socket_hosts: dict = field(default_factory=dict)
    #: Segment-result-cache accounting (executors constructed with a
    #: :class:`repro.service.cache.SegmentCache`): segments answered
    #: from the cache vs. dispatched to the oracle, the packed result
    #: bytes the hits replayed, and the parent-side seconds spent on
    #: fingerprints and lookups.  Every hit is an oracle call saved.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bytes_saved: int = 0
    cache_lookup_seconds: float = 0.0
    #: Sum of per-round simulated makespans (SimulatedParallelism only).
    simulated_oracle_time: float = 0.0
    #: Worker count of the executor used.
    workers: int = 1
    per_round: list[RoundStats] = field(default_factory=list)

    # -- derived quantities -------------------------------------------------

    @property
    def gate_reduction(self) -> float:
        """Fractional gate-count reduction, the paper's quality metric."""
        if self.initial_gates == 0:
            return 0.0
        return 1.0 - self.final_gates / self.initial_gates

    @property
    def oracle_fraction(self) -> float:
        """Fraction of total time spent inside the oracle (Fig. 8)."""
        if self.total_time <= 0.0:
            return 0.0
        return self.oracle_time / self.total_time

    @property
    def serialization_fraction(self) -> float:
        """Fraction of total time spent encoding/decoding segments."""
        if self.total_time <= 0.0:
            return 0.0
        return self.serialization_time / self.total_time

    @property
    def arena_reuse_rate(self) -> float:
        """Fraction of arena acquisitions served by recycling a block."""
        total = self.shm_block_allocs + self.shm_block_reuses
        if total == 0:
            return 0.0
        return self.shm_block_reuses / total

    @property
    def mean_batch_size(self) -> float:
        """Average segments per dispatched pool task (shm transport)."""
        if self.batch_dispatches == 0:
            return 0.0
        return self.segments_batched / self.batch_dispatches

    @property
    def skipped_decode_bytes(self) -> int:
        """Result wire bytes whose per-gate decode never ran."""
        return self.result_bytes_returned - self.result_bytes_decoded

    @property
    def decode_skip_fraction(self) -> float:
        """Fraction of returned oracle results that were never decoded."""
        if self.results_returned == 0:
            return 0.0
        return 1.0 - self.results_decoded / self.results_returned

    @property
    def socket_wire_bytes(self) -> int:
        """Total frame bytes the socket transport moved, both directions."""
        return self.socket_bytes_sent + self.socket_bytes_received

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of oracle segments answered by the result cache."""
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 0.0
        return self.cache_hits / total

    @property
    def oracle_calls_saved(self) -> int:
        """Oracle invocations the result cache short-circuited.

        ``oracle_calls`` counts *selected* segments (the paper's Fig. 7
        quantity); with a cache, only ``oracle_calls -
        oracle_calls_saved`` of them actually reached the oracle.
        """
        return self.cache_hits

    @property
    def thread_concurrency(self) -> float:
        """Effective parallelism of the threads transport.

        Summed per-task oracle seconds divided by pool wall seconds:
        ~1.0 when the oracle holds the GIL throughout, approaching the
        worker count when it releases the GIL (numpy-heavy oracles).
        0.0 when the threads transport was not used.
        """
        if self.thread_wall_seconds <= 0.0:
            return 0.0
        return self.thread_task_seconds / self.thread_wall_seconds

    @property
    def gil_release_fraction(self) -> float:
        """Normalized :attr:`thread_concurrency` in ``[0, 1]``.

        0 means the oracle was fully GIL-bound (or threads were not
        used / only one worker); 1 means the pool ran at full
        parallelism.  An estimate, not a measurement of GIL state.
        """
        if self.workers <= 1 or self.thread_wall_seconds <= 0.0:
            return 0.0
        frac = (self.thread_concurrency - 1.0) / (self.workers - 1.0)
        return min(1.0, max(0.0, frac))

    @property
    def total_fingers(self) -> int:
        """Sum of finger-set sizes across rounds (Lemma 3's quantity)."""
        return sum(r.fingers for r in self.per_round)

    @property
    def parallel_time(self) -> float:
        """Estimated p-worker wall time.

        Oracle work is charged at its per-round simulated makespan when
        available; administrative work is charged serially (conservative
        — see DESIGN.md).  Equals ``total_time`` for serial runs.
        """
        if self.simulated_oracle_time > 0.0:
            return self.admin_time + self.simulated_oracle_time
        return self.total_time

    @property
    def self_speedup(self) -> float:
        """Serial-time / parallel-time ratio for this run."""
        par = self.parallel_time
        if par <= 0.0:
            return 1.0
        return self.total_time / par

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.initial_gates} -> {self.final_gates} gates "
            f"({100.0 * self.gate_reduction:.1f}% reduction), "
            f"{self.rounds} rounds, {self.oracle_calls} oracle calls, "
            f"{self.total_time:.3f}s total ({100.0 * self.oracle_fraction:.0f}% oracle)"
        )


#: Executor counters snapshotted around a run so per-run deltas can be
#: reported even when one executor serves many runs.
_TRANSPORT_COUNTERS = (
    "pool_dispatches",
    "batch_dispatches",
    "segments_batched",
    "arena_allocations",
    "arena_reuses",
    "results_returned",
    "results_decoded",
    "result_bytes_returned",
    "result_bytes_decoded",
    "thread_task_seconds",
    "thread_wall_seconds",
    "socket_bytes_sent",
    "socket_bytes_received",
    "socket_reconnects",
    "cache_hits",
    "cache_misses",
    "cache_bytes_saved",
    "cache_lookup_seconds",
)

#: Per-host dict counters snapshotted alongside the scalar ones; the
#: per-run delta becomes ``OptimizationStats.socket_hosts``.
_HOST_COUNTERS = ("socket_host_segments", "socket_host_seconds")


def record_transport(
    stats: OptimizationStats, pmap: object, use_segments: bool = False
) -> object:
    """Label ``stats.transport`` for the oracle path a driver is about
    to take, and snapshot the executor's transport counters.

    ``use_segments`` marks drivers that route through
    ``pmap.map_segments``; legacy drivers mapping gate objects over a
    segment-capable executor are labelled ``"pickle"``.  The returned
    snapshot goes to :func:`finalize_transport`, which turns the
    counter deltas into per-run statistics.
    """
    if use_segments:
        stats.transport = getattr(pmap, "transport", "encoded")
    elif hasattr(pmap, "map_segments"):
        stats.transport = "pickle"
    snapshot = {
        name: getattr(pmap, name)
        for name in _TRANSPORT_COUNTERS
        if hasattr(pmap, name)
    }
    for name in _HOST_COUNTERS:
        if hasattr(pmap, name):
            snapshot[name] = dict(getattr(pmap, name))
    return snapshot


def finalize_transport(
    stats: OptimizationStats, pmap: object, snapshot: object
) -> None:
    """Fold the executor's counter deltas since ``snapshot`` into
    ``stats``, and correct ``stats.transport`` to ``"inline"`` when
    every round fell below the executor's serial cutoff and nothing
    ever crossed a process boundary."""
    if not isinstance(snapshot, dict):
        return
    delta = {
        name: getattr(pmap, name) - before
        for name, before in snapshot.items()
        if name not in _HOST_COUNTERS
    }
    if (
        stats.transport != "inline"
        and "pool_dispatches" in delta
        and delta["pool_dispatches"] == 0
    ):
        stats.transport = "inline"
    stats.batch_dispatches = delta.get("batch_dispatches", 0)
    stats.segments_batched = delta.get("segments_batched", 0)
    stats.shm_block_allocs = delta.get("arena_allocations", 0)
    stats.shm_block_reuses = delta.get("arena_reuses", 0)
    stats.results_returned = delta.get("results_returned", 0)
    stats.results_decoded = delta.get("results_decoded", 0)
    stats.result_bytes_returned = delta.get("result_bytes_returned", 0)
    stats.result_bytes_decoded = delta.get("result_bytes_decoded", 0)
    stats.thread_task_seconds = delta.get("thread_task_seconds", 0.0)
    stats.thread_wall_seconds = delta.get("thread_wall_seconds", 0.0)
    stats.socket_bytes_sent = delta.get("socket_bytes_sent", 0)
    stats.socket_bytes_received = delta.get("socket_bytes_received", 0)
    stats.socket_reconnects = delta.get("socket_reconnects", 0)
    stats.cache_hits = delta.get("cache_hits", 0)
    stats.cache_misses = delta.get("cache_misses", 0)
    stats.cache_bytes_saved = delta.get("cache_bytes_saved", 0)
    stats.cache_lookup_seconds = delta.get("cache_lookup_seconds", 0.0)
    if "socket_host_segments" in snapshot:
        seg_before = snapshot["socket_host_segments"]
        sec_before = snapshot.get("socket_host_seconds", {})
        seg_now = getattr(pmap, "socket_host_segments", {})
        sec_now = getattr(pmap, "socket_host_seconds", {})
        cap_now = getattr(pmap, "socket_host_capacity", {})
        hosts = {}
        for addr, segs in seg_now.items():
            d_segs = segs - seg_before.get(addr, 0)
            d_secs = sec_now.get(addr, 0.0) - sec_before.get(addr, 0.0)
            if d_segs or d_secs:
                hosts[addr] = {
                    "segments": d_segs,
                    "seconds": d_secs,
                    "segments_per_s": d_segs / d_secs if d_secs > 0 else 0.0,
                    "capacity": cap_now.get(addr, 1),
                }
        stats.socket_hosts = hosts
    # capacity of the executor's arena ring, not a delta: a run served
    # entirely by recycled blocks still reports the memory it ran in
    stats.shm_arena_bytes = getattr(pmap, "arena_bytes", 0)
