"""POPQC core: index tree, tombstone array, fingers, driver, verification."""

from .adaptive import SlidingProfile, popqc_adaptive, sliding_distances, suggest_omega
from .fenwick import FenwickTree
from .fingers import initial_fingers, select_fingers
from .greedy import popqc_greedy
from .index_tree import IndexTree
from .naive_index import NaiveIndex
from .layered import LayeredPopqcResult, layered_popqc, mixed_cost
from .popqc import CostFn, OracleFn, PopqcResult, popqc
from .stats import OptimizationStats, RoundStats
from .tombstone import TombstoneArray
from .trace import RoundTrace, popqc_traced, render_trace
from .verify import (
    LocalOptimalityViolation,
    assert_locally_optimal,
    find_local_optimality_violations,
    oracle_call_bound,
)

__all__ = [
    "CostFn",
    "SlidingProfile",
    "popqc_adaptive",
    "popqc_greedy",
    "sliding_distances",
    "suggest_omega",
    "FenwickTree",
    "IndexTree",
    "LayeredPopqcResult",
    "LocalOptimalityViolation",
    "NaiveIndex",
    "OptimizationStats",
    "OracleFn",
    "PopqcResult",
    "RoundStats",
    "RoundTrace",
    "TombstoneArray",
    "popqc_traced",
    "render_trace",
    "assert_locally_optimal",
    "find_local_optimality_violations",
    "initial_fingers",
    "layered_popqc",
    "mixed_cost",
    "oracle_call_bound",
    "popqc",
    "select_fingers",
]
