"""Naive O(n) rank/select structure — the ablation baseline.

The paper credits POPQC's efficiency over OAC to the index tree's
O(lg n) rank/select (Section 7.7).  This module provides the same
interface with linear scans so the benchmark suite can measure exactly
what the tree buys (``benchmarks/test_ablations.py``), and so property
tests have an obviously-correct reference.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["NaiveIndex"]


class NaiveIndex:
    """Flat liveness array with O(n) queries; interface-compatible with
    :class:`~repro.core.index_tree.IndexTree`."""

    __slots__ = ("_flags",)

    def __init__(self, flags: Sequence[int] | np.ndarray):
        self._flags = [int(bool(f)) for f in flags]

    def __len__(self) -> int:
        return len(self._flags)

    @property
    def total(self) -> int:
        """Number of live slots in the whole array."""
        return sum(self._flags)

    def is_live(self, index: int) -> bool:
        """Whether slot ``index`` is live (not tombstoned)."""
        self._check(index)
        return bool(self._flags[index])

    def before(self, index: int) -> int:
        """Number of live slots strictly before ``index`` (linear scan)."""
        if index < 0 or index > len(self._flags):
            raise IndexError(f"index {index} out of range [0, {len(self._flags)}]")
        return sum(self._flags[:index])

    def select(self, rank: int) -> int:
        """Array index of the live slot with 0-based rank ``rank``."""
        if rank < 0:
            raise IndexError(rank)
        seen = 0
        for i, f in enumerate(self._flags):
            if f:
                if seen == rank:
                    return i
                seen += 1
        raise IndexError(f"rank {rank} out of range [0, {self.total})")

    def next_live(self, index: int) -> int | None:
        """The first live slot at or after ``index`` (None past the end)."""
        for i in range(max(0, index), len(self._flags)):
            if self._flags[i]:
                return i
        return None

    def set_live(self, index: int, live: bool) -> None:
        """Set slot ``index``'s liveness."""
        self._check(index)
        self._flags[index] = int(live)

    def set_live_batch(self, updates: Iterable[tuple[int, bool]]) -> None:
        """Apply many ``(index, live)`` updates."""
        for index, live in updates:
            self.set_live(index, live)

    def live_indices(self) -> np.ndarray:
        """Indices of all live slots, ascending."""
        return np.nonzero(self._flags)[0]

    def _check(self, index: int) -> None:
        if index < 0 or index >= len(self._flags):
            raise IndexError(f"index {index} out of range [0, {len(self._flags)})")

    def __repr__(self) -> str:  # pragma: no cover
        return f"NaiveIndex(size={len(self._flags)}, live={self.total})"
