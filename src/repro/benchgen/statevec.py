"""State-vector preparation benchmark (paper Section 7.2, "StateVec").

Prepares pseudo-random n-qubit states with the Shende–Bullock–Markov
multiplexed-rotation construction: for each qubit ``k``, a uniformly
controlled RY (then RZ) on ``k`` with controls ``0..k-1``, decomposed
into ``2^k`` single-qubit rotations interleaved with Gray-code CNOTs.
Gate counts therefore grow as Θ(2^n) with qubit count, matching the
paper's steep StateVec scaling (5→8 qubits spans 32k→2.2M gates there).

``reps`` chains several prepare / unprepare-adjacent-state blocks, the
way state-vector benchmarking workloads do; the seams between a
preparation and the inverse of a *similar* preparation carry heavy
rotation-merging redundancy.
"""

from __future__ import annotations

import random

from ..circuits import CNOT, Circuit, Gate, H, RZ
from . import decompose as dec

__all__ = ["statevec"]


def _gray(i: int) -> int:
    return i ^ (i >> 1)


def _multiplexed_rz(
    target: int, controls: list[int], angles: list[float]
) -> list[Gate]:
    """Uniformly controlled RZ via Gray-code CNOT ladder.

    ``angles`` has one entry per control assignment (2^k values); the
    standard construction applies Hadamard-transformed angles between
    CNOTs whose control follows the Gray-code transition bit.
    """
    k = len(controls)
    if k == 0:
        return [RZ(target, angles[0])] if angles[0] else []
    m = 1 << k
    assert len(angles) == m
    # Walsh-Hadamard transform of the angle vector.
    coeffs = list(angles)
    h = 1
    while h < m:
        for i in range(0, m, h * 2):
            for j in range(i, i + h):
                x, y = coeffs[j], coeffs[j + h]
                coeffs[j], coeffs[j + h] = (x + y) / 2, (x - y) / 2
        h *= 2
    gates: list[Gate] = []
    for i in range(m):
        theta = coeffs[_gray(i)]
        if theta:
            gates.append(RZ(target, theta))
        # CNOT controlled on the bit that flips between gray(i), gray(i+1)
        diff = _gray(i) ^ _gray((i + 1) % m)
        ctrl_bit = diff.bit_length() - 1
        gates.append(CNOT(controls[ctrl_bit], target))
    return gates


def _multiplexed_ry(
    target: int, controls: list[int], angles: list[float]
) -> list[Gate]:
    """Uniformly controlled RY: RZ multiplexor conjugated into the Y basis."""
    pre = [*dec.sdg(target), H(target)]
    post = [H(target), *dec.s(target)]
    return [*pre, *_multiplexed_rz(target, controls, angles), *post]


def statevec(
    num_qubits: int,
    *,
    reps: int = 1,
    seed: int = 0,
    rng: random.Random | None = None,
) -> Circuit:
    """Generate a state-preparation circuit on ``n`` qubits (>= 2).

    Parameters
    ----------
    reps:
        Number of prepare/unprepare blocks chained together; each block
        prepares a fresh random state and undoes a perturbed copy of it.
    seed:
        Chooses the state amplitudes.
    rng:
        Explicit random source; when given, randomness is drawn from it
        directly and ``seed`` is ignored.
    """
    n = num_qubits
    if n < 2:
        raise ValueError("statevec needs at least 2 qubits")
    rng = random.Random(seed) if rng is None else rng

    def prep(jitter: float) -> list[Gate]:
        body: list[Gate] = []
        for k in range(n):
            controls = list(range(k))
            m = 1 << k
            ry_angles = [rng.uniform(0.1, 3.0) + jitter for _ in range(m)]
            rz_angles = [rng.uniform(-1.5, 1.5) + jitter for _ in range(m)]
            body += _multiplexed_ry(k, controls, ry_angles)
            body += _multiplexed_rz(k, controls, rz_angles)
        return body

    gates: list[Gate] = []
    for r in range(max(1, reps)):
        block_rng_state = rng.getstate()
        gates += prep(0.0)
        rng.setstate(block_rng_state)  # perturbed copy of the same angles
        gates += dec.inverse(prep(1e-3 * (r + 1)))
    return Circuit(gates, n)
