"""Decompositions of common gates into the base {H, X, CNOT, RZ} set.

The paper's benchmarks and oracles all use the VOQC gate set (Section
7.2); every generator in :mod:`repro.benchgen` builds its circuits from
these decompositions.  The decompositions are the standard ones
(Nielsen & Chuang; Barenco et al. for multi-controls) and each is
unitary-verified against a direct matrix construction in
``tests/benchgen/test_decompose.py``.

All functions return plain ``list[Gate]`` so generators can concatenate
them cheaply.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..circuits import CNOT, RZ, Gate, H, X

__all__ = [
    "z",
    "s",
    "sdg",
    "t",
    "tdg",
    "rx",
    "ry",
    "cz",
    "swap",
    "controlled_phase",
    "controlled_rz",
    "toffoli",
    "ccz",
    "mcx",
    "mcz",
    "qft",
    "inverse",
    "qft_inverse",
]

_PI = math.pi


def z(q: int) -> list[Gate]:
    """Pauli-Z as a single RZ(pi)."""
    return [RZ(q, _PI)]


def s(q: int) -> list[Gate]:
    """S = RZ(pi/2)."""
    return [RZ(q, _PI / 2)]


def sdg(q: int) -> list[Gate]:
    """S-dagger = RZ(-pi/2)."""
    return [RZ(q, -_PI / 2)]


def t(q: int) -> list[Gate]:
    """T = RZ(pi/4)."""
    return [RZ(q, _PI / 4)]


def tdg(q: int) -> list[Gate]:
    """T-dagger = RZ(-pi/4)."""
    return [RZ(q, -_PI / 4)]


def rx(q: int, theta: float) -> list[Gate]:
    """RX(theta) up to global phase: H RZ(theta) H."""
    return [H(q), RZ(q, theta), H(q)]


def ry(q: int, theta: float) -> list[Gate]:
    """RY(theta) up to global phase: S-dg H RZ(theta) H S.

    Derivation: RY = S RX S^dagger (conjugating X into Y), and RX is the
    Hadamard conjugate of RZ.
    """
    return [RZ(q, -_PI / 2), H(q), RZ(q, theta), H(q), RZ(q, _PI / 2)]


def cz(a: int, b: int) -> list[Gate]:
    """Controlled-Z: H on the target conjugating a CNOT."""
    return [H(b), CNOT(a, b), H(b)]


def swap(a: int, b: int) -> list[Gate]:
    """SWAP from three alternating CNOTs."""
    return [CNOT(a, b), CNOT(b, a), CNOT(a, b)]


def controlled_phase(theta: float, c: int, tq: int) -> list[Gate]:
    """Controlled phase ``diag(1,1,1,e^{i theta})``.

    Phase bookkeeping (all diagonal terms commute):
    ``theta/2 * (t + c - (t xor c)) = theta * (c and t)``.
    """
    return [
        RZ(tq, theta / 2),
        CNOT(c, tq),
        RZ(tq, -theta / 2),
        CNOT(c, tq),
        RZ(c, theta / 2),
    ]


def controlled_rz(theta: float, c: int, tq: int) -> list[Gate]:
    """Controlled-RZ in our diag(1, e^{i theta}) convention.

    With RZ(theta) = diag(1, e^{i theta}), controlled-RZ *is* the
    controlled phase on (c, t).
    """
    return controlled_phase(theta, c, tq)


def toffoli(a: int, b: int, c: int) -> list[Gate]:
    """CCX with controls ``a``, ``b`` and target ``c``.

    The standard 15-gate T-depth-3 circuit (Nielsen & Chuang Fig. 4.9),
    with T = RZ(pi/4) in our convention (equal up to global phase).
    """
    return [
        H(c),
        CNOT(b, c),
        *tdg(c),
        CNOT(a, c),
        *t(c),
        CNOT(b, c),
        *tdg(c),
        CNOT(a, c),
        *t(b),
        *t(c),
        H(c),
        CNOT(a, b),
        *t(a),
        *tdg(b),
        CNOT(a, b),
    ]


def ccz(a: int, b: int, c: int) -> list[Gate]:
    """CCZ: Hadamard conjugate of the Toffoli on the target."""
    return [H(c), *toffoli(a, b, c), H(c)]


def mcx(
    controls: Sequence[int], target: int, ancillas: Sequence[int]
) -> list[Gate]:
    """Multi-controlled X via the Barenco V-chain of Toffolis.

    Requires ``len(ancillas) >= len(controls) - 2`` clean ancillas (they
    are returned to |0>).  With 0 controls this is an X, with 1 a CNOT,
    with 2 a Toffoli.
    """
    k = len(controls)
    if k == 0:
        return [X(target)]
    if k == 1:
        return [CNOT(controls[0], target)]
    if k == 2:
        return toffoli(controls[0], controls[1], target)
    need = k - 2
    if len(ancillas) < need:
        raise ValueError(f"mcx with {k} controls needs {need} ancillas")
    gates: list[Gate] = []
    # compute chain: anc[0] = c0 & c1; anc[i] = anc[i-1] & c_{i+1}
    gates += toffoli(controls[0], controls[1], ancillas[0])
    for i in range(2, k - 1):
        gates += toffoli(controls[i], ancillas[i - 2], ancillas[i - 1])
    gates += toffoli(controls[k - 1], ancillas[k - 3], target)
    # uncompute
    for i in range(k - 2, 1, -1):
        gates += toffoli(controls[i], ancillas[i - 2], ancillas[i - 1])
    gates += toffoli(controls[0], controls[1], ancillas[0])
    return gates


def mcz(
    controls: Sequence[int], target: int, ancillas: Sequence[int]
) -> list[Gate]:
    """Multi-controlled Z: Hadamard conjugate of :func:`mcx`."""
    return [H(target), *mcx(controls, target, ancillas), H(target)]


def qft(qubits: Sequence[int], *, with_swaps: bool = False) -> list[Gate]:
    """Quantum Fourier transform on ``qubits`` (MSB first).

    The textbook H + controlled-phase cascade.  Swaps are off by default
    because the benchmark circuits absorb the bit reversal into indexing,
    as most compiled QASM benchmarks do.
    """
    gates: list[Gate] = []
    n = len(qubits)
    for i in range(n):
        gates.append(H(qubits[i]))
        for j in range(i + 1, n):
            gates += controlled_phase(_PI / (1 << (j - i)), qubits[j], qubits[i])
    if with_swaps:
        for i in range(n // 2):
            gates += swap(qubits[i], qubits[n - 1 - i])
    return gates


def inverse(gates: Sequence[Gate]) -> list[Gate]:
    """Adjoint of a gate list (reverse order, invert each gate)."""
    return [g.inverse() for g in reversed(gates)]


def qft_inverse(qubits: Sequence[int], *, with_swaps: bool = False) -> list[Gate]:
    """Inverse QFT."""
    return inverse(qft(qubits, with_swaps=with_swaps))
