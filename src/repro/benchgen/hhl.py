"""HHL linear-system solver benchmark (paper Section 7.2, [21]).

The HHL circuit is quantum phase estimation (QPE) over the Hamiltonian
simulation of the system matrix, a controlled eigenvalue-inversion
rotation on a flag ancilla, and the *adjoint* QPE to uncompute the
clock register.  The QPE / QPE-dagger symmetry makes HHL the most
optimizable family in the paper (>50% reductions, and the one family
where POPQC beats the VOQC baseline's quality by 10+ points — a later
pass exposes cancellations across the adjoint seam that a single
pipeline sweep misses).

Layout: ``nb`` system qubits, ``nc`` clock qubits, 1 rotation ancilla,
with ``nb = max(1, n // 3)`` and ``nc = n - nb - 1`` for a total of
``n`` qubits.
"""

from __future__ import annotations

import math
import random

from ..circuits import Circuit, Gate, H
from . import decompose as dec

__all__ = ["hhl"]


def _controlled_hamiltonian_step(
    control: int, system: list[int], theta: float
) -> list[Gate]:
    """One controlled Trotter slice of exp(i A t).

    A is modeled as a nearest-neighbour tridiagonal operator: hopping
    (XX-like, Hadamard-conjugated controlled-phase) between neighbours
    plus diagonal terms (controlled-RZ on each system qubit).
    """
    gates: list[Gate] = []
    for q in system:
        gates += dec.controlled_rz(theta, control, q)
    for a, b in zip(system, system[1:]):
        gates += [H(a), H(b)]
        gates += dec.controlled_phase(theta / 2, control, a)
        gates += [Gate("cnot", (a, b))]
        gates += dec.controlled_rz(theta / 2, control, b)
        gates += [Gate("cnot", (a, b))]
        gates += [H(b), H(a)]
    return gates


def hhl(
    num_qubits: int,
    *,
    depth: int = 1,
    seed: int = 0,
    rng: random.Random | None = None,
) -> Circuit:
    """Generate an HHL circuit on ``num_qubits`` total qubits (>= 4).

    ``depth`` scales the Trotter slice budget of the controlled
    Hamiltonian simulation (more slices = finer simulation = deeper
    circuit), letting instance size grow without adding qubits — the
    regime the paper's HHL instances live in (11 qubits, 680k gates).

    ``rng`` is an explicit random source; when given, randomness is
    drawn from it directly and ``seed`` is ignored.
    """
    n = num_qubits
    if n < 4:
        raise ValueError("hhl needs at least 4 qubits")
    if depth < 1:
        raise ValueError("depth must be positive")
    rng = random.Random(seed) if rng is None else rng
    nb = max(1, n // 3)
    nc = n - nb - 1
    system = list(range(nb))
    clock = list(range(nb, nb + nc))
    ancilla = nb + nc
    t0 = rng.uniform(0.8, 1.2) * math.pi / 4

    def qpe() -> list[Gate]:
        body: list[Gate] = [H(c) for c in clock]
        for k, c in enumerate(clock):
            reps = 1 << k
            # U^{2^k} as repeated Trotter slices (capped to keep sizes
            # polynomial; real HHL compilations do the same re-scaling).
            slices = depth * min(reps, 4 * nc)
            theta = t0 * reps / slices
            for _ in range(slices):
                body += _controlled_hamiltonian_step(c, system, theta)
        body += dec.qft_inverse(clock)
        return body

    gates: list[Gate] = []
    # |b> state preparation on the system register.
    for q in system:
        gates += dec.ry(q, rng.uniform(0.2, math.pi - 0.2))
        gates.append(H(q))
    forward = qpe()
    gates += forward
    # Conditioned eigenvalue-inversion rotation on the flag ancilla.
    for j, c in enumerate(clock):
        angle = 2.0 * math.asin(min(1.0, 1.0 / (1 << (j + 1))))
        gates += dec.controlled_rz(angle, c, ancilla)
        gates += dec.ry(ancilla, angle / 2)
        gates += dec.inverse(dec.ry(ancilla, angle / 2))
    # Uncompute: adjoint QPE.
    gates += dec.inverse(forward)
    return Circuit(gates, n)
