"""Shor's factoring benchmark (paper Section 7.2, [48]).

Order finding dominates Shor's algorithm; circuits follow the
Beauregard layout: a control register driving a cascade of controlled
modular additions implemented as Draper (QFT-basis) adders.  Each
controlled adder is QFT(target) - controlled-phase cascade -
IQFT(target); consecutive adders leave IQFT/QFT pairs back to back,
which is the main—and deliberately modest—redundancy in this family
(the paper measures only ~3-11% reduction on Shor).

Layout: ``nc = n // 2`` control qubits and ``nt = n - nc`` target
qubits for ``n`` total.
"""

from __future__ import annotations

import math
import random

from ..circuits import Circuit, Gate, H
from . import decompose as dec

__all__ = ["shor"]


def _draper_add_const(target: list[int], value: int) -> list[Gate]:
    """Add a classical constant in the Fourier basis (all diagonal)."""
    gates: list[Gate] = []
    nt = len(target)
    for i, q in enumerate(target):
        theta = 0.0
        for j in range(nt - i):
            if (value >> j) & 1:
                theta += math.pi / (1 << (nt - i - 1 - j))
        theta = math.fmod(theta, 2 * math.pi)
        if theta:
            gates.append(Gate("rz", (q,), theta))
    return gates


def _controlled_draper_add(
    control: int, target: list[int], value: int
) -> list[Gate]:
    """Controlled constant addition in the Fourier basis."""
    gates: list[Gate] = []
    nt = len(target)
    for i, q in enumerate(target):
        theta = 0.0
        for j in range(nt - i):
            if (value >> j) & 1:
                theta += math.pi / (1 << (nt - i - 1 - j))
        theta = math.fmod(theta, 2 * math.pi)
        if theta:
            gates += dec.controlled_phase(theta, control, q)
    return gates


def shor(
    num_qubits: int,
    *,
    passes: int = 1,
    seed: int = 0,
    rng: random.Random | None = None,
) -> Circuit:
    """Generate an order-finding circuit on ``n`` total qubits (>= 5).

    The modulus and base are chosen pseudo-randomly from the seed; the
    controlled modular-multiplication blocks are realized as sequences
    of controlled Draper adders sandwiched between QFT/IQFT pairs.

    ``passes`` repeats the control cascade, modeling the semiclassical
    (control-recycling) order-finding layout where a short control
    register drives a long exponent sequentially — this grows depth
    without adding qubits, matching the paper's Shor regime (16 qubits,
    545k gates).

    ``rng`` is an explicit random source; when given, randomness is
    drawn from it directly and ``seed`` is ignored.
    """
    n = num_qubits
    if n < 5:
        raise ValueError("shor needs at least 5 qubits")
    if passes < 1:
        raise ValueError("passes must be positive")
    rng = random.Random(seed) if rng is None else rng
    nc = n // 2
    nt = n - nc
    control = list(range(nc))
    target = list(range(nc, nc + nt))
    modulus = rng.randrange(1 << (nt - 1), 1 << nt) | 1
    base = rng.randrange(2, modulus - 1)

    gates: list[Gate] = [H(c) for c in control]
    # Initialize target register to |1> for the multiplication chain.
    gates.append(Gate("x", (target[-1],)))

    schedule = [
        (p * nc + k, c) for p in range(passes) for k, c in enumerate(control)
    ]
    for k, c in schedule:
        mult = pow(base, 1 << k, modulus)
        # Controlled modular multiplication: a cascade of QFT-basis
        # controlled additions of mult * 2^j mod modulus.  Following the
        # Beauregard layout, every addition is QFT-wrapped and followed
        # by a computational-basis modular comparison (overflow test),
        # so consecutive IQFT/QFT pairs sit back to back around a small
        # non-diagonal block — the modest, local redundancy the paper
        # measures on Shor (3-11% reduction).
        for j in range(nt):
            addend = (mult << j) % modulus
            gates += dec.qft(target)
            gates += _controlled_draper_add(c, target, addend)
            gates += _draper_add_const(target, (1 << nt) - modulus)
            gates += dec.qft_inverse(target)
            # Overflow comparison: test the top bit against the next
            # wire (non-diagonal, blocks cross-adder phase merging).
            top = target[j % nt]
            nxt = target[(j + 1) % nt]
            if top != nxt:
                gates.append(H(top))
                gates.append(Gate("cnot", (top, nxt)))
                gates.append(H(top))
            # Undo the overflow-correction constant in QFT basis.
            gates += dec.qft(target)
            gates += dec.inverse(_draper_add_const(target, (1 << nt) - modulus))
            gates += dec.qft_inverse(target)
    gates += dec.qft_inverse(control)
    return Circuit(gates, n)
