"""Boolean satisfiability benchmark (paper Section 7.2, "BoolSat").

Grover-style amplitude amplification over a random 3-CNF formula.  Each
iteration computes every clause's truth value into a clause ancilla
(via Toffoli chains), applies a multi-controlled Z across the clause
ancillas (formula satisfied <=> all clauses true), and uncomputes.  The
compute/uncompute symmetry and the dense Toffoli decompositions give
the optimizer the large reduction headroom the paper reports (~83%).

Qubit layout: ``n`` variable qubits, then one ancilla per clause, then
one work ancilla for the 3-control Toffoli chains, then the V-chain
ancillas for the clause-register MCZ.
"""

from __future__ import annotations

import random

from ..circuits import Circuit, Gate, H, X
from . import decompose as dec

__all__ = ["boolsat", "boolsat_total_qubits"]


def _num_clauses(num_vars: int) -> int:
    return 2 * num_vars


def boolsat_total_qubits(num_vars: int) -> int:
    m = _num_clauses(num_vars)
    return num_vars + m + 1 + max(0, m - 3)


def boolsat(
    num_vars: int,
    *,
    iterations: int = 1,
    seed: int = 0,
    rng: random.Random | None = None,
) -> Circuit:
    """Generate a BoolSat (Grover-over-3-CNF) circuit.

    Parameters
    ----------
    num_vars:
        Number of boolean variables (>= 3); the formula has
        ``2 * num_vars`` random 3-literal clauses.
    iterations:
        Grover iterations (each contributes oracle + diffusion).
    seed:
        Chooses the random formula.
    rng:
        Explicit random source; when given, randomness is drawn from it
        directly and ``seed`` is ignored.
    """
    n = num_vars
    if n < 3:
        raise ValueError("boolsat needs at least 3 variables")
    rng = random.Random(seed) if rng is None else rng
    m = _num_clauses(n)
    clauses = []
    for _ in range(m):
        vars_ = rng.sample(range(n), 3)
        signs = [rng.random() < 0.5 for _ in range(3)]  # True = negated
        clauses.append(list(zip(vars_, signs)))

    vars_reg = list(range(n))
    clause_reg = list(range(n, n + m))
    work = n + m
    chain_anc = list(range(n + m + 1, boolsat_total_qubits(n)))

    def clause_compute(ci: int) -> list[Gate]:
        """Set clause_reg[ci] to the clause's truth value.

        Clause is FALSE iff all literals are false; compute the all-false
        AND into the ancilla with a 3-control Toffoli chain, then invert.
        A literal ``x`` is false when the qubit is 0 (conjugate with X);
        a literal ``not x`` is false when the qubit is 1.
        """
        lits = clauses[ci]
        body: list[Gate] = []
        pre = [X(v) for v, negated in lits if not negated]
        body += pre
        qs = [v for v, _ in lits]
        body += dec.mcx(qs, clause_reg[ci], [work])
        body += pre  # undo the conjugation
        body += [X(clause_reg[ci])]  # now holds "clause true"
        return body

    def oracle() -> list[Gate]:
        body: list[Gate] = []
        for ci in range(m):
            body += clause_compute(ci)
        body += dec.mcz(clause_reg[:-1], clause_reg[-1], chain_anc)
        for ci in reversed(range(m)):
            body += dec.inverse(clause_compute(ci))
        return body

    def diffusion() -> list[Gate]:
        body: list[Gate] = [H(q) for q in vars_reg]
        body += [X(q) for q in vars_reg]
        body += dec.mcz(vars_reg[:-1], vars_reg[-1], clause_reg)
        body += [X(q) for q in vars_reg]
        body += [H(q) for q in vars_reg]
        return body

    gates: list[Gate] = [H(q) for q in vars_reg]
    for _ in range(max(1, iterations)):
        gates += oracle()
        gates += diffusion()
    return Circuit(gates, boolsat_total_qubits(n))
