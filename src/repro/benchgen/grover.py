"""Grover's search benchmark (paper Section 7.2, [20]).

Standard Grover iteration over ``n`` search qubits: a phase oracle that
marks one random basis state (X conjugation + multi-controlled Z) and
the diffusion operator (H/X conjugated multi-controlled Z).  The
multi-controlled Z's are decomposed through the Toffoli V-chain, which
is where the optimizer finds work: adjacent X/H conjugation layers and
T/T-dagger pairs across Toffoli boundaries cancel.

Qubit layout: ``n`` search qubits followed by ``max(0, n-3)`` clean
ancillas for the V-chain.
"""

from __future__ import annotations

import math
import random

from ..circuits import Circuit, Gate, H, X
from . import decompose as dec

__all__ = ["grover", "grover_total_qubits"]


def grover_total_qubits(num_search_qubits: int) -> int:
    """Total qubits including V-chain ancillas."""
    return num_search_qubits + max(0, num_search_qubits - 3)


def grover(
    num_search_qubits: int,
    *,
    iterations: int | None = None,
    seed: int = 0,
    rng: random.Random | None = None,
) -> Circuit:
    """Generate a Grover search circuit.

    Parameters
    ----------
    num_search_qubits:
        Size of the search register (n >= 2); the search space is 2^n.
    iterations:
        Number of Grover iterations; defaults to the optimal
        ``round(pi/4 * sqrt(2^n))``.
    seed:
        Chooses the marked state.
    rng:
        Explicit random source; when given, randomness is drawn from it
        directly and ``seed`` is ignored.
    """
    n = num_search_qubits
    if n < 2:
        raise ValueError("grover needs at least 2 search qubits")
    rng = random.Random(seed) if rng is None else rng
    marked = rng.randrange(1 << n)
    if iterations is None:
        iterations = max(1, round(math.pi / 4 * math.sqrt(1 << n)))

    search = list(range(n))
    ancillas = list(range(n, grover_total_qubits(n)))
    controls, target = search[:-1], search[-1]

    def oracle() -> list[Gate]:
        flips = [q for q in search if not (marked >> (n - 1 - q)) & 1]
        body: list[Gate] = [X(q) for q in flips]
        body += dec.mcz(controls, target, ancillas)
        body += [X(q) for q in flips]
        return body

    def diffusion() -> list[Gate]:
        body: list[Gate] = [H(q) for q in search]
        body += [X(q) for q in search]
        body += dec.mcz(controls, target, ancillas)
        body += [X(q) for q in search]
        body += [H(q) for q in search]
        return body

    gates: list[Gate] = [H(q) for q in search]
    for _ in range(iterations):
        gates += oracle()
        gates += diffusion()
    return Circuit(gates, grover_total_qubits(n))
