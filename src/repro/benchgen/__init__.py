"""Benchmark circuit generators for the eight families of the evaluation."""

from . import decompose
from .boolsat import boolsat, boolsat_total_qubits
from .bwt import bwt
from .grover import grover, grover_total_qubits
from .hhl import hhl
from .registry import (
    FAMILIES,
    BenchmarkFamily,
    family_names,
    generate,
    generate_params,
)
from .shor import shor
from .sqrt import sqrt_circuit
from .suite import SuiteEntry, write_suite
from .statevec import statevec
from .vqe import vqe

__all__ = [
    "FAMILIES",
    "BenchmarkFamily",
    "boolsat",
    "boolsat_total_qubits",
    "bwt",
    "decompose",
    "family_names",
    "generate",
    "generate_params",
    "grover",
    "grover_total_qubits",
    "hhl",
    "shor",
    "SuiteEntry",
    "sqrt_circuit",
    "write_suite",
    "statevec",
    "vqe",
]
