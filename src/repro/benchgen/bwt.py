"""Binary Welded Tree benchmark (paper Section 7.2, "BWT").

The BWT problem is solved by a continuous-time quantum walk on two
binary trees welded at the leaves; quantum circuits for it Trotterize
the walk Hamiltonian, whose hopping terms are (XX+YY)/2 couplings along
the edge coloring of the graph.  Following the NWQBench construction,
we Trotterize ``steps`` time slices; each slice applies an XX+YY
rotation on every edge of each of three edge-color classes (edges of
one color form a perfect matching, so they act on disjoint qubit
pairs), plus local RZ phases for the diagonal part.

The XX and YY rotations decompose through CNOT + RZ conjugated by
basis-change single-qubit gates, producing long runs of H/RZ pairs at
slice boundaries — exactly the cancellation structure the optimizers
exploit on this family.
"""

from __future__ import annotations

import random

from ..circuits import CNOT, Circuit, Gate, H, RZ
from . import decompose as dec

__all__ = ["bwt"]


def _zz_rotation(a: int, b: int, theta: float) -> list[Gate]:
    """exp(-i theta ZZ / 2) up to global phase."""
    return [CNOT(a, b), RZ(b, theta), CNOT(a, b)]


def _xx_rotation(a: int, b: int, theta: float) -> list[Gate]:
    """exp(-i theta XX / 2): Hadamard conjugate of the ZZ rotation."""
    return [H(a), H(b), *_zz_rotation(a, b, theta), H(b), H(a)]


def _yy_rotation(a: int, b: int, theta: float) -> list[Gate]:
    """exp(-i theta YY / 2): S†H-basis conjugate of the ZZ rotation."""
    pre = [*dec.sdg(a), H(a), *dec.sdg(b), H(b)]
    post = [H(b), *dec.s(b), H(a), *dec.s(a)]
    return [*pre, *_zz_rotation(a, b, theta), *post]


def bwt(
    num_qubits: int,
    *,
    steps: int | None = None,
    seed: int = 0,
    rng: random.Random | None = None,
) -> Circuit:
    """Generate a Trotterized welded-tree walk circuit.

    Parameters
    ----------
    num_qubits:
        Vertex-register width (>= 4).  Edge matchings are built over
        these qubits: color c couples qubit pairs offset by c.
    steps:
        Trotter steps; defaults to ``4 * num_qubits`` (walk time grows
        with the tree depth).
    seed:
        Chooses the per-edge coupling phases.
    rng:
        Explicit random source; when given, randomness is drawn from it
        directly and ``seed`` is ignored.
    """
    n = num_qubits
    if n < 4:
        raise ValueError("bwt needs at least 4 qubits")
    if steps is None:
        steps = 4 * n
    rng = random.Random(seed) if rng is None else rng
    dt = 0.35

    # Three edge-color matchings over the vertex register.
    colorings: list[list[tuple[int, int]]] = []
    for color in range(3):
        offset = color % 2
        pairs = [(i, i + 1) for i in range(offset, n - 1, 2)]
        if color == 2:  # the weld: long-range pairs
            pairs = [(i, n - 1 - i) for i in range(n // 2) if i != n - 1 - i]
        colorings.append(pairs)

    weights = {
        (c, pair): rng.uniform(0.5, 1.5)
        for c, pairs in enumerate(colorings)
        for pair in pairs
    }

    gates: list[Gate] = [H(q) for q in range(n)]  # walk start superposition
    for _ in range(max(1, steps)):
        for c, pairs in enumerate(colorings):
            for a, b in pairs:
                theta = dt * weights[(c, (a, b))]
                gates += _xx_rotation(a, b, theta)
                gates += _yy_rotation(a, b, theta)
        for q in range(n):  # diagonal (vertex-potential) part
            gates.append(RZ(q, dt * 0.25))
    return Circuit(gates, n)
