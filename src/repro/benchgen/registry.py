"""Benchmark registry: family name -> generator, paper sizes, scaled sizes.

The paper evaluates 8 families at 4 instance sizes each (Table 1), in a
*deep-and-narrow* regime: tens of qubits carrying tens of thousands to
millions of gates (e.g. BWT: 17 qubits, 361k gates).  A pure-Python
reproduction cannot run multi-million-gate instances in reasonable
time, so every family carries two size ladders:

* ``paper_qubits`` — the qubit counts from Table 1, for the record;
* ``default_params`` — four scaled-down instances whose gate counts
  grow by roughly the paper's per-step factor (~2-4x) while keeping
  the paper's depth-per-qubit character, so size-dependent effects
  (speedup growth, round growth, baseline crossover) reproduce in
  shape.

``generate(family, index)`` builds the instance; ``generate_params``
builds a custom configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..circuits import Circuit
from .boolsat import boolsat
from .bwt import bwt
from .grover import grover
from .hhl import hhl
from .shor import shor
from .sqrt import sqrt_circuit
from .statevec import statevec
from .vqe import vqe

__all__ = [
    "BenchmarkFamily",
    "FAMILIES",
    "family_names",
    "generate",
    "generate_params",
]


@dataclass(frozen=True)
class BenchmarkFamily:
    """A benchmark family: generator plus its size ladders."""

    name: str
    #: Build an instance from keyword parameters (must accept ``seed``
    #: and ``rng``).
    build: Callable[..., Circuit]
    #: Qubit counts used in the paper's Table 1.
    paper_qubits: tuple[int, int, int, int]
    #: Scaled-down parameter sets for this reproduction's harness,
    #: smallest to largest.
    default_params: tuple[Mapping[str, Any], ...]
    #: Gate reduction VOQC achieved in the paper (for EXPERIMENTS.md).
    paper_reduction: float


FAMILIES: dict[str, BenchmarkFamily] = {
    "BoolSat": BenchmarkFamily(
        "BoolSat",
        lambda num_vars, iterations, seed=0, rng=None: boolsat(
            num_vars, iterations=iterations, seed=seed, rng=rng
        ),
        (28, 30, 32, 34),
        (
            {"num_vars": 8, "iterations": 2},
            {"num_vars": 10, "iterations": 4},
            {"num_vars": 12, "iterations": 8},
            {"num_vars": 14, "iterations": 14},
        ),
        0.833,
    ),
    "BWT": BenchmarkFamily(
        "BWT",
        lambda num_qubits, steps, seed=0, rng=None: bwt(
            num_qubits, steps=steps, seed=seed, rng=rng
        ),
        (17, 21, 25, 29),
        (
            {"num_qubits": 8, "steps": 20},
            {"num_qubits": 10, "steps": 44},
            {"num_qubits": 12, "steps": 100},
            {"num_qubits": 14, "steps": 220},
        ),
        0.49,
    ),
    "Grover": BenchmarkFamily(
        "Grover",
        lambda num_search_qubits, iterations, seed=0, rng=None: grover(
            num_search_qubits, iterations=iterations, seed=seed, rng=rng
        ),
        (9, 11, 13, 15),
        (
            {"num_search_qubits": 6, "iterations": 8},
            {"num_search_qubits": 7, "iterations": 18},
            {"num_search_qubits": 8, "iterations": 40},
            {"num_search_qubits": 9, "iterations": 85},
        ),
        0.296,
    ),
    "HHL": BenchmarkFamily(
        "HHL",
        lambda num_qubits, depth, seed=0, rng=None: hhl(
            num_qubits, depth=depth, seed=seed, rng=rng
        ),
        (7, 9, 11, 13),
        (
            {"num_qubits": 7, "depth": 4},
            {"num_qubits": 8, "depth": 7},
            {"num_qubits": 9, "depth": 13},
            {"num_qubits": 10, "depth": 22},
        ),
        0.44,
    ),
    "Shor": BenchmarkFamily(
        "Shor",
        lambda num_qubits, passes, seed=0, rng=None: shor(
            num_qubits, passes=passes, seed=seed, rng=rng
        ),
        (10, 12, 14, 16),
        (
            {"num_qubits": 8, "passes": 1},
            {"num_qubits": 10, "passes": 1},
            {"num_qubits": 12, "passes": 2},
            {"num_qubits": 14, "passes": 3},
        ),
        0.092,
    ),
    "Sqrt": BenchmarkFamily(
        "Sqrt",
        lambda num_qubits, rounds, seed=0, rng=None: sqrt_circuit(
            num_qubits, rounds=rounds, seed=seed, rng=rng
        ),
        (42, 48, 54, 60),
        (
            {"num_qubits": 12, "rounds": 4},
            {"num_qubits": 14, "rounds": 9},
            {"num_qubits": 16, "rounds": 18},
            {"num_qubits": 18, "rounds": 36},
        ),
        0.422,
    ),
    "StateVec": BenchmarkFamily(
        "StateVec",
        lambda num_qubits, reps, seed=0, rng=None: statevec(
            num_qubits, reps=reps, seed=seed, rng=rng
        ),
        (5, 6, 7, 8),
        (
            {"num_qubits": 5, "reps": 8},
            {"num_qubits": 6, "reps": 14},
            {"num_qubits": 7, "reps": 26},
            {"num_qubits": 8, "reps": 48},
        ),
        0.791,
    ),
    "VQE": BenchmarkFamily(
        "VQE",
        lambda num_qubits, layers, seed=0, rng=None: vqe(
            num_qubits, layers=layers, seed=seed, rng=rng
        ),
        (18, 22, 26, 30),
        (
            {"num_qubits": 8, "layers": 14},
            {"num_qubits": 10, "layers": 30},
            {"num_qubits": 12, "layers": 64},
            {"num_qubits": 14, "layers": 130},
        ),
        0.604,
    ),
}


def family_names() -> list[str]:
    """All family names in the paper's table order."""
    return list(FAMILIES.keys())


def generate(
    family: str,
    size_index: int,
    *,
    seed: int = 0,
    rng: random.Random | None = None,
) -> Circuit:
    """Build the ``size_index``-th (0..3) scaled instance of ``family``.

    ``rng`` is forwarded to the family generator as its explicit random
    source (``seed`` is ignored when it is given) — the load harness
    uses this to make traffic byte-reproducible from one master seed.
    """
    fam = FAMILIES[family]
    if not 0 <= size_index < len(fam.default_params):
        raise ValueError(f"size_index {size_index} out of range 0..3")
    return fam.build(seed=seed, rng=rng, **fam.default_params[size_index])


def generate_params(
    family: str,
    *,
    seed: int = 0,
    rng: random.Random | None = None,
    **params: Any,
) -> Circuit:
    """Build an instance of ``family`` with explicit parameters."""
    return FAMILIES[family].build(seed=seed, rng=rng, **params)
