"""Variational Quantum Eigensolver benchmark (paper Section 7.2, [42]).

A UCCSD-flavoured VQE ansatz: layers of Pauli-string exponentials
``exp(-i theta P/2)`` for random weight-2..4 Pauli strings drawn from a
molecular-style pool.  Each exponential compiles to the textbook basis
change (H for X, S†H for Y) + CNOT ladder + RZ + reversed ladder +
reversed basis change.  Consecutive exponentials on overlapping
supports leave CNOT-ladder and basis-change fragments back to back —
the rotation-merging and cancellation structure that gives VQE its
~56-65% reductions in the paper.
"""

from __future__ import annotations

import random

from ..circuits import CNOT, Circuit, Gate, H, RZ
from . import decompose as dec

__all__ = ["vqe"]


def _pauli_exponential(
    paulis: list[tuple[int, str]], theta: float
) -> list[Gate]:
    """exp(-i theta P / 2) for the Pauli string P (list of (qubit, axis))."""
    pre: list[Gate] = []
    post: list[Gate] = []
    for q, axis in paulis:
        if axis == "x":
            pre.append(H(q))
            post.append(H(q))
        elif axis == "y":
            pre += [*dec.sdg(q), H(q)]
            post = [H(q), *dec.s(q)] + post
    qubits = [q for q, _ in paulis]
    ladder = [CNOT(a, b) for a, b in zip(qubits, qubits[1:])]
    unladder = [CNOT(a, b) for a, b in zip(reversed(qubits[:-1]), reversed(qubits[1:]))]
    return [*pre, *ladder, RZ(qubits[-1], theta), *unladder, *post]


def vqe(
    num_qubits: int,
    *,
    layers: int | None = None,
    seed: int = 0,
    rng: random.Random | None = None,
) -> Circuit:
    """Generate a VQE ansatz circuit on ``n`` qubits (>= 4).

    Parameters
    ----------
    layers:
        Ansatz repetitions; defaults to ``2 * num_qubits`` (hardware-
        efficient depth scaling).
    seed:
        Chooses the Pauli strings and angles.
    rng:
        Explicit random source; when given, randomness is drawn from it
        directly and ``seed`` is ignored.
    """
    n = num_qubits
    if n < 4:
        raise ValueError("vqe needs at least 4 qubits")
    if layers is None:
        layers = 2 * n
    rng = random.Random(seed) if rng is None else rng

    # Molecular-style excitation pool: single (weight-2) and double
    # (weight-4) excitation strings over neighbouring orbital windows.
    pool: list[list[tuple[int, str]]] = []
    for i in range(n - 1):
        pool.append([(i, "x"), (i + 1, "y")])
        pool.append([(i, "y"), (i + 1, "x")])
    for i in range(n - 3):
        window = [i, i + 1, i + 2, i + 3]
        pool.append([(q, rng.choice("xyz")) for q in window])

    gates: list[Gate] = []
    # Hartree-Fock-like reference state.
    for q in range(0, n, 2):
        gates.append(Gate("x", (q,)))
    for _ in range(max(1, layers)):
        # Each layer applies a shuffled subset of the pool.
        strings = rng.sample(pool, max(2, len(pool) // 2))
        for paulis in strings:
            theta = rng.uniform(-1.0, 1.0)
            gates += _pauli_exponential(paulis, theta)
        # Entangling sweep + rotation row (hardware-efficient flavour).
        for q in range(n - 1):
            gates.append(CNOT(q, q + 1))
        for q in range(n):
            gates.append(RZ(q, rng.uniform(-0.5, 0.5)))
            gates.append(H(q))
            gates.append(RZ(q, rng.uniform(-0.5, 0.5)))
            gates.append(H(q))
    return Circuit(gates, n)
