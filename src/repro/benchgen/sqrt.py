"""Reversible square-root benchmark (paper Section 7.2, "Sqrt").

Reversible integer square root via the non-restoring shift-and-subtract
method: each iteration compares/subtracts a trial value using
ripple-carry arithmetic built from the CDKM MAJ/UMA blocks (Toffoli +
CNOT), with conditional corrections.  The paper notes (Section A.4)
that Sqrt circuits contain *many consecutive single-qubit gates* that
can slide long distances; we reproduce that trait with the T/T-dagger
runs of the Toffoli decompositions plus explicit phase-fixup runs
between iterations.

Layout: ``nr`` radicand qubits, ``nr//2 + 1`` result qubits, 2 carry
ancillas, totaling ``num_qubits``.
"""

from __future__ import annotations

import random

from ..circuits import CNOT, Circuit, Gate, X
from . import decompose as dec

__all__ = ["sqrt_circuit"]


def _maj(a: int, b: int, c: int) -> list[Gate]:
    """CDKM majority block."""
    return [CNOT(c, b), CNOT(c, a), *dec.toffoli(a, b, c)]


def _uma(a: int, b: int, c: int) -> list[Gate]:
    """CDKM un-majority-and-add block."""
    return [*dec.toffoli(a, b, c), CNOT(c, a), CNOT(a, b)]


def _ripple_add(a_reg: list[int], b_reg: list[int], carry: int) -> list[Gate]:
    """Ripple-carry adder b += a (equal-width registers)."""
    gates: list[Gate] = []
    chain: list[tuple[int, int, int]] = []
    prev = carry
    for a, b in zip(a_reg, b_reg):
        gates += _maj(prev, b, a)
        chain.append((prev, b, a))
        prev = a
    for p, b, a in reversed(chain):
        gates += _uma(p, b, a)
    return gates


def sqrt_circuit(
    num_qubits: int,
    *,
    rounds: int = 1,
    seed: int = 0,
    rng: random.Random | None = None,
) -> Circuit:
    """Generate a reversible square-root circuit on ``n`` qubits (>= 6).

    ``rounds`` repeats the Newton-style refinement sweep (each sweep
    runs one full set of shift-and-subtract iterations), scaling depth
    without adding qubits.

    ``rng`` is an explicit random source; when given, randomness is
    drawn from it directly and ``seed`` is ignored.
    """
    n = num_qubits
    if n < 6:
        raise ValueError("sqrt needs at least 6 qubits")
    if rounds < 1:
        raise ValueError("rounds must be positive")
    rng = random.Random(seed) if rng is None else rng
    nr = (2 * (n - 2)) // 3  # radicand width
    nres = n - nr - 2  # result width
    rad = list(range(nr))
    res = list(range(nr, nr + nres))
    carry = nr + nres
    flag = nr + nres + 1

    gates: list[Gate] = []
    # Load a pseudo-random radicand.
    value = rng.randrange(1 << nr)
    for i, q in enumerate(rad):
        if (value >> i) & 1:
            gates.append(X(q))

    iterations = max(1, nres) * rounds
    for it in range(iterations):
        # Trial subtraction: compare the shifted partial result against
        # the radicand window (ripple adder over the overlap).
        width = min(len(res), len(rad) - (it % 2))
        a_reg = res[:width]
        b_reg = rad[it % 2 : it % 2 + width]
        gates += _ripple_add(a_reg, b_reg, carry)
        # Sign test -> conditional restore (controlled on the carry).
        gates.append(CNOT(rad[-1], flag))
        gates += dec.toffoli(flag, b_reg[-1], a_reg[0])
        gates += dec.inverse(_ripple_add(a_reg, b_reg, carry))
        # Result-bit update and the phase-fixup run: a long stretch of
        # consecutive single-qubit gates (the trait Section A.4 calls out).
        gates.append(CNOT(flag, res[it % nres]))
        for q in (res[it % nres], flag, carry):
            gates += dec.t(q)
            gates += dec.s(q)
            gates += dec.tdg(q)
            gates += dec.sdg(q)
        gates.append(CNOT(flag, res[it % nres]))
        gates.append(CNOT(rad[-1], flag))
    return Circuit(gates, n)
