"""Materialize the benchmark suite as OpenQASM files.

The paper's benchmarks come from QASM suites (PennyLane, Qiskit,
NWQBench); this module writes our generated equivalents in the same
form: one ``<family>_<qubits>q_<index>.qasm`` file per instance plus a
``manifest.csv`` with the metrics of each circuit, so external
optimizers can run on exactly the circuits this reproduction measures.

CLI: ``popqc suite --out DIR [--sizes 0 1 ...]``.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass
from typing import Sequence

from ..analysis import analyze
from ..circuits import to_qasm
from .registry import family_names, generate

__all__ = ["SuiteEntry", "write_suite"]


@dataclass
class SuiteEntry:
    """One materialized benchmark instance."""

    family: str
    size_index: int
    path: str
    num_qubits: int
    num_gates: int
    depth: int
    two_qubit_gates: int


def write_suite(
    out_dir: str,
    *,
    families: Sequence[str] | None = None,
    size_indices: Sequence[int] = (0, 1, 2, 3),
    seed: int = 0,
) -> list[SuiteEntry]:
    """Write QASM files and a manifest; returns the entries written."""
    os.makedirs(out_dir, exist_ok=True)
    entries: list[SuiteEntry] = []
    for fam in families or family_names():
        for idx in size_indices:
            circuit = generate(fam, idx, seed=seed)
            name = f"{fam.lower()}_{circuit.num_qubits}q_{idx}.qasm"
            path = os.path.join(out_dir, name)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(to_qasm(circuit))
            report = analyze(circuit)
            entries.append(
                SuiteEntry(
                    family=fam,
                    size_index=idx,
                    path=path,
                    num_qubits=circuit.num_qubits,
                    num_gates=circuit.num_gates,
                    depth=report.depth,
                    two_qubit_gates=report.two_qubit_gates,
                )
            )
    manifest = os.path.join(out_dir, "manifest.csv")
    with open(manifest, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["family", "size_index", "file", "qubits", "gates", "depth", "cx"]
        )
        for e in entries:
            writer.writerow(
                [
                    e.family,
                    e.size_index,
                    os.path.basename(e.path),
                    e.num_qubits,
                    e.num_gates,
                    e.depth,
                    e.two_qubit_gates,
                ]
            )
    return entries
