#!/usr/bin/env python3
"""Depth-aware optimization with the search oracle (paper Section 7.8).

Runs layered POPQC with the Quartz-like search oracle under two
objectives — pure gate count and the paper's mixed cost
(10*depth + gates) — on a VQE ansatz, and reports the gate/depth
trade-off Figure 6 illustrates.

Run:  python examples/depth_aware_optimization.py
"""

from repro.benchgen import vqe
from repro.core import layered_popqc, mixed_cost
from repro.oracles import GateCount, MixedCost, SearchOracle


def main() -> None:
    circuit = vqe(8, layers=8, seed=0)
    d0, g0 = circuit.depth(), circuit.num_gates
    print(f"input: {g0} gates, depth {d0}")

    omega_layers = 20  # omega counts layers in the layered representation

    gate_result = layered_popqc(
        circuit,
        SearchOracle(GateCount()),
        omega_layers,
        cost=lambda gates: float(len(gates)),
    )
    gc, gd = gate_result.circuit.num_gates, gate_result.circuit.depth()
    print(
        f"gate-count objective : {gc} gates ({100 * (1 - gc / g0):.1f}% red.), "
        f"depth {gd} ({100 * (1 - gd / d0):.1f}% red.)"
    )

    mixed_result = layered_popqc(
        circuit,
        SearchOracle(MixedCost(10.0)),
        omega_layers,
        cost=mixed_cost(10.0),
    )
    mc, md = mixed_result.circuit.num_gates, mixed_result.circuit.depth()
    print(
        f"mixed objective      : {mc} gates ({100 * (1 - mc / g0):.1f}% red.), "
        f"depth {md} ({100 * (1 - md / d0):.1f}% red.)"
    )

    if md <= gd:
        print("-> the depth-aware cost matched or beat the gate-count "
              "objective on depth, as in the paper's Figure 6")


if __name__ == "__main__":
    main()
