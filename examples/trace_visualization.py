#!/usr/bin/env python3
"""Watch POPQC's finger dynamics round by round (Figure 2, live).

Runs the traced driver on a benchmark instance and renders the per-round
band: ``|`` fingers, ``#`` selected fingers, ``=`` regions the oracle
optimized that round.  The "optimization wave" spreading from the
initial finger grid and dying out is the visual form of the paper's
invariant: every unoptimized Ω-segment keeps a finger until no finger
remains.

Run:  python examples/trace_visualization.py [FAMILY] [SIZE]
"""

import sys

from repro.benchgen import family_names, generate
from repro.core import popqc_traced, render_trace
from repro.oracles import NamOracle


def main() -> None:
    family = sys.argv[1] if len(sys.argv) > 1 else "StateVec"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    if family not in family_names():
        raise SystemExit(f"unknown family {family!r}; one of {family_names()}")

    circuit = generate(family, size)
    print(f"{family}[{size}]: {circuit.num_gates} gates on "
          f"{circuit.num_qubits} qubits\n")

    result, trace = popqc_traced(circuit, NamOracle(), omega=80)
    print(render_trace(trace))
    print()
    print(result.stats.summary())
    print(
        f"accepted {result.stats.oracle_accepted}/{result.stats.oracle_calls} "
        "oracle calls; every '=' region above was one accepted call"
    )


if __name__ == "__main__":
    main()
