#!/usr/bin/env python3
"""Plugging custom oracles into POPQC.

POPQC treats the oracle as a black box (the paper: "we make no
assumptions about its inner workings").  This example demonstrates:

1. a user-written oracle (adjacent-duplicate cancellation only);
2. composing oracles with ComposedOracle;
3. the well-behavedness check the local-optimality theorem requires;
4. how oracle strength shows up in the final quality.

Run:  python examples/custom_oracle.py
"""

from repro import popqc
from repro.benchgen import generate
from repro.circuits import Gate
from repro.oracles import (
    ComposedOracle,
    NamOracle,
    SearchOracle,
    check_well_behaved,
)


class AdjacentPairOracle:
    """A deliberately weak oracle: cancels only *adjacent* self-inverse
    pairs, no commutation reasoning.  Run to a fixpoint so it is
    well-behaved."""

    def __call__(self, gates):
        gates = list(gates)
        while True:
            out = []
            i = 0
            changed = False
            while i < len(gates):
                if (
                    i + 1 < len(gates)
                    and gates[i].name in ("h", "x", "cnot")
                    and gates[i] == gates[i + 1]
                ):
                    i += 2
                    changed = True
                else:
                    out.append(gates[i])
                    i += 1
            gates = out
            if not changed:
                return gates


def main() -> None:
    circuit = generate("Grover", 0)
    print(f"workload: Grover[0], {circuit.num_gates} gates")

    oracles = {
        "adjacent-pairs (custom)": AdjacentPairOracle(),
        "rule-based (NamOracle)": NamOracle(),
        "rules + search (Composed)": ComposedOracle(
            NamOracle(), SearchOracle(beam_width=4, max_steps=2, node_budget=300)
        ),
    }

    for name, oracle in oracles.items():
        # Theorem 7 requires well-behaved oracles; verify empirically.
        sample = list(circuit.gates[:120])
        bad = check_well_behaved(oracle, sample, samples=25, seed=0)
        badge = "well-behaved" if not bad else f"NOT well-behaved ({len(bad)} hits)"

        res = popqc(circuit, oracle, omega=60)
        print(
            f"{name:26s}: {res.circuit.num_gates:5d} gates "
            f"({100 * res.stats.gate_reduction:5.1f}% reduction), "
            f"{res.stats.oracle_calls} calls, {badge}"
        )

    print("\nstronger oracles find more; POPQC's guarantee adapts to each:")
    print("the output is locally optimal *with respect to the oracle used*.")


if __name__ == "__main__":
    main()
