#!/usr/bin/env python3
"""Regenerate the paper's Figures 3-9 at reproduction scale.

Companion to paper_tables.py; EXPERIMENTS.md records this output.

Run:  python examples/paper_figures.py [--figures 3 4 ...] [--full]
"""

import argparse
import sys
import time

from repro.experiments import (
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--figures", nargs="*", default=["3", "4", "5", "6", "7", "8", "9"]
    )
    parser.add_argument("--full", action="store_true", help="largest instances")
    args = parser.parse_args()
    t0 = time.time()

    large = 3 if args.full else 2
    sizes = (0, 1, 2, 3) if args.full else (0, 1, 2)

    if "3" in args.figures:
        _, text = run_figure3(size_index=large)
        print(text, "\n")
    if "4" in args.figures:
        _, text = run_figure4(large_index=large)
        print(text, "\n")
    if "5" in args.figures:
        _, text = run_figure5(size_indices=sizes)
        print(text, "\n")
    if "6" in args.figures:
        _, text = run_figure6(size_indices=(0, 1))
        print(text, "\n")
    if "7" in args.figures:
        _, text = run_figure7(size_indices=sizes)
        print(text, "\n")
    if "8" in args.figures:
        _, text = run_figure8(size_indices=sizes)
        print(text, "\n")
    if "9" in args.figures:
        _, text = run_figure9(size_index=1)
        print(text, "\n")

    print(f"total: {time.time() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
