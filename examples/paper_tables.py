#!/usr/bin/env python3
"""Regenerate the paper's Tables 1-4 at reproduction scale.

This is the script whose output EXPERIMENTS.md records.  By default it
runs all 8 families at sizes 0-2 (size 3 included with --full); expect
roughly 10-30 minutes for --full on one core.

Run:  python examples/paper_tables.py [--full] [--csv DIR]
"""

import argparse
import sys
import time

from repro.experiments import (
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    write_csv,
)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--full", action="store_true", help="include size 3")
    parser.add_argument("--csv", help="directory to write CSV files")
    parser.add_argument("--tables", nargs="*", default=["1", "2", "3", "4"])
    args = parser.parse_args()

    sizes = (0, 1, 2, 3) if args.full else (0, 1, 2)
    t0 = time.time()

    if "1" in args.tables:
        rows, text = run_table1(size_indices=sizes)
        print(text, "\n")
        if args.csv:
            write_csv(
                f"{args.csv}/table1.csv",
                ["family", "qubits", "gates", "base_red", "base_t",
                 "popqc_red", "popqc_t", "speedup"],
                [[r.family, r.qubits, r.gates, r.baseline_reduction,
                  r.baseline_time, r.popqc_reduction, r.popqc_time, r.speedup]
                 for r in rows],
            )

    if "2" in args.tables:
        rows, text = run_table2(size_indices=sizes)
        print(text, "\n")
        if args.csv:
            write_csv(
                f"{args.csv}/table2.csv",
                ["family", "qubits", "gates", "base_t", "popqc_t", "speedup"],
                [[r.family, r.qubits, r.gates, r.baseline_time, r.popqc_time,
                  r.speedup] for r in rows],
            )

    if "3" in args.tables:
        rows, text = run_table3(size_indices=sizes)
        print(text, "\n")
        if args.csv:
            write_csv(
                f"{args.csv}/table3.csv",
                ["family", "qubits", "gates", "oac_t", "popqc_t", "speedup",
                 "oac_red", "popqc_red"],
                [[r.family, r.qubits, r.gates, r.oac_time, r.popqc_time,
                  r.speedup, r.oac_reduction, r.popqc_reduction] for r in rows],
            )

    if "4" in args.tables:
        rows, text = run_table4(size_indices=sizes[:2])
        print(text, "\n")
        if args.csv:
            write_csv(
                f"{args.csv}/table4.csv",
                ["family", "left", "right", "default"],
                [[r.family, r.left_justified_reduction,
                  r.right_justified_reduction, r.default_reduction]
                 for r in rows],
            )

    print(f"total: {time.time() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
