#!/usr/bin/env python3
"""Optimize an OpenQASM 2.0 file end to end.

Writes a sample QASM file (a small arithmetic kernel using ccx/cz/t
gates, which the parser decomposes into the {h, x, cnot, rz} base set),
optimizes it at two Ω values, and writes the optimized QASM back.

This is the workflow for external circuits: QASM in, QASM out.

Run:  python examples/optimize_qasm_file.py [input.qasm]
"""

import sys
import tempfile
from pathlib import Path

from repro import NamOracle, popqc
from repro.circuits import read_qasm, write_qasm

SAMPLE = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
// a toy adder round: majority / unmajority with phase fixups
h q[0]; h q[1];
ccx q[0],q[1],q[2];
cx q[0],q[1];
t q[1]; tdg q[1];
ccx q[1],q[2],q[3];
cz q[3],q[4];
s q[4]; sdg q[4];
ccx q[1],q[2],q[3];
cx q[0],q[1];
ccx q[0],q[1],q[2];
h q[1]; h q[0];
"""


def main() -> None:
    if len(sys.argv) > 1:
        in_path = Path(sys.argv[1])
    else:
        in_path = Path(tempfile.gettempdir()) / "popqc_sample.qasm"
        in_path.write_text(SAMPLE)
        print(f"wrote sample input to {in_path}")

    circuit = read_qasm(str(in_path))
    print(f"parsed: {circuit.num_gates} base gates on {circuit.num_qubits} qubits")

    oracle = NamOracle()
    for omega in (25, 100):
        result = popqc(circuit, oracle, omega)
        print(f"omega={omega:>4}: {result.stats.summary()}")

    out_path = in_path.with_suffix(".optimized.qasm")
    write_qasm(result.circuit, str(out_path))
    print(f"wrote optimized circuit to {out_path}")

    # round-trip check
    again = read_qasm(str(out_path))
    assert again.gates == result.circuit.gates
    print("round-trip verified")


if __name__ == "__main__":
    main()
