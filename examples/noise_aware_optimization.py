#!/usr/bin/env python3
"""Noise-aware optimization with a fidelity cost function.

Section 8.1 of the paper lists circuit fidelity as the key NISQ-era
objective.  POPQC's acceptance test takes any cost function; here we
optimize a benchmark under ``FidelityCost`` — negative log success
probability with per-gate depolarizing errors (two-qubit gates 10x
noisier) — and compare against plain gate-count optimization.

Run:  python examples/noise_aware_optimization.py
"""

from repro.benchgen import generate
from repro.core import popqc
from repro.oracles import FidelityCost, NamOracle


def main() -> None:
    circuit = generate("Grover", 1)
    cost = FidelityCost(single_qubit_error=1e-4, two_qubit_error=1e-3)
    oracle = NamOracle()

    print(
        f"input: {circuit.num_gates} gates "
        f"({circuit.two_qubit_count()} two-qubit), modeled fidelity "
        f"{cost.fidelity(list(circuit.gates)):.4f}"
    )

    by_count = popqc(circuit, oracle, 100)
    g = by_count.circuit
    print(
        f"gate-count objective: {g.num_gates} gates "
        f"({g.two_qubit_count()} two-qubit), fidelity "
        f"{cost.fidelity(list(g.gates)):.4f}"
    )

    by_fidelity = popqc(circuit, oracle, 100, cost=cost)
    f = by_fidelity.circuit
    print(
        f"fidelity objective  : {f.num_gates} gates "
        f"({f.two_qubit_count()} two-qubit), fidelity "
        f"{cost.fidelity(list(f.gates)):.4f}"
    )

    gain = cost.fidelity(list(f.gates)) / cost.fidelity(list(circuit.gates))
    print(f"\nmodeled success probability improved {gain:.2f}x; the fidelity "
          "objective weighs CNOT removals 10x more than single-qubit ones.")


if __name__ == "__main__":
    main()
