#!/usr/bin/env python3
"""Adaptive Ω — the paper's Section A.4 future work, in action.

The paper observes that Sqrt is ordering-sensitive because >5% of its
gates can slide more than 200 positions, and proposes choosing Ω from
the circuit's sliding-distance profile.  This example profiles each
benchmark family, shows the suggested Ω, and compares fixed-Ω against
adaptive-Ω optimization.

Run:  python examples/adaptive_omega.py
"""

from repro.benchgen import family_names, generate
from repro.core import popqc, popqc_adaptive, suggest_omega
from repro.oracles import NamOracle

FIXED_OMEGA = 100


def main() -> None:
    oracle = NamOracle()
    print(
        "family     gates  max_slide  q95_slide  omega*   "
        "fixed-red%  adaptive-red%"
    )
    for fam in family_names():
        circuit = generate(fam, 1)
        profile = suggest_omega(circuit)
        fixed = popqc(circuit, oracle, FIXED_OMEGA)
        adaptive, _ = popqc_adaptive(circuit, oracle)
        print(
            f"{fam:9s} {circuit.num_gates:6d} {profile.max_distance:10d} "
            f"{profile.quantile_distance:10d} {profile.suggested_omega:7d} "
            f"{100 * fixed.stats.gate_reduction:10.1f} "
            f"{100 * adaptive.stats.gate_reduction:13.1f}"
        )
    print(
        "\nomega* is the 95th-percentile sliding distance clamped to "
        "[50, 800];\nfamilies whose gates slide far (the paper's Sqrt "
        "effect) get a larger window."
    )


if __name__ == "__main__":
    main()
