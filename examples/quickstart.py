#!/usr/bin/env python3
"""Quickstart: optimize a generated benchmark circuit with POPQC.

Builds a Grover instance, runs the parallel optimizer with the default
rule-based oracle, verifies local optimality, and prints the stats the
paper reports (gate reduction, rounds, oracle calls, oracle-time
fraction).

Run:  python examples/quickstart.py
"""

from repro import NamOracle, optimize
from repro.benchgen import grover
from repro.core import assert_locally_optimal
from repro.parallel import SimulatedParallelism


def main() -> None:
    # 1. A workload: Grover search over 7 qubits (plus V-chain ancillas).
    circuit = grover(7, iterations=12, seed=0)
    print(f"input: {circuit.num_gates} gates on {circuit.num_qubits} qubits, "
          f"depth {circuit.depth()}")

    # 2. Optimize.  omega is the paper's locality parameter: every
    #    omega-window of the output will be unimprovable by the oracle.
    omega = 100
    result = optimize(circuit, omega=omega)
    print("optimized:", result.stats.summary())

    # 3. The guarantee is checkable: re-run the oracle over every window.
    assert_locally_optimal(result.circuit, NamOracle(), omega, stride=25)
    print(f"verified: every {omega}-gate window is locally optimal")

    # 4. The same run under simulated 64-way parallelism reports the
    #    parallel wall time the paper's span bound governs.
    pmap = SimulatedParallelism(64)
    parallel = optimize(circuit, omega=omega, parmap=pmap)
    st = parallel.stats
    print(
        f"simulated 64 workers: {st.parallel_time:.3f}s parallel vs "
        f"{st.total_time:.3f}s serial ({st.self_speedup:.1f}x self-speedup, "
        f"{st.rounds} rounds)"
    )


if __name__ == "__main__":
    main()
