#!/usr/bin/env python3
"""Scaling study: self-speedup vs workers and vs circuit size.

Reproduces the dynamics of the paper's Figures 3 and 5 on scaled
instances.  One timed run per instance records every oracle-call
duration; makespans for all worker counts are then recomputed from the
same durations (deterministic, no re-execution).

Run:  python examples/scaling_study.py
"""

from repro.benchgen import generate
from repro.core import popqc
from repro.oracles import NamOracle
from repro.parallel import SimulatedParallelism

WORKERS = (1, 2, 4, 8, 16, 32, 64)
FAMILIES = ("Shor", "VQE", "HHL")


def speedups_for(circuit, omega: int = 100):
    pmap = SimulatedParallelism(1, record_durations=True)
    res = popqc(circuit, NamOracle(), omega, parmap=pmap)
    admin = res.stats.admin_time
    base = admin + pmap.makespan_for(1)
    return res, [base / (admin + pmap.makespan_for(p)) for p in WORKERS]


def main() -> None:
    print("Figure-3-style: self-speedup vs workers (size index 1)")
    header = "family     gates  " + "".join(f"  p={p:<4}" for p in WORKERS)
    print(header)
    for fam in FAMILIES:
        circuit = generate(fam, 1)
        res, sps = speedups_for(circuit)
        row = f"{fam:9s} {circuit.num_gates:6d}  " + "".join(
            f"{s:7.2f}" for s in sps
        )
        print(row)

    print("\nFigure-5-style: self-speedup at p=64 vs circuit size")
    print("family     size   gates   speedup   rounds")
    for fam in FAMILIES:
        for idx in range(3):
            circuit = generate(fam, idx)
            res, sps = speedups_for(circuit)
            print(
                f"{fam:9s} {idx:4d} {circuit.num_gates:7d} {sps[-1]:9.2f} "
                f"{res.stats.rounds:8d}"
            )
    print("\nspeedups grow with circuit size and saturate with round count,")
    print("matching the shape of the paper's Figures 3 and 5.")


if __name__ == "__main__":
    main()
