"""The CI perf gate itself (`benchmarks/check_bench_trend.py`).

The gate script guards every perf record the repo commits, but until
now nothing tested the gate — a bug there silently disarms CI.  These
tests import the script as a module (it lives outside the package) and
drive `main()` with synthetic records on disk, asserting exit statuses
for: healthy runs, transport throughput regressions, service-load SLO
violations (armed even cross-runner-class), p99 regressions (warn-only
cross-class unless --strict), cache-benefit floors, failed jobs, and
malformed schemas.
"""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_bench_trend.py"
)
_spec = importlib.util.spec_from_file_location("check_bench_trend", _SCRIPT)
trend = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(trend)


def _transport_record(serial=1000.0, socket=500.0, cpus=2):
    return {
        "schema": "popqc-bench-transport/v4",
        "host": {"cpus": cpus},
        "results": {
            "serial": {"segments_per_s": serial},
            "socket": {"segments_per_s": socket},
        },
    }


def _mix(p50=0.1, p99=0.2, hit_rate=0.0, failed=0):
    return {
        "jobs_scheduled": 4,
        "jobs_completed": 4 - failed,
        "jobs_failed": failed,
        "busy_rejections": 0,
        "latency_seconds": {"p50": p50, "p90": p99, "p99": p99},
        "throughput_jobs_per_s": 1.0,
        "cache": {"hit_rate": hit_rate, "trajectory": []},
        "errors": ["ServiceError: boom"] if failed else [],
    }


def _service_record(
    speedup=3.0, interactive_ratio=0.3, warm_hit=0.7, cpus=2, failed=0
):
    return {
        "schema": "popqc-bench-service-load/v1",
        "host": {"cpus": cpus},
        "config": {"seed": 7},
        "mixes": {
            "cold": _mix(p50=0.3, p99=0.5),
            "warm": _mix(p50=0.1, p99=0.3, hit_rate=warm_hit, failed=failed),
            "flood": _mix(p50=1.0, p99=1.2),
            "interactive": _mix(p50=0.1, p99=0.2),
        },
        "derived": {
            "warm_p50_speedup_vs_cold": speedup,
            "interactive_p99_over_flood_p50": interactive_ratio,
            "total_wall_seconds": 5.0,
        },
        "slo": {
            "warm_p50_speedup_min": 2.0,
            "interactive_p99_over_flood_p50_max": 1.0,
        },
    }


@pytest.fixture()
def write(tmp_path):
    def _write(name, record):
        path = tmp_path / name
        path.write_text(json.dumps(record))
        return str(path)

    return _write


class TestTransportGate:
    def test_healthy_passes(self, write):
        cur = write("cur.json", _transport_record())
        base = write("base.json", _transport_record())
        assert trend.main([cur, base]) == 0

    def test_serial_regression_fails(self, write):
        cur = write("cur.json", _transport_record(serial=700.0))
        base = write("base.json", _transport_record(serial=1000.0))
        assert trend.main([cur, base, "--tolerance", "0.2"]) == 1

    def test_within_tolerance_passes(self, write):
        cur = write("cur.json", _transport_record(serial=850.0))
        base = write("base.json", _transport_record(serial=1000.0))
        assert trend.main([cur, base, "--tolerance", "0.2"]) == 0

    def test_cross_class_regression_warns_only(self, write):
        cur = write("cur.json", _transport_record(serial=100.0, cpus=2))
        base = write("base.json", _transport_record(serial=1000.0, cpus=64))
        assert trend.main([cur, base]) == 0
        assert trend.main([cur, base, "--strict"]) == 1

    def test_socket_gate_has_double_tolerance(self, write):
        # a 30% socket drop passes at --tolerance 0.2 (socket floor 40%)
        cur = write("cur.json", _transport_record(socket=350.0))
        base = write("base.json", _transport_record(socket=500.0))
        assert trend.main([cur, base, "--tolerance", "0.2"]) == 0

    def test_validate_only_rejected_for_transport(self, write):
        cur = write("cur.json", _transport_record())
        assert trend.main([cur, "--validate-only"]) == 2


class TestServiceLoadValidation:
    def test_well_formed(self):
        assert trend.validate_service_load(_service_record()) == []

    def test_missing_sections_reported(self):
        record = _service_record()
        del record["slo"]
        del record["mixes"]["warm"]["cache"]
        problems = trend.validate_service_load(record)
        assert any("slo" in p for p in problems)
        assert any("warm" in p for p in problems)

    def test_wrong_schema_tag(self):
        record = _service_record()
        record["schema"] = "popqc-bench-transport/v4"
        assert trend.validate_service_load(record)

    def test_malformed_record_fails_gate(self, write):
        record = _service_record()
        del record["derived"]["warm_p50_speedup_vs_cold"]
        cur = write("cur.json", record)
        assert trend.main([cur, "--validate-only"]) == 1


class TestServiceLoadGate:
    def test_healthy_passes(self, write):
        cur = write("cur.json", _service_record())
        base = write("base.json", _service_record())
        assert trend.main([cur, base]) == 0

    def test_validate_only_needs_no_baseline(self, write):
        cur = write("cur.json", _service_record())
        assert trend.main([cur, "--validate-only"]) == 0

    def test_baseline_required_without_validate_only(self, write):
        cur = write("cur.json", _service_record())
        with pytest.raises(SystemExit):
            trend.main([cur])

    def test_warm_slo_violation_fails(self, write):
        cur = write("cur.json", _service_record(speedup=1.5))
        base = write("base.json", _service_record())
        assert trend.main([cur, base]) == 1

    def test_slo_gates_armed_cross_class(self, write):
        """Ratios are hardware-independent: a different runner class
        must NOT soften an SLO violation."""
        cur = write("cur.json", _service_record(speedup=1.5, cpus=2))
        base = write("base.json", _service_record(cpus=64))
        assert trend.main([cur, base]) == 1
        cur2 = write("cur2.json", _service_record(interactive_ratio=1.4))
        assert trend.main([cur2, base]) == 1

    def test_slo_violation_fails_even_validate_only(self, write):
        cur = write("cur.json", _service_record(interactive_ratio=2.0))
        assert trend.main([cur, "--validate-only"]) == 1

    def test_failed_jobs_fail(self, write):
        cur = write("cur.json", _service_record(failed=1))
        base = write("base.json", _service_record())
        assert trend.main([cur, base]) == 1

    def test_hit_rate_floor(self, write):
        cur = write("cur.json", _service_record(warm_hit=0.5))
        base = write("base.json", _service_record(warm_hit=0.7))
        assert trend.main([cur, base]) == 1
        # inside the slack: passes
        cur2 = write("cur2.json", _service_record(warm_hit=0.66))
        assert trend.main([cur2, base]) == 0

    def test_hit_rate_floor_armed_cross_class(self, write):
        cur = write("cur.json", _service_record(warm_hit=0.4, cpus=2))
        base = write("base.json", _service_record(warm_hit=0.7, cpus=64))
        assert trend.main([cur, base]) == 1

    def test_p99_regression_same_class_fails(self, write):
        record = _service_record()
        record["mixes"]["cold"]["latency_seconds"]["p99"] = 10.0
        cur = write("cur.json", record)
        base = write("base.json", _service_record())
        assert trend.main([cur, base, "--p99-tolerance", "0.5"]) == 1

    def test_p99_within_tolerance_passes(self, write):
        record = _service_record()
        record["mixes"]["cold"]["latency_seconds"]["p99"] = 0.7  # +40%
        cur = write("cur.json", record)
        base = write("base.json", _service_record())
        assert trend.main([cur, base, "--p99-tolerance", "0.5"]) == 0

    def test_p99_regression_cross_class_warns_only(self, write):
        record = _service_record(cpus=2)
        record["mixes"]["cold"]["latency_seconds"]["p99"] = 10.0
        cur = write("cur.json", record)
        base = write("base.json", _service_record(cpus=64))
        assert trend.main([cur, base]) == 0
        assert trend.main([cur, base, "--strict"]) == 1

    def test_malformed_baseline_fails(self, write):
        cur = write("cur.json", _service_record())
        broken = copy.deepcopy(_service_record())
        del broken["mixes"]["warm"]
        base = write("base.json", broken)
        assert trend.main([cur, base]) == 1


def _transport_record_v5(speedup=4.0, cpus=2, **kwargs):
    record = _transport_record(**kwargs, cpus=cpus)
    record["schema"] = "popqc-bench-transport/v5"
    record["cluster_cache"] = {
        "segments": 24,
        "remote_hit_speedup_vs_oracle": speedup,
        "host_a": {"hits": 0, "misses": 24, "stores": 24, "errors": 0},
        "host_b": {"hits": 24, "misses": 0, "stores": 0, "errors": 0},
    }
    return record


class TestClusterCacheGate:
    """Schema v5 transport records must carry a healthy cluster_cache
    section; the ratio gate is armed regardless of runner class."""

    def test_healthy_v5_passes(self, write):
        cur = write("cur.json", _transport_record_v5())
        base = write("base.json", _transport_record_v5())
        assert trend.main([cur, base]) == 0

    def test_missing_section_is_a_regression(self, write):
        record = _transport_record_v5()
        del record["cluster_cache"]
        cur = write("cur.json", record)
        base = write("base.json", _transport_record_v5())
        assert trend.main([cur, base]) == 1

    def test_speedup_at_or_below_one_fails(self, write):
        cur = write("cur.json", _transport_record_v5(speedup=0.8))
        base = write("base.json", _transport_record_v5())
        assert trend.main([cur, base]) == 1

    def test_gate_armed_cross_class(self, write):
        # throughput gates warn cross-class; the ratio gate still fails
        cur = write("cur.json", _transport_record_v5(speedup=0.8, cpus=2))
        base = write("base.json", _transport_record_v5(cpus=64))
        assert trend.main([cur, base]) == 1

    def test_v4_records_stay_ungated(self, write):
        # pre-v5 baselines and records carry no cluster_cache section
        cur = write("cur.json", _transport_record())
        base = write("base.json", _transport_record())
        assert trend.main([cur, base]) == 0
