"""Tests for the persistent optimization service layer."""
