"""The cache hook on the executor: equivalence and oracle-call savings.

The acceptance pins for the cached transport: all five wire formats
stay byte-identical with the cache on and off (and against the serial
reference), and a repeated-segment workload with the cache enabled
makes *strictly fewer* oracle calls than with it disabled — proven by
a spy oracle that counts its own invocations, not by derived stats.
"""

import pytest

from repro.circuits import random_redundant_circuit, to_qasm
from repro.core import popqc
from repro.oracles import NamOracle
from repro.parallel import ProcessMap, local_cluster
from repro.service import SegmentCache

CIRCUIT = random_redundant_circuit(8, 1500, seed=23, redundancy=0.5)
OMEGA = 40


class SpyNamOracle(NamOracle):
    """NamOracle that counts how many times it is actually invoked."""

    calls = 0

    def __call__(self, segment):
        type(self).calls += 1
        return super().__call__(segment)

    def run_packed(self, encoded):
        type(self).calls += 1
        return super().run_packed(encoded)


@pytest.fixture(scope="module")
def serial_reference():
    return popqc(CIRCUIT, NamOracle(), OMEGA)


@pytest.fixture(scope="module")
def socket_cluster():
    with local_cluster(2) as hosts:
        yield hosts


@pytest.mark.parametrize(
    "transport", ["pickle", "encoded", "shm", "threads", "socket"]
)
def test_five_way_equivalence_with_cache_on(
    transport, serial_reference, socket_cluster
):
    """Every transport with a (cold, then warm) cache produces the
    byte-identical circuit of the uncached serial reference — twice,
    so the second run is served substantially from the cache."""
    hosts = socket_cluster if transport == "socket" else None
    cache = SegmentCache()
    pm = ProcessMap(
        2, serial_cutoff=0, transport=transport, hosts=hosts, cache=cache
    )
    try:
        cold = popqc(CIRCUIT, NamOracle(), OMEGA, parmap=pm)
        warm = popqc(CIRCUIT, NamOracle(), OMEGA, parmap=pm)
    finally:
        pm.close()
    for res in (cold, warm):
        assert res.circuit.gates == serial_reference.circuit.gates
        assert to_qasm(res.circuit) == to_qasm(serial_reference.circuit)
        assert res.stats.rounds == serial_reference.stats.rounds
        assert res.stats.oracle_calls == serial_reference.stats.oracle_calls
    assert cold.stats.cache_misses > 0
    assert warm.stats.cache_hits == warm.stats.oracle_calls  # fully warm
    assert warm.stats.cache_hit_rate == 1.0
    assert warm.stats.cache_bytes_saved > 0


def test_cache_strictly_reduces_oracle_calls():
    """Oracle-call spy: the same repeated-segment workload (two
    identical runs) invokes the oracle strictly fewer times with the
    cache than without it."""

    def run_twice(cache):
        SpyNamOracle.calls = 0
        pm = ProcessMap(2, serial_cutoff=0, transport="threads", cache=cache)
        try:
            oracle = SpyNamOracle()
            popqc(CIRCUIT, oracle, OMEGA, parmap=pm)
            popqc(CIRCUIT, oracle, OMEGA, parmap=pm)
        finally:
            pm.close()
        return SpyNamOracle.calls

    uncached_calls = run_twice(None)
    cached_calls = run_twice(SegmentCache())
    assert cached_calls < uncached_calls
    assert cached_calls > 0  # cold misses still reach the oracle


def test_cached_stats_flow_into_run_stats():
    cache = SegmentCache()
    pm = ProcessMap(2, serial_cutoff=0, transport="threads", cache=cache)
    try:
        first = popqc(CIRCUIT, NamOracle(), OMEGA, parmap=pm)
        second = popqc(CIRCUIT, NamOracle(), OMEGA, parmap=pm)
    finally:
        pm.close()
    assert first.stats.cache_hits + first.stats.cache_misses == (
        first.stats.oracle_calls
    )
    assert second.stats.oracle_calls_saved == second.stats.cache_hits
    assert second.stats.cache_hit_rate == 1.0
    assert second.stats.cache_lookup_seconds > 0.0
    # per-run deltas: the first run's misses are not re-counted
    assert second.stats.cache_misses == 0


def test_cache_with_unpicklable_oracle_on_threads_transport():
    """Oracles that cannot pickle (lambdas, closures) are legal on the
    threads transport; enabling the cache must not crash them — they
    get a one-off namespace instead of a content fingerprint and still
    hit their own earlier entries."""
    calls = []

    def oracle(seg):
        calls.append(1)
        return list(seg)

    segments = [CIRCUIT.gates[i : i + 20] for i in range(0, 80, 20)]
    pm = ProcessMap(
        2, serial_cutoff=0, transport="threads", cache=SegmentCache()
    )
    try:
        first = pm.map_segments(oracle, segments)
        before = len(calls)
        second = pm.map_segments(oracle, segments)
    finally:
        pm.close()
    assert [list(r) for r in first] == [list(r) for r in second]
    assert len(calls) == before  # second round fully cached
    assert pm.cache_hits == len(segments)


def test_unpicklable_oracles_get_distinct_namespaces():
    from repro.parallel.executor import oracle_cache_namespace

    a = oracle_cache_namespace(lambda seg: seg)
    b = oracle_cache_namespace(lambda seg: seg)
    assert a != b  # opaque oracles must never share entries


def test_cache_serves_below_serial_cutoff():
    """The cache hook fronts the inline fallback too: tiny rounds that
    never reach a pool still hit on repeats."""
    cache = SegmentCache()
    pm = ProcessMap(2, serial_cutoff=8, transport="encoded", cache=cache)
    segments = [CIRCUIT.gates[i : i + 20] for i in range(0, 60, 20)]
    oracle = NamOracle()
    try:
        first = pm.map_segments(oracle, segments)
        second = pm.map_segments(oracle, segments)
    finally:
        pm.close()
    assert [list(r) for r in first] == [list(r) for r in second]
    assert pm.cache_hits == len(segments)
