"""The optimization service end to end (in-process server).

Pins the tentpole acceptance behaviours: a job through the service is
byte-identical to a standalone ``popqc`` run, two *concurrent* jobs
through one server both match their serial references, repeated
submissions are served from the cache (nonzero hit rate, ≥ the first
job's), the disk cache survives a server restart, and failures travel
as typed errors instead of hanging the connection.
"""

import json
import threading

import pytest

from repro.circuits import CNOT, Circuit, H, random_redundant_circuit, to_qasm
from repro.core import popqc
from repro.oracles import NamOracle
from repro.parallel.dist import (
    FRAME_SEGMENTS,
    FrameProtocolError,
    pack_frame,
    pack_job_payload,
    unpack_job_payload,
    unpack_result_payload,
)
from repro.circuits.encoding import encode_segment
from repro.service import (
    FleetScheduler,
    OptimizationService,
    SegmentCache,
    ServiceClient,
    ServiceError,
)

CIRCUIT_A = random_redundant_circuit(8, 1200, seed=31, redundancy=0.5)
CIRCUIT_B = random_redundant_circuit(7, 1000, seed=32, redundancy=0.6)
OMEGA = 40


@pytest.fixture(scope="module")
def reference_a():
    return popqc(CIRCUIT_A, NamOracle(), OMEGA)


@pytest.fixture(scope="module")
def reference_b():
    return popqc(CIRCUIT_B, NamOracle(), OMEGA)


@pytest.fixture()
def service():
    srv = OptimizationService(NamOracle(), workers=2, transport="threads").start()
    yield srv
    srv.stop()


class TestJobProtocol:
    def test_job_payload_round_trip(self):
        gates = [H(0), CNOT(0, 1)]
        payload = pack_job_payload(7, 50, 2, 10, encode_segment(gates), priority=3)
        tag, omega, nq, max_rounds, encoded, priority = unpack_job_payload(payload)
        assert (tag, omega, nq, max_rounds, priority) == (7, 50, 2, 10, 3)
        from repro.circuits.encoding import decode_segment

        assert decode_segment(encoded) == gates

    def test_job_payload_none_fields(self):
        payload = pack_job_payload(1, 100, None, None, encode_segment([]))
        _, _, nq, max_rounds, encoded, priority = unpack_job_payload(payload)
        assert nq is None and max_rounds is None and len(encoded) == 0
        assert priority == 1  # the default weight

    def test_job_payload_zero_fields_survive(self):
        """An explicit 0 (legal for both fields) must not decay to
        None on the wire — max_rounds=0 means zero rounds, not
        unlimited."""
        payload = pack_job_payload(1, 100, 0, 0, encode_segment([]))
        _, _, nq, max_rounds, _, _ = unpack_job_payload(payload)
        assert nq == 0 and max_rounds == 0

    def test_job_payload_priority_clamped_both_ends(self):
        """Priority is untrusted wire input: out-of-band values are
        clamped into [1, MAX_PRIORITY] at pack AND unpack time, so a
        hostile client cannot buy an unbounded scheduler share."""
        from repro.parallel.dist import MAX_PRIORITY

        for asked, expect in ((0, 1), (-7, 1), (10**6, MAX_PRIORITY)):
            payload = pack_job_payload(
                1, 50, 2, None, encode_segment([]), priority=asked
            )
            *_, priority = unpack_job_payload(payload)
            assert priority == expect

    @pytest.mark.parametrize("cut", [4, 20, 30])
    def test_torn_job_payload_raises(self, cut):
        payload = pack_job_payload(
            1, 50, 3, None, encode_segment([H(0), CNOT(0, 1), H(2)])
        )
        with pytest.raises(FrameProtocolError):
            unpack_job_payload(payload[:cut])

    def test_torn_result_payload_raises(self):
        from repro.parallel.dist import pack_result_payload

        payload = pack_result_payload(3, b'{"x":1}', encode_segment([H(0)]))
        with pytest.raises(FrameProtocolError):
            unpack_result_payload(payload[: len(payload) - 4])


class TestSingleJob:
    def test_matches_standalone_popqc(self, service, reference_a):
        with ServiceClient(service.address) as client:
            job = client.optimize(CIRCUIT_A, omega=OMEGA)
        assert job.circuit.gates == reference_a.circuit.gates
        assert to_qasm(job.circuit) == to_qasm(reference_a.circuit)
        assert job.stats["rounds"] == reference_a.stats.rounds
        assert job.stats["oracle_calls"] == reference_a.stats.oracle_calls
        assert job.stats["wall_seconds"] > 0.0

    def test_repeat_submission_is_fully_cached(self, service, reference_a):
        with ServiceClient(service.address) as client:
            first = client.optimize(CIRCUIT_A, omega=OMEGA)
            second = client.optimize(CIRCUIT_A, omega=OMEGA)
        assert second.circuit.gates == first.circuit.gates
        assert second.cache_hit_rate == 1.0
        assert second.stats["oracle_calls_saved"] == second.stats["oracle_calls"]
        assert second.cache_hit_rate > first.cache_hit_rate
        # the price of admission is accounted per job, not dropped
        assert second.stats["cache_lookup_seconds"] > 0.0

    def test_max_rounds_honored(self, service):
        with ServiceClient(service.address) as client:
            job = client.optimize(CIRCUIT_A, omega=OMEGA, max_rounds=1)
        assert job.stats["rounds"] == 1

    def test_max_rounds_zero_returns_input_unchanged(self, service):
        with ServiceClient(service.address) as client:
            job = client.optimize(CIRCUIT_A, omega=OMEGA, max_rounds=0)
        assert job.stats["rounds"] == 0
        assert list(job.circuit.gates) == list(CIRCUIT_A.gates)

    def test_status_reports_jobs_cache_and_latency(self, service):
        with ServiceClient(service.address) as client:
            client.ping()
            client.optimize(CIRCUIT_B, omega=OMEGA)
            status = client.status()
        assert status["jobs_completed"] == 1
        assert status["jobs_failed"] == 0
        assert status["fleet"] == {
            "workers": 2,
            "transport": "threads",
            "hosts": [],
        }
        assert status["cache"]["hits"] + status["cache"]["misses"] > 0
        assert status["job_latency"]["count"] == 1
        assert status["job_latency"]["last_seconds"] > 0.0
        assert status["scheduler"]["segments_dispatched"] > 0
        json.dumps(status)  # the whole object is JSON-serializable

    def test_unexpected_frame_answered_with_typed_error(self, service):
        client = ServiceClient(service.address)
        try:
            with pytest.raises(ServiceError, match="unexpected frame type"):
                client._request(pack_frame(FRAME_SEGMENTS, b""))
        finally:
            client.close()

    def test_torn_job_frame_answered_with_typed_error(self, service):
        from repro.parallel.dist import FRAME_JOB

        client = ServiceClient(service.address)
        try:
            with pytest.raises(ServiceError, match="JOB payload"):
                client._request(pack_frame(FRAME_JOB, b"\x00" * 8))
        finally:
            client.close()


class TestConcurrentJobs:
    def test_two_jobs_match_two_serial_runs(
        self, service, reference_a, reference_b
    ):
        """Two overlapping jobs through one server produce the same
        circuits as two standalone serial runs, and the scheduler
        actually interleaved them into shared fleet rounds."""
        results: dict[str, object] = {}
        errors: list[BaseException] = []

        def run(name, circuit):
            try:
                with ServiceClient(service.address) as client:
                    results[name] = client.optimize(circuit, omega=OMEGA)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=("a", CIRCUIT_A)),
            threading.Thread(target=run, args=("b", CIRCUIT_B)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert results["a"].circuit.gates == reference_a.circuit.gates
        assert results["b"].circuit.gates == reference_b.circuit.gates
        assert service.jobs_completed == 2

    def test_concurrent_identical_jobs_share_the_cache(self, service):
        """N identical jobs in flight: together they pay the oracle for
        at most the distinct segments — the rest hits, so the summed
        hit count is positive even while all jobs overlap."""
        n = 3
        jobs = [None] * n
        def run(i):
            with ServiceClient(service.address) as client:
                jobs[i] = client.optimize(CIRCUIT_A, omega=OMEGA)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        gates = [tuple(job.circuit.gates) for job in jobs]
        assert len(set(gates)) == 1
        assert sum(job.stats["cache_hits"] for job in jobs) > 0


class TestServerLifecycle:
    def test_disk_cache_survives_restart(self, tmp_path):
        oracle = NamOracle()

        def serve_once():
            cache = SegmentCache(disk_dir=tmp_path)
            srv = OptimizationService(
                oracle, workers=2, transport="threads", cache=cache
            ).start()
            try:
                with ServiceClient(srv.address) as client:
                    return client.optimize(CIRCUIT_B, omega=OMEGA)
            finally:
                srv.stop()

        first = serve_once()
        second = serve_once()  # a fresh server over the same disk store
        assert second.circuit.gates == first.circuit.gates
        assert second.cache_hit_rate == 1.0

    def test_disk_store_shared_with_executor_cache_path(self, tmp_path):
        """The service and ``ProcessMap(cache=...)`` derive identical
        keys, so a disk store warmed by a standalone run serves a
        server's first job entirely from cache (and vice versa)."""
        from repro.parallel import ProcessMap

        oracle = NamOracle()
        pm = ProcessMap(
            2,
            serial_cutoff=0,
            transport="threads",
            cache=SegmentCache(disk_dir=tmp_path),
        )
        try:
            standalone = popqc(CIRCUIT_B, oracle, OMEGA, parmap=pm)
        finally:
            pm.close()
        srv = OptimizationService(
            oracle,
            workers=2,
            transport="threads",
            cache=SegmentCache(disk_dir=tmp_path),
        ).start()
        try:
            with ServiceClient(srv.address) as client:
                job = client.optimize(CIRCUIT_B, omega=OMEGA)
        finally:
            srv.stop()
        assert job.circuit.gates == standalone.circuit.gates
        assert job.cache_hit_rate == 1.0

    def test_no_cache_mode(self):
        srv = OptimizationService(
            NamOracle(), workers=2, transport="threads", cache=False
        ).start()
        try:
            with ServiceClient(srv.address) as client:
                first = client.optimize(CIRCUIT_B, omega=OMEGA)
                second = client.optimize(CIRCUIT_B, omega=OMEGA)
        finally:
            srv.stop()
        assert second.circuit.gates == first.circuit.gates
        assert second.stats["cache_hits"] == 0
        # no cache, no lookups: dispatching straight to the fleet is
        # not a "miss"
        assert second.stats["cache_misses"] == 0
        assert second.cache_hit_rate == 0.0

    def test_scheduler_close_fails_pending_cleanly(self):
        from repro.parallel import ProcessMap

        sched = FleetScheduler(ProcessMap(2, transport="threads"))
        sched.close()
        with pytest.raises(RuntimeError, match="closed"):
            sched.run_round(NamOracle(), [CIRCUIT_B.gates[:10]] * 4)
        sched.close()  # idempotent

    def test_stop_is_idempotent(self):
        srv = OptimizationService(NamOracle(), workers=2, transport="threads")
        srv.start()
        srv.stop()
        srv.stop()


def test_fleet_view_label_and_serial_map():
    from repro.parallel import ProcessMap

    sched = FleetScheduler(ProcessMap(2, transport="threads"))
    try:
        view = sched.view()
        assert view.workers == 2
        assert view.transport == "threads"
        assert view.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        res = popqc(Circuit([H(0), H(0)] * 30, 1), NamOracle(), 8, parmap=view)
        assert res.stats.transport in ("threads", "inline")
        assert res.circuit.num_gates == 0
    finally:
        sched.close()


# -- multi-tenant hardening ---------------------------------------------------

SMALL = Circuit([H(0), H(0)] * 20, 1)


class GatedOracle:
    """NamOracle that blocks every call until released.

    Threads-transport only (holds a live Event); lets tests pin the
    server in the "job active" state deterministically.
    """

    def __init__(self, gate):
        self._gate = gate
        self._inner = NamOracle()

    def __call__(self, segment):
        self._gate.wait(timeout=60)
        return self._inner(segment)


class RecordingFleet:
    """A fake fleet: identity oracle results, every round recorded."""

    workers = 4
    transport = "fake"

    def __init__(self, delay_seconds=0.0):
        self.delay_seconds = delay_seconds
        self.rounds = []

    def map_segments(self, oracle, segments):
        self.rounds.append([list(seg) for seg in segments])
        if self.delay_seconds:
            import time

            time.sleep(self.delay_seconds)
        return [list(seg) for seg in segments]

    def close(self):
        return None


class TestBusyProtocol:
    def test_busy_payload_round_trip(self):
        from repro.parallel.dist import (
            BUSY_PEER_QUOTA,
            pack_busy_payload,
            unpack_busy_payload,
        )

        payload = pack_busy_payload(BUSY_PEER_QUOTA, 0.25, "slow down")
        kind, retry_after, message = unpack_busy_payload(payload)
        assert (kind, retry_after, message) == (BUSY_PEER_QUOTA, 0.25, "slow down")

    def test_torn_busy_payload_raises(self):
        from repro.parallel.dist import unpack_busy_payload

        with pytest.raises(FrameProtocolError, match="BUSY payload"):
            unpack_busy_payload(b"\x01\x00")


class TestWeightedFairScheduler:
    def test_round_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="round_budget_segments"):
            FleetScheduler(RecordingFleet(), round_budget_segments=0)

    def test_interactive_job_not_starved_by_batch(self):
        """The acceptance pin: with a big batch round saturating the
        fleet, a small concurrent round completes within a bounded
        number of scheduler rounds — not after the batch drains."""
        import time

        fleet = RecordingFleet(delay_seconds=0.01)
        sched = FleetScheduler(
            fleet,
            cache=None,
            gather_window_seconds=0.005,
            round_budget_segments=8,
        )
        oracle = NamOracle()
        batch_done = threading.Event()

        def run_batch():
            sched.run_round(oracle, [[H(0)]] * 64, weight=1)
            batch_done.set()

        t = threading.Thread(target=run_batch)
        try:
            t.start()
            for _ in range(1000):
                if sched.pending_requests >= 1:
                    break
                time.sleep(0.001)
            rounds_before = sched.rounds_dispatched
            results, *_ = sched.run_round(oracle, [[CNOT(0, 1)]] * 2, weight=1)
            rounds_used = sched.rounds_dispatched - rounds_before
            assert results == [[CNOT(0, 1)], [CNOT(0, 1)]]
            # budget 8 split over two weight-1 requests: the 2-segment
            # round fits its share of the first round it joins (plus at
            # most one round already in flight when it arrived)
            assert rounds_used <= 3
            assert not batch_done.is_set()  # the batch was still draining
            t.join(timeout=30)
            assert batch_done.is_set()
        finally:
            batch_done.wait(timeout=30)
            sched.close()

    def test_first_merged_round_split_by_weight(self):
        """Two 32-segment requests with weights 1 and 3 share the
        8-segment budget 2/6 in their first merged round."""
        fleet = RecordingFleet()
        sched = FleetScheduler(
            fleet,
            cache=None,
            gather_window_seconds=0.25,
            round_budget_segments=8,
        )
        oracle = NamOracle()
        try:
            threads = [
                threading.Thread(
                    target=sched.run_round,
                    args=(oracle, [[H(0)]] * 32),
                    kwargs={"weight": 1},
                ),
                threading.Thread(
                    target=sched.run_round,
                    args=(oracle, [[H(1)]] * 32),
                    kwargs={"weight": 3},
                ),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            first = fleet.rounds[0]
            assert len(first) == 8
            assert sum(1 for seg in first if seg == [H(0)]) == 2
            assert sum(1 for seg in first if seg == [H(1)]) == 6
        finally:
            sched.close()

    def test_fair_split_is_byte_identical_to_a_lone_run(self, reference_a):
        """A job split across many small fleet rounds produces the same
        circuit as a standalone run (acceptance: round composition
        never leaks into results)."""
        srv = OptimizationService(
            NamOracle(),
            workers=2,
            transport="threads",
            round_budget_segments=2,  # force many partial dispatches
        ).start()
        try:
            with ServiceClient(srv.address) as client:
                job = client.optimize(CIRCUIT_A, omega=OMEGA, priority=5)
        finally:
            srv.stop()
        assert job.circuit.gates == reference_a.circuit.gates
        assert job.stats["priority"] == 5


class TestServiceAuth:
    def test_token_round_trip(self):
        srv = OptimizationService(
            NamOracle(), workers=2, transport="threads", auth_token="hush"
        ).start()
        try:
            with ServiceClient(srv.address, auth_token="hush") as client:
                client.ping()
                job = client.optimize(SMALL, omega=8)
            assert job.circuit.num_gates == 0
            assert srv.auth_failures == 0
        finally:
            srv.stop()

    def test_wrong_token_refused_on_connect(self):
        from repro.parallel import AuthenticationError

        srv = OptimizationService(
            NamOracle(), workers=2, transport="threads", auth_token="hush"
        ).start()
        try:
            with pytest.raises(AuthenticationError, match="invalid auth token"):
                ServiceClient(srv.address, auth_token="wrong").connect()
            assert srv.auth_failures == 1
            status = srv.status()
            assert status["admission"]["auth_required"] is True
            assert status["admission"]["auth_failures"] == 1
        finally:
            srv.stop()

    def test_unauthenticated_job_refused_with_typed_error(self):
        """A client that skips AUTH and goes straight to JOB gets a
        typed ERROR — never service, never a hang — and the server
        keeps serving authenticated clients."""
        from repro.parallel import AuthenticationError

        srv = OptimizationService(
            NamOracle(), workers=2, transport="threads", auth_token="hush"
        ).start()
        try:
            bare = ServiceClient(srv.address)  # no token configured
            try:
                with pytest.raises(
                    AuthenticationError, match="authentication required"
                ):
                    bare.optimize(SMALL, omega=8)
            finally:
                bare.close()
            with ServiceClient(srv.address, auth_token="hush") as client:
                client.ping()  # still healthy
        finally:
            srv.stop()

    def test_token_is_noop_on_open_server(self, service):
        with ServiceClient(service.address, auth_token="anything") as client:
            client.ping()


class TestAdmissionControl:
    @pytest.mark.parametrize(
        "bad", [{"max_active_jobs": 0}, {"max_jobs_per_peer": -1}]
    )
    def test_bounds_validated(self, bad):
        with pytest.raises(ValueError, match="positive"):
            OptimizationService(NamOracle(), workers=2, transport="threads", **bad)

    def _gated_service(self, gate, **limits):
        return OptimizationService(
            GatedOracle(gate),
            workers=2,
            transport="threads",
            cache=False,
            **limits,
        ).start()

    def _hold_one_job(self, srv, results):
        def hold():
            with ServiceClient(srv.address) as client:
                results["held"] = client.optimize(SMALL, omega=8)

        thread = threading.Thread(target=hold)
        thread.start()
        import time

        for _ in range(1000):
            if srv.jobs_active >= 1:
                break
            time.sleep(0.005)
        assert srv.jobs_active == 1
        return thread

    def test_global_quota_busy_then_retry_succeeds(self):
        from repro.service import ServiceBusyError

        gate = threading.Event()
        srv = self._gated_service(gate, max_active_jobs=1)
        results: dict = {}
        try:
            holder = self._hold_one_job(srv, results)
            # no retry budget: the refusal surfaces as a typed error
            impatient = ServiceClient(srv.address, busy_retries=0)
            try:
                with pytest.raises(ServiceBusyError, match="job slots"):
                    impatient.optimize(SMALL, omega=8)
                assert impatient.busy_rejections == 1
            finally:
                impatient.close()
            assert srv.jobs_rejected >= 1
            # a patient client rides its backoff through the busy spell
            def retry():
                with ServiceClient(
                    srv.address,
                    busy_retries=60,
                    busy_backoff_seconds=0.02,
                    busy_backoff_max_seconds=0.1,
                ) as client:
                    results["retried"] = client.optimize(SMALL, omega=8)

            retrier = threading.Thread(target=retry)
            retrier.start()
            import time

            time.sleep(0.05)
            gate.set()
            holder.join(timeout=60)
            retrier.join(timeout=60)
            assert results["held"].circuit.num_gates == 0
            assert results["retried"].circuit.num_gates == 0
        finally:
            gate.set()
            srv.stop()

    def test_peer_quota_busy(self):
        from repro.service import ServiceBusyError

        gate = threading.Event()
        srv = self._gated_service(gate, max_jobs_per_peer=1)
        results: dict = {}
        try:
            holder = self._hold_one_job(srv, results)
            second = ServiceClient(srv.address, busy_retries=0)
            try:
                with pytest.raises(ServiceBusyError, match="already has"):
                    second.optimize(SMALL, omega=8)
            finally:
                second.close()
            gate.set()
            holder.join(timeout=60)
        finally:
            gate.set()
            srv.stop()

    def test_queue_depth_busy(self):
        from repro.service import ServiceBusyError

        gate = threading.Event()
        srv = self._gated_service(gate, max_pending_rounds=1)
        results: dict = {}
        try:
            holder = self._hold_one_job(srv, results)
            second = ServiceClient(srv.address, busy_retries=0)
            try:
                with pytest.raises(ServiceBusyError, match="queue is at its cap"):
                    second.optimize(SMALL, omega=8)
            finally:
                second.close()
            gate.set()
            holder.join(timeout=60)
        finally:
            gate.set()
            srv.stop()

    def test_status_reports_admission_and_per_client_accounting(self):
        srv = OptimizationService(
            NamOracle(),
            workers=2,
            transport="threads",
            max_active_jobs=4,
        ).start()
        try:
            with ServiceClient(srv.address) as client:
                client.optimize(SMALL, omega=8)
                status = client.status()
        finally:
            srv.stop()
        assert status["admission"]["max_active_jobs"] == 4
        assert status["admission"]["jobs_rejected"] == 0
        assert status["admission"]["auth_required"] is False
        (peer,) = status["clients"].values()
        assert peer["jobs_completed"] == 1
        assert peer["connections"] >= 1
        assert peer["bytes_received"] > 0 and peer["bytes_sent"] > 0
        json.dumps(status)  # still one JSON-serializable object


class TestAdversarialClients:
    def test_oversized_frame_length_at_cap_drops_connection(self, service):
        """A header claiming a payload over MAX_FRAME_BYTES gets the
        connection dropped — and the server keeps serving others."""
        import socket as socket_mod

        from repro.parallel.dist import _FRAME_HEADER, FRAME_JOB, MAX_FRAME_BYTES

        sock = socket_mod.create_connection(
            (service.host, service.port), timeout=5.0
        )
        sock.settimeout(5.0)
        try:
            sock.sendall(_FRAME_HEADER.pack(b"PQCF", FRAME_JOB, MAX_FRAME_BYTES + 1))
            assert sock.recv(1) == b""  # server hung up on us
        finally:
            sock.close()
        with ServiceClient(service.address) as client:
            client.ping()

    def test_garbage_job_payload_answered_with_typed_error(self, service):
        from repro.parallel.dist import FRAME_JOB

        client = ServiceClient(service.address)
        try:
            with pytest.raises(ServiceError):
                client._request(pack_frame(FRAME_JOB, b"\xff" * 64))
            client.ping()  # the connection survives
        finally:
            client.close()

    def test_idle_connection_dropped_after_timeout(self):
        import socket as socket_mod

        srv = OptimizationService(
            NamOracle(),
            workers=2,
            transport="threads",
            idle_timeout_seconds=0.2,
        ).start()
        try:
            sock = socket_mod.create_connection((srv.host, srv.port), timeout=5.0)
            sock.settimeout(5.0)
            try:
                assert sock.recv(1) == b""  # slow-loris gets cut loose
            finally:
                sock.close()
        finally:
            srv.stop()

    def test_mid_job_disconnect_leaks_nothing(self):
        """A client that vanishes mid-job: the slot is released, the
        socket is reaped, and no handler thread stays pinned."""
        import contextlib as ctx
        import time

        gate = threading.Event()
        srv = OptimizationService(
            GatedOracle(gate), workers=2, transport="threads", cache=False
        ).start()
        try:
            client = ServiceClient(srv.address, request_timeout=30.0)

            def run():
                with ctx.suppress(BaseException):
                    client.optimize(SMALL, omega=8)

            t = threading.Thread(target=run)
            t.start()
            for _ in range(1000):
                if srv.jobs_active >= 1:
                    break
                time.sleep(0.005)
            assert srv.jobs_active == 1
            client.close()  # vanish mid-job
            gate.set()
            t.join(timeout=30)
            for _ in range(1000):
                with srv._lock:
                    drained = srv._jobs_active == 0 and not srv._conns
                if drained:
                    break
                time.sleep(0.005)
            assert srv.jobs_active == 0
            assert srv._conns == []
        finally:
            gate.set()
            srv.stop()

    def test_connection_churn_keeps_thread_list_bounded(self, service):
        import time

        for _ in range(25):
            with ServiceClient(service.address) as client:
                client.ping()
            time.sleep(0.005)  # let the handler notice the close
        # dead handlers are pruned under the lock as connections arrive,
        # so churn cannot grow the list toward the connection count
        assert len(service._conn_threads) < 10


class TestRetryAfterClamp:
    """BUSY ``retry_after`` comes off the wire — clamp before sleeping."""

    @pytest.mark.parametrize(
        "raw, expected",
        [
            (0.3, 0.3),
            (60.0, 60.0),
            (0.0, 0.0),
            (-5.0, 0.0),
            (float("inf"), 60.0),
            (1e9, 60.0),
            (float("nan"), 0.0),
        ],
    )
    def test_wire_values_land_in_the_sane_band(self, raw, expected):
        from repro.service.client import (
            MAX_RETRY_AFTER_SECONDS,
            _clamp_retry_after,
        )

        clamped = _clamp_retry_after(raw)
        assert clamped == expected
        assert 0.0 <= clamped <= MAX_RETRY_AFTER_SECONDS


class TestClusterCacheFrames:
    """The service is the cluster cache tier: CACHE_LOOKUP/CACHE_STORE
    frames from workers are served off its SegmentCache."""

    def _packed_segment(self):
        from repro.parallel.executor import _pack_to_bytes

        return _pack_to_bytes(encode_segment([H(0), CNOT(0, 1)]))

    def test_store_then_lookup_hits_and_counts(self):
        from repro.parallel import CacheClient

        srv = OptimizationService(
            NamOracle(), workers=1, transport="threads"
        ).start()
        try:
            namespace = b"\x01" * 16
            packed = self._packed_segment()
            client = CacheClient(srv.address)
            assert client.lookup(namespace, [packed]) == [None]
            assert client.store(namespace, [(packed, b"cached-bytes")]) is True
            assert client.lookup(namespace, [packed]) == [b"cached-bytes"]
            # a different namespace is a different oracle: no hit
            assert client.lookup(b"\x02" * 16, [packed]) == [None]
            stats = srv.status()["cluster_cache"]
            assert stats == {"lookups": 3, "hits": 1, "stores": 1}
            assert client.errors == 0
        finally:
            srv.stop()

    def test_cacheless_service_degrades_to_misses(self):
        from repro.parallel import CacheClient

        srv = OptimizationService(
            NamOracle(), workers=1, transport="threads", cache=False
        ).start()
        try:
            namespace = b"\x01" * 16
            packed = self._packed_segment()
            client = CacheClient(srv.address)
            # stores are acked (and dropped), lookups answer all-miss:
            # the tier degrades, it never errors
            assert client.store(namespace, [(packed, b"v")]) is True
            assert client.lookup(namespace, [packed]) == [None]
            assert client.errors == 0
            stats = srv.status()["cluster_cache"]
            assert stats["hits"] == 0
        finally:
            srv.stop()

    def test_auth_gate_covers_cache_frames(self):
        from repro.parallel import CacheClient
        from repro.parallel.dist import AuthenticationError

        srv = OptimizationService(
            NamOracle(), workers=1, transport="threads", auth_token="secret"
        ).start()
        try:
            packed = self._packed_segment()
            bad = CacheClient(srv.address, auth_token="wrong")
            with pytest.raises(AuthenticationError):
                bad.lookup(b"\x01" * 16, [packed])
            good = CacheClient(srv.address, auth_token="secret")
            assert good.store(b"\x01" * 16, [(packed, b"v")]) is True
            assert good.lookup(b"\x01" * 16, [packed]) == [b"v"]
        finally:
            srv.stop()


class TestIntervalTimeSources:
    """Interval math must use the monotonic clock; ``time.time()`` is
    for wall-clock *timestamps* only (it jumps under NTP steps)."""

    @pytest.mark.parametrize("module", ["client", "loadgen"])
    def test_no_wall_clock_interval_math(self, module):
        import importlib
        import inspect

        source = inspect.getsource(
            importlib.import_module(f"repro.service.{module}")
        )
        uses = source.count("time.time()")
        if module == "loadgen":
            # exactly one, the report's generated_unix timestamp
            assert uses == 1
            assert "generated_unix" in source.split("time.time()")[0][-200:]
        else:
            assert uses == 0
