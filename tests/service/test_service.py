"""The optimization service end to end (in-process server).

Pins the tentpole acceptance behaviours: a job through the service is
byte-identical to a standalone ``popqc`` run, two *concurrent* jobs
through one server both match their serial references, repeated
submissions are served from the cache (nonzero hit rate, ≥ the first
job's), the disk cache survives a server restart, and failures travel
as typed errors instead of hanging the connection.
"""

import json
import threading

import pytest

from repro.circuits import CNOT, Circuit, H, random_redundant_circuit, to_qasm
from repro.core import popqc
from repro.oracles import NamOracle
from repro.parallel.dist import (
    FRAME_SEGMENTS,
    FrameProtocolError,
    pack_frame,
    pack_job_payload,
    unpack_job_payload,
    unpack_result_payload,
)
from repro.circuits.encoding import encode_segment
from repro.service import (
    FleetScheduler,
    OptimizationService,
    SegmentCache,
    ServiceClient,
    ServiceError,
)

CIRCUIT_A = random_redundant_circuit(8, 1200, seed=31, redundancy=0.5)
CIRCUIT_B = random_redundant_circuit(7, 1000, seed=32, redundancy=0.6)
OMEGA = 40


@pytest.fixture(scope="module")
def reference_a():
    return popqc(CIRCUIT_A, NamOracle(), OMEGA)


@pytest.fixture(scope="module")
def reference_b():
    return popqc(CIRCUIT_B, NamOracle(), OMEGA)


@pytest.fixture()
def service():
    srv = OptimizationService(NamOracle(), workers=2, transport="threads").start()
    yield srv
    srv.stop()


class TestJobProtocol:
    def test_job_payload_round_trip(self):
        gates = [H(0), CNOT(0, 1)]
        payload = pack_job_payload(7, 50, 2, 10, encode_segment(gates))
        tag, omega, nq, max_rounds, encoded = unpack_job_payload(payload)
        assert (tag, omega, nq, max_rounds) == (7, 50, 2, 10)
        from repro.circuits.encoding import decode_segment

        assert decode_segment(encoded) == gates

    def test_job_payload_none_fields(self):
        payload = pack_job_payload(1, 100, None, None, encode_segment([]))
        _, _, nq, max_rounds, encoded = unpack_job_payload(payload)
        assert nq is None and max_rounds is None and len(encoded) == 0

    def test_job_payload_zero_fields_survive(self):
        """An explicit 0 (legal for both fields) must not decay to
        None on the wire — max_rounds=0 means zero rounds, not
        unlimited."""
        payload = pack_job_payload(1, 100, 0, 0, encode_segment([]))
        _, _, nq, max_rounds, _ = unpack_job_payload(payload)
        assert nq == 0 and max_rounds == 0

    @pytest.mark.parametrize("cut", [4, 20, 30])
    def test_torn_job_payload_raises(self, cut):
        payload = pack_job_payload(
            1, 50, 3, None, encode_segment([H(0), CNOT(0, 1), H(2)])
        )
        with pytest.raises(FrameProtocolError):
            unpack_job_payload(payload[:cut])

    def test_torn_result_payload_raises(self):
        from repro.parallel.dist import pack_result_payload

        payload = pack_result_payload(3, b'{"x":1}', encode_segment([H(0)]))
        with pytest.raises(FrameProtocolError):
            unpack_result_payload(payload[: len(payload) - 4])


class TestSingleJob:
    def test_matches_standalone_popqc(self, service, reference_a):
        with ServiceClient(service.address) as client:
            job = client.optimize(CIRCUIT_A, omega=OMEGA)
        assert job.circuit.gates == reference_a.circuit.gates
        assert to_qasm(job.circuit) == to_qasm(reference_a.circuit)
        assert job.stats["rounds"] == reference_a.stats.rounds
        assert job.stats["oracle_calls"] == reference_a.stats.oracle_calls
        assert job.stats["wall_seconds"] > 0.0

    def test_repeat_submission_is_fully_cached(self, service, reference_a):
        with ServiceClient(service.address) as client:
            first = client.optimize(CIRCUIT_A, omega=OMEGA)
            second = client.optimize(CIRCUIT_A, omega=OMEGA)
        assert second.circuit.gates == first.circuit.gates
        assert second.cache_hit_rate == 1.0
        assert second.stats["oracle_calls_saved"] == second.stats["oracle_calls"]
        assert second.cache_hit_rate > first.cache_hit_rate
        # the price of admission is accounted per job, not dropped
        assert second.stats["cache_lookup_seconds"] > 0.0

    def test_max_rounds_honored(self, service):
        with ServiceClient(service.address) as client:
            job = client.optimize(CIRCUIT_A, omega=OMEGA, max_rounds=1)
        assert job.stats["rounds"] == 1

    def test_max_rounds_zero_returns_input_unchanged(self, service):
        with ServiceClient(service.address) as client:
            job = client.optimize(CIRCUIT_A, omega=OMEGA, max_rounds=0)
        assert job.stats["rounds"] == 0
        assert list(job.circuit.gates) == list(CIRCUIT_A.gates)

    def test_status_reports_jobs_cache_and_latency(self, service):
        with ServiceClient(service.address) as client:
            client.ping()
            client.optimize(CIRCUIT_B, omega=OMEGA)
            status = client.status()
        assert status["jobs_completed"] == 1
        assert status["jobs_failed"] == 0
        assert status["fleet"] == {"workers": 2, "transport": "threads"}
        assert status["cache"]["hits"] + status["cache"]["misses"] > 0
        assert status["job_latency"]["count"] == 1
        assert status["job_latency"]["last_seconds"] > 0.0
        assert status["scheduler"]["segments_dispatched"] > 0
        json.dumps(status)  # the whole object is JSON-serializable

    def test_unexpected_frame_answered_with_typed_error(self, service):
        client = ServiceClient(service.address)
        try:
            with pytest.raises(ServiceError, match="unexpected frame type"):
                client._request(pack_frame(FRAME_SEGMENTS, b""))
        finally:
            client.close()

    def test_torn_job_frame_answered_with_typed_error(self, service):
        from repro.parallel.dist import FRAME_JOB

        client = ServiceClient(service.address)
        try:
            with pytest.raises(ServiceError, match="JOB payload"):
                client._request(pack_frame(FRAME_JOB, b"\x00" * 8))
        finally:
            client.close()


class TestConcurrentJobs:
    def test_two_jobs_match_two_serial_runs(
        self, service, reference_a, reference_b
    ):
        """Two overlapping jobs through one server produce the same
        circuits as two standalone serial runs, and the scheduler
        actually interleaved them into shared fleet rounds."""
        results: dict[str, object] = {}
        errors: list[BaseException] = []

        def run(name, circuit):
            try:
                with ServiceClient(service.address) as client:
                    results[name] = client.optimize(circuit, omega=OMEGA)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=("a", CIRCUIT_A)),
            threading.Thread(target=run, args=("b", CIRCUIT_B)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert results["a"].circuit.gates == reference_a.circuit.gates
        assert results["b"].circuit.gates == reference_b.circuit.gates
        assert service.jobs_completed == 2

    def test_concurrent_identical_jobs_share_the_cache(self, service):
        """N identical jobs in flight: together they pay the oracle for
        at most the distinct segments — the rest hits, so the summed
        hit count is positive even while all jobs overlap."""
        n = 3
        jobs = [None] * n
        def run(i):
            with ServiceClient(service.address) as client:
                jobs[i] = client.optimize(CIRCUIT_A, omega=OMEGA)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        gates = [tuple(job.circuit.gates) for job in jobs]
        assert len(set(gates)) == 1
        assert sum(job.stats["cache_hits"] for job in jobs) > 0


class TestServerLifecycle:
    def test_disk_cache_survives_restart(self, tmp_path):
        oracle = NamOracle()

        def serve_once():
            cache = SegmentCache(disk_dir=tmp_path)
            srv = OptimizationService(
                oracle, workers=2, transport="threads", cache=cache
            ).start()
            try:
                with ServiceClient(srv.address) as client:
                    return client.optimize(CIRCUIT_B, omega=OMEGA)
            finally:
                srv.stop()

        first = serve_once()
        second = serve_once()  # a fresh server over the same disk store
        assert second.circuit.gates == first.circuit.gates
        assert second.cache_hit_rate == 1.0

    def test_disk_store_shared_with_executor_cache_path(self, tmp_path):
        """The service and ``ProcessMap(cache=...)`` derive identical
        keys, so a disk store warmed by a standalone run serves a
        server's first job entirely from cache (and vice versa)."""
        from repro.parallel import ProcessMap

        oracle = NamOracle()
        pm = ProcessMap(
            2,
            serial_cutoff=0,
            transport="threads",
            cache=SegmentCache(disk_dir=tmp_path),
        )
        try:
            standalone = popqc(CIRCUIT_B, oracle, OMEGA, parmap=pm)
        finally:
            pm.close()
        srv = OptimizationService(
            oracle,
            workers=2,
            transport="threads",
            cache=SegmentCache(disk_dir=tmp_path),
        ).start()
        try:
            with ServiceClient(srv.address) as client:
                job = client.optimize(CIRCUIT_B, omega=OMEGA)
        finally:
            srv.stop()
        assert job.circuit.gates == standalone.circuit.gates
        assert job.cache_hit_rate == 1.0

    def test_no_cache_mode(self):
        srv = OptimizationService(
            NamOracle(), workers=2, transport="threads", cache=False
        ).start()
        try:
            with ServiceClient(srv.address) as client:
                first = client.optimize(CIRCUIT_B, omega=OMEGA)
                second = client.optimize(CIRCUIT_B, omega=OMEGA)
        finally:
            srv.stop()
        assert second.circuit.gates == first.circuit.gates
        assert second.stats["cache_hits"] == 0
        # no cache, no lookups: dispatching straight to the fleet is
        # not a "miss"
        assert second.stats["cache_misses"] == 0
        assert second.cache_hit_rate == 0.0

    def test_scheduler_close_fails_pending_cleanly(self):
        from repro.parallel import ProcessMap

        sched = FleetScheduler(ProcessMap(2, transport="threads"))
        sched.close()
        with pytest.raises(RuntimeError, match="closed"):
            sched.run_round(NamOracle(), [CIRCUIT_B.gates[:10]] * 4)
        sched.close()  # idempotent

    def test_stop_is_idempotent(self):
        srv = OptimizationService(NamOracle(), workers=2, transport="threads")
        srv.start()
        srv.stop()
        srv.stop()


def test_fleet_view_label_and_serial_map():
    from repro.parallel import ProcessMap

    sched = FleetScheduler(ProcessMap(2, transport="threads"))
    try:
        view = sched.view()
        assert view.workers == 2
        assert view.transport == "threads"
        assert view.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        res = popqc(Circuit([H(0), H(0)] * 30, 1), NamOracle(), 8, parmap=view)
        assert res.stats.transport in ("threads", "inline")
        assert res.circuit.num_gates == 0
    finally:
        sched.close()
