"""The content-addressed segment result cache.

Property tests pin the key derivation (injective over distinct packed
segments, stable across pack/unpack round trips, oracle-scoped), and
the storage levels are exercised directly: LRU eviction by entry count
and byte volume, disk persistence across instances, and corruption of
disk entries (truncation, foreign bytes, bad magic) reading as a miss
— never an exception — with the bad file removed.
"""

import os
import struct
import threading

import pytest
from hypothesis import given, settings

from repro.circuits import CNOT, H, X
from repro.circuits.encoding import (
    encode_segment,
    pack_segment_into,
    packed_segment_nbytes,
    segment_fingerprint,
    unpack_segment_from,
)
from repro.oracles import IdentityOracle, NamOracle
from repro.service import SegmentCache, oracle_namespace

from ..conftest import gate_list_strategy


def _packed(gates) -> bytes:
    enc = encode_segment(gates)
    buf = bytearray(packed_segment_nbytes(enc))
    pack_segment_into(enc, buf, 0)
    return bytes(buf)


class TestFingerprint:
    @given(gate_list_strategy(), gate_list_strategy())
    def test_injective_over_distinct_packed_segments(self, a, b):
        """Distinct gate lists pack to distinct bytes and distinct
        fingerprints; equal gate lists always agree."""
        fa = segment_fingerprint(_packed(a))
        fb = segment_fingerprint(_packed(b))
        if a == b:
            assert fa == fb
        else:
            assert fa != fb

    @settings(max_examples=25)
    @given(gate_list_strategy())
    def test_stable_across_pack_unpack_round_trips(self, gates):
        """Re-packing an unpacked segment reproduces the fingerprint:
        the wire bytes are canonical, so a segment keeps its cache
        identity no matter how many carriers it crossed."""
        first = _packed(gates)
        unpacked, _ = unpack_segment_from(first, 0)
        buf = bytearray(packed_segment_nbytes(unpacked))
        pack_segment_into(unpacked, buf, 0)
        assert segment_fingerprint(bytes(buf)) == segment_fingerprint(first)

    def test_namespace_scopes_keys(self):
        packed = _packed([H(0), CNOT(0, 1)])
        plain = segment_fingerprint(packed)
        scoped = segment_fingerprint(packed, namespace=b"oracle-A")
        other = segment_fingerprint(packed, namespace=b"oracle-B")
        assert len({plain, scoped, other}) == 3

    def test_overlong_namespaces_stay_distinct(self):
        """Namespaces past blake2b's 64-byte key limit are compressed,
        not truncated: a long cache namespace must never swallow the
        oracle digest appended after it."""
        packed = _packed([H(0)])
        base = b"n" * 64
        a = segment_fingerprint(packed, namespace=base + b"oracle-A")
        b = segment_fingerprint(packed, namespace=base + b"oracle-B")
        assert a != b

    def test_oracle_namespace_separates_configurations(self):
        """Two oracles that pickle differently must never share keys."""
        assert oracle_namespace(NamOracle()) != oracle_namespace(IdentityOracle())
        assert oracle_namespace(NamOracle()) == oracle_namespace(NamOracle())

    def test_cache_key_for_appends_extra_material(self):
        cache = SegmentCache(namespace=b"ns")
        packed = _packed([X(2)])
        assert cache.key_for(packed) != cache.key_for(packed, extra=b"oracle")


class TestMemoryLevel:
    def test_round_trip_and_hit_accounting(self):
        cache = SegmentCache()
        key = cache.key_for(_packed([H(0)]))
        assert cache.get(key) is None
        cache.put(key, b"result-bytes")
        assert cache.get(key) == b"result-bytes"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.bytes_saved == len(b"result-bytes")
        assert 0.0 < cache.stats.hit_rate < 1.0

    def test_lru_evicts_by_entry_count(self):
        cache = SegmentCache(max_entries=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.get("a")  # refresh: b is now the least recently used
        cache.put("c", b"3")
        assert cache.get("a") == b"1"
        assert cache.get("c") == b"3"
        assert cache.get("b") is None
        assert cache.stats.evictions == 1

    def test_lru_evicts_by_byte_volume(self):
        cache = SegmentCache(max_bytes=100)
        cache.put("a", b"x" * 60)
        cache.put("b", b"y" * 60)  # 120 B > 100 B: a evicted
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert cache.memory_bytes == 60

    def test_single_oversized_entry_is_kept(self):
        """An entry larger than max_bytes still caches (evicting to an
        empty cache would make the bound a denial of service)."""
        cache = SegmentCache(max_bytes=10)
        cache.put("big", b"z" * 50)
        assert cache.get("big") == b"z" * 50

    def test_overwrite_updates_byte_accounting(self):
        cache = SegmentCache()
        cache.put("k", b"aaaa")
        cache.put("k", b"bb")
        assert cache.memory_bytes == 2
        assert len(cache) == 1


class TestDiskLevel:
    def test_persists_across_instances(self, tmp_path):
        first = SegmentCache(disk_dir=tmp_path)
        key = first.key_for(_packed([H(0), H(0)]))
        first.put(key, b"persisted")
        reborn = SegmentCache(disk_dir=tmp_path)
        assert reborn.get(key) == b"persisted"
        assert reborn.stats.disk_hits == 1

    def test_memory_eviction_falls_back_to_disk(self, tmp_path):
        cache = SegmentCache(max_entries=1, disk_dir=tmp_path)
        cache.put("a", b"1")
        cache.put("b", b"2")  # evicts a from memory, not from disk
        assert cache.get("a") == b"1"
        assert cache.stats.disk_hits == 1

    @pytest.mark.parametrize(
        "corruption",
        ["truncate", "empty", "bad-magic", "wrong-length", "garbage"],
    )
    def test_corrupt_entry_is_a_miss_not_a_crash(self, tmp_path, corruption):
        cache = SegmentCache(disk_dir=tmp_path)
        cache.put("k", b"good-bytes")
        cache.clear_memory()
        (path,) = tmp_path.glob("*.seg")
        raw = path.read_bytes()
        if corruption == "truncate":
            path.write_bytes(raw[: len(raw) - 3])
        elif corruption == "empty":
            path.write_bytes(b"")
        elif corruption == "bad-magic":
            path.write_bytes(b"XXXX" + raw[4:])
        elif corruption == "wrong-length":
            path.write_bytes(raw[:4] + struct.pack("<Q", 10**6) + raw[12:])
        else:
            path.write_bytes(b"\x00\x01\x02")
        assert cache.get("k") is None
        assert cache.stats.corrupt_entries == 1
        # the bad entry is gone: the next lookup is a plain miss
        assert not path.exists()
        assert cache.get("k") is None
        assert cache.stats.corrupt_entries == 1

    def test_rewrite_after_corruption_recovers(self, tmp_path):
        cache = SegmentCache(disk_dir=tmp_path)
        cache.put("k", b"v1")
        cache.clear_memory()
        (path,) = tmp_path.glob("*.seg")
        path.write_bytes(b"torn")
        assert cache.get("k") is None
        cache.put("k", b"v2")
        cache.clear_memory()
        assert cache.get("k") == b"v2"


class TestDiskBound:
    """``max_disk_bytes`` keeps the on-disk store bounded by pruning
    oldest entries first (mtime order), never the one just written."""

    def test_zero_bound_refused(self):
        with pytest.raises(ValueError, match="max_disk_bytes"):
            SegmentCache(max_disk_bytes=0)

    def test_oldest_entries_pruned_first(self, tmp_path):
        cache = SegmentCache(disk_dir=tmp_path, max_disk_bytes=100)
        for age, key in enumerate(["a", "b", "c"]):
            cache.put(key, bytes(20))
            os.utime(cache._entry_path(key), (age, age))
        assert cache.stats.disk_evictions == 0
        cache.put("d", bytes(20))  # over the bound: "a" is the oldest
        cache.clear_memory()
        assert cache.get("a") is None
        assert cache.get("b") == bytes(20)
        assert cache.get("c") == bytes(20)
        assert cache.get("d") == bytes(20)
        assert cache.stats.disk_evictions == 1
        assert cache.disk_bytes <= 100
        assert cache.disk_bytes == sum(
            p.stat().st_size for p in tmp_path.glob("*.seg")
        )

    def test_just_written_entry_survives_a_tiny_bound(self, tmp_path):
        cache = SegmentCache(disk_dir=tmp_path, max_disk_bytes=1)
        cache.put("k", bytes(50))
        os.utime(cache._entry_path("k"), (1, 1))
        cache.clear_memory()
        assert cache.get("k") == bytes(50)  # pruning spares the newest write
        cache.put("l", bytes(50))
        cache.clear_memory()
        assert cache.get("k") is None
        assert cache.get("l") == bytes(50)
        assert cache.stats.disk_evictions == 1

    def test_restart_rescans_disk_usage(self, tmp_path):
        writer = SegmentCache(disk_dir=tmp_path)
        for age, key in enumerate(["a", "b", "c"]):
            writer.put(key, bytes(20))
            os.utime(writer._entry_path(key), (age, age))
        on_disk = sum(p.stat().st_size for p in tmp_path.glob("*.seg"))
        reborn = SegmentCache(disk_dir=tmp_path, max_disk_bytes=on_disk + 10)
        assert reborn.disk_bytes == on_disk
        reborn.put("d", bytes(20))  # accounting carried over: this prunes
        assert reborn.stats.disk_evictions >= 1
        assert reborn.disk_bytes <= on_disk + 10


class TestConcurrentCorruptDeletion:
    def test_racing_readers_count_one_corruption(self, tmp_path):
        """N threads hitting the same corrupt entry: every read is a
        plain miss, the file is unlinked exactly once, and exactly one
        corruption is counted."""
        cache = SegmentCache(disk_dir=tmp_path)
        cache.put("k", b"payload")
        cache.clear_memory()
        (path,) = tmp_path.glob("*.seg")
        path.write_bytes(b"garbage")
        before = cache.disk_bytes
        n = 8
        barrier = threading.Barrier(n)
        results = []

        def reader():
            barrier.wait()
            results.append(cache.get("k"))

        threads = [threading.Thread(target=reader) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert results == [None] * n
        assert not path.exists()
        assert cache.stats.corrupt_entries == 1
        # only the unlink winner subtracts the bytes it actually read
        assert cache.disk_bytes == before - len(b"garbage")
