"""Elastic fleet: autoscaling ``popqc serve`` up and down.

The service can spawn its own ``popqc worker`` processes
(``--min-workers`` / ``--max-workers``) and grow or shrink the socket
fleet with the scheduler's backlog.  The pins here: scaling is bounded
(never above max, never below min), validation refuses nonsense
configurations loudly, a worker retired *during* an active round costs
latency but never correctness (byte-identical against the plain popqc
reference), and retired workers actually die — no leaked listeners, no
leaked subprocesses.

Most tests inject an in-process spawner so they exercise the scaling
machinery without paying interpreter startup per worker; one
``service``-marked test runs the real :class:`SubprocessWorker` path.
"""

import socket
import threading
import time

import pytest

from repro.circuits import random_redundant_circuit, to_qasm
from repro.core import popqc
from repro.oracles import NamOracle
from repro.parallel import WorkerHost
from repro.parallel.dist import parse_address
from repro.service import OptimizationService, ServiceClient

CIRCUIT = random_redundant_circuit(6, 900, seed=31, redundancy=0.5)
OMEGA = 16


class InProcessWorker:
    """Spawner product that wraps an in-process WorkerHost (the same
    interface as SubprocessWorker: ``.address`` and ``.stop()``)."""

    instances: list = []

    def __init__(self, auth_token=None, cache_address=None):
        self.host = WorkerHost(
            capacity=1, auth_token=auth_token, cache_address=cache_address
        ).start()
        self.address = self.host.address
        self.stopped = False
        type(self).instances.append(self)

    def stop(self):
        """Stop the wrapped host (idempotent) and record the fact."""
        self.stopped = True
        self.host.stop()


@pytest.fixture(autouse=True)
def _reset_spawner_registry():
    InProcessWorker.instances = []
    yield
    for worker in InProcessWorker.instances:
        worker.stop()


def _elastic_service(**kwargs):
    defaults = dict(
        transport="socket",
        min_workers=1,
        max_workers=3,
        scale_window_seconds=5.0,
        worker_spawner=InProcessWorker,
        cache=False,
    )
    defaults.update(kwargs)
    return OptimizationService(NamOracle(), **defaults).start()


def _port_is_closed(address: str) -> bool:
    host, port = parse_address(address)
    try:
        sock = socket.create_connection((host, port), timeout=0.5)
    except OSError:
        return True
    sock.close()
    return False


class TestValidation:
    def test_elastic_flags_demand_socket_transport(self):
        with pytest.raises(ValueError, match="socket"):
            OptimizationService(
                NamOracle(), transport="threads", max_workers=2
            )

    def test_min_above_max_refused(self):
        with pytest.raises(ValueError, match="min_workers"):
            OptimizationService(
                NamOracle(),
                transport="socket",
                min_workers=4,
                max_workers=2,
                worker_spawner=InProcessWorker,
            )

    def test_negative_min_refused(self):
        with pytest.raises(ValueError, match="min_workers"):
            OptimizationService(
                NamOracle(), transport="socket", min_workers=-1
            )

    def test_zero_max_refused(self):
        with pytest.raises(ValueError, match="max_workers"):
            OptimizationService(
                NamOracle(), transport="socket", max_workers=0
            )

    def test_bad_scale_window_refused(self):
        with pytest.raises(ValueError, match="scale_window"):
            OptimizationService(
                NamOracle(),
                transport="socket",
                max_workers=2,
                scale_window_seconds=0.0,
                worker_spawner=InProcessWorker,
            )


class TestManualScaling:
    def test_min_workers_bootstraps_a_hostless_fleet(self):
        srv = _elastic_service()
        try:
            status = srv.status()
            assert len(status["autoscale"]["spawned_workers"]) == 1
            assert status["autoscale"]["enabled"] is True
            with ServiceClient(srv.address) as client:
                result = client.optimize(CIRCUIT, omega=OMEGA)
            reference = popqc(CIRCUIT, NamOracle(), OMEGA)
            assert to_qasm(result.circuit) == to_qasm(reference.circuit)
        finally:
            srv.stop()

    def test_scale_up_and_down_respect_the_bounds(self):
        srv = _elastic_service()
        try:
            assert srv.scale_up() is not None
            assert srv.scale_up() is not None
            assert srv.scale_up() is None  # at max_workers=3
            assert len(srv.status()["autoscale"]["spawned_workers"]) == 3
            assert srv.scale_down() is not None
            assert srv.scale_down() is not None
            assert srv.scale_down() is None  # at min_workers=1
            status = srv.status()
            assert status["autoscale"]["scale_ups"] == 2
            assert status["autoscale"]["scale_downs"] == 2
        finally:
            srv.stop()

    def test_retired_worker_is_actually_stopped(self):
        srv = _elastic_service()
        try:
            added = srv.scale_up()
            retired = srv.scale_down()
            assert retired == added
            assert _port_is_closed(retired)
            retired_worker = next(
                w for w in InProcessWorker.instances if w.address == retired
            )
            assert retired_worker.stopped
        finally:
            srv.stop()

    def test_stop_retires_every_spawned_worker(self):
        srv = _elastic_service()
        srv.scale_up()
        addresses = list(srv.status()["autoscale"]["spawned_workers"])
        srv.stop()
        assert len(addresses) == 2
        assert all(worker.stopped for worker in InProcessWorker.instances)
        assert all(_port_is_closed(addr) for addr in addresses)


class TestRetireDuringActiveRound:
    def test_scale_down_mid_job_is_byte_identical(self):
        """Retiring a worker while a job is optimizing must drain its
        in-flight batches through the steal path — the job's result is
        byte-identical with the plain popqc reference and no socket or
        worker leaks."""
        srv = _elastic_service(min_workers=1, max_workers=2)
        try:
            assert srv.scale_up() is not None
            results = []
            with ServiceClient(srv.address) as client:
                job = threading.Thread(
                    target=lambda: results.append(
                        client.optimize(CIRCUIT, omega=OMEGA)
                    )
                )
                job.start()
                time.sleep(0.15)  # let the round get in flight
                retired = srv.scale_down()
                job.join(timeout=120)
            assert not job.is_alive()
            assert retired is not None
            reference = popqc(CIRCUIT, NamOracle(), OMEGA)
            assert to_qasm(results[0].circuit) == to_qasm(
                reference.circuit
            )
            assert _port_is_closed(retired)
        finally:
            srv.stop()
        assert all(worker.stopped for worker in InProcessWorker.instances)


class TestAutoscalePolicy:
    def test_idle_fleet_shrinks_to_the_floor(self):
        """Two consecutive empty-queue windows retire one worker; an
        idle service converges to min_workers and stays there."""
        srv = _elastic_service(scale_window_seconds=0.05)
        try:
            assert srv.scale_up() is not None
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if len(srv.status()["autoscale"]["spawned_workers"]) == 1:
                    break
                time.sleep(0.05)
            assert len(srv.status()["autoscale"]["spawned_workers"]) == 1
        finally:
            srv.stop()


@pytest.mark.service
class TestSubprocessSpawner:
    def test_default_spawner_runs_real_workers(self):
        """The CLI path end to end: min_workers spawns actual ``popqc
        worker`` subprocesses, jobs run byte-identically, and stop()
        terminates them."""
        srv = OptimizationService(
            NamOracle(),
            transport="socket",
            min_workers=1,
            max_workers=1,
            cache=False,
            auth_token="scale-token",
        ).start()
        try:
            worker = srv._spawned[0]
            assert worker.pid is not None
            with ServiceClient(srv.address, auth_token="scale-token") as client:
                result = client.optimize(CIRCUIT, omega=OMEGA)
            reference = popqc(CIRCUIT, NamOracle(), OMEGA)
            assert to_qasm(result.circuit) == to_qasm(reference.circuit)
        finally:
            srv.stop()
        assert worker._proc.poll() is not None  # subprocess is gone
        assert _port_is_closed(worker.address)
