"""The load-generation harness: determinism, aggregation, end to end.

The harness's core contract is reproducibility — the same mix + seed
must expand into the same schedule and the same circuit bytes on every
machine — so most of this file pins pure functions (`build_schedule`,
`schedule_manifest`, `percentile`, `MixReport` aggregation) without a
server.  One end-to-end class replays a small suite against a live
in-process `OptimizationService` and checks the emitted schema-v1
record is complete and internally consistent.
"""

import json
import random

import pytest

from repro.oracles import NamOracle
from repro.service import OptimizationService
from repro.service.loadgen import (
    SCHEMA,
    JobOutcome,
    MixReport,
    TrafficMix,
    build_circuits,
    build_schedule,
    circuit_digest,
    default_mixes,
    percentile,
    run_load,
    run_slo_suite,
    schedule_manifest,
)

MIX = TrafficMix(
    name="unit",
    families=(("Grover", 0), ("BoolSat", 0)),
    jobs=12,
    arrival_rate_jobs_per_s=50.0,
    duplicate_fraction=0.4,
    priorities=((1, 0.7), (8, 0.3)),
)


class TestBuildSchedule:
    def test_deterministic(self):
        a = build_schedule(MIX, seed=3)
        b = build_schedule(MIX, seed=3)
        assert a == b

    def test_seed_changes_schedule(self):
        assert build_schedule(MIX, seed=3) != build_schedule(MIX, seed=4)

    def test_mix_name_salts_stream(self):
        other = TrafficMix(
            name="unit2",
            families=MIX.families,
            jobs=MIX.jobs,
            arrival_rate_jobs_per_s=MIX.arrival_rate_jobs_per_s,
            duplicate_fraction=MIX.duplicate_fraction,
            priorities=MIX.priorities,
        )
        assert build_schedule(MIX, seed=3) != build_schedule(other, seed=3)

    def test_arrivals_monotone(self):
        schedule = build_schedule(MIX, seed=3)
        offsets = [j.at_seconds for j in schedule]
        assert offsets == sorted(offsets)
        assert offsets[0] > 0.0  # first Poisson gap is drawn too

    def test_no_pacing_means_zero_offsets(self):
        mix = TrafficMix(name="closed", families=(("Grover", 0),), jobs=4)
        assert all(j.at_seconds == 0.0 for j in build_schedule(mix, seed=1))

    def test_duplicates_point_at_originals(self):
        schedule = build_schedule(MIX, seed=3)
        for job in schedule:
            if job.duplicate_of is not None:
                original = schedule[job.duplicate_of]
                assert original.duplicate_of is None
                assert original.circuit_seed == job.circuit_seed
                assert (original.family, original.spec) == (
                    job.family,
                    job.spec,
                )

    def test_priorities_drawn_from_distribution(self):
        drawn = {j.priority for j in build_schedule(MIX, seed=3)}
        assert drawn <= {1, 8}

    def test_unique_pool_shape(self):
        mix = TrafficMix(
            name="pool",
            families=(("Grover", 0), ("VQE", 0)),
            jobs=10,
            unique_pool=3,
        )
        schedule = build_schedule(mix, seed=5)
        assert all(j.duplicate_of is None for j in schedule[:3])
        assert all(j.duplicate_of is not None for j in schedule[3:])
        assert all(j.duplicate_of < 3 for j in schedule[3:])

    def test_unique_pool_overrides_duplicate_fraction(self):
        mix = TrafficMix(
            name="pool",
            families=(("Grover", 0),),
            jobs=6,
            duplicate_fraction=1.0,
            unique_pool=4,
        )
        schedule = build_schedule(mix, seed=5)
        assert [j.duplicate_of for j in schedule[:4]] == [None] * 4


class TestCircuits:
    def test_duplicates_share_objects(self):
        schedule = build_schedule(MIX, seed=3)
        circuits = build_circuits(schedule)
        for job in schedule:
            if job.duplicate_of is not None:
                assert circuits[job.index] is circuits[job.duplicate_of]

    def test_circuit_seed_determines_circuit(self):
        schedule = build_schedule(MIX, seed=3)
        again = build_circuits(schedule)
        first = build_circuits(schedule)
        for a, b in zip(first, again):
            assert a.gates == b.gates

    def test_digest_is_content_addressed(self):
        schedule = build_schedule(MIX, seed=3)
        circuits = build_circuits(schedule)
        a, b = build_circuits(schedule), circuits
        for x, y in zip(a, b):
            assert circuit_digest(x) == circuit_digest(y)
        # different circuits hash differently (overwhelmingly likely)
        uniques = [
            circuits[j.index] for j in schedule if j.duplicate_of is None
        ]
        if len(uniques) > 1:
            digests = {circuit_digest(c) for c in uniques}
            assert len(digests) > 1


class TestManifest:
    def test_byte_identical_for_same_seed(self):
        mixes = list(default_mixes(smoke=True).values())
        assert schedule_manifest(mixes, 7) == schedule_manifest(mixes, 7)

    def test_seed_changes_bytes(self):
        mixes = list(default_mixes(smoke=True).values())
        assert schedule_manifest(mixes, 7) != schedule_manifest(mixes, 8)

    def test_manifest_is_canonical_json(self):
        mixes = list(default_mixes(smoke=True).values())
        text = schedule_manifest(mixes, 7)
        parsed = json.loads(text)
        assert parsed["schema"] == SCHEMA + "+schedule"
        assert parsed["seed"] == 7
        assert set(parsed["mixes"]) == {
            "cold",
            "warm",
            "flood",
            "interactive",
        }
        redumped = json.dumps(parsed, sort_keys=True, indent=2) + "\n"
        assert redumped == text

    def test_manifest_entries_cover_schedule(self):
        mix = default_mixes(smoke=True)["warm"]
        parsed = json.loads(schedule_manifest([mix], 7))
        entries = parsed["mixes"]["warm"]
        assert len(entries) == mix.jobs
        for entry in entries:
            assert entry["digest"].strip()
            assert entry["num_gates"] > 0


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_value(self):
        assert percentile([3.5], 99) == 3.5

    def test_median_even(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_interpolation_matches_numpy_default(self):
        values = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert percentile(values, 90) == pytest.approx(46.0)
        assert percentile(values, 0) == 10.0
        assert percentile(values, 100) == 50.0

    def test_order_independent(self):
        rng = random.Random(9)
        values = [rng.random() for _ in range(37)]
        shuffled = list(values)
        rng.shuffle(shuffled)
        assert percentile(values, 73) == percentile(shuffled, 73)


def _outcome(latency, *, hits=0, misses=0, dup=False, error=None, busy=0):
    return JobOutcome(
        mix="m",
        index=0,
        priority=1,
        scheduled_at=0.0,
        queue_delay_seconds=0.0,
        latency_seconds=latency,
        duplicate=dup,
        cache_hits=hits,
        cache_misses=misses,
        busy_rejections=busy,
        error=error,
    )


class TestMixReport:
    def test_failed_jobs_excluded_from_latency(self):
        report = MixReport(name="m", scheduled=3)
        report.outcomes = [
            _outcome(1.0),
            _outcome(2.0),
            _outcome(99.0, error="ServiceBusyError: full"),
        ]
        assert report.latencies == [1.0, 2.0]
        assert len(report.failed) == 1

    def test_duplicate_latencies_isolated(self):
        report = MixReport(name="m", scheduled=2)
        report.outcomes = [_outcome(2.0), _outcome(0.5, dup=True)]
        assert report.duplicate_latencies == [0.5]

    def test_cache_hit_rate(self):
        report = MixReport(name="m", scheduled=2)
        report.outcomes = [
            _outcome(1.0, hits=3, misses=1),
            _outcome(1.0, hits=2, misses=2),
        ]
        assert report.cache_hit_rate == pytest.approx(5 / 8)

    def test_trajectory_windows_cover_all_jobs(self):
        report = MixReport(name="m", scheduled=7)
        report.outcomes = [
            _outcome(1.0, hits=i, misses=1) for i in range(7)
        ]
        trajectory = report.cache_hit_trajectory(buckets=3)
        assert sum(w["jobs"] for w in trajectory) == 7
        assert len(trajectory) == 3

    def test_trajectory_caps_at_job_count(self):
        report = MixReport(name="m", scheduled=2)
        report.outcomes = [_outcome(1.0, hits=1, misses=1)] * 2
        assert len(report.cache_hit_trajectory(buckets=10)) == 2

    def test_as_dict_schema_fields(self):
        report = MixReport(name="m", scheduled=2, wall_seconds=4.0)
        report.outcomes = [
            _outcome(1.0, hits=1, misses=3, busy=2),
            _outcome(3.0, dup=True, hits=4, misses=0),
        ]
        record = report.as_dict()
        assert record["jobs_scheduled"] == 2
        assert record["jobs_completed"] == 2
        assert record["jobs_failed"] == 0
        assert record["busy_rejections"] == 2
        assert record["latency_seconds"]["p50"] == pytest.approx(2.0)
        assert record["throughput_jobs_per_s"] == pytest.approx(0.5)
        assert record["duplicate_latency_seconds"]["count"] == 1
        assert record["cache"]["hit_rate"] == pytest.approx(5 / 8)
        assert record["priorities"] == {"1": 2}
        assert record["errors"] == []


@pytest.fixture(scope="module")
def service():
    srv = OptimizationService(
        NamOracle(), workers=2, transport="threads"
    ).start()
    yield srv
    srv.stop()


class TestEndToEnd:
    def test_run_load_completes_every_job(self, service):
        mix = TrafficMix(
            name="e2e",
            families=(("Grover", 0),),
            jobs=4,
            unique_pool=1,
            omega=60,
            clients=2,
        )
        result = run_load(service.address, [mix], seed=11)
        report = result.mixes["e2e"]
        assert report.scheduled == 4
        assert len(report.completed) == 4
        assert not report.failed
        # the three replays of the pool circuit are pure cache hits
        assert report.cache_hit_rate > 0.5
        assert all(o.latency_seconds > 0 for o in report.outcomes)

    def test_slo_suite_record_is_complete(self, service):
        record = run_slo_suite(
            service.address, seed=11, smoke=True, time_scale=0.2
        )
        assert record["schema"] == SCHEMA
        assert set(record["mixes"]) == {
            "cold",
            "warm",
            "flood",
            "interactive",
        }
        for section in record["mixes"].values():
            assert section["jobs_failed"] == 0
            assert section["jobs_completed"] == section["jobs_scheduled"]
        assert record["derived"]["warm_p50_speedup_vs_cold"] > 0
        assert record["derived"]["interactive_p99_over_flood_p50"] > 0
        assert record["slo"]["warm_p50_speedup_min"] == 2.0
        # warm duplicates exist and the cache served them
        warm = record["mixes"]["warm"]
        assert warm["duplicate_latency_seconds"]["count"] > 0
        assert warm["cache"]["hit_rate"] > 0
        assert json.dumps(record)  # JSON-serializable end to end
