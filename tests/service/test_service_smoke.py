"""The service against a real ``popqc serve`` process.

CI's ``service-smoke`` job launches the daemon itself — hardened, with
an auth token and a ``--max-active-jobs`` cap — and passes its address
through ``POPQC_SERVE_HOST`` (token through ``POPQC_AUTH_TOKEN``);
elsewhere the test spawns (and reaps) its own subprocess server with
the same hardening.  The smoke assertions are the acceptance criteria
of the service PRs: two overlapping jobs through one real server come
back byte-identical to standalone serial runs, the repeated submission
reports a nonzero cache hit rate, and a submit against a saturated
server is rejected with BUSY and then retried to success.
"""

import os
import re
import subprocess
import sys
import threading
import time

import pytest

from repro.circuits import random_redundant_circuit, to_qasm
from repro.core import popqc
from repro.oracles import NamOracle
from repro.service import ServiceClient

CIRCUIT = random_redundant_circuit(7, 900, seed=41, redundancy=0.5)
OMEGA = 40

# against a capped server, every client rides BUSY spells out with a
# patient backoff instead of failing the suite
_RETRY_KW = dict(
    busy_retries=120,
    busy_backoff_seconds=0.05,
    busy_backoff_max_seconds=0.5,
)


def _client(address: str) -> ServiceClient:
    return ServiceClient(
        address, auth_token=os.environ.get("POPQC_AUTH_TOKEN"), **_RETRY_KW
    )


@pytest.mark.service
class TestServeSubprocess:
    @pytest.fixture()
    def server_address(self, monkeypatch):
        env_host = os.environ.get("POPQC_SERVE_HOST")
        if env_host:
            yield env_host.strip()
            return
        # local runs mirror the CI hardening: token + active-job cap
        monkeypatch.setenv("POPQC_AUTH_TOKEN", "local-smoke-token")
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--bind",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--transport",
                "threads",
                "--max-active-jobs",
                "2",
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"listening on (\S+)", line)
            assert match, f"unexpected serve banner: {line!r}"
            yield match.group(1)
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_concurrent_jobs_and_cache_against_real_server(self, server_address):
        reference = popqc(CIRCUIT, NamOracle(), OMEGA)
        first = [None, None]

        def run(i):
            with _client(server_address) as client:
                first[i] = client.optimize(CIRCUIT, omega=OMEGA)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert all(job is not None for job in first), "a job never finished"
        for job in first:
            assert job.circuit.gates == reference.circuit.gates
            assert to_qasm(job.circuit) == to_qasm(reference.circuit)
        with _client(server_address) as client:
            repeat = client.optimize(CIRCUIT, omega=OMEGA)
            status = client.status()
        assert repeat.circuit.gates == reference.circuit.gates
        assert repeat.cache_hit_rate > 0.0  # the acceptance pin
        assert repeat.stats["oracle_calls_saved"] > 0
        assert status["jobs_completed"] >= 3
        assert status["cache"]["hits"] > 0

    def test_busy_rejected_then_retried_against_real_server(self, server_address):
        """Saturate the server's job cap with long holders, then drive
        one more submit: it must be refused with BUSY at least once and
        still come back correct through the client's retry loop."""
        with _client(server_address) as probe:
            cap = probe.status()["admission"]["max_active_jobs"]
        if cap is None:
            pytest.skip("server runs without --max-active-jobs")
        # cache-cold long jobs (seeded per process so a warm disk cache
        # from an earlier run cannot shorten them under the poll below)
        holders_done = []
        holder_circuits = [
            random_redundant_circuit(
                8, 6000, seed=(os.getpid() + i) % 100000, redundancy=0.5
            )
            for i in range(cap)
        ]

        def hold(circuit):
            with _client(server_address) as client:
                client.optimize(circuit, omega=OMEGA)
            holders_done.append(True)

        threads = [
            threading.Thread(target=hold, args=(c,)) for c in holder_circuits
        ]
        for t in threads:
            t.start()
        with _client(server_address) as watcher:
            for _ in range(200):
                if watcher.status()["jobs_active"] >= cap:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("holders never saturated the job cap")
        reference = popqc(CIRCUIT, NamOracle(), OMEGA)
        with _client(server_address) as client:
            job = client.optimize(CIRCUIT, omega=OMEGA)
            rejections = client.busy_rejections
            status = client.status()
        for t in threads:
            t.join(timeout=180)
        assert len(holders_done) == cap, "a holder job never finished"
        assert job.circuit.gates == reference.circuit.gates
        assert rejections >= 1  # the submit really was refused first
        assert status["admission"]["jobs_rejected"] >= 1
