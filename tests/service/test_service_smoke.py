"""The service against a real ``popqc serve`` process.

CI's ``service-smoke`` job launches the daemon itself and passes its
address through ``POPQC_SERVE_HOST``; elsewhere the test spawns (and
reaps) its own subprocess server.  The smoke assertions are the
acceptance criteria of the service PR: two overlapping jobs through
one real server come back byte-identical to standalone serial runs,
and the repeated submission reports a nonzero cache hit rate.
"""

import os
import re
import subprocess
import sys
import threading

import pytest

from repro.circuits import random_redundant_circuit, to_qasm
from repro.core import popqc
from repro.oracles import NamOracle
from repro.service import ServiceClient

CIRCUIT = random_redundant_circuit(7, 900, seed=41, redundancy=0.5)
OMEGA = 40


@pytest.mark.service
class TestServeSubprocess:
    @pytest.fixture()
    def server_address(self):
        env_host = os.environ.get("POPQC_SERVE_HOST")
        if env_host:
            yield env_host.strip()
            return
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--bind",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--transport",
                "threads",
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"listening on (\S+)", line)
            assert match, f"unexpected serve banner: {line!r}"
            yield match.group(1)
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_concurrent_jobs_and_cache_against_real_server(self, server_address):
        reference = popqc(CIRCUIT, NamOracle(), OMEGA)
        first = [None, None]

        def run(i):
            with ServiceClient(server_address) as client:
                first[i] = client.optimize(CIRCUIT, omega=OMEGA)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert all(job is not None for job in first), "a job never finished"
        for job in first:
            assert job.circuit.gates == reference.circuit.gates
            assert to_qasm(job.circuit) == to_qasm(reference.circuit)
        with ServiceClient(server_address) as client:
            repeat = client.optimize(CIRCUIT, omega=OMEGA)
            status = client.status()
        assert repeat.circuit.gates == reference.circuit.gates
        assert repeat.cache_hit_rate > 0.0  # the acceptance pin
        assert repeat.stats["oracle_calls_saved"] > 0
        assert status["jobs_completed"] >= 3
        assert status["cache"]["hits"] > 0
