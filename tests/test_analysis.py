"""Tests for the circuit analysis module."""

import math

from repro.analysis import analyze, non_clifford_count, t_count
from repro.circuits import CNOT, RZ, Circuit, H, X


class TestTCount:
    def test_counts_t_and_tdg(self):
        c = Circuit(
            [RZ(0, math.pi / 4), RZ(0, -math.pi / 4), RZ(1, 3 * math.pi / 4)], 2
        )
        assert t_count(c) == 3

    def test_clifford_rotations_excluded(self):
        c = Circuit([RZ(0, math.pi), RZ(0, math.pi / 2), RZ(0, -math.pi / 2)], 1)
        assert t_count(c) == 0

    def test_generic_angle_excluded(self):
        assert t_count(Circuit([RZ(0, 0.3)], 1)) == 0

    def test_accepts_gate_list(self):
        assert t_count([RZ(0, math.pi / 4)]) == 1


class TestNonClifford:
    def test_generic_angles_counted(self):
        c = Circuit([RZ(0, 0.3), RZ(0, math.pi / 4), RZ(0, math.pi)], 1)
        assert non_clifford_count(c) == 2  # 0.3 and pi/4

    def test_non_rz_ignored(self):
        assert non_clifford_count(Circuit([H(0), X(0), CNOT(0, 1)], 2)) == 0


class TestAnalyze:
    def test_report_fields(self):
        c = Circuit([H(0), H(1), CNOT(0, 1), RZ(1, math.pi / 4)], 2)
        rep = analyze(c)
        assert rep.num_qubits == 2
        assert rep.num_gates == 4
        assert rep.depth == 3
        assert rep.two_qubit_gates == 1
        assert rep.t_gates == 1
        assert rep.histogram == {"h": 2, "cnot": 1, "rz": 1}
        assert rep.layer_width_max == 2

    def test_empty_circuit(self):
        rep = analyze(Circuit([], 3))
        assert rep.depth == 0
        assert rep.layer_width_mean == 0.0

    def test_render(self):
        rep = analyze(Circuit([H(0)], 1))
        text = rep.render()
        assert "qubits" in text and "depth" in text and "T gates" in text
