"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import math
import os

import pytest
from hypothesis import HealthCheck, settings, strategies as st

from repro.circuits import CNOT, RZ, Circuit, H, X

# Hypothesis profiles.  "repro" (default): modest example counts, no
# deadline (the simulator-backed properties are not microsecond-fast).
# "nightly": the raised example budget the scheduled workflow runs with
# (HYPOTHESIS_PROFILE=nightly); per-push CI stays fast, the deep sweep
# happens off the critical path.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "nightly",
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))

ANGLES = (
    math.pi / 4,
    -math.pi / 4,
    math.pi / 2,
    -math.pi / 2,
    math.pi,
    0.3,
    1.7,
)


@st.composite
def gate_strategy(draw, num_qubits: int = 4):
    """A random base-set gate over ``num_qubits`` qubits."""
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return H(draw(st.integers(0, num_qubits - 1)))
    if kind == 1:
        return X(draw(st.integers(0, num_qubits - 1)))
    if kind == 2:
        q = draw(st.integers(0, num_qubits - 1))
        return RZ(q, draw(st.sampled_from(ANGLES)))
    a = draw(st.integers(0, num_qubits - 1))
    b = draw(st.integers(0, num_qubits - 2))
    if b >= a:
        b += 1
    return CNOT(a, b)


@st.composite
def gate_list_strategy(draw, num_qubits: int = 4, max_gates: int = 30):
    """A random gate list (possibly empty)."""
    length = draw(st.integers(0, max_gates))
    return [draw(gate_strategy(num_qubits)) for _ in range(length)]


@st.composite
def circuit_strategy(draw, num_qubits: int = 4, max_gates: int = 30):
    """A random circuit with a fixed qubit count."""
    return Circuit(draw(gate_list_strategy(num_qubits, max_gates)), num_qubits)


@pytest.fixture
def nam_oracle():
    """The default fixpoint rule-based oracle."""
    from repro.oracles import NamOracle

    return NamOracle()


@pytest.fixture
def bell_circuit() -> Circuit:
    """H(0); CNOT(0,1) — the Bell-pair preparation."""
    return Circuit([H(0), CNOT(0, 1)], 2)


@pytest.fixture
def cancelable_circuit() -> Circuit:
    """A circuit with obvious redundancy: every gate cancels."""
    return Circuit(
        [H(0), H(0), X(1), X(1), CNOT(0, 1), CNOT(0, 1), RZ(2, 1.0), RZ(2, -1.0)],
        3,
    )
