"""Smoke tests keeping the example scripts runnable.

Each quick example is executed as a subprocess (the way users run
them); the long-running evaluation drivers (paper_tables/figures) are
exercised through their underlying functions in
``tests/experiments/`` instead.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
SRC_DIR = os.path.join(os.path.dirname(__file__), "..", "src")

QUICK_EXAMPLES = [
    ("quickstart.py", []),
    ("optimize_qasm_file.py", []),
    ("custom_oracle.py", []),
    ("noise_aware_optimization.py", []),
    ("trace_visualization.py", ["VQE", "0"]),
    ("depth_aware_optimization.py", []),
]


@pytest.mark.slow
@pytest.mark.parametrize("script,args", QUICK_EXAMPLES, ids=lambda x: str(x))
def test_example_runs(script, args):
    path = os.path.join(EXAMPLES_DIR, script)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.abspath(SRC_DIR), env.get("PYTHONPATH")) if p
    )
    result = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
