"""Top-level package API tests."""

import repro
from repro import Circuit, H, NamOracle, X, optimize


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_optimize_default_oracle(self):
        res = optimize(Circuit([H(0), H(0), X(1), X(1)], 2), omega=4)
        assert res.circuit.num_gates == 0

    def test_optimize_custom_oracle(self):
        res = optimize(Circuit([X(0), X(0)], 1), oracle=NamOracle(), omega=2)
        assert res.circuit.num_gates == 0

    def test_optimize_gate_sequence(self):
        res = optimize([H(0), H(0)], omega=2)
        assert res.circuit.num_gates == 0

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_stats_summary_readable(self):
        res = optimize(Circuit([H(0), H(0)], 1), omega=2)
        s = res.stats.summary()
        assert "reduction" in s and "oracle calls" in s
