"""Tests for the rewrite-engine passes.

Every pass is property-tested for unitary preservation, and the
wire-threaded cancellation scan is cross-checked against a naive
reference implementation that scans all gates with the generic
commutation predicate — pinning the hand-inlined hot loop to the
specification.
"""

import math
from typing import Optional

from hypothesis import given

from repro.circuits import CNOT, RZ, Gate, H, X
from repro.oracles import (
    cancellation_pass,
    cnot_chain_pass,
    commutes,
    hadamard_reduction_pass,
    remove_identities,
    try_merge,
)
from repro.sim import segments_equivalent

from ..conftest import gate_list_strategy


def naive_cancellation_pass(gates: list[Gate]) -> tuple[list[Gate], bool]:
    """Reference implementation: full scans with the generic predicates."""
    arr: list[Optional[Gate]] = list(gates)
    changed = False
    for i in range(len(arr)):
        g = arr[i]
        if g is None:
            continue
        if g.is_identity:
            arr[i] = None
            changed = True
            continue
        for j in range(i + 1, len(arr)):
            h = arr[j]
            if h is None:
                continue
            if not g.overlaps(h):
                continue
            merged = try_merge(g, h)
            if merged is not None:
                arr[i] = None
                arr[j] = merged[0] if merged else None
                changed = True
                break
            if commutes(g, h):
                continue
            break
    return [g for g in arr if g is not None], changed


class TestRemoveIdentities:
    def test_drops_zero_rotations(self):
        out, changed = remove_identities([H(0), RZ(1, 0.0), X(0)])
        assert out == [H(0), X(0)] and changed

    def test_no_change(self):
        gates = [H(0), X(1)]
        out, changed = remove_identities(gates)
        assert out == gates and not changed


class TestCancellationExamples:
    def test_adjacent_hh(self):
        out, changed = cancellation_pass([H(0), H(0)])
        assert out == [] and changed

    def test_cancellation_through_commuting_spacer(self):
        # X(1) commutes with the pair on qubit 0
        out, _ = cancellation_pass([H(0), X(1), H(0)])
        assert out == [X(1)]

    def test_rz_merge_through_cnot_control(self):
        out, _ = cancellation_pass([RZ(0, 0.3), CNOT(0, 1), RZ(0, 0.4)])
        assert len(out) == 2
        rz = [g for g in out if g.name == "rz"][0]
        assert abs(rz.param - 0.7) < 1e-9

    def test_x_cancels_through_cnot_target(self):
        out, _ = cancellation_pass([X(1), CNOT(0, 1), X(1)])
        assert out == [CNOT(0, 1)]

    def test_blocked_by_h(self):
        gates = [X(0), H(0), X(0)]
        out, changed = cancellation_pass(gates)
        assert out == gates and not changed

    def test_rz_blocked_by_cnot_target(self):
        gates = [RZ(1, 0.5), CNOT(0, 1), RZ(1, 0.5)]
        out, changed = cancellation_pass(gates)
        assert out == gates and not changed

    def test_cnot_cancels_through_shared_control(self):
        out, _ = cancellation_pass([CNOT(0, 1), CNOT(0, 2), CNOT(0, 1)])
        assert out == [CNOT(0, 2)]

    def test_cnot_blocked_by_collision(self):
        gates = [CNOT(0, 1), CNOT(1, 2), CNOT(0, 1)]
        out, changed = cancellation_pass(gates)
        assert out == gates and not changed  # that's the chain pass's job

    def test_identity_rz_dropped(self):
        out, changed = cancellation_pass([RZ(0, 0.0), H(1)])
        assert out == [H(1)] and changed


class TestCancellationProperties:
    @given(gate_list_strategy(num_qubits=4, max_gates=25))
    def test_preserves_unitary(self, gates):
        out, _ = cancellation_pass(list(gates))
        assert segments_equivalent(gates, out)

    @given(gate_list_strategy(num_qubits=4, max_gates=25))
    def test_matches_naive_reference(self, gates):
        fast, fch = cancellation_pass(list(gates))
        slow, sch = naive_cancellation_pass(list(gates))
        assert fast == slow
        assert fch == sch

    @given(gate_list_strategy(num_qubits=4, max_gates=25))
    def test_never_grows(self, gates):
        out, _ = cancellation_pass(list(gates))
        assert len(out) <= len(gates)


class TestHadamardReduction:
    def test_hxh(self):
        out, changed = hadamard_reduction_pass([H(0), X(0), H(0)])
        assert out == [RZ(0, math.pi)] and changed

    def test_hzh(self):
        out, changed = hadamard_reduction_pass([H(0), RZ(0, math.pi), H(0)])
        assert out == [X(0)] and changed

    def test_with_spectator_gates_between(self):
        gates = [H(0), CNOT(1, 2), X(0), H(1), H(0)]
        out, changed = hadamard_reduction_pass(gates)
        assert changed
        assert RZ(0, math.pi) in out
        assert CNOT(1, 2) in out and H(1) in out

    def test_blocked_by_gate_on_same_wire(self):
        gates = [H(0), CNOT(0, 1), X(0), H(0)]
        out, changed = hadamard_reduction_pass(gates)
        assert not changed and out == gates

    @given(gate_list_strategy(num_qubits=4, max_gates=25))
    def test_preserves_unitary(self, gates):
        out, _ = hadamard_reduction_pass(list(gates))
        assert segments_equivalent(gates, out)


class TestCnotChain:
    def test_basic_chain(self):
        gates = [CNOT(0, 1), CNOT(1, 2), CNOT(0, 1)]
        out, changed = cnot_chain_pass(gates)
        assert changed and len(out) == 2
        assert segments_equivalent(gates, out)

    def test_chain_with_spectators(self):
        gates = [CNOT(0, 1), H(3), CNOT(1, 2), X(3), CNOT(0, 1)]
        out, changed = cnot_chain_pass(gates)
        assert changed
        assert segments_equivalent(gates, out)

    def test_no_false_positive(self):
        gates = [CNOT(0, 1), CNOT(0, 2), CNOT(0, 1)]
        out, changed = cnot_chain_pass(gates)
        assert not changed

    @given(gate_list_strategy(num_qubits=4, max_gates=20))
    def test_preserves_unitary(self, gates):
        out, _ = cnot_chain_pass(list(gates))
        assert segments_equivalent(gates, out)

    @given(gate_list_strategy(num_qubits=4, max_gates=20))
    def test_never_grows(self, gates):
        out, _ = cnot_chain_pass(list(gates))
        assert len(out) <= len(gates)
