"""Tests for the search-based oracle (Quartz role)."""

from hypothesis import given, settings

from repro.circuits import CNOT, RZ, H, X, random_redundant_circuit
from repro.oracles import DepthCost, MixedCost, NamOracle, SearchOracle
from repro.sim import segments_equivalent

from ..conftest import gate_list_strategy


class TestGateCountObjective:
    def test_no_worse_than_nam_seed(self):
        gates = list(random_redundant_circuit(4, 60, seed=1).gates)
        nam_out = NamOracle()(list(gates))
        search_out = SearchOracle()(list(gates))
        assert len(search_out) <= len(nam_out)

    def test_finds_simple_cancellation(self):
        out = SearchOracle()([H(0), H(0)])
        assert out == []

    def test_without_nam_seed_still_searches(self):
        oracle = SearchOracle(seed_with_nam=False)
        out = oracle([X(0), X(0)])
        assert out == []

    @given(gate_list_strategy(num_qubits=3, max_gates=12))
    @settings(max_examples=15)
    def test_preserves_unitary(self, gates):
        out = SearchOracle(beam_width=4, max_steps=2, node_budget=300)(list(gates))
        assert segments_equivalent(gates, out)


class TestDepthObjective:
    def test_commuting_reorder_reduces_depth(self):
        # RZ(0,a) CNOT(0,1) ... reordering commuting gates can compress
        # layers; a serial chain on one wire next to idle wires:
        gates = [RZ(0, 0.1), RZ(0, 0.2), CNOT(0, 1), RZ(1, 0.3), H(2), H(3)]
        oracle = SearchOracle(DepthCost(), max_steps=3)
        out = oracle(gates)
        before = DepthCost()(gates)
        after = DepthCost()(out)
        assert after <= before
        assert segments_equivalent(gates, out)

    def test_mixed_cost_never_increases(self):
        gates = list(random_redundant_circuit(4, 40, seed=2).gates)
        cost = MixedCost(10.0)
        out = SearchOracle(cost, max_steps=3)(list(gates))
        assert cost(out) <= cost(gates)
        assert segments_equivalent(gates, out)


class TestDeterminismAndBudget:
    def test_deterministic(self):
        gates = list(random_redundant_circuit(4, 40, seed=3).gates)
        a = SearchOracle()(list(gates))
        b = SearchOracle()(list(gates))
        assert a == b

    def test_node_budget_respected(self):
        gates = list(random_redundant_circuit(4, 60, seed=4).gates)
        # tiny budget must still return a valid (possibly unimproved) result
        out = SearchOracle(node_budget=5, seed_with_nam=False)(list(gates))
        assert segments_equivalent(gates, out)

    def test_empty_input(self):
        assert SearchOracle()([]) == []
