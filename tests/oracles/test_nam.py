"""Tests for the Nam-style oracle (VOQC role)."""

import pickle

import pytest
from hypothesis import given, settings

from repro.circuits import RZ, H, X, random_redundant_circuit
from repro.oracles import BASELINE_PASSES, NamOracle, check_well_behaved
from repro.sim import segments_equivalent

from ..conftest import gate_list_strategy


class TestConstruction:
    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown passes"):
            NamOracle(["cancellation", "bogus"])

    def test_repr_shows_mode(self):
        assert "fixpoint" in repr(NamOracle())
        assert "single-sweep" in repr(NamOracle(fixpoint=False))

    def test_equality_and_hash(self):
        assert NamOracle() == NamOracle()
        assert NamOracle(fixpoint=False) != NamOracle()
        assert hash(NamOracle()) == hash(NamOracle())

    def test_picklable(self):
        oracle = NamOracle()
        clone = pickle.loads(pickle.dumps(oracle))
        assert clone == oracle
        assert clone([H(0), H(0)]) == []


class TestOptimization:
    def test_cancels_redundancy(self):
        out = NamOracle()([H(0), H(0), X(1), X(1)])
        assert out == []

    def test_combined_passes_cascade(self):
        # H X H -> RZ(pi), which then merges with an adjacent RZ(pi) to
        # the identity: requires hadamard reduction *and* rz merging.
        import math

        gates = [H(0), X(0), H(0), RZ(0, math.pi)]
        out = NamOracle()(gates)
        assert out == []

    def test_single_sweep_weaker_or_equal(self):
        c = random_redundant_circuit(4, 150, seed=0, redundancy=0.7)
        fix = NamOracle()(list(c.gates))
        single = NamOracle(BASELINE_PASSES, fixpoint=False)(list(c.gates))
        assert len(fix) <= len(single)

    @given(gate_list_strategy(num_qubits=4, max_gates=25))
    @settings(max_examples=25)
    def test_preserves_unitary(self, gates):
        out = NamOracle()(list(gates))
        assert segments_equivalent(gates, out)


class TestWellBehavedness:
    """Section 6: subsegments of oracle output must be unimprovable."""

    @pytest.mark.parametrize("seed", range(5))
    def test_fixpoint_oracle_well_behaved(self, seed):
        oracle = NamOracle()
        gates = list(random_redundant_circuit(4, 80, seed=seed).gates)
        assert check_well_behaved(oracle, gates, samples=30, seed=seed) == []

    def test_fixpoint_idempotent(self):
        oracle = NamOracle()
        gates = list(random_redundant_circuit(4, 100, seed=7).gates)
        once = oracle(gates)
        assert oracle(list(once)) == once
