"""Tests for the oracle protocol helpers."""

import pytest

from repro.circuits import H, X, random_redundant_circuit
from repro.oracles import (
    ComposedOracle,
    IdentityOracle,
    NamOracle,
    check_well_behaved,
)


class TestIdentityOracle:
    def test_returns_input(self):
        gates = [H(0), X(1)]
        assert IdentityOracle()(gates) == gates

    def test_returns_fresh_list(self):
        gates = [H(0)]
        out = IdentityOracle()(gates)
        assert out is not gates


class TestComposedOracle:
    def test_requires_components(self):
        with pytest.raises(ValueError):
            ComposedOracle()

    def test_runs_in_sequence(self):
        composed = ComposedOracle(IdentityOracle(), NamOracle())
        assert composed([H(0), H(0)]) == []

    def test_keeps_best(self):
        class Worsener:
            def __call__(self, gates):
                return list(gates) + [H(0), H(0)]

        composed = ComposedOracle(NamOracle(), Worsener())
        # The worsener's output costs more, so the Nam result is kept.
        assert composed([X(0), X(0)]) == []

    def test_custom_cost(self):
        composed = ComposedOracle(IdentityOracle(), cost=lambda g: -float(len(g)))
        gates = [H(0), X(1)]
        assert composed(gates) == gates


class TestCheckWellBehaved:
    def test_identity_trivially_well_behaved(self):
        gates = list(random_redundant_circuit(4, 50, seed=1).gates)
        assert check_well_behaved(IdentityOracle(), gates, seed=0) == []

    def test_detects_badly_behaved_oracle(self):
        class FirstPairOnly:
            """Only cancels when the pair is at the very start —
            subsegments starting elsewhere stay improvable."""

            def __call__(self, gates):
                gates = list(gates)
                if len(gates) >= 2 and gates[0] == gates[1] and gates[0].name == "h":
                    return gates[2:]
                return gates

        # Output contains an internal H,H pair the oracle would remove
        # when handed that subsegment directly.
        gates = [X(0), H(1), H(1), X(0)]
        bad = check_well_behaved(FirstPairOnly(), gates, samples=200, seed=1)
        assert bad  # counterexample found

    def test_empty_input(self):
        assert check_well_behaved(NamOracle(), [], seed=0) == []
