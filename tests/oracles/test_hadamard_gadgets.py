"""Tests for the Nam-style Hadamard gate reduction pass."""

import math

from hypothesis import given

from repro.circuits import CNOT, RZ, H, X
from repro.oracles import hadamard_gadget_pass
from repro.sim import segments_equivalent

from ..conftest import gate_list_strategy

S = lambda q: RZ(q, math.pi / 2)
SDG = lambda q: RZ(q, -math.pi / 2)


def h_count(gates) -> int:
    return sum(1 for g in gates if g.name == "h")


class TestRule12:
    def test_hsh(self):
        gates = [H(0), S(0), H(0)]
        out, changed = hadamard_gadget_pass(gates)
        assert changed
        assert h_count(out) == 1
        assert segments_equivalent(gates, out)

    def test_hsdgh(self):
        gates = [H(0), SDG(0), H(0)]
        out, changed = hadamard_gadget_pass(gates)
        assert changed
        assert h_count(out) == 1
        assert segments_equivalent(gates, out)

    def test_with_spectators(self):
        gates = [H(0), CNOT(1, 2), S(0), X(1), H(0)]
        out, changed = hadamard_gadget_pass(gates)
        assert changed
        assert segments_equivalent(gates, out)

    def test_non_clifford_angle_not_touched(self):
        gates = [H(0), RZ(0, 0.3), H(0)]
        out, changed = hadamard_gadget_pass(gates)
        assert not changed and out == gates


class TestRule3:
    def test_target_wire_sandwich(self):
        gates = [H(1), S(1), CNOT(0, 1), SDG(1), H(1)]
        out, changed = hadamard_gadget_pass(gates)
        assert changed
        assert len(out) == 3
        assert h_count(out) == 0
        assert segments_equivalent(gates, out)

    def test_mirrored_variant(self):
        gates = [H(1), SDG(1), CNOT(0, 1), S(1), H(1)]
        out, changed = hadamard_gadget_pass(gates)
        assert changed
        assert len(out) == 3
        assert segments_equivalent(gates, out)

    def test_control_wire_not_matched(self):
        # the identity holds on the target wire only
        gates = [H(0), S(0), CNOT(0, 1), SDG(0), H(0)]
        out, changed = hadamard_gadget_pass(gates)
        assert segments_equivalent(gates, out)

    def test_same_sign_phases_not_matched(self):
        gates = [H(1), S(1), CNOT(0, 1), S(1), H(1)]
        out, changed = hadamard_gadget_pass(gates)
        assert not changed


class TestRule4:
    def test_hh_cnot_hh(self):
        gates = [H(0), H(1), CNOT(0, 1), H(0), H(1)]
        out, changed = hadamard_gadget_pass(gates)
        assert changed
        assert out == [CNOT(1, 0)]
        assert segments_equivalent(gates, out)

    def test_with_spectators(self):
        gates = [H(0), X(3), H(1), CNOT(0, 1), RZ(3, 0.5), H(0), H(1)]
        out, changed = hadamard_gadget_pass(gates)
        assert changed
        assert CNOT(1, 0) in out
        assert segments_equivalent(gates, out)

    def test_missing_one_h_not_matched(self):
        gates = [H(0), H(1), CNOT(0, 1), H(0)]
        out, changed = hadamard_gadget_pass(gates)
        assert not changed

    def test_blocked_wire_not_matched(self):
        gates = [H(0), H(1), X(1), CNOT(0, 1), H(0), H(1)]
        out, changed = hadamard_gadget_pass(gates)
        assert not changed


class TestProperties:
    @given(gate_list_strategy(num_qubits=4, max_gates=30))
    def test_preserves_unitary(self, gates):
        out, _ = hadamard_gadget_pass(list(gates))
        assert segments_equivalent(gates, out)

    @given(gate_list_strategy(num_qubits=4, max_gates=30))
    def test_h_count_never_grows(self, gates):
        out, changed = hadamard_gadget_pass(list(gates))
        if changed:
            assert h_count(out) < h_count(gates)
        else:
            assert h_count(out) == h_count(gates)

    @given(gate_list_strategy(num_qubits=4, max_gates=30))
    def test_gate_count_never_grows(self, gates):
        out, _ = hadamard_gadget_pass(list(gates))
        assert len(out) <= len(gates)

    @given(gate_list_strategy(num_qubits=3, max_gates=25))
    def test_terminates_under_iteration(self, gates):
        # H-count strictly decreases on change, so iteration terminates
        current = list(gates)
        for _ in range(len(gates) + 2):
            current, changed = hadamard_gadget_pass(current)
            if not changed:
                break
        else:
            raise AssertionError("pass did not reach a fixpoint")
