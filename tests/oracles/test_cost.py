"""Tests for cost functions."""

import pickle

import pytest

from repro.circuits import CNOT, RZ, H, X
from repro.oracles import DepthCost, GateCount, MixedCost, TwoQubitCount


class TestGateCount:
    def test_counts(self):
        assert GateCount()([H(0), X(1)]) == 2.0
        assert GateCount()([]) == 0.0

    def test_equality_hash_pickle(self):
        assert GateCount() == GateCount()
        assert hash(GateCount()) == hash(GateCount())
        assert pickle.loads(pickle.dumps(GateCount())) == GateCount()


class TestDepthCost:
    def test_depth(self):
        assert DepthCost()([H(0), H(1)]) == 1.0
        assert DepthCost()([H(0), X(0)]) == 2.0
        assert DepthCost()([]) == 0.0

    def test_cnot_depth(self):
        assert DepthCost()([CNOT(0, 1), H(0), H(1)]) == 2.0

    def test_equality(self):
        assert DepthCost() == DepthCost()


class TestMixedCost:
    def test_formula(self):
        gates = [H(0), X(0)]  # depth 2, 2 gates
        assert MixedCost(10.0)(gates) == 22.0

    def test_weight_matters(self):
        gates = [H(0)]
        assert MixedCost(5.0)(gates) == 6.0
        assert MixedCost(5.0) != MixedCost(10.0)

    def test_pickle(self):
        c = pickle.loads(pickle.dumps(MixedCost(7.0)))
        assert c == MixedCost(7.0)

    def test_empty(self):
        assert MixedCost()([]) == 0.0


class TestTwoQubitCount:
    def test_counts_only_multiqubit(self):
        assert TwoQubitCount()([H(0), CNOT(0, 1), CNOT(1, 2), RZ(0, 1.0)]) == 2.0

    def test_equality(self):
        assert TwoQubitCount() == TwoQubitCount()


class TestFidelityCost:
    def test_two_qubit_gates_cost_more(self):
        from repro.oracles import FidelityCost

        c = FidelityCost()
        assert c([CNOT(0, 1)]) > c([H(0)])

    def test_fidelity_of_empty_circuit(self):
        from repro.oracles import FidelityCost

        assert FidelityCost().fidelity([]) == 1.0

    def test_fidelity_decreases_with_gates(self):
        from repro.oracles import FidelityCost

        c = FidelityCost()
        f1 = c.fidelity([CNOT(0, 1)])
        f2 = c.fidelity([CNOT(0, 1), CNOT(1, 2)])
        assert 0 < f2 < f1 < 1

    def test_cost_additive(self):
        from repro.oracles import FidelityCost

        c = FidelityCost()
        assert c([H(0), CNOT(0, 1)]) == pytest.approx(c([H(0)]) + c([CNOT(0, 1)]))

    def test_error_rate_validation(self):
        from repro.oracles import FidelityCost

        with pytest.raises(ValueError):
            FidelityCost(single_qubit_error=1.5)

    def test_equality_and_pickle(self):
        from repro.oracles import FidelityCost

        a = FidelityCost(1e-4, 1e-3)
        assert a == FidelityCost(1e-4, 1e-3)
        assert a != FidelityCost(1e-4, 2e-3)
        assert pickle.loads(pickle.dumps(a)) == a

    def test_usable_as_popqc_cost(self):
        from repro.circuits import random_redundant_circuit
        from repro.core import popqc
        from repro.oracles import FidelityCost, NamOracle

        cost = FidelityCost()
        c = random_redundant_circuit(4, 100, seed=1, redundancy=0.7)
        res = popqc(c, NamOracle(), 10, cost=cost)
        assert cost.fidelity(list(res.circuit.gates)) > cost.fidelity(list(c.gates))
