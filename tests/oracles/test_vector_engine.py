"""Tests for the vectorized rule engine.

The vector engine applies the same rule set as the reference engine but
in whole-array sweeps, so its intermediate circuits differ while its
fixpoints must be (a) unitarily equivalent to the input and (b) locally
unimprovable by the reference engine's rules.  Both are property-tested
here, along with the packed-layout round trips the transports rely on.
"""

import math

import numpy as np
import pytest
from hypothesis import given

from repro.circuits import CNOT, RZ, Gate, H, X, decode_segment, encode_segment
from repro.oracles import NamOracle
from repro.oracles.vector_engine import (
    VECTOR_PASS_TABLE,
    VectorSegment,
    vector_cancellation_pass,
    vector_cnot_chain_pass,
    vector_hadamard_gadget_pass,
    vector_hadamard_reduction_pass,
    vector_remove_identities,
    vector_rotation_merge_pass,
)
from repro.oracles.rotation_merge import rotation_merge_pass
from repro.sim import segments_equivalent

from ..conftest import gate_list_strategy

ALL_PASSES = sorted(VECTOR_PASS_TABLE)


# -- VectorSegment round trips -------------------------------------------------


@given(gate_list_strategy(num_qubits=5, max_gates=40))
def test_from_gates_roundtrip(gates):
    vec = VectorSegment.from_gates(gates)
    assert vec is not None
    assert len(vec) == len(gates)
    assert vec.to_gates() == gates


@given(gate_list_strategy(num_qubits=5, max_gates=40))
def test_from_encoded_roundtrip(gates):
    vec = VectorSegment.from_encoded(encode_segment(gates))
    assert vec is not None
    assert vec.to_gates() == gates


@given(gate_list_strategy(num_qubits=5, max_gates=40))
def test_to_encoded_matches_encode_segment(gates):
    vec = VectorSegment.from_gates(gates)
    encoded = vec.to_encoded()
    assert decode_segment(encoded) == gates
    # byte-compatible with the canonical encoder (same wire format)
    assert encoded == encode_segment(gates)


def test_foreign_gates_rejected():
    assert VectorSegment.from_gates([Gate("toffoli", (0, 1, 2))]) is None
    assert VectorSegment.from_gates([H(0), Gate("swap", (0, 1))]) is None
    encoded = encode_segment([Gate("ccz", (0, 1, 2)), H(0)])
    assert VectorSegment.from_encoded(encoded) is None


def test_empty_segment():
    vec = VectorSegment.from_gates([])
    assert len(vec) == 0
    assert vec.to_gates() == []
    assert decode_segment(vec.to_encoded()) == []
    for name in ALL_PASSES:
        out, changed = VECTOR_PASS_TABLE[name](vec)
        assert len(out) == 0 and not changed


def test_fast_path_gates_are_real_gates():
    gates = [H(0), RZ(1, 0.5), CNOT(0, 1), X(2)]
    out = VectorSegment.from_gates(gates).to_gates()
    assert out == gates
    assert all(isinstance(g, Gate) for g in out)
    assert out[1].param == 0.5 and out[2].qubits == (0, 1)
    assert hash(out[0]) == hash(H(0))


# -- per-pass properties -------------------------------------------------------


@pytest.mark.parametrize("name", ALL_PASSES)
@given(gates=gate_list_strategy(num_qubits=4, max_gates=30))
def test_passes_preserve_unitary(name, gates):
    vec = VectorSegment.from_gates(gates)
    out, changed = VECTOR_PASS_TABLE[name](vec)
    out_gates = out.to_gates()
    assert segments_equivalent(gates, out_gates)
    if not changed:
        assert out_gates == gates


@pytest.mark.parametrize("name", ALL_PASSES)
@given(gates=gate_list_strategy(num_qubits=4, max_gates=30))
def test_passes_never_grow(name, gates):
    vec = VectorSegment.from_gates(gates)
    out, _ = VECTOR_PASS_TABLE[name](vec)
    assert len(out) <= len(gates)


def test_remove_identities_vectorized():
    gates = [RZ(0, 0.0), H(1), RZ(1, 0.0), X(0)]
    out, changed = vector_remove_identities(VectorSegment.from_gates(gates))
    assert changed and out.to_gates() == [H(1), X(0)]


def test_cancellation_collapses_runs():
    # parity cancellation across a whole run in one sweep
    gates = [H(0), H(0), H(0), X(1), X(1), CNOT(0, 1), CNOT(0, 1)]
    out, changed = vector_cancellation_pass(VectorSegment.from_gates(gates))
    assert changed and out.to_gates() == [H(0)]


def test_cancellation_merges_rz_through_cnot_controls():
    # the control-wire corridor: RZs merge across CNOT controls
    gates = [RZ(0, 0.5), CNOT(0, 1), RZ(0, 0.25)]
    out, changed = vector_cancellation_pass(VectorSegment.from_gates(gates))
    got = out.to_gates()
    assert changed
    assert got[0] == CNOT(0, 1)
    assert got[1].name == "rz" and math.isclose(got[1].param, 0.75)


def test_cancellation_blocked_by_target_collision():
    # an X on the control wire blocks the RZ corridor
    gates = [RZ(0, 0.5), X(0), RZ(0, 0.25)]
    out, changed = vector_cancellation_pass(VectorSegment.from_gates(gates))
    assert not changed and out.to_gates() == gates


def test_hadamard_reduction_triples():
    out, changed = vector_hadamard_reduction_pass(
        VectorSegment.from_gates([H(0), X(0), H(0)])
    )
    assert changed and out.to_gates() == [RZ(0, math.pi)]
    out, changed = vector_hadamard_reduction_pass(
        VectorSegment.from_gates([H(1), RZ(1, math.pi), H(1)])
    )
    assert changed and out.to_gates() == [X(1)]


def test_hadamard_reduction_overlap_resolved_left_to_right():
    # H X H X H: only the left triple fires in one sweep
    gates = [H(0), X(0), H(0), X(0), H(0)]
    out, changed = vector_hadamard_reduction_pass(VectorSegment.from_gates(gates))
    assert changed
    assert out.to_gates() == [RZ(0, math.pi), X(0), H(0)]


def test_hadamard_gadget_rule4_flips_cnot():
    gates = [H(0), H(1), CNOT(0, 1), H(0), H(1)]
    out, changed = vector_hadamard_gadget_pass(VectorSegment.from_gates(gates))
    assert changed and out.to_gates() == [CNOT(1, 0)]


def test_cnot_chain_reduces_three_to_two():
    gates = [CNOT(0, 1), CNOT(1, 2), CNOT(0, 1)]
    out, changed = vector_cnot_chain_pass(VectorSegment.from_gates(gates))
    got = out.to_gates()
    assert changed and len(got) == 2
    assert segments_equivalent(gates, got)


def test_rotation_merge_matches_reference_exactly():
    # same algorithm as the gate-list pass -> identical output
    rng = np.random.default_rng(3)
    for trial in range(20):
        gates = []
        for _ in range(40):
            k = rng.integers(0, 4)
            if k == 0:
                gates.append(H(int(rng.integers(0, 4))))
            elif k == 1:
                gates.append(X(int(rng.integers(0, 4))))
            elif k == 2:
                gates.append(RZ(int(rng.integers(0, 4)), float(rng.uniform(0, 6))))
            else:
                a, b = rng.choice(4, size=2, replace=False)
                gates.append(CNOT(int(a), int(b)))
        want, want_changed = rotation_merge_pass(list(gates))
        out, changed = vector_rotation_merge_pass(VectorSegment.from_gates(gates))
        assert out.to_gates() == want
        assert changed == want_changed


# -- the vector oracle ---------------------------------------------------------


@given(gates=gate_list_strategy(num_qubits=4, max_gates=30))
def test_vector_oracle_preserves_unitary(gates):
    out = NamOracle(engine="vector")(gates)
    assert segments_equivalent(gates, out)
    assert len(out) <= len(gates)


@given(gates=gate_list_strategy(num_qubits=4, max_gates=25))
def test_vector_fixpoint_unimprovable_by_reference_engine(gates):
    # a vector-engine fixpoint must also be a fixpoint of the reference
    # passes: the two engines implement the same rule set
    out = NamOracle(engine="vector")(gates)
    again = NamOracle(engine="python")(list(out))
    assert len(again) == len(out)


def test_vector_oracle_is_deterministic():
    from repro.circuits import random_redundant_circuit

    gates = list(random_redundant_circuit(6, 300, seed=5, redundancy=0.5).gates)
    oracle = NamOracle(engine="vector")
    assert oracle(gates) == oracle(list(gates))


def test_vector_oracle_falls_back_outside_base_set():
    swap = Gate("swap", (0, 1))
    gates = [H(0), H(0), swap, X(1), X(1)]
    out = NamOracle(engine="vector")(gates)
    # the python fallback leaves the foreign gate alone but cancels
    # around it exactly as the reference engine does
    assert out == NamOracle(engine="python")(gates)


def test_run_packed_matches_call():
    from repro.circuits import random_redundant_circuit

    gates = list(random_redundant_circuit(5, 200, seed=9, redundancy=0.6).gates)
    for engine in ("python", "vector"):
        oracle = NamOracle(engine=engine)
        packed = decode_segment(oracle.run_packed(encode_segment(gates)))
        assert packed == oracle(list(gates))


def test_packed_native_flag():
    assert NamOracle(engine="vector").packed_native
    assert not NamOracle().packed_native


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="engine"):
        NamOracle(engine="fortran")


def test_engine_participates_in_equality():
    assert NamOracle(engine="vector") != NamOracle(engine="python")
    assert NamOracle(engine="vector") == NamOracle(engine="vector")
    assert hash(NamOracle(engine="vector")) != hash(NamOracle())


def test_vector_oracle_picklable():
    import pickle

    oracle = NamOracle(engine="vector")
    oracle([H(0), H(0)])  # warm the pipeline cache, then pickle
    clone = pickle.loads(pickle.dumps(oracle))
    assert clone == oracle
    assert clone([H(0), H(0), X(1)]) == [X(1)]


def test_vector_oracle_well_behaved():
    from repro.circuits import random_redundant_circuit
    from repro.oracles import check_well_behaved

    gates = list(random_redundant_circuit(5, 150, seed=2, redundancy=0.5).gates)
    assert check_well_behaved(NamOracle(engine="vector"), gates, seed=0) == []
