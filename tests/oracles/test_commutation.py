"""Exhaustive verification of the commutation predicate.

``commutes(g, h)`` must return True only when [g, h] = 0 as operators.
We verify this against the unitary simulator for *every* gate pair over
a 3-qubit register — including the negative cases, so the predicate is
neither unsound (claiming commutation that doesn't hold) nor overly
permissive.
"""

import itertools
import math

import numpy as np
import pytest

from repro.circuits import CNOT, RZ, Gate, H, X
from repro.oracles import commutes, commutes_through
from repro.sim import gates_unitary

QUBITS = 3


def all_gates():
    gates = []
    for q in range(QUBITS):
        gates.append(H(q))
        gates.append(X(q))
        gates.append(RZ(q, 0.7))
        gates.append(RZ(q, math.pi))
    for a, b in itertools.permutations(range(QUBITS), 2):
        gates.append(CNOT(a, b))
    return gates


def truly_commute(g: Gate, h: Gate) -> bool:
    ug = gates_unitary([g], QUBITS)
    uh = gates_unitary([h], QUBITS)
    return np.allclose(ug @ uh, uh @ ug, atol=1e-10)


@pytest.mark.parametrize(
    "g,h", list(itertools.product(all_gates(), repeat=2)), ids=lambda x: str(x)
)
def test_predicate_sound(g, h):
    """commutes() must never claim a non-commuting pair commutes."""
    if commutes(g, h):
        assert truly_commute(g, h), f"unsound: {g} vs {h}"


def test_predicate_completeness_on_disjoint():
    """All disjoint-support pairs must be recognized."""
    assert commutes(H(0), X(1))
    assert commutes(CNOT(0, 1), CNOT(2, 0) if False else RZ(2, 0.5))


class TestKnownPositiveCases:
    def test_rz_on_control(self):
        assert commutes(RZ(0, 0.5), CNOT(0, 1))

    def test_x_on_target(self):
        assert commutes(X(1), CNOT(0, 1))

    def test_cnots_shared_control(self):
        assert commutes(CNOT(0, 1), CNOT(0, 2))

    def test_cnots_shared_target(self):
        assert commutes(CNOT(0, 2), CNOT(1, 2))

    def test_equal_name_single_qubit(self):
        assert commutes(RZ(0, 0.3), RZ(0, 0.9))
        assert commutes(H(0), H(0))
        assert commutes(X(0), X(0))

    def test_symmetry_of_swapped_args(self):
        assert commutes(CNOT(0, 1), RZ(0, 0.5))
        assert commutes(CNOT(0, 1), X(1))


class TestKnownNegativeCases:
    def test_rz_on_target_blocks(self):
        assert not commutes(RZ(1, 0.5), CNOT(0, 1))

    def test_x_on_control_blocks(self):
        assert not commutes(X(0), CNOT(0, 1))

    def test_h_blocks_cnot(self):
        assert not commutes(H(0), CNOT(0, 1))
        assert not commutes(H(1), CNOT(0, 1))

    def test_cnot_control_target_collision(self):
        assert not commutes(CNOT(0, 1), CNOT(1, 2))
        assert not commutes(CNOT(1, 2), CNOT(0, 1))

    def test_mixed_single_qubit(self):
        assert not commutes(H(0), X(0))
        assert not commutes(H(0), RZ(0, 0.5))
        assert not commutes(X(0), RZ(0, 0.5))


class TestCommutesThrough:
    def test_empty_between(self):
        assert commutes_through(H(0), [])

    def test_all_commuting(self):
        assert commutes_through(RZ(0, 0.5), [CNOT(0, 1), RZ(0, 0.2), H(2)])

    def test_one_blocker(self):
        assert not commutes_through(RZ(0, 0.5), [CNOT(0, 1), H(0)])
