"""Tests for phase-polynomial rotation merging."""


import pytest
from hypothesis import given

from repro.circuits import CNOT, RZ, H, X
from repro.oracles import rotation_merge_pass
from repro.sim import segments_equivalent

from ..conftest import gate_list_strategy


class TestBasicMerges:
    def test_adjacent_rz_merge(self):
        out, changed = rotation_merge_pass([RZ(0, 0.3), RZ(0, 0.4)])
        assert changed and len(out) == 1
        assert out[0].param == pytest.approx(0.7)

    def test_merge_through_cnot_conjugation(self):
        # RZ(1,a) CNOT(0,1) RZ(1,b) CNOT(0,1) RZ(1,c): the outer two act
        # on the same parity (wire 1's original value) and merge even
        # though a commutation-based scan is blocked by the CNOT target.
        gates = [RZ(1, 0.3), CNOT(0, 1), RZ(1, 0.5), CNOT(0, 1), RZ(1, 0.4)]
        out, changed = rotation_merge_pass(gates)
        assert changed
        assert sum(1 for g in out if g.name == "rz") == 2
        assert segments_equivalent(gates, out)

    def test_merge_across_wires_with_same_parity(self):
        # CNOT(0,1) copies wire 0's parity onto wire 1 (xor), so RZ on a
        # restored parity merges across different physical wires.
        gates = [RZ(0, 0.2), CNOT(1, 0), CNOT(1, 0), RZ(0, 0.3)]
        out, changed = rotation_merge_pass(gates)
        assert changed
        assert segments_equivalent(gates, out)

    def test_x_flips_sign_of_merge(self):
        # X conjugation: RZ(a) X RZ(b) X == RZ(a - b) up to global phase
        gates = [RZ(0, 0.5), X(0), RZ(0, 0.3), X(0)]
        out, changed = rotation_merge_pass(gates)
        assert changed
        assert segments_equivalent(gates, out)
        rz = [g for g in out if g.name == "rz"]
        assert len(rz) == 1
        assert rz[0].param == pytest.approx(0.2)

    def test_cancel_to_zero_removes_both(self):
        gates = [RZ(0, 1.0), H(1), RZ(0, -1.0)]
        out, changed = rotation_merge_pass(gates)
        assert changed
        assert all(g.name != "rz" for g in out)

    def test_h_breaks_merging(self):
        gates = [RZ(0, 0.3), H(0), RZ(0, 0.4)]
        out, changed = rotation_merge_pass(gates)
        assert not changed and out == gates

    def test_no_rz_no_change(self):
        gates = [H(0), CNOT(0, 1), X(1)]
        out, changed = rotation_merge_pass(gates)
        assert not changed and out == gates

    def test_empty(self):
        assert rotation_merge_pass([]) == ([], False)


class TestProperties:
    @given(gate_list_strategy(num_qubits=4, max_gates=30))
    def test_preserves_unitary(self, gates):
        out, _ = rotation_merge_pass(list(gates))
        assert segments_equivalent(gates, out)

    @given(gate_list_strategy(num_qubits=4, max_gates=30))
    def test_never_grows(self, gates):
        out, _ = rotation_merge_pass(list(gates))
        assert len(out) <= len(gates)

    @given(gate_list_strategy(num_qubits=3, max_gates=25))
    def test_idempotent(self, gates):
        once, _ = rotation_merge_pass(list(gates))
        twice, changed = rotation_merge_pass(list(once))
        assert not changed
        assert twice == once
