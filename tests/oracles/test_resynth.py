"""Tests for single-qubit run resynthesis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.circuits import CNOT, RZ, Gate, H, X
from repro.oracles import EXTENDED_PASSES, NamOracle, resynthesis_pass, synthesize_1q
from repro.sim import allclose_up_to_phase, gates_unitary, segments_equivalent

from ..conftest import gate_list_strategy


def random_unitary_2x2(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    z = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
    q, r = np.linalg.qr(z)
    return q * (np.diag(r) / np.abs(np.diag(r)))


class TestSynthesize1q:
    def test_identity_is_empty(self):
        assert synthesize_1q(np.eye(2, dtype=complex), 0) == []

    def test_phase_only_identity(self):
        assert synthesize_1q(np.exp(0.3j) * np.eye(2), 0) == []

    def test_diagonal_single_rz(self):
        gates = synthesize_1q(np.diag([1.0, np.exp(0.7j)]), 3)
        assert gates == [RZ(3, 0.7)]

    def test_x_matrix_single_gate(self):
        gates = synthesize_1q(np.array([[0, 1], [1, 0]], dtype=complex), 0)
        assert gates == [X(0)]

    def test_antidiagonal_two_gates(self):
        u = np.array([[0, np.exp(0.9j)], [1, 0]], dtype=complex)
        gates = synthesize_1q(u, 0)
        assert len(gates) == 2
        assert allclose_up_to_phase(gates_unitary(gates, 1), u)

    def test_hadamard_three_gates(self):
        u = H(0).matrix()
        gates = synthesize_1q(u, 0)
        assert len(gates) <= 5
        assert allclose_up_to_phase(gates_unitary(gates, 1), u)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_unitaries(self, seed):
        u = random_unitary_2x2(seed)
        gates = synthesize_1q(u, 2)
        assert len(gates) <= 5
        assert all(g.qubits == (2,) for g in gates)
        # remap to qubit 0 for the unitary check
        compact = [Gate(g.name, (0,), g.param) for g in gates]
        assert allclose_up_to_phase(gates_unitary(compact, 1), u, atol=1e-7)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            synthesize_1q(np.eye(4, dtype=complex), 0)

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            synthesize_1q(np.array([[1, 1], [0, 1]], dtype=complex), 0)


class TestResynthesisPass:
    def test_collapses_long_run(self):
        # T S T H X T S on one wire: 7 gates -> at most 5
        run = [
            RZ(0, math.pi / 4),
            RZ(0, math.pi / 2),
            RZ(0, math.pi / 4),
            H(0),
            X(0),
            RZ(0, math.pi / 4),
            RZ(0, math.pi / 2),
        ]
        out, changed = resynthesis_pass(list(run))
        assert changed
        assert len(out) <= 5
        assert segments_equivalent(run, out)

    def test_run_interrupted_by_cnot(self):
        gates = [RZ(0, 0.3), H(0), CNOT(0, 1), RZ(0, 0.4), H(0)]
        out, changed = resynthesis_pass(list(gates))
        assert segments_equivalent(gates, out)

    def test_runs_on_multiple_wires(self):
        gates = [H(0), X(0), H(0), H(1), X(1), H(1)]
        out, changed = resynthesis_pass(list(gates))
        assert changed
        assert len(out) == 2  # each HXH run collapses to one RZ(pi)
        assert segments_equivalent(gates, out)

    def test_short_runs_untouched_when_not_shorter(self):
        gates = [H(0), RZ(0, 0.3)]  # already minimal (generic ZXZ is 3+)
        out, changed = resynthesis_pass(list(gates))
        assert not changed and out == gates

    @given(gate_list_strategy(num_qubits=4, max_gates=25))
    @settings(max_examples=30)
    def test_preserves_unitary(self, gates):
        out, _ = resynthesis_pass(list(gates))
        assert segments_equivalent(gates, out, atol=1e-6)

    @given(gate_list_strategy(num_qubits=4, max_gates=25))
    @settings(max_examples=30)
    def test_never_grows(self, gates):
        out, _ = resynthesis_pass(list(gates))
        assert len(out) <= len(gates)


class TestExtendedOracle:
    def test_at_least_as_good_as_default(self):
        from repro.circuits import random_redundant_circuit

        c = random_redundant_circuit(4, 150, seed=1, redundancy=0.6)
        default = NamOracle()(list(c.gates))
        extended = NamOracle(EXTENDED_PASSES)(list(c.gates))
        assert len(extended) <= len(default)

    def test_collapses_what_rules_miss(self):
        # a run whose product is diagonal but that no pattern rule matches
        run = [H(0), RZ(0, 0.3), H(0), H(0), RZ(0, -0.3), H(0)]
        oracle = NamOracle(EXTENDED_PASSES)
        out = oracle(list(run))
        assert len(out) == 0  # product is the identity
