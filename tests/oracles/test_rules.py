"""Unit tests for the local rewrite rules, each verified by simulation."""

import math

import pytest

from repro.circuits import CNOT, RZ, H, X
from repro.oracles import cnot_chain_triple, hadamard_triple, try_merge
from repro.sim import segments_equivalent


class TestTryMerge:
    def test_hh_cancels(self):
        assert try_merge(H(0), H(0)) == []

    def test_xx_cancels(self):
        assert try_merge(X(2), X(2)) == []

    def test_cnot_cancels(self):
        assert try_merge(CNOT(0, 1), CNOT(0, 1)) == []

    def test_cnot_reversed_does_not_cancel(self):
        assert try_merge(CNOT(0, 1), CNOT(1, 0)) is None

    def test_rz_merges(self):
        (merged,) = try_merge(RZ(0, 0.3), RZ(0, 0.4))
        assert merged.param == pytest.approx(0.7)

    def test_rz_opposite_angles_cancel(self):
        assert try_merge(RZ(0, 1.0), RZ(0, -1.0)) == []

    def test_different_qubits_no_merge(self):
        assert try_merge(H(0), H(1)) is None

    def test_different_names_no_merge(self):
        assert try_merge(H(0), X(0)) is None

    @pytest.mark.parametrize(
        "g,h",
        [
            (H(0), H(0)),
            (X(1), X(1)),
            (CNOT(0, 1), CNOT(0, 1)),
            (RZ(0, 0.3), RZ(0, 1.1)),
            (RZ(0, math.pi), RZ(0, math.pi)),
        ],
    )
    def test_merge_preserves_unitary(self, g, h):
        merged = try_merge(g, h)
        assert merged is not None
        assert segments_equivalent([g, h], merged)


class TestHadamardTriple:
    def test_hxh_to_z(self):
        rep = hadamard_triple(H(0), X(0), H(0))
        assert rep == [RZ(0, math.pi)]
        assert segments_equivalent([H(0), X(0), H(0)], rep)

    def test_hzh_to_x(self):
        rep = hadamard_triple(H(0), RZ(0, math.pi), H(0))
        assert rep == [X(0)]
        assert segments_equivalent([H(0), RZ(0, math.pi), H(0)], rep)

    def test_non_pi_rz_not_rewritten(self):
        assert hadamard_triple(H(0), RZ(0, 0.5), H(0)) is None

    def test_wrong_wires_rejected(self):
        assert hadamard_triple(H(0), X(1), H(0)) is None

    def test_outer_gates_must_be_h(self):
        assert hadamard_triple(X(0), X(0), H(0)) is None

    def test_multi_qubit_middle_rejected(self):
        assert hadamard_triple(H(0), CNOT(0, 1), H(0)) is None


class TestCnotChainTriple:
    def test_shared_middle_wire(self):
        # CNOT(0,1) CNOT(1,2) CNOT(0,1) == CNOT(1,2) CNOT(0,2)
        rep = cnot_chain_triple(CNOT(0, 1), CNOT(1, 2), CNOT(0, 1))
        assert rep == [CNOT(1, 2), CNOT(0, 2)]
        assert segments_equivalent([CNOT(0, 1), CNOT(1, 2), CNOT(0, 1)], rep)

    def test_target_feeds_control(self):
        # CNOT(1,2) CNOT(0,1) CNOT(1,2) == CNOT(0,1) CNOT(0,2)
        rep = cnot_chain_triple(CNOT(1, 2), CNOT(0, 1), CNOT(1, 2))
        assert rep is not None
        assert segments_equivalent([CNOT(1, 2), CNOT(0, 1), CNOT(1, 2)], rep)

    def test_outer_gates_must_match(self):
        assert cnot_chain_triple(CNOT(0, 1), CNOT(1, 2), CNOT(0, 2)) is None

    def test_non_cnot_rejected(self):
        assert cnot_chain_triple(CNOT(0, 1), H(1), CNOT(0, 1)) is None

    def test_commuting_middle_not_rewritten(self):
        # middle shares only the control: commutes, no chain identity
        assert cnot_chain_triple(CNOT(0, 1), CNOT(0, 2), CNOT(0, 1)) is None
