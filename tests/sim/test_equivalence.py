"""Tests for equivalence checking up to global phase."""

import math

import numpy as np
import pytest

from repro.circuits import CNOT, RZ, Circuit, H, X
from repro.sim import (
    allclose_up_to_phase,
    circuits_equivalent,
    segments_equivalent,
    statevectors_equivalent,
)


class TestPhaseInvariance:
    def test_equal_matrices(self):
        m = np.eye(4)
        assert allclose_up_to_phase(m, m)

    def test_global_phase_ignored(self):
        m = H(0).matrix()
        assert allclose_up_to_phase(np.exp(0.7j) * m, m)

    def test_different_magnitude_rejected(self):
        m = np.eye(2)
        assert not allclose_up_to_phase(2 * m, m)

    def test_shape_mismatch(self):
        assert not allclose_up_to_phase(np.eye(2), np.eye(4))

    def test_zero_vs_zero(self):
        z = np.zeros((2, 2), dtype=complex)
        assert allclose_up_to_phase(z, z)

    def test_zero_vs_nonzero(self):
        assert not allclose_up_to_phase(np.eye(2), np.zeros((2, 2)))

    def test_relative_phase_not_ignored(self):
        a = np.diag([1.0, 1.0]).astype(complex)
        b = np.diag([1.0, np.exp(0.3j)])
        assert not allclose_up_to_phase(a, b)


class TestCircuitsEquivalent:
    def test_hh_is_identity(self):
        assert circuits_equivalent(Circuit([H(0), H(0)], 1), Circuit([], 1))

    def test_hxh_is_z(self):
        assert circuits_equivalent(
            Circuit([H(0), X(0), H(0)], 1), Circuit([RZ(0, math.pi)], 1)
        )

    def test_different_circuits_not_equivalent(self):
        assert not circuits_equivalent(Circuit([H(0)], 1), Circuit([X(0)], 1))

    def test_padding_to_common_qubits(self):
        a = Circuit([H(0)], 1)
        b = Circuit([H(0)], 3)  # extra idle qubits
        assert circuits_equivalent(a, b)

    def test_gate_lists_accepted(self):
        assert circuits_equivalent([H(0), H(0)], [])


class TestSegmentsEquivalent:
    def test_sparse_support_compacted(self):
        # gates on qubits 100 and 200: naive unitary would be impossible
        before = [CNOT(100, 200), CNOT(100, 200)]
        assert segments_equivalent(before, [])

    def test_detects_difference_on_sparse_support(self):
        assert not segments_equivalent([H(50)], [X(50)])

    def test_empty_segments(self):
        assert segments_equivalent([], [])

    def test_support_limit_enforced(self):
        gates = [H(q) for q in range(20)]
        with pytest.raises(ValueError):
            segments_equivalent(gates, gates, max_qubits=12)


class TestStatevectors:
    def test_phase_equal(self):
        a = np.array([1.0, 0.0], dtype=complex)
        assert statevectors_equivalent(a, np.exp(1j) * a)

    def test_orthogonal_not_equal(self):
        a = np.array([1.0, 0.0], dtype=complex)
        b = np.array([0.0, 1.0], dtype=complex)
        assert not statevectors_equivalent(a, b)
