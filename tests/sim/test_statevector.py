"""Tests for the statevector simulator."""

import math

import numpy as np
import pytest

from repro.circuits import CNOT, RZ, Circuit, H, X
from repro.sim import apply_gate, apply_gates, basis_state, run, zero_state


class TestStates:
    def test_zero_state_shape(self):
        s = zero_state(3)
        assert s.shape == (2, 2, 2)
        assert s[0, 0, 0] == 1.0
        assert np.sum(np.abs(s) ** 2) == pytest.approx(1.0)

    def test_zero_state_zero_qubits(self):
        s = zero_state(0)
        assert s.flat[0] == 1.0

    def test_zero_state_negative_raises(self):
        with pytest.raises(ValueError):
            zero_state(-1)

    def test_basis_state(self):
        s = basis_state(2, 3)  # |11>
        assert s[1, 1] == 1.0


class TestGateApplication:
    def test_x_flips(self):
        s = apply_gate(zero_state(1), X(0))
        assert s[1] == pytest.approx(1.0)

    def test_h_superposition(self):
        s = apply_gate(zero_state(1), H(0))
        assert s[0] == pytest.approx(1 / math.sqrt(2))
        assert s[1] == pytest.approx(1 / math.sqrt(2))

    def test_rz_phases_one_component(self):
        s = apply_gate(zero_state(1), X(0))
        s = apply_gate(s, RZ(0, math.pi / 2))
        assert s[1] == pytest.approx(1j)

    def test_cnot_on_control_set(self):
        s = apply_gates(zero_state(2), [X(0), CNOT(0, 1)])
        assert s[1, 1] == pytest.approx(1.0)

    def test_cnot_on_control_clear(self):
        s = apply_gate(zero_state(2), CNOT(0, 1))
        assert s[0, 0] == pytest.approx(1.0)

    def test_gate_on_correct_axis(self):
        # X on qubit 2 of 3 flips only the last axis
        s = apply_gate(zero_state(3), X(2))
        assert s[0, 0, 1] == pytest.approx(1.0)

    def test_normalization_preserved(self):
        s = zero_state(3)
        for g in [H(0), CNOT(0, 1), RZ(1, 0.7), X(2), CNOT(1, 2)]:
            s = apply_gate(s, g)
        assert np.sum(np.abs(s) ** 2) == pytest.approx(1.0)


class TestRun:
    def test_bell_state(self):
        vec = run(Circuit([H(0), CNOT(0, 1)], 2))
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[3] = 1 / math.sqrt(2)
        assert np.allclose(vec, expected)

    def test_ghz_state(self):
        vec = run(Circuit([H(0), CNOT(0, 1), CNOT(1, 2)], 3))
        assert abs(vec[0]) == pytest.approx(1 / math.sqrt(2))
        assert abs(vec[7]) == pytest.approx(1 / math.sqrt(2))

    def test_raw_gate_list(self):
        vec = run([H(0), CNOT(0, 1)])
        assert len(vec) == 4

    def test_explicit_qubit_count(self):
        vec = run([H(0)], num_qubits=3)
        assert len(vec) == 8

    def test_empty_circuit(self):
        vec = run(Circuit([], 2))
        assert vec[0] == 1.0
