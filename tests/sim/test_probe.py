"""Tests for randomized equivalence probing."""

import pytest
from hypothesis import given, settings

from repro.circuits import CNOT, Circuit, H, X, random_circuit
from repro.oracles import NamOracle
from repro.sim import circuits_equivalent, probe_equivalent

from ..conftest import circuit_strategy


class TestProbe:
    def test_identical_circuits(self):
        c = Circuit([H(0), CNOT(0, 1)], 2)
        assert probe_equivalent(c, c, seed=0)

    def test_known_equivalent(self):
        assert probe_equivalent(Circuit([H(0), H(0)], 2), Circuit([], 2), seed=0)

    def test_detects_difference(self):
        assert not probe_equivalent(Circuit([H(0)], 1), Circuit([X(0)], 1), seed=0)

    def test_empty_register(self):
        assert probe_equivalent(Circuit(), Circuit(), seed=0)

    def test_qubit_limit(self):
        big = Circuit([H(q) for q in range(20)], 20)
        with pytest.raises(ValueError):
            probe_equivalent(big, big, max_qubits=18)

    def test_gate_lists_accepted(self):
        assert probe_equivalent([H(0), H(0)], [], seed=1)

    def test_wide_circuit_beyond_unitary_reach(self):
        # 14 qubits: 4^14 unitary is infeasible, 2^14 probes are cheap
        c = random_circuit(14, 60, seed=2)
        opt = Circuit(NamOracle()(list(c.gates)), c.num_qubits)
        assert probe_equivalent(c, opt, trials=2, seed=3)


class TestAgreementWithExactCheck:
    @given(circuit_strategy(num_qubits=3, max_gates=12))
    @settings(max_examples=20)
    def test_probe_agrees_with_unitary_on_equivalent_pairs(self, c):
        opt = Circuit(NamOracle()(list(c.gates)), c.num_qubits)
        assert circuits_equivalent(c, opt)
        assert probe_equivalent(c, opt, trials=3, seed=0)

    @given(circuit_strategy(num_qubits=3, max_gates=10))
    @settings(max_examples=20)
    def test_probe_rejects_perturbed_circuit(self, c):
        from repro.circuits import RZ

        perturbed = Circuit(list(c.gates) + [RZ(0, 0.379), H(1)], c.num_qubits)
        if circuits_equivalent(c, perturbed):  # pragma: no cover - unlikely
            return
        assert not probe_equivalent(c, perturbed, trials=4, seed=1)
