"""Tests for the unitary builder."""


import numpy as np
import pytest
from hypothesis import given

from repro.circuits import CNOT, RZ, H, X
from repro.sim import circuit_unitary, gates_unitary, run

from ..conftest import circuit_strategy


class TestKnownUnitaries:
    def test_identity_for_empty(self):
        assert np.allclose(gates_unitary([], 2), np.eye(4))

    def test_single_h(self):
        u = gates_unitary([H(0)], 1)
        assert np.allclose(u, H(0).matrix())

    def test_gate_order_is_left_to_right(self):
        # circuit H;X means matrix [X][H]
        u = gates_unitary([H(0), X(0)], 1)
        assert np.allclose(u, X(0).matrix() @ H(0).matrix())

    def test_cnot_10_swapped_roles(self):
        u = gates_unitary([CNOT(1, 0)], 2)
        expected = np.eye(4)[[0, 3, 2, 1]]  # |01> <-> |11>
        assert np.allclose(u, expected)

    def test_unitarity(self):
        gates = [H(0), CNOT(0, 1), RZ(1, 0.3), X(0), CNOT(1, 0)]
        u = gates_unitary(gates, 2)
        assert np.allclose(u @ u.conj().T, np.eye(4))


class TestConsistencyWithSimulator:
    @given(circuit_strategy(num_qubits=3, max_gates=12))
    def test_first_column_matches_run(self, c):
        u = circuit_unitary(c)
        assert np.allclose(u[:, 0], run(c))


class TestLimits:
    def test_too_many_qubits_rejected(self):
        with pytest.raises(ValueError):
            gates_unitary([H(0)], 15)

    def test_circuit_unitary_accepts_gate_list(self):
        u = circuit_unitary([H(0), CNOT(0, 1)])
        assert u.shape == (4, 4)
