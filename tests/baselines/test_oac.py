"""Tests for the OAC sequential baseline (Arora et al.)."""

import pytest

from repro.baselines import oac_optimize
from repro.circuits import Circuit, H, random_redundant_circuit
from repro.core import popqc
from repro.oracles import NamOracle
from repro.sim import circuits_equivalent


class TestOptimization:
    def test_omega_validation(self):
        with pytest.raises(ValueError):
            oac_optimize(Circuit([H(0)]), NamOracle(), 0)

    def test_reduces_redundancy(self):
        c = random_redundant_circuit(4, 200, seed=1, redundancy=0.7)
        res = oac_optimize(c, NamOracle(), 16)
        assert res.num_gates < c.num_gates

    def test_preserves_semantics(self):
        c = random_redundant_circuit(4, 120, seed=2)
        res = oac_optimize(c, NamOracle(), 16)
        assert circuits_equivalent(c, res.circuit)

    def test_compress_false_still_correct(self):
        c = random_redundant_circuit(4, 120, seed=3)
        res = oac_optimize(c, NamOracle(), 16, compress=False)
        assert circuits_equivalent(c, res.circuit)

    def test_converges(self):
        c = random_redundant_circuit(4, 150, seed=4)
        res = oac_optimize(c, NamOracle(), 16)
        # rerunning on its own output must find nothing more
        again = oac_optimize(res.circuit, NamOracle(), 16)
        assert again.num_gates == res.num_gates

    def test_max_rounds(self):
        c = random_redundant_circuit(4, 200, seed=5, redundancy=0.8)
        res = oac_optimize(c, NamOracle(), 8, max_rounds=1)
        assert res.rounds == 1


class TestAccounting:
    def test_phase_times_recorded(self):
        c = random_redundant_circuit(4, 150, seed=6)
        res = oac_optimize(c, NamOracle(), 16)
        assert set(res.phase_times) == {"cut", "optimize", "meld", "compress"}
        assert res.oracle_calls > 0
        assert res.oracle_time > 0
        assert res.time_seconds >= res.oracle_time * 0.5

    def test_oracle_calls_linear_in_segments(self):
        c = random_redundant_circuit(4, 200, seed=7)
        res = oac_optimize(c, NamOracle(), 20, max_rounds=1)
        segments = -(-c.num_gates // 20)
        # one call per segment plus one per seam
        assert res.oracle_calls == segments + (segments - 1)


class TestQualityParity:
    """OAC and POPQC both guarantee local optimality; with the same
    oracle and omega their quality should be comparable (paper Table 3:
    within 0.1-0.3%)."""

    def test_matches_popqc_quality(self):
        c = random_redundant_circuit(4, 300, seed=8, redundancy=0.6)
        oracle = NamOracle()
        oac = oac_optimize(c, oracle, 20)
        pop = popqc(c, oracle, 20)
        rel_gap = abs(oac.num_gates - pop.circuit.num_gates) / c.num_gates
        assert rel_gap < 0.05
