"""Tests for the whole-circuit (VOQC-role) baseline."""

from repro.baselines import optimize_whole_circuit
from repro.circuits import Circuit, H, X, random_redundant_circuit
from repro.oracles import NamOracle
from repro.sim import circuits_equivalent


class TestOptimization:
    def test_reduces_redundant_circuit(self):
        c = random_redundant_circuit(4, 150, seed=1, redundancy=0.7)
        res = optimize_whole_circuit(c)
        assert res.num_gates < c.num_gates

    def test_preserves_semantics(self):
        c = random_redundant_circuit(4, 100, seed=2)
        res = optimize_whole_circuit(c)
        assert circuits_equivalent(c, res.circuit)

    def test_preserves_qubit_count(self):
        c = Circuit([H(0), H(0)], num_qubits=6)
        res = optimize_whole_circuit(c)
        assert res.circuit.num_qubits == 6

    def test_time_recorded(self):
        c = random_redundant_circuit(4, 50, seed=3)
        res = optimize_whole_circuit(c)
        assert res.time_seconds > 0


class TestSweeps:
    def test_single_sweep_by_default(self):
        c = random_redundant_circuit(4, 80, seed=4)
        res = optimize_whole_circuit(c)
        assert res.sweeps_run == 1

    def test_multi_sweep_at_least_as_good(self):
        c = random_redundant_circuit(4, 200, seed=5, redundancy=0.7)
        one = optimize_whole_circuit(c, sweeps=1)
        many = optimize_whole_circuit(c, sweeps=8)
        assert many.num_gates <= one.num_gates

    def test_multi_sweep_stops_at_fixpoint(self):
        c = Circuit([H(0), H(0)], 1)
        res = optimize_whole_circuit(c, sweeps=50)
        # one productive sweep, one confirming sweep, then stop
        assert res.sweeps_run <= 3

    def test_custom_oracle(self):
        c = Circuit([X(0), X(0)], 1)
        res = optimize_whole_circuit(c, oracle=NamOracle())
        assert res.num_gates == 0

    def test_timeout_returns_partial(self):
        c = random_redundant_circuit(4, 100, seed=6)
        res = optimize_whole_circuit(c, sweeps=100, timeout_seconds=0.0)
        assert res.sweeps_run == 1  # aborted after the first sweep
