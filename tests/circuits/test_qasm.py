"""Tests for the OpenQASM 2.0 reader/writer."""

import math

import pytest
from hypothesis import given

from repro.circuits import CNOT, RZ, Circuit, H, QasmError, X, parse_qasm, to_qasm
from repro.sim import circuits_equivalent

from ..conftest import circuit_strategy

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[4];\n'


class TestParsing:
    def test_basic_gates(self):
        c = parse_qasm(HEADER + "h q[0];\nx q[1];\ncx q[0],q[1];\nrz(0.5) q[2];")
        assert c.gates == (H(0), X(1), CNOT(0, 1), RZ(2, 0.5))
        assert c.num_qubits == 4

    def test_cnot_alias(self):
        c = parse_qasm(HEADER + "cnot q[0],q[1];")
        assert c.gates == (CNOT(0, 1),)

    def test_angle_expressions(self):
        c = parse_qasm(HEADER + "rz(pi/4) q[0]; rz(-3*pi/4) q[1]; rz(2*(1+1)) q[2];")
        assert c.gates[0].param == pytest.approx(math.pi / 4)
        assert c.gates[1].param == pytest.approx(2 * math.pi - 3 * math.pi / 4)
        assert c.gates[2].param == pytest.approx(4.0)

    def test_comments_stripped(self):
        c = parse_qasm(HEADER + "// a comment\nh q[0]; // trailing\n")
        assert c.num_gates == 1

    def test_multiple_registers_concatenated(self):
        text = "qreg a[2];\nqreg b[3];\nh a[1];\nh b[0];"
        c = parse_qasm(text)
        assert c.num_qubits == 5
        assert c.gates == (H(1), H(2))

    def test_creg_barrier_measure_ignored(self):
        c = parse_qasm(HEADER + "creg c[4];\nbarrier q;\nh q[0];\nmeasure q[0] -> c[0];")
        assert c.num_gates == 1

    def test_phase_aliases_decompose_to_rz(self):
        c = parse_qasm(HEADER + "z q[0]; s q[0]; sdg q[0]; t q[0]; tdg q[0]; p(0.3) q[0];")
        assert all(g.name == "rz" for g in c.gates)
        assert c.gates[0].param == pytest.approx(math.pi)

    def test_aliased_two_qubit_gates_preserve_semantics(self):
        import numpy as np

        c = parse_qasm("qreg q[2];\ncz q[0],q[1];")
        from repro.sim import circuit_unitary, allclose_up_to_phase

        assert allclose_up_to_phase(
            circuit_unitary(c), np.diag([1, 1, 1, -1]).astype(complex)
        )

    def test_ccx_decomposes(self):
        c = parse_qasm("qreg q[3];\nccx q[0],q[1],q[2];")
        assert c.num_gates > 10
        assert set(g.name for g in c.gates) <= {"h", "x", "cnot", "rz"}

    def test_swap_decomposes_to_cnots(self):
        c = parse_qasm("qreg q[2];\nswap q[0],q[1];")
        assert [g.name for g in c.gates] == ["cnot"] * 3


class TestParseErrors:
    def test_unknown_gate(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "u3(1,2,3) q[0];")

    def test_unknown_register(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "h r[0];")

    def test_bad_qubit_argument(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "h q;")

    def test_bad_angle(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "rz(import) q[0];")

    def test_malicious_angle_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "rz(__import__) q[0];")

    def test_bad_qreg(self):
        with pytest.raises(QasmError):
            parse_qasm("qreg q;")


class TestSerialization:
    def test_round_trip_exact(self):
        c = Circuit([H(0), X(1), CNOT(0, 1), RZ(2, 0.5)], 4)
        again = parse_qasm(to_qasm(c))
        assert again.gates == c.gates
        assert again.num_qubits == c.num_qubits

    def test_rz_angle_full_precision(self):
        c = Circuit([RZ(0, 0.1234567890123456)], 1)
        again = parse_qasm(to_qasm(c))
        assert again.gates[0].param == pytest.approx(c.gates[0].param, abs=1e-15)

    def test_non_base_gate_rejected(self):
        from repro.circuits import Gate

        # construct a circuit that bypasses the base set via Gate directly
        with pytest.raises(QasmError):
            to_qasm(Circuit([Gate("swap", (0, 1))], 2))

    @given(circuit_strategy(num_qubits=3, max_gates=15))
    def test_round_trip_equivalent(self, c):
        again = parse_qasm(to_qasm(c))
        assert circuits_equivalent(c, again)


class TestFileIO:
    def test_write_and_read(self, tmp_path):
        from repro.circuits import read_qasm, write_qasm

        c = Circuit([H(0), CNOT(0, 1)], 2)
        path = str(tmp_path / "bell.qasm")
        write_qasm(c, path)
        assert read_qasm(path).gates == c.gates
