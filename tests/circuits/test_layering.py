"""Tests for layering, depth and justification (Sections 2.2, A.4)."""

from collections import Counter

from hypothesis import given

from repro.circuits import (
    CNOT,
    Circuit,
    H,
    X,
    circuit_depth,
    flatten_layers,
    layers_alap,
    layers_asap,
    left_justified,
    right_justified,
)
from repro.sim import circuits_equivalent

from ..conftest import circuit_strategy


class TestAsapLayers:
    def test_empty(self):
        assert layers_asap([], 3) == []

    def test_independent_gates_share_layer(self):
        layers = layers_asap([H(0), H(1), H(2)], 3)
        assert len(layers) == 1 and len(layers[0]) == 3

    def test_dependent_gates_stack(self):
        layers = layers_asap([H(0), X(0)], 1)
        assert len(layers) == 2

    def test_cnot_dependency(self):
        layers = layers_asap([CNOT(0, 1), H(1), H(2)], 3)
        assert layers[0] == [CNOT(0, 1), H(2)]
        assert layers[1] == [H(1)]

    def test_matches_circuit_depth(self):
        gates = [H(0), CNOT(0, 1), X(1), H(2), CNOT(1, 2)]
        assert len(layers_asap(gates, 3)) == circuit_depth(gates, 3)


class TestAlapLayers:
    def test_gate_pushed_late(self):
        # H(1) can wait until the layer of the CNOT that needs qubit 1
        layers = layers_alap([H(1), CNOT(0, 1)], 2)
        assert len(layers) == 2
        assert layers[0] == [H(1)]

    def test_same_depth_as_asap(self):
        gates = [H(0), CNOT(0, 1), X(1), H(2), CNOT(1, 2), H(0)]
        assert len(layers_alap(gates, 3)) == len(layers_asap(gates, 3))


class TestJustification:
    def test_left_justified_preserves_gate_multiset(self):
        c = Circuit([H(2), H(2), CNOT(0, 1), X(2)], 3)
        lj = left_justified(c)
        assert Counter(lj.gates) == Counter(c.gates)

    def test_left_justified_preserves_depth(self):
        c = Circuit([H(0), CNOT(0, 1), H(1), X(0), CNOT(1, 2)], 3)
        assert left_justified(c).depth() == c.depth()

    def test_right_justified_preserves_depth(self):
        c = Circuit([H(0), CNOT(0, 1), H(1), X(0), CNOT(1, 2)], 3)
        assert right_justified(c).depth() == c.depth()

    @given(circuit_strategy(num_qubits=3, max_gates=15))
    def test_left_justified_equivalent(self, c):
        assert circuits_equivalent(c, left_justified(c))

    @given(circuit_strategy(num_qubits=3, max_gates=15))
    def test_right_justified_equivalent(self, c):
        assert circuits_equivalent(c, right_justified(c))

    @given(circuit_strategy(num_qubits=4, max_gates=20))
    def test_justification_idempotent(self, c):
        lj = left_justified(c)
        assert left_justified(lj).gates == lj.gates


class TestFlatten:
    def test_flatten_round_trip(self):
        gates = [H(0), CNOT(0, 1), X(1)]
        layers = layers_asap(gates, 2)
        flat = flatten_layers(layers)
        assert Counter(flat) == Counter(gates)

    def test_flatten_empty(self):
        assert flatten_layers([]) == []


class TestCircuitDepthHelper:
    def test_zero_for_empty(self):
        assert circuit_depth([], 4) == 0

    def test_single_gate(self):
        assert circuit_depth([CNOT(0, 1)], 2) == 1

    @given(circuit_strategy(num_qubits=4, max_gates=20))
    def test_agrees_with_circuit_method(self, c):
        assert circuit_depth(list(c.gates), c.num_qubits) == c.depth()
