"""Property tests for the compact gate-segment encoding.

The persistent-worker transport is only sound if the encoding is
lossless: the decoded segment must compare equal (gate names, qubit
tuples and parameters) to what was encoded, for *any* gate list.
"""

import math
import pickle

import numpy as np
from hypothesis import given

from repro.circuits import (
    CNOT,
    RZ,
    Gate,
    H,
    X,
    decode_segment,
    encode_segment,
    encoded_nbytes,
)

from ..conftest import gate_list_strategy


class TestRoundTrip:
    @given(gate_list_strategy(num_qubits=6, max_gates=60))
    def test_round_trip_equal(self, gates):
        assert decode_segment(encode_segment(gates)) == gates

    @given(gate_list_strategy(num_qubits=6, max_gates=60))
    def test_round_trip_preserves_fields(self, gates):
        decoded = decode_segment(encode_segment(gates))
        for orig, back in zip(gates, decoded):
            assert back.name == orig.name
            assert back.qubits == orig.qubits
            assert back.param == orig.param
            assert all(isinstance(q, int) for q in back.qubits)

    def test_empty_segment(self):
        enc = encode_segment([])
        assert len(enc) == 0
        assert decode_segment(enc) == []

    def test_param_bit_exact(self):
        # normalized angles must survive float64 transport bit-exactly
        angles = [math.pi / 4, 0.3, 1.7, 2 * math.pi - 1e-6]
        gates = [RZ(0, a) for a in angles]
        decoded = decode_segment(encode_segment(gates))
        for orig, back in zip(gates, decoded):
            assert back.param == orig.param  # exact, no approx

    def test_nonstandard_names_and_arities(self):
        # the encoding must not assume the base gate set
        gates = [Gate("swap", (0, 3)), Gate("ccx", (2, 0, 1)), H(4)]
        assert decode_segment(encode_segment(gates)) == gates


class TestLayout:
    def test_opcode_table_first_use_order(self):
        enc = encode_segment([X(0), H(1), X(2), CNOT(0, 1)])
        assert enc.names == ("x", "h", "cnot")
        assert enc.ops.tolist() == [0, 1, 0, 2]

    def test_arities_and_flat_qubits(self):
        enc = encode_segment([H(0), CNOT(1, 2), X(3)])
        assert enc.arities.tolist() == [1, 2, 1]
        assert enc.qubits.tolist() == [0, 1, 2, 3]

    def test_params_stored_sparsely(self):
        enc = encode_segment([H(0), RZ(1, 0.5), X(2), RZ(0, 1.1)])
        assert enc.params.tolist() == [0.5, 1.1]  # only the rz gates

    def test_dtypes_are_compact(self):
        enc = encode_segment([H(0), CNOT(0, 1)])
        assert enc.ops.dtype == np.uint8
        assert enc.arities.dtype == np.uint8
        assert enc.qubits.dtype == np.int32
        assert enc.params.dtype == np.float64


class TestTransportCost:
    def test_encoded_smaller_than_pickled_gates(self):
        # a 200-gate segment as arrays beats 200 pickled Gate objects on
        # the wire, measured as actual pipe bytes including pickle
        # framing (pickle's memo keeps its payload surprisingly tight;
        # the bigger win is avoiding per-object pickling CPU cost)
        gates = [CNOT(i % 7, (i + 1) % 7) for i in range(100)] + [
            RZ(i % 7, 0.3) for i in range(100)
        ]
        wire = len(pickle.dumps(encode_segment(gates)))
        assert wire < len(pickle.dumps(gates))
        # encoded_nbytes approximates the array payload from below
        assert encoded_nbytes(gates) <= wire

    def test_encoded_pickle_round_trip(self):
        # EncodedSegment itself crosses the process boundary via pickle
        gates = [H(0), CNOT(0, 1), RZ(1, 0.7)]
        enc = pickle.loads(pickle.dumps(encode_segment(gates)))
        assert decode_segment(enc) == gates

    def test_encoded_segment_value_equality(self):
        gates = [H(0), CNOT(0, 1), RZ(1, 0.7)]
        assert encode_segment(gates) == encode_segment(gates)
        assert encode_segment(gates) != encode_segment(gates[:-1])
        assert encode_segment(gates) != "not a segment"


class TestPackedWireFormat:
    """The flat byte layout the shared-memory arenas (and any future
    socket transport) carry."""

    @given(gate_list_strategy(num_qubits=6, max_gates=60))
    def test_pack_unpack_round_trip(self, gates):
        from repro.circuits import (
            pack_segment_into,
            packed_segment_nbytes,
            unpack_segment_from,
        )

        enc = encode_segment(gates)
        size = packed_segment_nbytes(enc)
        buf = bytearray(size)
        end = pack_segment_into(enc, buf, 0)
        assert end == size
        back, read_end = unpack_segment_from(buf, 0)
        assert read_end == size
        assert back == enc
        assert decode_segment(back) == gates

    @given(gate_list_strategy(num_qubits=6, max_gates=40))
    def test_pack_at_offset_and_concatenated(self, gates):
        # two segments packed back to back at an arbitrary 8-aligned
        # offset, the arena layout
        from repro.circuits import (
            pack_segment_into,
            packed_segment_nbytes,
            unpack_segment_from,
        )

        first = encode_segment(gates)
        second = encode_segment(list(reversed(gates)))
        base = 64
        buf = bytearray(
            base + packed_segment_nbytes(first) + packed_segment_nbytes(second)
        )
        mid = pack_segment_into(first, buf, base)
        end = pack_segment_into(second, buf, mid)
        assert end == len(buf)
        got_first, off = unpack_segment_from(buf, base)
        assert off == mid
        got_second, _ = unpack_segment_from(buf, mid)
        assert decode_segment(got_first) == gates
        assert decode_segment(got_second) == list(reversed(gates))

    def test_packed_size_is_8_aligned(self):
        from repro.circuits import packed_segment_nbytes

        for gates in ([], [H(0)], [CNOT(0, 1), RZ(1, 0.5)], [X(i) for i in range(9)]):
            assert packed_segment_nbytes(encode_segment(gates)) % 8 == 0

    def test_unpack_is_zero_copy(self):
        # the unpacked arrays must be views into the carrying buffer:
        # rewriting the param bytes in place must show through the view
        import struct

        from repro.circuits import (
            pack_segment_into,
            packed_segment_nbytes,
            unpack_segment_from,
        )

        enc = encode_segment([RZ(0, 0.25), CNOT(0, 1), H(1)])
        buf = bytearray(packed_segment_nbytes(enc))
        pack_segment_into(enc, buf, 0)
        view, _ = unpack_segment_from(buf, 0)
        assert view.params[0] == 0.25
        param_offset = bytes(buf).index(struct.pack("<d", 0.25))
        buf[param_offset : param_offset + 8] = struct.pack("<d", 0.75)
        assert view.params[0] == 0.75

    def test_unicode_gate_names_survive(self):
        from repro.circuits import (
            pack_segment_into,
            packed_segment_nbytes,
            unpack_segment_from,
        )

        gates = [Gate("rotação", (0,)), Gate("σx", (1,)), RZ(0, 0.5)]
        enc = encode_segment(gates)
        buf = bytearray(packed_segment_nbytes(enc))
        pack_segment_into(enc, buf, 0)
        back, _ = unpack_segment_from(buf, 0)
        assert decode_segment(back) == gates
