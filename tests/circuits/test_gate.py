"""Unit tests for the gate model."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.circuits import (
    ANGLE_TOL,
    CNOT,
    RZ,
    Gate,
    H,
    X,
    gate_matrix,
    gates_qubit_span,
    is_zero_angle,
    normalize_angle,
)


class TestConstructors:
    def test_h(self):
        g = H(3)
        assert g.name == "h" and g.qubits == (3,) and g.param is None

    def test_x(self):
        g = X(0)
        assert g.name == "x" and g.qubits == (0,)

    def test_cnot_order(self):
        g = CNOT(2, 5)
        assert g.qubits == (2, 5)

    def test_rz_normalizes_angle(self):
        g = RZ(0, 2 * math.pi + 0.5)
        assert g.param == pytest.approx(0.5)

    def test_rz_negative_angle_wraps(self):
        g = RZ(0, -math.pi / 2)
        assert g.param == pytest.approx(3 * math.pi / 2)

    def test_rz_requires_param(self):
        with pytest.raises(ValueError):
            Gate("rz", (0,))

    def test_non_rz_rejects_param(self):
        with pytest.raises(ValueError):
            Gate("h", (0,), 0.5)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("cnot", (1, 1))


class TestProperties:
    def test_arity(self):
        assert H(0).arity == 1
        assert CNOT(0, 1).arity == 2

    def test_is_identity_only_for_zero_rz(self):
        assert RZ(0, 0.0).is_identity
        assert RZ(0, 2 * math.pi).is_identity
        assert not RZ(0, 0.1).is_identity
        assert not H(0).is_identity
        assert not X(0).is_identity

    def test_on_relabels(self):
        assert CNOT(0, 1).on(4, 7) == CNOT(4, 7)
        assert RZ(0, 0.5).on(2) == RZ(2, 0.5)

    def test_touches(self):
        g = CNOT(1, 3)
        assert g.touches(1) and g.touches(3) and not g.touches(2)

    def test_overlaps(self):
        assert CNOT(0, 1).overlaps(H(1))
        assert not CNOT(0, 1).overlaps(H(2))
        assert X(4).overlaps(X(4))

    def test_equality_and_hash(self):
        assert H(0) == H(0)
        assert hash(RZ(1, 0.5)) == hash(RZ(1, 0.5))
        assert H(0) != X(0)
        assert CNOT(0, 1) != CNOT(1, 0)


class TestInverse:
    def test_self_inverse_gates(self):
        for g in (H(0), X(1), CNOT(0, 2)):
            assert g.inverse() == g

    def test_rz_inverse_negates(self):
        g = RZ(0, 0.7)
        inv = g.inverse()
        assert inv.param == pytest.approx(normalize_angle(-0.7))

    @given(st.sampled_from([0.3, 1.0, math.pi / 4, math.pi]))
    def test_inverse_matrix_is_adjoint(self, theta):
        g = RZ(0, theta)
        assert np.allclose(g.inverse().matrix(), g.matrix().conj().T)


class TestMatrices:
    def test_h_matrix_unitary(self):
        m = H(0).matrix()
        assert np.allclose(m @ m.conj().T, np.eye(2))

    def test_x_matrix(self):
        assert np.allclose(X(0).matrix(), [[0, 1], [1, 0]])

    def test_rz_convention(self):
        # RZ(pi) == Z, RZ(pi/2) == S, RZ(pi/4) == T (exactly, no phase)
        assert np.allclose(RZ(0, math.pi).matrix(), np.diag([1, -1]))
        assert np.allclose(RZ(0, math.pi / 2).matrix(), np.diag([1, 1j]))
        t = np.exp(1j * math.pi / 4)
        assert np.allclose(RZ(0, math.pi / 4).matrix(), np.diag([1, t]))

    def test_cnot_matrix_control_msb(self):
        m = CNOT(0, 1).matrix()
        expected = np.eye(4)[[0, 1, 3, 2]]
        assert np.allclose(m, expected)

    def test_gate_matrix_unknown_name(self):
        with pytest.raises(ValueError):
            gate_matrix("cz")

    def test_gate_matrix_rz_needs_param(self):
        with pytest.raises(ValueError):
            gate_matrix("rz")


class TestAngleHelpers:
    def test_normalize_angle_range(self):
        for theta in (-10.0, -1.0, 0.0, 1.0, 7.0, 100.0):
            n = normalize_angle(theta)
            assert 0.0 <= n < 2 * math.pi

    def test_normalize_angle_near_two_pi_snaps_to_zero(self):
        assert normalize_angle(2 * math.pi - ANGLE_TOL / 2) == 0.0
        assert normalize_angle(ANGLE_TOL / 2) == 0.0

    def test_is_zero_angle(self):
        assert is_zero_angle(0.0)
        assert is_zero_angle(4 * math.pi)
        assert not is_zero_angle(0.01)

    @given(st.floats(-50, 50, allow_nan=False))
    def test_normalize_angle_preserves_rotation(self, theta):
        n = normalize_angle(theta)
        assert abs(np.exp(1j * n) - np.exp(1j * theta)) < 1e-6


class TestSpan:
    def test_empty(self):
        assert gates_qubit_span([]) == 0

    def test_single(self):
        assert gates_qubit_span([H(4)]) == 5

    def test_mixed(self):
        assert gates_qubit_span([CNOT(0, 7), H(2)]) == 8
