"""Tests for the random circuit generators used by the property tests."""

import pytest

from repro.circuits import (
    GATE_NAMES,
    random_circuit,
    random_redundant_circuit,
    random_segment,
)


class TestRandomCircuit:
    def test_size_and_qubits(self):
        c = random_circuit(4, 50, seed=1)
        assert c.num_gates == 50
        assert c.num_qubits == 4

    def test_deterministic_by_seed(self):
        assert random_circuit(4, 30, seed=7) == random_circuit(4, 30, seed=7)

    def test_different_seeds_differ(self):
        assert random_circuit(4, 30, seed=1) != random_circuit(4, 30, seed=2)

    def test_only_base_gates(self):
        c = random_circuit(5, 100, seed=3)
        assert set(g.name for g in c.gates) <= set(GATE_NAMES)

    def test_needs_two_qubits(self):
        with pytest.raises(ValueError):
            random_circuit(1, 10)


class TestRandomRedundantCircuit:
    def test_size(self):
        c = random_redundant_circuit(4, 80, seed=1)
        assert c.num_gates == 80

    def test_redundancy_is_removable(self):
        from repro.oracles import NamOracle

        c = random_redundant_circuit(4, 200, seed=2, redundancy=0.8)
        out = NamOracle()(list(c.gates))
        # High-redundancy circuits should shrink substantially.
        assert len(out) < 0.7 * c.num_gates

    def test_needs_three_qubits(self):
        with pytest.raises(ValueError):
            random_redundant_circuit(2, 10)


class TestRandomSegment:
    def test_returns_list(self):
        seg = random_segment(3, 20, seed=1)
        assert isinstance(seg, list) and len(seg) == 20
