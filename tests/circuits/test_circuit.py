"""Unit tests for the Circuit container."""

import pytest
from hypothesis import given

from repro.circuits import CNOT, RZ, Circuit, H, X
from repro.sim import circuits_equivalent

from ..conftest import circuit_strategy


class TestConstruction:
    def test_empty(self):
        c = Circuit()
        assert c.num_gates == 0 and c.num_qubits == 0

    def test_infers_qubits(self):
        c = Circuit([CNOT(0, 4)])
        assert c.num_qubits == 5

    def test_explicit_qubits(self):
        c = Circuit([H(0)], num_qubits=10)
        assert c.num_qubits == 10

    def test_rejects_too_small_qubit_count(self):
        with pytest.raises(ValueError):
            Circuit([H(5)], num_qubits=3)

    def test_gates_are_immutable_tuple(self):
        c = Circuit([H(0)])
        assert isinstance(c.gates, tuple)


class TestSequenceProtocol:
    def test_len_and_iter(self):
        gates = [H(0), X(1), CNOT(0, 1)]
        c = Circuit(gates, 2)
        assert len(c) == 3
        assert list(c) == gates

    def test_getitem_gate(self):
        c = Circuit([H(0), X(1)], 2)
        assert c[1] == X(1)

    def test_getitem_slice_returns_circuit(self):
        c = Circuit([H(0), X(1), CNOT(0, 1)], 2)
        sub = c[1:]
        assert isinstance(sub, Circuit)
        assert sub.num_gates == 2
        assert sub.num_qubits == 2  # qubit count preserved

    def test_equality(self):
        a = Circuit([H(0)], 2)
        b = Circuit([H(0)], 2)
        assert a == b and hash(a) == hash(b)
        assert a != Circuit([H(0)], 3)
        assert a != Circuit([X(0)], 2)


class TestMetrics:
    def test_count_and_histogram(self):
        c = Circuit([H(0), H(1), X(0), CNOT(0, 1)], 2)
        assert c.count("h") == 2
        assert c.gate_histogram() == {"h": 2, "x": 1, "cnot": 1}

    def test_two_qubit_count(self):
        c = Circuit([H(0), CNOT(0, 1), CNOT(1, 2)], 3)
        assert c.two_qubit_count() == 2

    def test_depth_empty(self):
        assert Circuit().depth() == 0

    def test_depth_parallel_gates(self):
        # H(0) and H(1) fit in one layer
        assert Circuit([H(0), H(1)], 2).depth() == 1

    def test_depth_serial_chain(self):
        c = Circuit([H(0), X(0), H(0)], 1)
        assert c.depth() == 3

    def test_depth_cnot_blocks_both_wires(self):
        c = Circuit([CNOT(0, 1), H(0), H(1)], 2)
        assert c.depth() == 2


class TestComposition:
    def test_extended(self):
        c = Circuit([H(0)], 2).extended([X(1)])
        assert c.num_gates == 2

    def test_concat_takes_max_qubits(self):
        a = Circuit([H(0)], 2)
        b = Circuit([H(4)], 5)
        assert a.concat(b).num_qubits == 5

    def test_inverse_reverses_and_inverts(self):
        c = Circuit([H(0), RZ(0, 0.5), CNOT(0, 1)], 2)
        inv = c.inverse()
        assert inv.gates[0] == CNOT(0, 1)
        assert inv.gates[2] == H(0)
        assert inv.gates[1].param == pytest.approx(2 * 3.141592653589793 - 0.5)

    @given(circuit_strategy(num_qubits=3, max_gates=12))
    def test_inverse_is_actual_inverse(self, c):
        combined = c.concat(c.inverse())
        assert circuits_equivalent(combined, Circuit([], c.num_qubits))

    def test_map_gates(self):
        c = Circuit([H(0), H(1)], 2)
        mapped = c.map_gates(lambda g: X(g.qubits[0]))
        assert all(g.name == "x" for g in mapped)

    def test_remapped(self):
        c = Circuit([CNOT(0, 1)], 2)
        r = c.remapped([3, 1])
        assert r.gates[0] == CNOT(3, 1)


class TestSupport:
    def test_support(self):
        c = Circuit([H(5), CNOT(2, 7)], 8)
        assert c.support() == (2, 5, 7)

    def test_compacted(self):
        c = Circuit([CNOT(2, 7), H(5)], 8)
        compact, labels = c.compacted()
        assert labels == (2, 5, 7)
        assert compact.num_qubits == 3
        assert compact.gates[0] == CNOT(0, 2)
        assert compact.gates[1] == H(1)

    def test_compacted_preserves_semantics(self):
        c = Circuit([CNOT(1, 3), RZ(3, 0.5)], 4)
        compact, labels = c.compacted()
        # re-expand and compare
        inverse_map = {i: q for i, q in enumerate(labels)}
        restored = compact.remapped([inverse_map[i] for i in range(len(labels))])
        assert circuits_equivalent(c, Circuit(restored.gates, c.num_qubits))
