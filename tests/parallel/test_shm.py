"""Shared-memory arena lifecycle and the shm oracle transport.

The zero-copy transport is only production-safe if its arenas cannot
leak: every block the ring ever creates must be unlinked on executor
shutdown — clean or after a worker crash — and platforms without
``multiprocessing.shared_memory`` must degrade to the encoded
transport instead of failing.
"""

import os

import pytest

from repro.circuits import CNOT, H, X
from repro.oracles import NamOracle
from repro.parallel import HAVE_SHM, ProcessMap, ShmArenaPool
from repro.parallel import shm as shm_mod

pytestmark = pytest.mark.skipif(not HAVE_SHM, reason="no shared_memory here")

SHM_DIR = "/dev/shm"
HAVE_SHM_DIR = os.path.isdir(SHM_DIR)


def _shm_entries() -> set:
    return set(os.listdir(SHM_DIR)) if HAVE_SHM_DIR else set()


def _segments(count=8):
    return [[H(0), H(0), X(1), CNOT(0, 1)] for _ in range(count)]


class CrashingOracle:
    """Kills its worker process outright (not an exception — a crash)."""

    def __call__(self, segment):
        os._exit(13)


class RaisingOracle:
    """Fails the task with an ordinary exception (pool survives)."""

    def __call__(self, segment):
        raise ValueError("boom")


class TestShmArenaPool:
    def test_acquire_reuses_blocks(self):
        pool = ShmArenaPool()
        try:
            a = pool.acquire(1000)
            name = a.name
            pool.release(a)
            b = pool.acquire(500)  # smaller fits in the recycled block
            assert b.name == name
            assert pool.allocations == 1
            assert pool.reuses == 1
        finally:
            pool.close()

    def test_acquire_grows_for_larger_requests(self):
        pool = ShmArenaPool()
        try:
            a = pool.acquire(1000)
            pool.release(a)
            b = pool.acquire(a.size + 1)  # free block too small: allocate
            assert b.name != a.name
            assert pool.allocations == 2
        finally:
            pool.close()

    def test_close_unlinks_every_block(self):
        before = _shm_entries()
        pool = ShmArenaPool()
        blocks = [pool.acquire(4096) for _ in range(3)]
        if HAVE_SHM_DIR:
            assert _shm_entries() - before  # blocks visible while alive
        pool.release(blocks[0])  # one free, two in flight: all must go
        pool.close()
        assert _shm_entries() - before == set()

    def test_free_list_is_bounded(self):
        pool = ShmArenaPool()
        try:
            blocks = [pool.acquire((i + 1) * 100_000) for i in range(7)]
            for b in blocks:
                pool.release(b)
            assert len(pool._free) <= shm_mod._MAX_FREE_BLOCKS
        finally:
            pool.close()

    def test_finalizer_cleans_up_abandoned_pool(self):
        before = _shm_entries()
        pool = ShmArenaPool()
        pool.acquire(4096)
        pool._finalizer()  # what gc / interpreter exit would run
        assert _shm_entries() - before == set()


class TestShmTransportLifecycle:
    def test_shutdown_unlinks_arenas(self):
        before = _shm_entries()
        pm = ProcessMap(2, serial_cutoff=0, transport="shm")
        try:
            out = pm.map_segments(NamOracle(), _segments())
            assert all(len(seg) < 4 for seg in out)
            if HAVE_SHM_DIR:
                assert _shm_entries() - before  # arenas live mid-run
        finally:
            pm.close()
        assert _shm_entries() - before == set()

    def test_worker_crash_leaves_no_arenas(self):
        from concurrent.futures.process import BrokenProcessPool

        before = _shm_entries()
        pm = ProcessMap(2, serial_cutoff=0, transport="shm")
        try:
            with pytest.raises(BrokenProcessPool):
                pm.map_segments(CrashingOracle(), _segments())
        finally:
            pm.close()
        assert _shm_entries() - before == set()

    def test_failed_round_discards_arenas_instead_of_recycling(self):
        # a failed round may leave straggler batch tasks writing into
        # the arenas; recycling them would hand a later round corrupted
        # memory, so they must be unlinked, and the next round must run
        # on fresh blocks
        before = _shm_entries()
        pm = ProcessMap(2, serial_cutoff=0, transport="shm")
        try:
            with pytest.raises(ValueError, match="boom"):
                pm.map_segments(RaisingOracle(), _segments())
            assert pm.arena_bytes == 0  # ring emptied, nothing recycled
            assert _shm_entries() - before == set()  # and nothing leaked
            oracle = NamOracle()
            want = [oracle(list(s)) for s in _segments()]
            assert pm.map_segments(oracle, _segments()) == want
        finally:
            pm.close()
        assert _shm_entries() - before == set()

    def test_arena_ring_reused_across_rounds(self):
        pm = ProcessMap(2, serial_cutoff=0, transport="shm")
        try:
            oracle = NamOracle()
            pm.map_segments(oracle, _segments())
            allocs_after_first = pm.arena_allocations
            for _ in range(3):
                pm.map_segments(oracle, _segments())
            assert pm.arena_allocations == allocs_after_first
            assert pm.arena_reuses >= 6  # 3 rounds x 2 arenas
            assert pm.arena_bytes > 0
        finally:
            pm.close()

    def test_batched_dispatch_accounted(self):
        pm = ProcessMap(2, serial_cutoff=0, transport="shm")
        try:
            pm.map_segments(NamOracle(), _segments(12))
            assert pm.batch_dispatches >= 1
            assert pm.segments_batched == 12
            assert sum(pm.last_batch_sizes) == 12
        finally:
            pm.close()


class TestShmFallback:
    def test_falls_back_to_encoded_without_shared_memory(self, monkeypatch):
        monkeypatch.setattr(shm_mod, "HAVE_SHM", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            pm = ProcessMap(2, serial_cutoff=0, transport="shm")
        try:
            assert pm.transport == "encoded"
            assert pm.requested_transport == "shm"
            oracle = NamOracle()
            want = [oracle(list(s)) for s in _segments()]
            assert pm.map_segments(oracle, _segments()) == want
        finally:
            pm.close()

    def test_popqc_accepts_shm_request_on_fallen_back_executor(self, monkeypatch):
        from repro.circuits import Circuit
        from repro.core import popqc

        monkeypatch.setattr(shm_mod, "HAVE_SHM", False)
        with pytest.warns(RuntimeWarning):
            pm = ProcessMap(2, serial_cutoff=0, transport="shm")
        try:
            circuit = Circuit(sum(_segments(20), []), 2)
            res = popqc(circuit, NamOracle(), 4, parmap=pm, transport="shm")
            assert res.stats.transport == "encoded"  # what actually ran
        finally:
            pm.close()


class TestStaleGuards:
    def test_stale_arena_round_id_rejected(self):
        import numpy as np

        pool = ShmArenaPool()
        try:
            block = pool.acquire(4096)
            shm_mod.write_input_arena(
                block.buf, round_id=7, encoded=[], offsets=np.zeros(0, dtype=np.int64)
            )
            with pytest.raises(shm_mod.StaleArenaError, match="round 7"):
                shm_mod.check_round(block.buf, 8, block.name)
            assert shm_mod.check_round(block.buf, 7, block.name) == 0
        finally:
            pool.close()
