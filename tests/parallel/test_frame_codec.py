"""Property tests for the socket transport's frame codec.

The distributed transport's correctness rests on one invariant: a
segment batch framed on one host and parsed on another — through any
sequence of partial ``recv`` chunks TCP happens to deliver — must
reproduce the original segments byte for byte, and a *torn* stream
must raise a typed :class:`~repro.parallel.dist.FrameProtocolError`
rather than yield a short or corrupt message.  Hypothesis drives the
codec with arbitrary gate lists (including zero-gate segments),
arbitrary generation/batch tokens, and arbitrary chunk splits; the
nightly workflow re-runs it at the raised example budget.
"""

import socket
import struct

import pytest
from hypothesis import given, strategies as st

from repro.circuits.encoding import decode_segment, encode_segment
from repro.parallel.dist import (
    FRAME_MAGIC,
    FRAME_PING,
    FRAME_RESULTS,
    FRAME_SEGMENTS,
    ConnectionClosedError,
    FrameProtocolError,
    FrameReader,
    pack_frame,
    pack_results_payload,
    pack_segments_payload,
    recv_frame,
    split_results_payload,
    unpack_segments_payload,
)

from ..conftest import gate_list_strategy


def _feed_in_chunks(reader, data, cut_points):
    """Feed ``data`` to ``reader`` split at the (sorted) ``cut_points``."""
    bounds = sorted({min(c, len(data)) for c in cut_points}) + [len(data)]
    frames = []
    pos = 0
    for bound in bounds:
        reader.feed(data[pos:bound])
        pos = bound
        while True:
            frame = reader.next_frame()
            if frame is None:
                break
            frames.append(frame)
    return frames


class TestFrameStream:
    @given(
        payloads=st.lists(st.binary(max_size=200), max_size=5),
        cuts=st.lists(st.integers(0, 2000), max_size=8),
    )
    def test_frames_survive_arbitrary_chunking(self, payloads, cuts):
        """Any chunking of a frame stream parses to the same frames."""
        stream = b"".join(pack_frame(FRAME_SEGMENTS, p) for p in payloads)
        frames = _feed_in_chunks(FrameReader(), stream, cuts)
        assert frames == [(FRAME_SEGMENTS, p) for p in payloads]

    @given(st.binary(max_size=64))
    def test_partial_frame_is_never_yielded(self, payload):
        """Every proper prefix of a frame parses to nothing (no tearing)."""
        frame = pack_frame(FRAME_PING, payload)
        for end in range(len(frame)):
            reader = FrameReader()
            reader.feed(frame[:end])
            assert reader.next_frame() is None
            assert reader.pending_bytes == end

    def test_bad_magic_rejected(self):
        reader = FrameReader()
        reader.feed(b"XXXX" + bytes(12))
        with pytest.raises(FrameProtocolError, match="magic"):
            reader.next_frame()

    def test_unknown_frame_type_rejected(self):
        reader = FrameReader()
        reader.feed(struct.pack("<4sBxxxQ", FRAME_MAGIC, 99, 0))
        with pytest.raises(FrameProtocolError, match="unknown frame type"):
            reader.next_frame()

    def test_implausible_length_rejected(self):
        """A corrupt length field fails loudly instead of waiting forever."""
        reader = FrameReader()
        reader.feed(struct.pack("<4sBxxxQ", FRAME_MAGIC, FRAME_PING, 1 << 40))
        with pytest.raises(FrameProtocolError, match="cap"):
            reader.next_frame()


class TestSegmentsPayload:
    @given(
        batches=st.lists(gate_list_strategy(num_qubits=5, max_gates=20), max_size=4),
        generation=st.integers(0, 2**63 - 1),
        batch_id=st.integers(0, 2**63 - 1),
    )
    def test_round_trip_with_header_tokens(self, batches, generation, batch_id):
        """Segments + generation token survive pack → unpack exactly."""
        encoded = [encode_segment(gates) for gates in batches]
        payload = pack_segments_payload(generation, batch_id, encoded)
        got_gen, got_batch, got_segments = unpack_segments_payload(payload)
        assert got_gen == generation
        assert got_batch == batch_id
        assert [decode_segment(seg) for seg in got_segments] == batches

    @given(
        batches=st.lists(gate_list_strategy(num_qubits=4, max_gates=12), max_size=3),
        cuts=st.lists(st.integers(0, 4000), max_size=10),
    )
    def test_round_trip_through_chunked_frame_stream(self, batches, cuts):
        """The full wire path: payload → frame → arbitrary recv splits →
        parse → unpack must be lossless, zero-gate segments included."""
        encoded = [encode_segment(gates) for gates in batches]
        stream = pack_frame(FRAME_SEGMENTS, pack_segments_payload(7, 3, encoded))
        frames = _feed_in_chunks(FrameReader(), stream, cuts)
        assert len(frames) == 1
        frame_type, payload = frames[0]
        assert frame_type == FRAME_SEGMENTS
        _, _, segments = unpack_segments_payload(payload)
        assert [decode_segment(seg) for seg in segments] == batches

    def test_zero_gate_segment_round_trips(self):
        payload = pack_segments_payload(1, 0, [encode_segment([])])
        _, _, segments = unpack_segments_payload(payload)
        assert decode_segment(segments[0]) == []

    def test_truncated_payload_rejected(self):
        from repro.circuits import CNOT, H

        encoded = [encode_segment([H(0), CNOT(0, 1)])]
        payload = pack_segments_payload(1, 0, encoded)
        with pytest.raises(FrameProtocolError):
            unpack_segments_payload(payload[: len(payload) - 9])
        with pytest.raises(FrameProtocolError):
            unpack_segments_payload(payload[:10])


class TestResultsPayload:
    @given(st.lists(gate_list_strategy(num_qubits=5, max_gates=15), max_size=4))
    def test_split_preserves_each_blob(self, batches):
        """Result blobs split back out byte-identically — the property
        lazy decode relies on (split reads headers only)."""
        import repro.circuits.encoding as enc

        blobs = []
        for gates in batches:
            encoded = encode_segment(gates)
            buf = bytearray(enc.packed_segment_nbytes(encoded))
            enc.pack_segment_into(encoded, buf, 0)
            blobs.append(bytes(buf))
        batch_id, got = split_results_payload(pack_results_payload(11, blobs))
        assert batch_id == 11
        assert got == blobs

    def test_truncated_results_rejected(self):
        from repro.circuits import H

        encoded = encode_segment([H(0)])
        import repro.circuits.encoding as enc

        buf = bytearray(enc.packed_segment_nbytes(encoded))
        enc.pack_segment_into(encoded, buf, 0)
        payload = pack_results_payload(0, [bytes(buf)])
        with pytest.raises(FrameProtocolError):
            split_results_payload(payload[: len(payload) - 4])


class TestRecvFrame:
    def test_clean_close_between_frames(self):
        """EOF at a frame boundary is a typed clean close."""
        a, b = socket.socketpair()
        try:
            a.sendall(pack_frame(FRAME_PING))
            a.close()
            reader = FrameReader()
            assert recv_frame(b, reader)[0] == FRAME_PING
            with pytest.raises(ConnectionClosedError):
                recv_frame(b, reader)
        finally:
            b.close()

    def test_close_mid_frame_is_a_protocol_error(self):
        """EOF with a half-delivered frame pending must be loud: a torn
        result silently treated as short would corrupt a round."""
        a, b = socket.socketpair()
        try:
            frame = pack_frame(FRAME_RESULTS, b"x" * 64)
            a.sendall(frame[: len(frame) - 10])
            a.close()
            with pytest.raises(FrameProtocolError, match="mid-frame"):
                recv_frame(b, FrameReader())
        finally:
            b.close()


class TestCachePayloads:
    """The cluster-cache frames: strict requests, lenient replies."""

    @staticmethod
    def _packed(seg):
        from repro.parallel.executor import _pack_to_bytes

        return _pack_to_bytes(encode_segment(seg))

    @given(segments=st.lists(gate_list_strategy(), min_size=0, max_size=4))
    def test_lookup_round_trip(self, segments):
        from repro.parallel.dist import (
            pack_cache_lookup_payload,
            unpack_cache_lookup_payload,
        )

        packed = [self._packed(seg) for seg in segments]
        ns = b"namespace-16byte"
        payload = pack_cache_lookup_payload(ns, packed)
        got_ns, got = unpack_cache_lookup_payload(payload)
        assert got_ns == ns
        assert got == packed

    def test_lookup_truncated_rejected(self):
        from repro.circuits import H
        from repro.parallel.dist import (
            pack_cache_lookup_payload,
            unpack_cache_lookup_payload,
        )

        payload = pack_cache_lookup_payload(
            b"n" * 16, [self._packed([H(0)])]
        )
        with pytest.raises(FrameProtocolError):
            unpack_cache_lookup_payload(payload[: len(payload) - 4])
        with pytest.raises(FrameProtocolError):
            unpack_cache_lookup_payload(payload[:3])

    @given(
        values=st.lists(
            st.one_of(st.none(), st.binary(max_size=64)), max_size=6
        )
    )
    def test_result_round_trip_with_misses(self, values):
        from repro.parallel.dist import (
            pack_cache_result_payload,
            unpack_cache_result_payload,
        )

        payload = pack_cache_result_payload(values)
        assert unpack_cache_result_payload(payload) == list(values)

    def test_empty_result_is_the_store_ack(self):
        from repro.parallel.dist import (
            pack_cache_result_payload,
            unpack_cache_result_payload,
        )

        assert unpack_cache_result_payload(pack_cache_result_payload([])) == []

    @given(cut=st.integers(min_value=0, max_value=200))
    def test_torn_result_reads_as_misses_never_raises(self, cut):
        """The lenient unpacker: any truncation of a valid CACHE_RESULT
        yields only ``None`` (miss) or the original value per entry —
        no exception, no fabricated bytes."""
        from repro.parallel.dist import (
            pack_cache_result_payload,
            unpack_cache_result_payload,
        )

        values = [b"A" * 20, None, b"B" * 3, b"C" * 40]
        payload = pack_cache_result_payload(values)
        torn = payload[: min(cut, len(payload))]
        got = unpack_cache_result_payload(torn)
        assert len(got) <= len(values)
        for original, read in zip(values, got):
            assert read is None or read == original

    def test_forged_huge_count_is_bounded(self):
        """A count field claiming 2^60 entries must not allocate: the
        reader caps it by what the payload could physically hold."""
        import struct as _struct

        from repro.parallel.dist import unpack_cache_result_payload

        forged = _struct.pack("<Q", 1 << 60) + b"\x00" * 64
        got = unpack_cache_result_payload(forged)
        assert len(got) <= 8

    @given(
        entries=st.lists(
            st.tuples(gate_list_strategy(), st.binary(max_size=64)),
            max_size=4,
        )
    )
    def test_store_round_trip(self, entries):
        from repro.parallel.dist import (
            pack_cache_store_payload,
            unpack_cache_store_payload,
        )

        pairs = [(self._packed(seg), value) for seg, value in entries]
        ns = b"ns"
        payload = pack_cache_store_payload(ns, pairs)
        got_ns, got = unpack_cache_store_payload(payload)
        assert got_ns == ns
        assert got == pairs

    def test_store_truncated_rejected(self):
        from repro.circuits import H
        from repro.parallel.dist import (
            pack_cache_store_payload,
            unpack_cache_store_payload,
        )

        payload = pack_cache_store_payload(
            b"n" * 16, [(self._packed([H(0)]), b"value")]
        )
        # "value" is 5 bytes + 3 padding: cut past the padding into the
        # value bytes themselves
        with pytest.raises(FrameProtocolError):
            unpack_cache_store_payload(payload[: len(payload) - 4])
        with pytest.raises(FrameProtocolError):
            unpack_cache_store_payload(payload[:5])

    def test_cache_frames_are_known_to_the_reader(self):
        from repro.parallel.dist import (
            FRAME_CACHE_LOOKUP,
            FRAME_CACHE_RESULT,
            FRAME_CACHE_STORE,
        )

        reader = FrameReader()
        for frame_type in (
            FRAME_CACHE_LOOKUP,
            FRAME_CACHE_RESULT,
            FRAME_CACHE_STORE,
        ):
            reader.feed(pack_frame(frame_type, b"x" * 8))
            got_type, payload = reader.next_frame()
            assert got_type == frame_type
            assert payload == b"x" * 8
