"""Integration test: POPQC over a real process pool.

The paper's implementation uses fork-join threads; our ProcessMap is
the CPython-realistic equivalent (the GIL blocks thread speedups for a
pure-Python oracle).  This test verifies the full pipeline across
process boundaries: oracle pickling, segment shipping, result
reassembly — and that the output is identical to the serial run.
"""

import pytest

from repro.circuits import random_redundant_circuit
from repro.core import popqc
from repro.oracles import NamOracle
from repro.parallel import ProcessMap, SerialMap


@pytest.mark.slow
def test_process_map_matches_serial():
    c = random_redundant_circuit(5, 400, seed=13, redundancy=0.6)
    oracle = NamOracle()
    serial = popqc(c, oracle, 20, parmap=SerialMap())
    pm = ProcessMap(2, serial_cutoff=0)
    try:
        parallel = popqc(c, oracle, 20, parmap=pm)
    finally:
        pm.close()
    assert parallel.circuit.gates == serial.circuit.gates
    assert parallel.stats.oracle_calls == serial.stats.oracle_calls


def test_process_map_small_batch_fallback():
    # below the serial cutoff no pool is spawned; results still correct
    c = random_redundant_circuit(4, 60, seed=14)
    pm = ProcessMap(2, serial_cutoff=64)
    try:
        res = popqc(c, NamOracle(), 8, parmap=pm)
    finally:
        pm.close()
    assert res.circuit.num_gates <= c.num_gates
    assert pm._pool is None  # never escalated to processes
