"""Lazy result decode: rejected oracle outputs are never unpacked.

POPQC's acceptance test needs only ``len()`` of an oracle result (the
default gate-count cost), and the packed wire format answers that from
its header.  These tests spy on the decode entry points in
:mod:`repro.circuits.encoding` — which every
:class:`~repro.parallel.results.LazySegmentResult` routes through — to
prove that a rejecting workload decodes *nothing*, while accepted
rewrites still produce byte-identical circuits on every transport.
"""

import pytest

from repro.circuits import encoding, random_redundant_circuit, to_qasm
from repro.core import popqc
from repro.oracles import IdentityOracle, NamOracle
from repro.parallel import LazySegmentResult, ProcessMap
from repro.parallel.results import DecodeStats

CIRCUIT = random_redundant_circuit(8, 1200, seed=21, redundancy=0.5)
OMEGA = 40

#: The transports whose results carry packed bytes back to the parent.
BYTE_TRANSPORTS = ("encoded", "shm")


class _Spy:
    """Counts calls through one encoding entry point."""

    def __init__(self, fn):
        self.fn = fn
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        return self.fn(*args, **kwargs)


@pytest.fixture
def decode_spies(monkeypatch):
    """Spies on the parent-process decode entry points.

    Worker processes import their own copy of the module, so these
    spies see exactly what the *driver* decodes — which is the claim
    under test.
    """
    unpack = _Spy(encoding.unpack_segment_from)
    decode = _Spy(encoding.decode_segment)
    monkeypatch.setattr(encoding, "unpack_segment_from", unpack)
    monkeypatch.setattr(encoding, "decode_segment", decode)
    return unpack, decode


@pytest.mark.parametrize("transport", BYTE_TRANSPORTS)
def test_rejected_results_never_unpacked(transport, decode_spies):
    """An all-rejecting run must not unpack a single oracle result."""
    unpack, decode = decode_spies
    pm = ProcessMap(2, serial_cutoff=0, transport=transport)
    try:
        res = popqc(CIRCUIT, IdentityOracle(), OMEGA, parmap=pm)
    finally:
        pm.close()
    assert res.stats.oracle_accepted == 0
    assert res.stats.results_returned > 0
    assert res.stats.results_decoded == 0
    assert res.stats.skipped_decode_bytes > 0
    assert res.stats.decode_skip_fraction == 1.0
    assert unpack.calls == 0
    assert decode.calls == 0
    # nothing was optimized, so the circuit is unchanged
    assert list(res.circuit.gates) == list(CIRCUIT.gates)


def test_rejected_results_never_unpacked_threads(decode_spies):
    """The threads transport with a packed-native oracle: rejections
    stay packed (the vector oracle itself never touches the decoders)."""
    unpack, decode = decode_spies
    oracle = NamOracle(engine="vector")
    already_optimal = popqc(CIRCUIT, oracle, OMEGA).circuit
    pm = ProcessMap(2, serial_cutoff=0, transport="threads")
    try:
        res = popqc(already_optimal, oracle, OMEGA, parmap=pm)
    finally:
        pm.close()
    # a second run over a fixpoint rejects everything
    assert res.stats.oracle_accepted == 0
    assert res.stats.results_decoded == 0
    assert res.stats.skipped_decode_bytes > 0
    assert unpack.calls == 0
    assert decode.calls == 0


@pytest.mark.parametrize("transport", BYTE_TRANSPORTS)
def test_accepting_runs_decode_only_accepted(transport):
    """A mixed workload decodes exactly the accepted results."""
    pm = ProcessMap(2, serial_cutoff=0, transport=transport)
    try:
        res = popqc(CIRCUIT, NamOracle(), OMEGA, parmap=pm)
    finally:
        pm.close()
    assert res.stats.results_decoded == res.stats.oracle_accepted
    assert res.stats.results_returned >= res.stats.results_decoded
    assert res.stats.result_bytes_decoded <= res.stats.result_bytes_returned


def test_accepted_circuits_identical_across_all_transports():
    """Lazy decode must not change a single output byte, anywhere."""
    want = popqc(CIRCUIT, NamOracle(), OMEGA)
    for transport in ("pickle", "encoded", "shm", "threads"):
        pm = ProcessMap(2, serial_cutoff=0, transport=transport)
        try:
            res = popqc(CIRCUIT, NamOracle(), OMEGA, parmap=pm)
        finally:
            pm.close()
        assert res.circuit.gates == want.circuit.gates, transport
        assert to_qasm(res.circuit) == to_qasm(want.circuit), transport


# -- LazySegmentResult unit behaviour ------------------------------------------


def _packed(gates):
    encoded = encoding.encode_segment(gates)
    buf = bytearray(encoding.packed_segment_nbytes(encoded))
    encoding.pack_segment_into(encoded, buf, 0)
    return bytes(buf)


def test_len_does_not_decode():
    from repro.circuits import CNOT, H

    gates = [H(0), CNOT(0, 1), H(1)]
    stats = DecodeStats()
    result = LazySegmentResult.from_packed(_packed(gates), stats)
    assert len(result) == 3
    assert not result.decoded
    assert stats.results_returned == 1
    assert stats.results_decoded == 0


def test_access_decodes_once_and_counts():
    from repro.circuits import CNOT, H

    gates = [H(0), CNOT(0, 1), H(1)]
    stats = DecodeStats()
    result = LazySegmentResult.from_packed(_packed(gates), stats)
    assert result[0] == H(0)
    assert list(result) == gates
    assert result == gates  # Sequence equality decodes at most once
    assert result.decoded
    assert stats.results_decoded == 1
    assert stats.result_bytes_decoded == stats.result_bytes_returned > 0


def test_from_gates_carries_no_decodable_bytes():
    from repro.circuits import H

    result = LazySegmentResult.from_gates([H(0)])
    assert len(result) == 1 and result.decoded and result.nbytes == 0
